"""Table 5 — query performance on the Blast provenance.

Paper: Q1/Q3/Q4 require a full scan on S3 (~48.6 s sequential, ~7 s
parallel) but run an order of magnitude faster on SimpleDB's indexes;
Q2 is comparable on both backends (~0.06 s — one HEAD plus one lookup);
parallelism helps S3's independent GETs but cannot help SimpleDB Q1's
next-token chain.
"""

from repro.bench.experiments import table5_queries


def _by(result, query, backend):
    for row in result.rows:
        if row.query == query and row.backend == backend:
            return row
    raise AssertionError(f"missing row {query}/{backend}")


def test_table5_queries(once, benchmark):
    result = once(benchmark, table5_queries, scale=0.5)
    print("\n" + result.render())

    # Q1: SimpleDB beats the S3 scan by an order of magnitude.
    q1_s3 = _by(result, "Q1", "s3")
    q1_sdb = _by(result, "Q1", "simpledb")
    assert q1_sdb.sequential_s * 5 < q1_s3.sequential_s
    # Parallelism helps the S3 scan substantially.
    assert q1_s3.parallel_s < q1_s3.sequential_s / 3

    # Q2: comparable on both backends, both well under a second.
    q2_s3 = _by(result, "Q2", "s3")
    q2_sdb = _by(result, "Q2", "simpledb")
    assert q2_s3.sequential_s < 0.5
    assert q2_sdb.sequential_s < 0.5

    # Q3/Q4: SimpleDB is selective; S3 pays the full scan.
    for query in ("Q3", "Q4"):
        s3_row = _by(result, query, "s3")
        sdb_row = _by(result, query, "simpledb")
        assert sdb_row.sequential_s < s3_row.sequential_s
        assert sdb_row.mb < s3_row.mb

    # Q4 costs at least as much as Q3 (recursive closure).
    assert _by(result, "Q4", "simpledb").operations >= _by(
        result, "Q3", "simpledb"
    ).operations
