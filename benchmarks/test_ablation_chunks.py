"""Ablation — P3's WAL chunk size (§4.3.3 design choice).

P3 packs provenance into 8 KB messages because that is SQS's limit; the
sweep shows why hitting the limit matters: smaller chunks mean
proportionally more round trips.
"""

from repro.bench.experiments import ablation_chunk_size


def test_ablation_chunk_size(once, benchmark):
    result = once(benchmark, ablation_chunk_size)
    print("\n" + result.render())

    points = {chunk: (seconds, count) for chunk, seconds, count in result.points}
    # Bigger chunks are strictly fewer messages and no slower.
    sizes = sorted(points)
    for small, large in zip(sizes, sizes[1:]):
        assert points[large][1] < points[small][1]
        assert points[large][0] <= points[small][0] * 1.05
    # Full-size (8 KB) chunks beat 1 KB chunks by a wide margin.
    assert points[8192][0] * 3 < points[1024][0]
