"""Figure 4 — full workload elapsed times across 12 sets.

Paper: {Sep 09, Dec 09/Jan 10} x {EC2, local} x {Blast, Nightly,
Challenge}; overheads below 10 % in 29 of 36 protocol cells, maximum
36 %; Blast runs *faster* on the local machine than under UML-on-EC2
(memory thrash), while nightly runs slower locally; Dec 09 is faster
than Sep 09.

The benchmark runs at reduced scale (the shape is scale-invariant here)
to keep wall time sensible.
"""

from repro.bench.experiments import fig4_workloads


def test_fig4_workloads(once, benchmark):
    result = once(benchmark, fig4_workloads, scale=0.4)
    print("\n" + result.render())
    below, total = result.overhead_summary()
    print(f"\noverheads < 10%: {below} of {total} (paper: 29 of 36)")

    # Most overheads are small; none is catastrophic.
    assert below >= total // 2
    for key, per_config in result.cells.items():
        for config in ("p1", "p2", "p3"):
            assert per_config[config].overhead < 0.45, (key, config)

    # Blast: local beats UML-on-EC2 (the paper's memory-thrash anomaly).
    for period in ("sep09", "dec09"):
        uml = result.cells[(period, "uml", "blast")]["s3fs"].result
        local = result.cells[(period, "local", "blast")]["s3fs"].result
        assert local.elapsed_seconds < uml.elapsed_seconds

    # Nightly: local is slower (thin uplink dominates the tarballs).
    for period in ("sep09", "dec09"):
        uml = result.cells[(period, "uml", "nightly")]["s3fs"].result
        local = result.cells[(period, "local", "nightly")]["s3fs"].result
        assert local.elapsed_seconds > uml.elapsed_seconds

    # Dec 09 is no slower than Sep 09 anywhere.
    for (period, env, workload), per_config in result.cells.items():
        if period != "sep09":
            continue
        dec = result.cells[("dec09", env, workload)]
        for config, cell in per_config.items():
            assert (
                dec[config].result.elapsed_seconds
                <= cell.result.elapsed_seconds * 1.001
            )
