"""Table 3 — data-transfer and operation-count overheads.

Paper: data overheads are negligible (< 0.5 %) while operation overheads
are large (100-270 %), because every protocol at least doubles its work
writing provenance alongside data; P1 issues the most requests.
"""

from repro.bench.experiments import table3_overheads


def test_table3_overheads(once, benchmark):
    result = once(benchmark, table3_overheads)
    print("\n" + result.render())

    base = result.results["s3fs"]
    for config in ("p1", "p2", "p3"):
        r = result.results[config]
        data_overhead = r.bytes_transmitted / base.bytes_transmitted - 1.0
        ops_overhead = r.operations / base.operations - 1.0
        # Data overhead stays tiny; operation overhead is large.
        assert data_overhead < 0.02, (config, data_overhead)
        assert ops_overhead > 0.5, (config, ops_overhead)
    # P1 (per-object appends) issues the most requests of the three.
    assert result.results["p1"].operations >= result.results["p3"].operations
