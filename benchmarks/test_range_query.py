"""Range queries — sorted-value indexes vs the scan fallback.

The tentpole contract for the range grammar: version-range and
time-window selects over growing stores return rows, order, and billing
byte-identical to the ``use_indexes=False`` scan, while the indexed
wall-clock stays O(matches) — the windows match a fixed number of rows
at every domain size, so speedup over the linear scan must reach ≥5x
from 10k items up (sublinear growth).  The OR-with-``!=`` control scans
in both modes and stays at parity.

``REPRO_RANGE_QUERY_SIZES`` (comma-separated item counts) overrides the
swept domain sizes — CI's perf-smoke job runs a small sweep on every
push; the default sweep ends at 60k items.
"""

import os

from repro.bench.experiments import range_query
from repro.bench.reporting import write_bench_json

#: Queries the planner must serve from the indexes.
_INDEXED_QUERIES = ("time-window", "time-between", "version-slice", "itemname-range")

#: Pure range windows whose speedup the acceptance criterion floors at
#: >= 5x from 10k items up.
_WINDOW_QUERIES = ("time-window", "time-between", "itemname-range")


def _domain_sizes():
    raw = os.environ.get("REPRO_RANGE_QUERY_SIZES", "")
    if raw:
        return tuple(int(part) for part in raw.split(",") if part.strip())
    return (1_000, 10_000, 60_000)


def test_range_query(once, benchmark):
    result = once(benchmark, range_query, domain_sizes=_domain_sizes())
    print("\n" + result.render())
    print(
        "results json:",
        write_bench_json(
            "range_query", result.as_json(), telemetry=result.telemetry
        ),
    )

    for point in result.points:
        for cell in point.cells:
            # The regression contract: rows, row order, simulated request
            # counts, and billed bytes identical in both modes.
            assert cell.identical, (point.items, cell.query)
            assert cell.rows > 0, (point.items, cell.query)

    # The planner serves every range query from the sorted-value indexes
    # and falls back to scan for the OR-with-!= control.
    top = result.points[-1]
    for query in _INDEXED_QUERIES:
        assert top.cell(query).used_index, query
    assert not top.cell("range-scan-control").used_index

    # Sublinear growth: the windows match ~constant rows at every size,
    # so from 10k items up the indexed chain must beat the scan by >= 5x.
    for point in result.points:
        if point.items < 10_000:
            continue
        for query in _WINDOW_QUERIES:
            cell = point.cell(query)
            assert cell.speedup >= 5.0, (point.items, query, cell.speedup)
