"""Backend parity: simulated predictions vs measured sqlite/filesystem.

The `backend_parity` experiment replays the fig3 Blast microbenchmark
per configuration on both backends.  The simulator's *predictions*
(virtual seconds, operation counts, dollars) must be byte-identical
across backends — the local backend swaps only the storage substrate,
never the protocol or billing code.  The honest physical difference is
the wall-clock column: how long real sqlite rows and filesystem blobs
took compared to in-memory dicts.  Wall time is measurement of the
harness itself; it never feeds back into any simulated quantity.
"""

import os

from repro.bench.experiments import CONFIGURATIONS, backend_parity
from repro.bench.reporting import write_bench_json

SCALE = float(os.environ.get("REPRO_BACKEND_PARITY_SCALE", "0.1"))


def test_backend_parity(once, benchmark):
    result = once(benchmark, backend_parity, scale=SCALE, seed=0)
    print("\n" + result.render())
    print(
        "results json:",
        write_bench_json("backend_parity", result.as_json()),
    )

    points = {p.configuration: p for p in result.points}
    assert set(points) == set(CONFIGURATIONS)  # no dropped configs

    # The headline invariant: every configuration produced identical
    # results and identical store fingerprints on both backends.
    assert result.all_match
    assert all(p.results_match and p.fingerprints_match for p in result.points)

    # The predictions are real simulated quantities, the measurements
    # real wall time: both strictly positive for every configuration.
    for point in result.points:
        assert point.predicted_virtual_s > 0.0
        assert point.sim_wall_s > 0.0
        assert point.local_wall_s > 0.0
        assert point.operations > 0
        assert point.cost_usd > 0.0
        assert point.store_fingerprint

    # Determinism of the virtual-time fields: a replay at the same seed
    # and scale reproduces every prediction exactly (wall clock varies).
    replay = backend_parity(scale=SCALE, seed=0)
    virtual = lambda r: [  # noqa: E731 - tiny local projection
        (
            p.configuration,
            p.predicted_virtual_s,
            p.operations,
            p.bytes_transmitted,
            p.cost_usd,
            p.store_fingerprint,
        )
        for p in r.points
    ]
    assert virtual(replay) == virtual(result)
