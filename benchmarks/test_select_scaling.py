"""Select scaling — the indexed SimpleDB engine vs the scan fallback.

Beyond the paper: §5.3 measures Q1–Q4 once, at one domain size.  The
ROADMAP's fleet-scale workloads put millions of items behind the same
``Select`` path, so the simulator grows the real service's design — every
attribute indexed — and this benchmark pins the contract: indexed
answers, row order, and billing byte-identical to the scan fallback at
every size, with wall-clock cost dropping from O(domain) to O(matches)
for equality/prefix/IN selects.

``REPRO_SELECT_SCALING_SIZES`` (comma-separated item counts) overrides
the swept domain sizes — CI's perf-smoke job runs a small sweep on every
push; the default sweep ends at 100k items where the acceptance floor is
a ≥5x speedup.  The opt-in nightly job sets ``100000,1000000`` to push
the sweep to a million items, where the array-backed index store's
``memory_bytes_per_item`` series must chart strictly below the legacy
dict-of-sets baseline.
"""

import os

from repro.bench.experiments import select_scaling
from repro.bench.reporting import write_bench_json

#: Queries whose speedup the acceptance criterion floors at >= 5x.
_INDEXED_QUERIES = ("equality", "prefix", "in", "conjunction")


def _domain_sizes():
    raw = os.environ.get("REPRO_SELECT_SCALING_SIZES", "")
    if raw:
        return tuple(int(part) for part in raw.split(",") if part.strip())
    return (1_000, 10_000, 100_000)


def test_select_scaling(once, benchmark):
    result = once(benchmark, select_scaling, domain_sizes=_domain_sizes())
    print("\n" + result.render())
    print(
        "results json:",
        write_bench_json(
            "select_scaling", result.as_json(), telemetry=result.telemetry
        ),
    )

    for point in result.points:
        for cell in point.cells:
            # The regression contract: rows, row order, simulated request
            # counts, and billed bytes identical in both modes.
            assert cell.identical, (point.items, cell.query)
            assert cell.rows > 0, (point.items, cell.query)

    # The planner serves the selective queries from the indexes and falls
    # back to scan for the != control.
    top = result.points[-1]
    for query in _INDEXED_QUERIES:
        assert top.cell(query).used_index
    assert not top.cell("negation-scan").used_index

    # Wall-clock speedup >= 5x on equality/prefix selects once the domain
    # is large enough for O(matches) vs O(domain) to dominate noise.
    if top.items >= 2_000:
        for query in ("equality", "prefix"):
            cell = top.cell(query)
            assert cell.speedup >= 5.0, (query, cell.speedup)

    # The memory series is charted at every size; from 100k items up the
    # array-backed store must sit strictly below the legacy dict-of-sets
    # baseline on the same data (the 1M nightly sweeps the full gap).
    for point in result.points:
        assert point.index_memory_bytes > 0
        assert point.legacy_index_memory_bytes > 0
        if point.items >= 100_000:
            assert point.index_memory_bytes < point.legacy_index_memory_bytes, (
                point.items,
                point.memory_bytes_per_item,
                point.legacy_memory_bytes_per_item,
            )
