"""Shared fixtures for the benchmark suite.

Every benchmark runs its experiment exactly once (pedantic mode): the
simulator is deterministic, so repeated rounds measure nothing but
Python's own wall-time jitter, and the heavy experiments replay hundreds
of megabytes of simulated traffic.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
