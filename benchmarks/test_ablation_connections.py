"""Ablation — connection-count sweep per service (§5.1 prose).

The paper: "S3 and SQS scaled well as the number of connections
increased (we stopped at 150) while SimpleDB peaked at around 40
concurrent connections."
"""

from repro.bench.experiments import ablation_connection_sweep


def test_ablation_connection_sweep(once, benchmark):
    result = once(benchmark, ablation_connection_sweep)
    print("\n" + result.render())

    def speedup(service, low, high):
        points = dict(result.series[service])
        return points[low] / points[high]

    # S3 and SQS keep improving all the way to 150 connections.
    assert speedup("s3", 40, 150) > 2.0
    assert speedup("sqs", 40, 150) > 2.0
    # SimpleDB gains little beyond 40 (its indexing pipeline saturates).
    assert speedup("simpledb", 40, 150) < 1.3
    # But every service benefits from the first few connections.
    for service in ("s3", "simpledb", "sqs"):
        assert speedup(service, 1, 10) > 2.0, service
