"""The autoscaling supervisor closes the chaos SLO gap.

``BENCH_chaos_slo.json`` ends on a negative result: its SLO table has
``daemons: null`` rows — under recurring daemon crashes *no swept
static daemon count* holds the p99 commit lag under the SLO, because
the tail is the stock 30 s SQS visibility timeout stranding whatever a
killed daemon had received, not a lack of capacity.  This sweep runs
the same fleets and the same crash schedule three ways — ``static-1``,
``static-2`` (the chaos bench's configuration), and ``auto`` (the
supervisor control plane) — and pins the headline:

- the autoscaler meets the p99 SLO in every cell where both static
  fleets miss it (the ``null`` cells, filled);
- it does so with fewer provisioned daemon-seconds than the largest
  static pool, because it scales back down when the WAL clears;
- every crashes run still ends with Q1-Q4 answers and query billing
  byte-identical to the same-mode steady run, and the whole sweep
  (telemetry included) replays bit-for-bit from the seed.

``REPRO_AUTOSCALE_FLEETS`` (comma-separated fleet sizes) overrides the
swept fleets for CI smoke runs.
"""

import json
import os

from repro.bench.experiments import (
    AUTOSCALE_MODES,
    AUTOSCALE_SCHEDULES,
    autoscale_slo_experiment,
)
from repro.bench.reporting import write_bench_json

SLO_P99_S = 30.0


def _fleet_sizes():
    raw = os.environ.get("REPRO_AUTOSCALE_FLEETS", "")
    if raw:
        return tuple(int(part) for part in raw.split(",") if part)
    return (2, 4)


def test_autoscale_slo_sweep(once, benchmark):
    fleets = _fleet_sizes()
    result = once(
        benchmark,
        autoscale_slo_experiment,
        fleet_sizes=fleets,
        modes=AUTOSCALE_MODES,
        schedules=AUTOSCALE_SCHEDULES,
        slo_p99_s=SLO_P99_S,
        seed=0,
    )
    print("\n" + result.render())
    print(
        "results json:",
        write_bench_json(
            "autoscale_slo", result.as_json(), telemetry=result.telemetry
        ),
    )

    points = {(p.clients, p.mode, p.schedule): p for p in result.points}
    assert len(points) == len(fleets) * len(AUTOSCALE_MODES) * len(
        AUTOSCALE_SCHEDULES
    )

    # Nothing is lost to the chaos in any mode: every transaction the
    # fleet flushed is committed exactly once (the supervised pool's
    # tight lease never double-commits, and kills never drop provenance).
    assert all(p.committed == p.flushes for p in result.points)

    # The chaos recovery invariant, per mode: crashes runs end with
    # Q1-Q4 answers and query billing byte-identical to steady runs.
    assert result.recovery_identical

    # The headline: every (fleet, crashes) cell both static fleets miss
    # is met by the autoscaler — the chaos bench's null rows, filled.
    for clients in fleets:
        static_misses = all(
            not result.slo_met[(clients, "crashes", mode)]
            for mode in AUTOSCALE_MODES
            if mode.startswith("static-")
        )
        assert static_misses, (
            "expected the static fleets to miss the crash-schedule SLO "
            f"at clients={clients} (the BENCH_chaos_slo null cells)"
        )
        assert (clients, "crashes") in result.filled_cells

    # Cross-check against the committed chaos bench: its SLO table calls
    # the same (fleet, crashes) cells unreachable for every static count.
    chaos_path = os.path.join("bench-results", "BENCH_chaos_slo.json")
    if os.path.exists(chaos_path):
        with open(chaos_path, encoding="utf-8") as handle:
            chaos = json.load(handle)
        null_crash_fleets = {
            row["clients"]
            for row in chaos["results"]["daemons_for_slo"]
            if row["schedule"] == "crashes" and row["daemons"] is None
        }
        for clients in fleets:
            if clients in null_crash_fleets:
                assert (clients, "crashes") in result.filled_cells

    # Scale-down economy: in every filled cell the supervisor spent
    # fewer provisioned daemon-seconds than the largest static pool,
    # and it genuinely scaled — up past its floor, then back down.
    for clients, schedule in result.filled_cells:
        assert result.auto_cheaper[(clients, schedule)]
        auto = points[(clients, "auto", schedule)]
        assert auto.scale_ups >= 1
        assert auto.scale_downs >= 1
        assert auto.pool_peak >= 2
        assert auto.pool_end < auto.pool_peak

    # The crash schedule actually ran in every crashes cell, and each
    # kill was answered by a respawn (flat for static, backoff for auto).
    for point in result.points:
        if point.schedule == "crashes":
            assert point.crashes_fired >= 2
            assert point.respawns >= point.crashes_fired - 1

    # The read-staleness SLO axis: concurrent Q1 readers observed real
    # read-your-writes staleness in every run.
    assert all(p.stale_p99 > 0 for p in result.points)

    # Determinism contract: same seed, same sweep => identical BENCH
    # JSON including the telemetry section, bit for bit.
    replay = autoscale_slo_experiment(
        fleet_sizes=fleets,
        modes=AUTOSCALE_MODES,
        schedules=AUTOSCALE_SCHEDULES,
        slo_p99_s=SLO_P99_S,
        seed=0,
    )
    assert replay.as_json() == result.as_json()
    assert replay.telemetry == result.telemetry
