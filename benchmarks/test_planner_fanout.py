"""Cost planner + Bloom shard routing — the fan-out contract.

The tentpole acceptance criteria, asserted on every sweep point:

- rows and billed bytes byte-identical between the Bloom-routed engine
  and the full-fan-out baseline (a Bloom decision may skip a shard,
  never change an answer),
- rows, ``Select`` operations, and billed bytes identical across the
  cost planner, the legacy fixed-bailout planner, and the index-off
  scan (planning moves Python cost, never billing),
- attribute-rooted Q3/Q4 lookups contact strictly fewer shards than
  full fan-out at two or more swept shard counts (Q4's leaf frontier is
  provably absent everywhere, so its chunks collapse to zero selects).

``REPRO_PLANNER_FANOUT_SHARDS`` / ``REPRO_PLANNER_FANOUT_PROGRAMS``
override the swept shard counts and tree count for CI's perf-smoke job.
"""

import os

from repro.bench.experiments import planner_fanout
from repro.bench.reporting import write_bench_json


def _shard_counts():
    raw = os.environ.get("REPRO_PLANNER_FANOUT_SHARDS", "")
    if raw:
        return tuple(int(part) for part in raw.split(",") if part.strip())
    return (1, 2, 4)


def _programs():
    return int(os.environ.get("REPRO_PLANNER_FANOUT_PROGRAMS", "18"))


def test_planner_fanout(once, benchmark):
    result = once(
        benchmark,
        planner_fanout,
        shard_counts=_shard_counts(),
        programs=_programs(),
    )
    print("\n" + result.render())
    print(
        "results json:",
        write_bench_json(
            "planner_fanout", result.as_json(), telemetry=result.telemetry
        ),
    )

    for point in result.points:
        # Routing axis: same rows, same billed bytes, never more chains.
        for cell in point.cells:
            assert cell.identical, (point.shards, point.children, cell.query)
            assert cell.rows > 0, (point.shards, point.children, cell.query)
            assert cell.bloom_selects <= cell.naive_selects
        # Planner axis: rows, Select ops, and bytes identical across
        # cost / fixed / scan.
        assert point.billing_identical, (point.shards, point.children)

    # The headline: Q4's attribute-rooted lookups issue strictly fewer
    # select chains than full fan-out at >= 2 swept shard counts.
    winning_shards = {
        point.shards
        for point in result.points
        if point.cell("q4").bloom_selects < point.cell("q4").naive_selects
    }
    assert len(winning_shards) >= 2, winning_shards

    # And the pruning is real work avoided, not relabelling: skipped
    # chains appear wherever the win does.
    for point in result.points:
        q4 = point.cell("q4")
        if q4.bloom_selects < q4.naive_selects:
            assert q4.bloom_skipped > 0
