"""Chaos schedules and SLO sizing — the fault-schedule scenario family.

Beyond the paper: §4.3.3's recovery argument ("if the machine running
the daemon crashes, any other machine can run a daemon against the same
queue and finish the job") is exercised here as a *schedule*, not a
single staged crash: the commit daemon is killed on a recurring beat and
respawned as a fresh process resuming from the SQS WAL mid-run, a
degradation window stretches every request and arms duplicate delivery,
and query-side readers measure read-your-writes staleness while the
fleet writes.  The headline invariant: a crashed-and-respawned run ends
with Q1-Q4 answers (and the billing of running them) byte-identical to
the uncrashed run — the WAL, not any daemon's memory, is the authority.

The sweep also answers the sizing question the ROADMAP poses: how many
daemons hold the p99 commit lag under the SLO at each fleet size and
fault schedule (the drain knee).
"""

from repro.bench.experiments import CHAOS_SCHEDULES, chaos_slo_experiment
from repro.bench.reporting import write_bench_json

SLO_P99_S = 30.0


def test_chaos_slo_sweep(once, benchmark):
    result = once(
        benchmark,
        chaos_slo_experiment,
        fleet_sizes=(2, 4),
        daemon_counts=(1, 2),
        schedules=CHAOS_SCHEDULES,
        slo_p99_s=SLO_P99_S,
        seed=0,
    )
    print("\n" + result.render())
    print(
        "results json:",
        write_bench_json(
            "chaos_slo", result.as_json(), telemetry=result.telemetry
        ),
    )

    points = {
        (p.clients, p.daemons, p.schedule): p for p in result.points
    }
    assert len(points) == 12  # full 2 x 2 x 3 sweep, no dropped runs

    # Recovery: every transaction committed under every schedule — the
    # recurring kills, respawns, and degradation windows cost lag, never
    # provenance.
    assert all(p.committed == p.flushes for p in result.points)

    # The chaos recovery invariant: crashed+respawned runs end with
    # Q1-Q4 answers and query billing byte-identical to uncrashed runs.
    assert result.recovery_identical

    # The p99 commit-lag table reproduces from record-lifecycle traces:
    # the wal.logged -> commit.done spans are an independent derivation
    # from the daemons' commit-log bookkeeping, and they agree exactly —
    # per-transaction lags and therefore every percentile.
    for point in result.points:
        assert point.trace_lags_match
        assert point.lag_p99_trace_s == point.lag_p99_s

    # The chaos actually happened: recurring crashes fired repeatedly
    # and every kill was answered by a fresh-daemon respawn.
    for point in result.points:
        if point.schedule == "crashes":
            assert point.crashes_fired >= 2
            assert point.respawns == point.crashes_fired

    # The drain knee: with the fleet fixed and no faults, a second
    # daemon lowers the p99 commit lag at the largest fleet.
    assert (
        points[(4, 2, "steady")].lag_p99_s
        < points[(4, 1, "steady")].lag_p99_s
    )

    # Chaos costs capacity: under recurring daemon crashes the p99 lag
    # is strictly worse than steady at the same fleet and daemon count.
    for clients in (2, 4):
        for daemons in (1, 2):
            assert (
                points[(clients, daemons, "crashes")].lag_p99_s
                > points[(clients, daemons, "steady")].lag_p99_s
            )

    # The SLO table is internally consistent with the swept points.
    for (clients, schedule), daemons in result.daemons_for_slo.items():
        if daemons is None:
            assert all(
                points[(clients, d, schedule)].lag_p99_s > SLO_P99_S
                for d in (1, 2)
            )
        else:
            assert points[(clients, daemons, schedule)].lag_p99_s <= SLO_P99_S

    # Concurrent readers observed real read-your-writes staleness while
    # the fleet wrote, and a settled store at the end.
    for point in result.points:
        assert point.reader_samples > 0
        assert point.reader_stale_peak > 0
        assert point.reader_final_stale == 0

    # Determinism contract: same seed, same sweep => identical BENCH
    # JSON, bit for bit.
    replay = chaos_slo_experiment(
        fleet_sizes=(2, 4),
        daemon_counts=(1, 2),
        schedules=CHAOS_SCHEDULES,
        slo_p99_s=SLO_P99_S,
        seed=0,
    )
    assert replay.as_json() == result.as_json()
    assert replay.telemetry == result.telemetry
