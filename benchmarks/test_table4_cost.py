"""Table 4 — the USD bill per benchmark per protocol.

Paper: provenance adds almost nothing to the bill; the ordering is
P3 > P1 >= P2 >= S3fs, and the nightly backup (3 GB of tarballs) costs
the most, Challenge the least.
"""

from repro.bench.experiments import table4_cost


def test_table4_cost(once, benchmark):
    result = once(benchmark, table4_cost)
    print("\n" + result.render())

    for workload, per_config in result.costs.items():
        # P3 is the most expensive configuration (SQS log + SimpleDB).
        assert per_config["p3"] >= per_config["s3fs"], workload
        assert per_config["p3"] >= per_config["p2"] - 1e-6, workload
        # Provenance never doubles the bill.
        assert per_config["p3"] < per_config["s3fs"] * 1.5 + 0.05, workload

    # Workload ordering: nightly most expensive, challenge cheapest.
    assert result.costs["nightly"]["s3fs"] > result.costs["blast"]["s3fs"]
    assert result.costs["blast"]["s3fs"] > result.costs["challenge"]["s3fs"]
