"""Multi-tenant service tier — shard scaling with a fixed client fleet.

Beyond the paper: §5 measures one client against one SimpleDB domain and
observes the per-domain ingest ceiling.  The service tier turns that
observation into the scaling unit — a fixed fleet driven through the
ingest gateway should commit strictly faster as the shard count grows,
while the shard-aware query path answers Q2–Q4 byte-identically to the
single-domain path and the read cache absorbs repeated queries.
"""

from repro.bench.experiments import multitenant_scaling
from repro.bench.reporting import write_bench_json


def test_multitenant_shard_scaling(once, benchmark):
    result = once(benchmark, multitenant_scaling)
    print("\n" + result.render())
    print("results json:", write_bench_json(
        "multitenant_scaling", result.as_json(), telemetry=result.telemetry
    ))

    throughputs = [point.throughput for point in result.points]
    # Fixed fleet, 1 -> 4 shards: total commit throughput improves
    # monotonically (per-domain indexing pipelines run in parallel).
    for slower, faster in zip(throughputs, throughputs[1:]):
        assert faster >= slower
    assert throughputs[-1] > throughputs[0] * 1.1

    # The shard-aware query path is answer-identical to single-domain.
    assert result.queries_match

    # Cross-client batch coalescing saves BatchPutAttributes calls at
    # every shard count.
    for point in result.points:
        assert point.sdb_batches_saved > 0

    # The service cache turns a repeated Q2 into zero cloud operations.
    assert result.cache_cold_ops > 0
    assert result.cache_warm_ops == 0
    assert result.cache_hits > 0
