"""Table 2 — time to upload 50 MB of Linux-compile provenance to each
service.

Paper: S3 324.7 s, SimpleDB 537.1 s, SQS 36.2 s (150/40/150 connections).
The shape to hold: SQS is dramatically the fastest; SimpleDB is the
slowest; S3 sits in between.
"""

from repro.bench.experiments import table2_service_throughput


def test_table2_service_throughput(once, benchmark):
    result = once(benchmark, table2_service_throughput)
    print("\n" + result.render())

    s3 = result.seconds["s3"]
    sdb = result.seconds["simpledb"]
    sqs = result.seconds["sqs"]
    # Ordering: SQS << S3 < SimpleDB.
    assert sqs < s3 < sdb
    # Rough factors: the paper has S3/SQS ~9x and SimpleDB/SQS ~15x.
    assert 4.0 < s3 / sqs < 20.0
    assert 8.0 < sdb / sqs < 30.0
    # Absolute numbers within a factor of two of the paper.
    assert 160 < s3 < 650
    assert 270 < sdb < 1100
    assert 18 < sqs < 75
