"""Table 1 — properties comparison under crash injection.

Paper: data-coupling is not provided by P1/P2 but is (eventually) by P3;
multi-object causal ordering holds for all three; efficient query holds
for P2/P3 only.
"""

from repro.bench.experiments import table1_properties


def test_table1_properties(once, benchmark):
    result = once(benchmark, table1_properties)
    print("\n" + result.render())

    matrix = result.matrix
    assert matrix.get("p1", "provenance-data-coupling") is False
    assert matrix.get("p2", "provenance-data-coupling") is False
    assert matrix.get("p3", "provenance-data-coupling") is True
    for protocol in ("p1", "p2", "p3"):
        assert matrix.get(protocol, "multi-object-causal-ordering") is True
    assert matrix.get("p1", "efficient-query") is False
    assert matrix.get("p2", "efficient-query") is True
    assert matrix.get("p3", "efficient-query") is True
