"""Figure 3 — the Blast upload-only microbenchmark on EC2 and UML.

Paper: the overheads over plain S3fs are 32.6 % (P3, the lowest) to
78.9 % (P2, the highest), with P1 dominating (beating) P2; the UML run
preserves the relative pattern.
"""

from repro.bench.experiments import fig3_microbenchmark
from repro.bench.reporting import write_bench_json


def test_fig3_microbenchmark(once, benchmark):
    result = once(benchmark, fig3_microbenchmark)
    print("\n" + result.render())
    write_bench_json(
        "fig3_microbenchmark",
        {
            env_name: {
                config: {
                    "elapsed_seconds": r.elapsed_seconds,
                    "operations": r.operations,
                    "bytes_transmitted": r.bytes_transmitted,
                    "cost_usd": r.cost_usd,
                }
                for config, r in per_config.items()
            }
            for env_name, per_config in result.results.items()
        },
        telemetry=result.telemetry,
    )

    for env_name, per_config in result.results.items():
        base = per_config["s3fs"]
        p1 = per_config["p1"].overhead_vs(base)
        p2 = per_config["p2"].overhead_vs(base)
        p3 = per_config["p3"].overhead_vs(base)
        # P3 is the cheapest protocol; P1 dominates P2; P2 is the worst.
        assert p3 < p1 < p2, (env_name, p1, p2, p3)
        # Overheads are material but bounded (paper: ~33 % to ~79 %).
        assert 0.05 < p3 < 0.60, env_name
        assert 0.30 < p2 < 1.20, env_name
        # All protocols transmit barely more than the baseline (Table 3's
        # <1 % data overhead).
        for config in ("p1", "p2", "p3"):
            extra = (
                per_config[config].bytes_transmitted / base.bytes_transmitted - 1.0
            )
            assert extra < 0.02, (env_name, config, extra)
