"""Commit lag over virtual time — the simulation kernel's experiment.

Beyond the paper: §4.3.3 argues the commit daemon "operates
asynchronously" and excludes its time from elapsed measurements, but the
phased driver could never *show* the asynchrony.  On the kernel,
concurrent fleet clients log P3 transactions into a shared WAL queue
while in-loop commit daemons poll it; the WAL backlog curve and each
transaction's commit lag are measured on the virtual clock, and adding a
second daemon visibly shortens the drain.
"""

from repro.bench.experiments import commit_lag_experiment
from repro.bench.reporting import write_bench_json


def test_commit_lag_over_virtual_time(once, benchmark):
    result = once(
        benchmark,
        commit_lag_experiment,
        clients=4,
        files_per_client=5,
        daemons=1,
        seed=0,
    )
    print("\n" + result.render())
    print(
        "results json:",
        write_bench_json(
            "commit_lag", result.as_json(), telemetry=result.telemetry
        ),
    )

    # ≥ 2 concurrent clients and ≥ 1 in-loop daemon actually ran.
    assert result.clients >= 2
    assert result.daemons >= 1

    # Every logged transaction eventually committed.
    assert result.committed == result.flushes

    # The backlog was real: the queue was non-empty while clients ran,
    # and drained to empty by the end.
    assert result.max_queue_depth > 0
    assert result.samples[-1].queue_depth == 0

    # Commit lag is positive for every transaction — the daemon ran
    # *behind* the clients, which the phased driver could not express.
    assert result.lags and all(lag > 0 for lag in result.lags)

    # Determinism contract: same seed, same process set => identical
    # BENCH JSON, bit for bit.
    replay = commit_lag_experiment(
        clients=4, files_per_client=5, daemons=1, seed=0
    )
    assert replay.as_json() == result.as_json()
    assert replay.telemetry == result.telemetry


def test_second_daemon_shortens_drain(once, benchmark):
    solo = commit_lag_experiment(
        clients=4, files_per_client=4, daemons=1, seed=3
    )
    duo = once(
        benchmark,
        commit_lag_experiment,
        clients=4,
        files_per_client=4,
        daemons=2,
        seed=3,
    )
    print("\n" + duo.render())
    assert solo.committed == duo.committed == solo.flushes
    # Two daemons polling the same queue drain the same fleet sooner.
    assert duo.elapsed_seconds < solo.elapsed_seconds
