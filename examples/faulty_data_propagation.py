#!/usr/bin/env python3
"""Use case: detect and contain faulty data propagation (paper §2.2).

A miscalibrated reduction tool processes one batch of a multi-stage
pipeline.  Provenance answers the incident-response question: *which
downstream products were derived — directly or transitively — from the
bad tool's output?*  That is exactly the paper's Q4 (full descendant
closure), run here against the SimpleDB backend.

Run:  python examples/faulty_data_propagation.py
"""

from repro.cloud import CloudAccount
from repro.core import PAS3fs, ProtocolP3
from repro.provenance.syscalls import TraceBuilder
from repro.query import SimpleDBQueryEngine

MOUNT = "/mnt/s3/"


def main() -> None:
    account = CloudAccount(seed=23)
    protocol = ProtocolP3(account)
    fs = PAS3fs(account, protocol)
    trace = TraceBuilder()

    # Three reduction batches; batch 1 uses the miscalibrated tool.
    for batch in range(3):
        tool = "calibrate-v2-broken" if batch == 1 else "calibrate-v1"
        reduce_pid = trace.spawn(
            tool,
            argv=[tool, f"--batch={batch}"],
            exec_path=f"/opt/tools/{tool}",
        )
        trace.read(reduce_pid, f"/local/raw/batch-{batch}.dat", 1024 * 1024)
        trace.compute(reduce_pid, 1.0)
        reduced = f"{MOUNT}pipeline/reduced-{batch}.dat"
        trace.write_close(reduce_pid, reduced, 512 * 1024)
        trace.exit(reduce_pid)

        # Downstream: per-batch analysis and a plot.
        analyze = trace.spawn(
            "analyze", argv=["analyze", reduced], exec_path="/opt/tools/analyze"
        )
        trace.read(analyze, reduced, 512 * 1024)
        trace.compute(analyze, 0.5)
        stats = f"{MOUNT}pipeline/stats-{batch}.json"
        trace.write_close(analyze, stats, 16 * 1024)
        trace.exit(analyze)

        plot = trace.spawn(
            "plot", argv=["plot", stats], exec_path="/opt/tools/plot"
        )
        trace.read(plot, stats, 16 * 1024)
        trace.compute(plot, 0.3)
        trace.write_close(plot, f"{MOUNT}pipeline/plot-{batch}.png", 64 * 1024)
        trace.exit(plot)

    # A cross-batch report that mixes everything: also contaminated.
    report = trace.spawn(
        "summarize", argv=["summarize", "--all"], exec_path="/opt/tools/summarize"
    )
    for batch in range(3):
        trace.read(report, f"{MOUNT}pipeline/stats-{batch}.json", 16 * 1024)
    trace.compute(report, 0.4)
    trace.write_close(report, f"{MOUNT}pipeline/report.pdf", 256 * 1024)
    trace.exit(report)

    fs.run(trace.trace)
    fs.finalize()
    account.settle()

    engine = SimpleDBQueryEngine(account)
    tainted, stats = engine.q4_all_descendants("calibrate-v2-broken")
    print(
        f"descendants of the broken tool's output "
        f"(Q4 took {stats.elapsed_seconds:.2f}s, {stats.operations} requests):"
    )
    index, _ = engine.q1_all_provenance()
    for ref in tainted:
        names = index.attributes(ref).get("name", ["?"])
        print(f"  {ref}  ->  {names[0]}")

    names = {index.attributes(r).get("name", ["?"])[0] for r in tainted}
    assert f"{MOUNT}pipeline/report.pdf" in names, "cross-batch report must be tainted"
    assert f"{MOUNT}pipeline/plot-0.png" not in names, "batch 0 must be clean"
    print("\nbatch 1's products and the cross-batch report are tainted;")
    print("batches 0 and 2 are provably clean — no blanket recall needed.")


if __name__ == "__main__":
    main()
