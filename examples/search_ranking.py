#!/usr/bin/env python3
"""Use case: provenance-improved search (paper §2.2, after Shah et al.).

A user archives a project to the cloud and later searches for "figures
from the kinetics experiment".  Content search alone finds the notebook
that mentions "kinetics" — but the figures themselves are binary PNGs
with no matching text.  Spreading weight across the provenance graph
surfaces them, because they were *derived from* the matching notebook's
pipeline.

Run:  python examples/search_ranking.py
"""

from repro.cloud import CloudAccount
from repro.core import PAS3fs, ProtocolP2
from repro.provenance.syscalls import TraceBuilder
from repro.query import SimpleDBQueryEngine, provenance_ranked_search

MOUNT = "/mnt/s3/"


def main() -> None:
    account = CloudAccount(seed=5)
    protocol = ProtocolP2(account)
    fs = PAS3fs(account, protocol)
    trace = TraceBuilder()

    # The kinetics pipeline: notebook -> fit -> two figures.
    fit = trace.spawn(
        "fit-kinetics", argv=["fit", "kinetics.ipynb"], exec_path="/usr/bin/fit"
    )
    notebook = f"{MOUNT}proj/kinetics.ipynb"
    trace.write_close(fit, notebook, 96 * 1024)
    trace.read(fit, notebook, 96 * 1024)
    trace.compute(fit, 0.8)
    model = f"{MOUNT}proj/kinetics-model.json"
    trace.write_close(fit, model, 4 * 1024)
    trace.exit(fit)

    plot = trace.spawn("plot", argv=["plot", model], exec_path="/usr/bin/plot")
    trace.read(plot, model, 4 * 1024)
    trace.compute(plot, 0.3)
    fig1 = f"{MOUNT}proj/rate-curve.png"
    fig2 = f"{MOUNT}proj/residuals.png"
    trace.write_close(plot, fig1, 128 * 1024)
    trace.write_close(plot, fig2, 96 * 1024)
    trace.exit(plot)

    # Unrelated clutter in the same archive.
    misc = trace.spawn("backup", argv=["backup"], exec_path="/usr/bin/backup")
    for index in range(5):
        trace.write_close(misc, f"{MOUNT}misc/photo-{index}.png", 512 * 1024)
    trace.exit(misc)

    fs.run(trace.trace)
    fs.finalize()
    account.settle()

    # Fetch the provenance once (Q1) and rank locally.
    engine = SimpleDBQueryEngine(account)
    index, _ = engine.q1_all_provenance()

    # Content search: only the notebook mentions "kinetics".
    content_hits = {
        ref: 1.0
        for ref in index.refs()
        if any("kinetics" in n for n in index.attributes(ref).get("name", []))
    }
    print("content-only hits:")
    for ref in content_hits:
        print(f"  {index.attributes(ref).get('name', ['?'])[0]}")

    ranked = provenance_ranked_search(index, content_hits, iterations=3, top_k=8)
    print("\nprovenance-ranked results:")
    names = []
    for ref, weight in ranked:
        name = index.attributes(ref).get("name", ["?"])[0]
        names.append(name)
        print(f"  {weight:6.3f}  {name}")

    assert fig1 in names and fig2 in names, "figures must surface via provenance"
    assert f"{MOUNT}misc/photo-0.png" not in names[:4], "clutter stays down"
    print("\nthe binary figures surface through their derivation chain, while")
    print("unrelated archive clutter stays at the bottom — Shah's result on")
    print("cloud-stored provenance.")


if __name__ == "__main__":
    main()
