#!/usr/bin/env python3
"""Chaos recovery: kill the commit daemon on a schedule, respawn it,
and get byte-identical answers anyway.

The paper's recovery argument for P3 (§4.3.3) is one sentence: "if the
machine running the commit daemon crashes, any other machine can run a
daemon against the same queue and finish the job."  This walkthrough
runs that sentence as a *schedule*, not a single staged crash:

1. A small fleet of clients logs P3 transactions into the shared SQS
   write-ahead log while one commit daemon drains it — all interleaved
   on the simulation kernel's virtual clock.
2. A recurring crash kills the daemon every 15 virtual seconds —
   whatever it is doing, including mid-commit — and a respawn policy
   brings up a *fresh* ``CommitDaemon`` two seconds later, resuming
   from the queue.  The dead daemon's received-but-undeleted messages
   reappear after SQS's visibility timeout; re-issued writes are
   set-semantics no-ops.
3. The same fleet runs again with no faults at all, and the Q1 answers
   (every provenance row in the store) are compared byte for byte.

See docs/faults.md for every crash point and schedule knob.

Run:  PYTHONPATH=src python examples/chaos_recovery.py
"""

import random

from repro.cloud.account import CloudAccount
from repro.core import ProtocolP3
from repro.core.commit_daemon import CommitDaemon
from repro.sim import SimKernel
from repro.workloads.fleet import make_fleet, protocol_client_process

CLIENTS = 2
FILES_PER_CLIENT = 3
CRASH_EVERY_S = 15.0
RESPAWN_DELAY_S = 2.0


def run_fleet(chaos: bool):
    """One fleet run; returns (Q1 rows, crash/respawn counts)."""
    account = CloudAccount(seed=0)
    protocol = ProtocolP3(account, client_id="fleet-shared")
    fleet = make_fleet(
        clients=CLIENTS, files_per_client=FILES_PER_CLIENT,
        file_bytes=16 * 1024, extra_attributes=8, seed=0,
    )
    kernel = SimKernel(account)
    daemons = []

    def fresh_daemon():
        daemon = CommitDaemon(
            account=account,
            queue_url=protocol.queue_url,
            bucket=protocol.bucket,
            domain=protocol.domain,
            router=protocol.router,
        )
        daemons.append(daemon)
        return daemon.process(poll_interval=1.0)

    kernel.spawn(fresh_daemon(), name="daemon-0", daemon=True)

    crash = None
    if chaos:
        crash = account.faults.schedule.crash_every(
            "daemon-0", every_s=CRASH_EVERY_S, start_at=5.0
        )
        account.faults.schedule.respawn(
            "daemon-0", fresh_daemon, delay_s=RESPAWN_DELAY_S
        )

    master = random.Random(0)
    for client in fleet:
        rng = random.Random(master.randrange(1 << 30))
        kernel.spawn(
            protocol_client_process(protocol, client, 2.0, rng),
            name=client.client_id,
        )

    kernel.run()  # clients to completion
    while account.sqs.pending_count(protocol.queue_url) > 0:
        kernel.run(until=account.now + 5.0)
    kernel.run(until=account.now + 2.0)  # commit bookkeeping beat
    account.settle(120.0)  # let eventual consistency quiesce

    rows = account.simpledb.select(f"select * from {protocol.domain}")
    committed = sum(d.committed_count() for d in daemons)
    return {
        "rows": rows,
        "committed": committed,
        "flushes": CLIENTS * FILES_PER_CLIENT,
        "incarnations": len(daemons),
        "crashes": len(crash.fired_at) if crash else 0,
        "elapsed": account.now,
    }


def main() -> None:
    print("=== run 1: no faults (the reference) ===")
    steady = run_fleet(chaos=False)
    print(
        f"committed {steady['committed']}/{steady['flushes']} transactions, "
        f"1 daemon incarnation, {len(steady['rows'])} provenance rows"
    )

    print(f"\n=== run 2: kill daemon-0 every {CRASH_EVERY_S:.0f}s, "
          f"respawn a fresh daemon {RESPAWN_DELAY_S:.0f}s later ===")
    chaos = run_fleet(chaos=True)
    print(
        f"committed {chaos['committed']}/{chaos['flushes']} transactions "
        f"through {chaos['incarnations']} daemon incarnations "
        f"({chaos['crashes']} scheduled kills)"
    )

    print("\n=== the recovery invariant ===")
    identical = repr(steady["rows"]) == repr(chaos["rows"])
    print(f"Q1 answers byte-identical to the uncrashed run: {identical}")
    if not identical:
        raise SystemExit("recovery invariant violated!")
    print("\nsample rows (same bytes in both runs):")
    for name, attributes in chaos["rows"][:3]:
        flat = ", ".join(
            f"{a}={vals[0][:24]}" for a, vals in sorted(attributes.items())[:3]
        )
        print(f"  {name}: {flat}")
    print(
        "\nThe WAL queue, not any daemon's memory, is the authority: "
        "every kill landed between or inside commits, SQS redelivered "
        "what the dead incarnation had received, and the re-issued "
        "writes were idempotent."
    )


if __name__ == "__main__":
    main()
