#!/usr/bin/env python3
"""Use case: debugging experimental results (paper §2.2, SDSS scenario).

Administrators silently upgrade the JVM on the compute image; a user's
script starts producing flawed output.  Without provenance the user
searches for clues by hand; with provenance, diffing the new output's
ancestry against an older run's makes the change jump out.

Run:  python examples/sdss_debugging.py
"""

from repro.cloud import CloudAccount
from repro.core import PAS3fs, ProtocolP2
from repro.provenance.syscalls import TraceBuilder
from repro.query import SimpleDBQueryEngine

MOUNT = "/mnt/s3/"


def run_pipeline(trace: TraceBuilder, run_id: int, jvm: str) -> str:
    """One SDSS reduction run: a JVM-hosted reducer produces a catalog."""
    out = f"{MOUNT}sdss/run-{run_id}/catalog.fits"
    pid = trace.spawn(
        "java",
        argv=["java", "-jar", "reduce.jar", f"--run={run_id}"],
        env=(("JAVA_HOME", jvm), ("SDSS_CAL", "/opt/sdss/cal-2009.11")),
        exec_path=f"{jvm}/bin/java",
    )
    trace.read(pid, "/local/sdss/imaging-camera.raw", 8 * 1024 * 1024)
    trace.read(pid, "/local/sdss/photometric-telescope.raw", 2 * 1024 * 1024)
    trace.compute(pid, 3.0)
    trace.write_close(pid, out, 4 * 1024 * 1024)
    trace.exit(pid)
    return out


def main() -> None:
    account = CloudAccount(seed=11)
    protocol = ProtocolP2(account)
    fs = PAS3fs(account, protocol)

    trace = TraceBuilder()
    # Run 1: the good output, on the old JVM.
    good = run_pipeline(trace, 1, "/opt/jvm-1.5.0_11")
    # ... administrators upgrade the image between runs ...
    # Run 2: the flawed output, on the silently upgraded JVM.
    bad = run_pipeline(trace, 2, "/opt/jvm-1.6.0_03")

    fs.run(trace.trace)
    fs.finalize()
    account.settle()

    engine = SimpleDBQueryEngine(account)
    index, _ = engine.q1_all_provenance()

    def ancestry_attributes(path):
        """Merge the attributes of an output's full ancestor closure —
        the per-process argv/env live on the ancestor process nodes."""
        merged = {}
        targets = [r for r in index.find("name", path)]
        for target in targets:
            for ref in {target} | index.ancestors(target):
                for key, values in index.attributes(ref).items():
                    merged.setdefault(key, set()).update(values)
        return merged

    good_prov = ancestry_attributes(good)
    bad_prov = ancestry_attributes(bad)

    print("provenance diff between the good and the flawed catalog's ancestry:")
    differences = 0
    for key in sorted(set(good_prov) | set(bad_prov)):
        # Dependency references always differ run-to-run; environment,
        # arguments, and executables are where configuration drift shows.
        if key in ("input", "version-of", "forkparent", "sha1", "object", "pid"):
            continue
        old = good_prov.get(key, set())
        new = bad_prov.get(key, set())
        if old != new:
            differences += 1
            print(f"  {key}:")
            for value in sorted(old - new):
                print(f"    - {value}")
            for value in sorted(new - old):
                print(f"    + {value}")
    assert differences > 0, "the JVM upgrade must be visible in the ancestry"
    print(f"\n{differences} attribute(s) changed between runs — the JVM"
          " upgrade is immediately visible, exactly the paper's scenario.")


if __name__ == "__main__":
    main()
