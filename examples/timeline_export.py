#!/usr/bin/env python3
"""Timeline export: a crash+respawn chaos run as a Perfetto timeline.

Every kernel run records telemetry on the virtual clock: process slices
per charged resume, ``fault.*`` instants for every schedule action,
record-lifecycle spans for each P3 transaction, and scraped metric
series.  This walkthrough runs a small fleet under a recurring
daemon-crash schedule and exports the whole run as Chrome trace-event
JSON — load the output at https://ui.perfetto.dev (or
``chrome://tracing``) and read it like a flight recorder:

* one lane per process *incarnation* — the killed ``daemon-0`` and its
  respawned ``daemon-0#1`` sit side by side;
* the ``faults`` lane carries full-height markers at every kill,
  respawn, and degradation edge;
* each transaction is an async span from client emit to visibility,
  with ticks at ``wal.logged``, ``daemon.dequeue``, ``commit.done``, …;
* counter tracks chart queue depth, commits, and billing over time.

The run is deterministic, so the committed artifacts
(``bench-results/TRACE_chaos_crash_respawn.json`` and the JSONL event
log next to it) regenerate byte-identically from the same seed.

Run:  PYTHONPATH=src python examples/timeline_export.py
"""

import random

from repro.cloud.account import CloudAccount
from repro.core import ProtocolP3
from repro.core.commit_daemon import CommitDaemon
from repro.obs import write_chrome_trace
from repro.sim import SimKernel
from repro.workloads.fleet import make_fleet, protocol_client_process, FleetWatch

SEED = 0
CLIENTS = 2
FILES_PER_CLIENT = 3
CRASH_EVERY_S = 15.0
RESPAWN_DELAY_S = 2.0
TRACE_PATH = "bench-results/TRACE_chaos_crash_respawn.json"
EVENTS_PATH = "bench-results/EVENTS_chaos_crash_respawn.jsonl"


def main() -> None:
    account = CloudAccount(seed=SEED)
    protocol = ProtocolP3(account, client_id="fleet-shared")
    fleet = make_fleet(
        clients=CLIENTS, files_per_client=FILES_PER_CLIENT,
        file_bytes=16 * 1024, extra_attributes=8, seed=SEED,
    )
    kernel = SimKernel(account)
    kernel.scrape_every(5.0)
    watch = FleetWatch()
    daemons = []

    def fresh_daemon():
        daemon = CommitDaemon(
            account=account,
            queue_url=protocol.queue_url,
            bucket=protocol.bucket,
            domain=protocol.domain,
            router=protocol.router,
        )
        daemons.append(daemon)
        return daemon.process(poll_interval=1.0)

    kernel.spawn(fresh_daemon(), name="daemon-0", daemon=True)
    account.faults.schedule.crash_every(
        "daemon-0", every_s=CRASH_EVERY_S, start_at=8.0
    )
    account.faults.schedule.respawn(
        "daemon-0", fresh_daemon, delay_s=RESPAWN_DELAY_S
    )

    master = random.Random(SEED)
    for client in fleet:
        rng = random.Random(master.randrange(1 << 30))
        kernel.spawn(
            protocol_client_process(protocol, client, 2.0, rng, watch),
            name=client.client_id,
        )

    kernel.run()  # clients to completion (daemons keep polling)
    while account.sqs.pending_count(protocol.queue_url) > 0:
        kernel.run(until=account.now + 5.0)
    kernel.run(until=account.now + 2.0)  # let commit bookkeeping settle

    committed = sum(d.committed_count() for d in daemons)
    crashes = account.telemetry.events.of_kind("fault.crash")
    respawns = account.telemetry.events.of_kind("fault.respawn")
    lags = dict(account.telemetry.tracer.commit_lags())

    trace_path = write_chrome_trace(account.telemetry, TRACE_PATH)
    events_path = account.telemetry.events.write_jsonl(EVENTS_PATH)

    print(f"committed {committed} transactions across {len(daemons)} "
          f"daemon incarnation(s)")
    print(f"chaos: {len(crashes)} kills, {len(respawns)} respawns")
    for event in crashes:
        print(f"  t={event.t:8.3f}s  fault.crash    "
              f"{event['target']}#{event['incarnation']}")
    for event in respawns:
        print(f"  t={event.t:8.3f}s  fault.respawn  "
              f"{event['target']}#{event['incarnation']}")
    worst = max(lags.values()) if lags else 0.0
    print(f"trace-derived commit lag: {len(lags)} spans, "
          f"worst {worst:.3f}s")
    print(f"timeline:  {trace_path}  (load at https://ui.perfetto.dev)")
    print(f"event log: {events_path}")


if __name__ == "__main__":
    main()
