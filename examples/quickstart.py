#!/usr/bin/env python3
"""Quickstart: store data + provenance in the (simulated) cloud.

Builds a tiny two-process pipeline, runs it through PA-S3fs with protocol
P3 (the paper's most robust protocol: S3 + SimpleDB + an SQS write-ahead
log), drains the commit daemon, and then queries the provenance back.

Run:  python examples/quickstart.py
"""

from repro.cloud import CloudAccount
from repro.core import PAS3fs, ProtocolP3
from repro.provenance.syscalls import TraceBuilder
from repro.query import SimpleDBQueryEngine

MOUNT = "/mnt/s3/"


def main() -> None:
    # 1. A cloud account: virtual clock + S3 + SimpleDB + SQS + billing.
    account = CloudAccount(seed=7)

    # 2. An application: sort reads raw data and writes a sorted copy;
    #    report reads the sorted copy and writes a summary.
    trace = TraceBuilder()
    sort = trace.spawn("sort", argv=["sort", "raw.csv"], exec_path="/usr/bin/sort")
    trace.read(sort, "/local/raw.csv", 64 * 1024)
    trace.compute(sort, 0.5)
    trace.write_close(sort, f"{MOUNT}out/sorted.csv", 64 * 1024)
    report = trace.spawn(
        "report", argv=["report", "--html"], parent_pid=sort, exec_path="/usr/bin/report"
    )
    trace.read(report, f"{MOUNT}out/sorted.csv", 64 * 1024)
    trace.compute(report, 0.2)
    trace.write_close(report, f"{MOUNT}out/summary.html", 8 * 1024)

    # 3. Run it through PA-S3fs over protocol P3.
    protocol = ProtocolP3(account)
    fs = PAS3fs(account, protocol)
    result = fs.run(trace.trace)
    fs.finalize()  # commit daemon drains the WAL asynchronously
    account.settle()  # let eventual consistency quiesce

    print(f"elapsed          : {result.elapsed_seconds:.1f} virtual seconds")
    print(f"cloud requests   : {result.operations}")
    print(f"bytes uploaded   : {result.bytes_transmitted}")
    print(f"bill so far      : ${account.billing.cost():.6f}")

    # 4. Query the provenance: what produced summary.html?
    engine = SimpleDBQueryEngine(account)
    attributes, stats = engine.q2_object_provenance(f"{MOUNT}out/summary.html")
    print(f"\nprovenance of summary.html (query took {stats.elapsed_seconds:.3f}s):")
    for attribute in sorted(attributes):
        for value in attributes[attribute]:
            print(f"  {attribute:12s} = {value[:70]}")

    outputs, _ = engine.q3_direct_outputs("sort")
    print(f"\nfiles directly output by 'sort': {[str(r) for r in outputs]}")


if __name__ == "__main__":
    main()
