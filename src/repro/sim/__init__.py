"""The discrete-event simulation kernel.

The pre-kernel execution model was *phased*: a client ran to completion
(each request batch advancing the shared clock), then the commit daemon
was hand-pumped via ``drain()``.  The kernel replaces that with an event
loop over scheduled process activations: clients, commit/cleaner
daemons, ingest gateways, and monitors all run as generator-based
processes that ``yield`` effects (:class:`~repro.sim.events.Delay`,
:class:`~repro.sim.events.Batch`) and genuinely overlap on the virtual
clock — commit lag, WAL backlog, and mid-commit takeover become
observable.

Two drivers execute the same effect plans:

- :class:`~repro.sim.kernel.SimKernel` — concurrent: each process has
  its own time domain; the kernel interleaves activations in virtual
  time,
- :func:`~repro.sim.compat.run_plan_phased` — the compatibility mode:
  one plan runs to completion with the pre-kernel call-and-advance
  semantics, reproducing the existing experiments' numbers exactly.
"""

from repro.sim.compat import run_plan_phased
from repro.sim.events import Batch, Delay
from repro.sim.kernel import Process, ProcessState, SimKernel

__all__ = [
    "Batch",
    "Delay",
    "Process",
    "ProcessState",
    "SimKernel",
    "run_plan_phased",
]
