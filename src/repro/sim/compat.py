"""The phased compatibility driver.

Runs one effect plan to completion with the pre-kernel call-and-advance
semantics: ``Delay`` advances the shared clock directly, ``Batch``
executes through the scheduler with the caller's ``advance_clock``
policy.  Methods that predate the kernel (``CommitDaemon.commit``,
``IngestGateway.flush_pending``) are thin wrappers over their plan plus
this driver, which is what guarantees the compatibility mode reproduces
the phased experiments' numbers exactly — there is only one copy of the
logic.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.cloud.account import CloudAccount
from repro.errors import CloudServiceError

from repro.sim.events import Batch, Delay


def run_plan_phased(
    account: CloudAccount,
    plan: Generator,
    advance_clock: bool = True,
) -> Any:
    """Drive ``plan`` synchronously; returns the generator's return value.

    Args:
        account: supplies the clock and scheduler.
        plan: a generator yielding :class:`Delay` / :class:`Batch`
            effects.  Batch results are sent back in; cloud-service
            errors raised while executing a batch are thrown back into
            the plan at the yield point (so retry loops written around
            ``yield Batch(...)`` work identically under both drivers).
        advance_clock: whether batches advance the shared clock — the
            pre-kernel accounting knob (clients pass True; daemons whose
            time the paper excludes pass False).  Delays always advance
            the clock, matching the pre-kernel code they replace.
    """
    value: Any = None
    exc: Optional[BaseException] = None
    while True:
        try:
            effect = plan.throw(exc) if exc is not None else plan.send(value)
        except StopIteration as stop:
            return stop.value
        value, exc = None, None
        if isinstance(effect, Delay):
            account.clock.advance(effect.seconds)
        elif isinstance(effect, Batch):
            try:
                value = account.scheduler.execute_batch(
                    effect.requests,
                    effect.connections,
                    advance_clock=advance_clock and effect.charge,
                )
            except CloudServiceError as error:
                exc = error
        else:
            raise TypeError(f"plan yielded unknown effect {effect!r}")
