"""The effect vocabulary shared by every simulated process.

A *process* is a Python generator that yields effects instead of calling
the scheduler directly.  The same generator can then be driven two ways:

- by :class:`~repro.sim.kernel.SimKernel`, which interleaves many
  processes on the virtual clock (the concurrent execution model), or
- by :func:`~repro.sim.compat.run_plan_phased`, which executes one plan
  to completion with the pre-kernel call-and-advance semantics (the
  compatibility mode).

Effects deliberately mirror what the phased code already did — a
``Delay`` is a ``clock.advance``, a ``Batch`` is a
``scheduler.execute_batch`` — so refactoring a phased method into a plan
is mechanical and provably equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cloud.network import Request


@dataclass
class Delay:
    """Suspend the process for ``seconds`` of virtual time.

    Under the kernel the process is rescheduled at ``now + seconds`` and
    the time is accounted as idle in its time domain.  Under the phased
    driver the shared clock advances by ``seconds`` (the pre-kernel
    behaviour of serial client-side work such as marshalling CPU or the
    commit daemon's propagation backoff).
    """

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError(f"cannot delay by negative seconds={self.seconds}")


@dataclass
class Batch:
    """Execute a request batch; the process resumes with its
    :class:`~repro.cloud.network.BatchResult`.

    Attributes:
        requests: the prepared cloud requests.
        connections: parallel connections for the batch.
        charge: whether the batch's makespan occupies the *process's own*
            timeline.  Under the kernel a charged batch resumes the
            process at the batch's finish time (busy time in its domain);
            an uncharged batch resumes it immediately — work applied and
            billed, but free for the issuing process, which is how the
            legacy ``advance_clock=False`` daemon accounting maps onto a
            per-process time domain.  The phased driver instead maps
            ``charge`` onto its own ``advance_clock`` policy (see
            :func:`~repro.sim.compat.run_plan_phased`).
    """

    requests: List["Request"]
    connections: int = 32
    charge: bool = True
