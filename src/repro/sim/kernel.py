"""The discrete-event simulation kernel.

:class:`SimKernel` owns an event heap of scheduled process activations
over one :class:`~repro.cloud.account.CloudAccount`'s virtual clock and
makespan scheduler (the clock and scheduler are the kernel's services —
processes never touch them directly).  A process is a generator yielding
:class:`~repro.sim.events.Delay` and :class:`~repro.sim.events.Batch`
effects; the kernel interprets each effect, schedules the resume, and
sends the result back in.

Semantics:

- The heap orders activations by ``(time, sequence)``; the sequence
  number is assigned in program order, so runs are deterministic — a
  fixed seed plus a fixed process set replays bit for bit.
- A charged ``Batch`` is placed by the shared scheduler starting at the
  process's current time and the process resumes at the batch's finish
  time; the *global* clock only ever moves when the kernel pops the next
  event, so other processes scheduled in between run in between — this
  is what makes daemons, clients, and monitors genuinely overlap.
- Shared-resource contention (client NIC, per-domain SimpleDB indexer)
  is inherited from the scheduler: a daemon that saturates a resource
  delays the requests placed after it in event order.
- Requests within one batch are applied when the batch is placed;
  cross-process visibility is therefore resolved at *activation*
  granularity.  Processes that interact through shared service state
  (e.g. a daemon polling a queue) should issue small batches on an
  interval, which is also how the real daemons behave.
- Crashes: a :class:`~repro.errors.ClientCrashError` escaping a process
  (an armed crash point firing inside its code) marks the process
  ``CRASHED`` and abandons its in-memory state — everything already
  applied to the services survives, exactly a machine crash.  Timed
  crashes (:meth:`~repro.cloud.faults.FaultPlan.arm_timed_crash`,
  "crash client 7 at t=42s") are materialised as kernel events that kill
  the target process at the armed virtual time, even mid-sleep.
- Chaos schedules: the kernel is the interpreter for
  :class:`~repro.cloud.faults.FaultSchedule` (``account.faults.schedule``).
  Recurring crashes become self-rescheduling kill events; degradation
  windows swap the scheduler's environment (and SQS's duplicate-delivery
  rate) at ``t1`` and restore the saved baseline at ``t2``; a respawn
  policy reacts to *any* death of its target — timed, recurring, or an
  in-code crash point — by spawning the policy's factory-built
  replacement under the same name after ``delay_s``.  Respawned
  processes share their predecessor's name (crash schedules keep
  applying); :meth:`SimKernel.processes_named` lists every incarnation.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field, replace as dc_replace
from typing import Any, Callable, Generator, List, Optional

from repro.cloud.account import CloudAccount
from repro.cloud.clock import TimeDomain
from repro.cloud.faults import DegradationWindow, RecurringCrash, RespawnRecord
from repro.errors import ClientCrashError, CloudServiceError

from repro.sim.events import Batch, Delay


class ProcessState(enum.Enum):
    """Lifecycle of a kernel process."""

    READY = "ready"
    WAITING = "waiting"
    DONE = "done"
    CRASHED = "crashed"


class Process:
    """One generator-based process and its per-process time domain."""

    def __init__(
        self, name: str, generator: Generator, daemon: bool, incarnation: int = 0
    ):
        self.name = name
        self.generator = generator
        #: Daemon processes (commit/cleaner daemons, gateways, monitors)
        #: do not keep the simulation alive: ``run()`` returns once every
        #: non-daemon process has finished.
        self.daemon = daemon
        #: 0 for the first process under this name; respawns count up.
        self.incarnation = incarnation
        self.state = ProcessState.READY
        self.domain = TimeDomain(name)
        #: Return value of the generator once DONE.
        self.result: Any = None
        #: The crash that killed the process, if CRASHED.
        self.crash: Optional[ClientCrashError] = None
        self._pending_value: Any = None
        self._pending_exc: Optional[BaseException] = None

    @property
    def alive(self) -> bool:
        return self.state in (ProcessState.READY, ProcessState.WAITING)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Process({self.name!r}, {self.state.value})"


@dataclass(order=True)
class _Event:
    """One heap entry: activate ``process``, fire a timed crash, or run
    a schedule action (recurring crash, window edge, respawn)."""

    time: float
    seq: int
    process: Optional[Process] = field(compare=False, default=None)
    crash_target: Optional[str] = field(compare=False, default=None)
    action: Optional[Callable[[float], None]] = field(compare=False, default=None)


class SimKernel:
    """Interleaves generator processes on one account's virtual clock."""

    def __init__(self, account: CloudAccount):
        self.account = account
        #: Kernel services, adopted from the account: every process's
        #: time flows through this clock, every batch through this
        #: scheduler.
        self.clock = account.clock
        self.scheduler = account.scheduler
        #: The account's telemetry hub; the kernel feeds its event log
        #: (process lifecycle, fault injections) and its scraper drives
        #: the metrics time series.  Purely observational — disabled
        #: telemetry leaves the schedule byte-identical.
        self.telemetry = account.telemetry
        self._heap: List[_Event] = []
        self._seq = itertools.count()
        self._processes: List[Process] = []

    # -- spawning ------------------------------------------------------------

    def spawn(
        self,
        generator: Generator,
        name: Optional[str] = None,
        at: Optional[float] = None,
        daemon: bool = False,
    ) -> Process:
        """Register a process; its first activation is at ``at``
        (default: now).  Timed crashes armed against ``name`` are
        materialised as kernel events here."""
        resolved = name if name is not None else f"proc-{len(self._processes)}"
        process = Process(
            name=resolved,
            generator=generator,
            daemon=daemon,
            incarnation=sum(1 for p in self._processes if p.name == resolved),
        )
        start = self.clock.now if at is None else at
        if start < self.clock.now:
            raise ValueError(
                f"cannot spawn {process.name!r} in the past "
                f"(at={start}, now={self.clock.now})"
            )
        self._processes.append(process)
        self.telemetry.events.emit(
            "proc.spawn",
            start,
            name=process.name,
            incarnation=process.incarnation,
            daemon=daemon,
        )
        self._push(_Event(start, next(self._seq), process=process))
        self._schedule_timed_crashes(process.name)
        self._schedule_chaos()
        return process

    def _schedule_timed_crashes(self, target: str) -> None:
        for crash in self.account.faults.timed_crashes_for(target):
            if not crash.scheduled and not crash.fired:
                crash.scheduled = True
                self._push(
                    _Event(crash.at, next(self._seq), crash_target=crash.target)
                )

    # -- chaos schedules (FaultSchedule interpretation) ------------------------

    def _schedule_chaos(self) -> None:
        """Materialise pending FaultSchedule entries as heap events
        (idempotent — each entry is marked once scheduled)."""
        schedule = self.account.faults.schedule
        for crash in schedule.recurring:
            if not crash.scheduled and not crash.exhausted():
                crash.scheduled = True
                self._push_recurring(crash)
        for window in schedule.windows:
            if not window.scheduled:
                window.scheduled = True
                self._push(_Event(
                    window.t1, next(self._seq),
                    action=lambda now, w=window: self._open_window(w, now),
                ))
                self._push(_Event(
                    window.t2, next(self._seq),
                    action=lambda now, w=window: self._close_window(w, now),
                ))

    def _push_recurring(self, crash: RecurringCrash) -> None:
        self._push(_Event(
            crash.next_at, next(self._seq),
            action=lambda now, c=crash: self._fire_recurring(c, now),
        ))

    def _fire_recurring(self, crash: RecurringCrash, now: float) -> None:
        crash.fired_at.append(now)
        # Snapshot: killing can respawn a same-named replacement, which
        # must survive this firing (it models a new machine coming up).
        for process in list(self._processes):
            if process.name == crash.target and process.alive:
                self._kill(
                    process,
                    ClientCrashError(f"recurring@{now:.3f}s"),
                    now,
                    source="recurring",
                )
        if not crash.exhausted():
            crash.next_at += crash.every_s
            # If the clock jumped past queued beats (an experiment's
            # settle), fast-forward to the cadence instead of replaying
            # every missed beat as a same-instant kill burst.
            while crash.next_at <= now:
                crash.next_at += crash.every_s
            self._push_recurring(crash)

    def _open_window(self, window: DegradationWindow, now: float) -> None:
        self.telemetry.events.emit(
            "fault.degrade.open",
            now,
            t1=window.t1,
            t2=window.t2,
            latency_scale=window.latency_scale,
            add_latency_s=window.add_latency_s,
            duplicate_delivery_rate=window.duplicate_delivery_rate,
            domain=window.domain,
            item_scale=window.item_scale,
        )
        env = self.scheduler.environment
        window.saved_environment = env
        window.saved_duplicate_rate = self.account.sqs.duplicate_delivery_rate
        self.scheduler.set_environment(dc_replace(
            env,
            extra_latency_s=(
                env.extra_latency_s * window.latency_scale
                + window.add_latency_s
            ),
        ))
        if window.duplicate_delivery_rate is not None:
            self.account.sqs.duplicate_delivery_rate = (
                window.duplicate_delivery_rate
            )
        if window.domain is not None:
            key = f"simpledb:{window.domain}"
            window.saved_item_scale = self.scheduler.pipeline_item_scale(key)
            self.scheduler.set_pipeline_item_scale(
                key, window.saved_item_scale * window.item_scale
            )
        window.applied = True

    def _close_window(self, window: DegradationWindow, now: float) -> None:
        if not window.applied or window.restored:
            return
        self.scheduler.set_environment(window.saved_environment)
        self.account.sqs.duplicate_delivery_rate = window.saved_duplicate_rate
        if window.domain is not None:
            self.scheduler.set_pipeline_item_scale(
                f"simpledb:{window.domain}", window.saved_item_scale
            )
        window.restored = True
        self.telemetry.events.emit(
            "fault.degrade.close", now, t1=window.t1, t2=window.t2
        )

    def _maybe_respawn(self, process: Process, now: float) -> None:
        """Consult the schedule's respawn policy for a freshly dead
        process; spawn the factory-built replacement under the same
        name (and daemon flag) after the policy's delay."""
        policy = self.account.faults.schedule.respawns.get(process.name)
        if policy is None or policy.exhausted():
            return
        delay = policy.delay_for(policy.respawns)
        policy.respawns += 1
        respawn_at = now + delay
        policy.respawned_at.append(respawn_at)
        policy.log.append(
            RespawnRecord(died_at=now, delay_s=delay, scheduled_at=respawn_at)
        )
        replacement = self.spawn(
            policy.factory(),
            name=process.name,
            at=respawn_at,
            daemon=process.daemon,
        )
        self.telemetry.events.emit(
            "fault.respawn",
            respawn_at,
            target=process.name,
            incarnation=replacement.incarnation,
            died_at=now,
            delay_s=delay,
        )

    def every(
        self,
        interval: float,
        fn: Callable[[float], None],
        name: str = "monitor",
        at: Optional[float] = None,
    ) -> Process:
        """Spawn a daemon process calling ``fn(now)`` every ``interval``
        virtual seconds — the sampling hook for over-time metrics."""
        if interval <= 0:
            raise ValueError("interval must be positive")

        def monitor() -> Generator:
            while True:
                fn(self.clock.now)
                yield Delay(interval)

        return self.spawn(monitor(), name=name, at=at, daemon=True)

    def scrape_every(self, interval: float, at: Optional[float] = None) -> Process:
        """Spawn the metrics scraper: samples every registered metric into
        the telemetry time series each ``interval`` virtual seconds."""
        return self.every(
            interval, self.telemetry.scrape, name="metrics-scraper", at=at
        )

    # -- introspection --------------------------------------------------------

    @property
    def fault_events(self) -> List:
        """Structured ``fault.*`` events (crash / respawn / degrade)
        recorded so far — target, incarnation, and clock time for each
        FaultSchedule action, in firing order."""
        return self.telemetry.events.of_kind("fault.")

    @property
    def processes(self) -> List[Process]:
        return list(self._processes)

    def process(self, name: str) -> Process:
        """First process registered under ``name`` (respawns append later
        incarnations; use :meth:`processes_named` to see them all)."""
        for candidate in self._processes:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no process named {name!r}")

    def processes_named(self, name: str) -> List[Process]:
        """Every incarnation registered under ``name``, in spawn order —
        the original plus any schedule-driven respawns."""
        return [p for p in self._processes if p.name == name]

    # -- the event loop -------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Process events; returns the final virtual time.

        Without ``until``, runs until every non-daemon process has
        finished (daemon activations stay queued for a later ``run``).
        With ``until``, processes every event up to and including that
        time — liveness of clients does not matter — then advances the
        clock to ``until``; this is how an experiment lets daemons drain
        after the clients are done.
        """
        # Materialise crashes and schedule entries armed after their
        # target was spawned (a crash armed for a past time fires on the
        # next event pop).
        for process in self._processes:
            self._schedule_timed_crashes(process.name)
        self._schedule_chaos()
        while self._heap:
            if until is None and not self._live_nondaemon():
                break
            event = self._heap[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(self._heap)
            self.clock.advance_to(event.time)
            # Handlers get the *clock's* time: when the clock jumped past
            # a queued event (an experiment's settle), the event fires
            # late, at the current time, not retroactively.
            if event.action is not None:
                event.action(self.clock.now)
                continue
            if event.crash_target is not None:
                self._fire_timed_crash(event.crash_target, self.clock.now)
                continue
            process = event.process
            assert process is not None
            if not process.alive:
                continue
            self._activate(process)
        if until is not None:
            self.clock.advance_to(until)
        return self.clock.now

    def _live_nondaemon(self) -> bool:
        return any(p.alive and not p.daemon for p in self._processes)

    def _push(self, event: _Event) -> None:
        heapq.heappush(self._heap, event)

    def _fire_timed_crash(self, target: str, now: float) -> None:
        self.account.faults.fire_timed_crash(target, now)
        # Snapshot: _kill can respawn a same-named replacement that must
        # not be swept up by this same firing.
        for process in list(self._processes):
            if process.name == target and process.alive:
                self._kill(
                    process,
                    ClientCrashError(f"timed@{now:.3f}s"),
                    now,
                    source="timed",
                )

    def _kill(
        self,
        process: Process,
        crash: ClientCrashError,
        now: float,
        source: str = "kill",
    ) -> None:
        process.state = ProcessState.CRASHED
        process.crash = crash
        process.domain.finish(now)
        process.generator.close()
        self.telemetry.events.emit(
            "fault.crash",
            now,
            target=process.name,
            incarnation=process.incarnation,
            source=source,
            reason=str(crash),
        )
        self._maybe_respawn(process, now)

    # -- stepping one process --------------------------------------------------

    def _activate(self, process: Process) -> None:
        now = self.clock.now
        process.domain.activate(now)
        value, exc = process._pending_value, process._pending_exc
        process._pending_value, process._pending_exc = None, None
        try:
            if exc is not None:
                effect = process.generator.throw(exc)
            else:
                effect = process.generator.send(value)
        except StopIteration as stop:
            process.state = ProcessState.DONE
            process.result = stop.value
            process.domain.finish(now)
            self.telemetry.events.emit(
                "proc.done",
                now,
                name=process.name,
                incarnation=process.incarnation,
            )
            return
        except ClientCrashError as crash:
            process.state = ProcessState.CRASHED
            process.crash = crash
            process.domain.finish(now)
            self.telemetry.events.emit(
                "fault.crash",
                now,
                target=process.name,
                incarnation=process.incarnation,
                source="crash_point",
                reason=str(crash),
            )
            self._maybe_respawn(process, now)
            return
        self._interpret(process, effect, now)

    def _interpret(self, process: Process, effect: Any, now: float) -> None:
        if isinstance(effect, Delay):
            process.state = ProcessState.WAITING
            process.domain.charge_idle(effect.seconds)
            self._push(_Event(now + effect.seconds, next(self._seq), process))
            return
        if isinstance(effect, Batch):
            process.state = ProcessState.WAITING
            try:
                result = self.scheduler.execute_batch(
                    effect.requests, effect.connections, advance_clock=False
                )
            except ClientCrashError as crash:
                # A crash point fired while the batch was being applied:
                # the requests already placed survive, the process dies.
                self._kill(process, crash, now)
                return
            except CloudServiceError as error:
                process._pending_exc = error
                self._push(_Event(now, next(self._seq), process))
                return
            if effect.charge:
                process.domain.charge_busy(result.makespan)
                resume_at = result.finished_at
                self.telemetry.events.emit(
                    "proc.slice",
                    resume_at,
                    name=process.name,
                    incarnation=process.incarnation,
                    start=result.started_at,
                    requests=len(effect.requests),
                )
            else:
                resume_at = now
            process._pending_value = result
            self._push(_Event(resume_at, next(self._seq), process))
            return
        raise TypeError(
            f"process {process.name!r} yielded unknown effect {effect!r}"
        )
