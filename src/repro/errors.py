"""Exception hierarchy for the repro package.

Every error raised by the simulated cloud services, the PASS substrate, or
the protocols derives from :class:`ReproError` so callers can catch the
whole family with one clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


# --------------------------------------------------------------------------
# Cloud service errors
# --------------------------------------------------------------------------

class CloudServiceError(ReproError):
    """Base class for simulated cloud-service failures."""


class NoSuchKeyError(CloudServiceError):
    """GET/HEAD/COPY/DELETE referenced an object key that does not exist."""


class NoSuchBucketError(CloudServiceError):
    """An operation referenced a bucket that was never created."""


class NoSuchDomainError(CloudServiceError):
    """A SimpleDB operation referenced a domain that was never created."""


class NoSuchQueueError(CloudServiceError):
    """An SQS operation referenced a queue URL that was never created."""


class LimitExceededError(CloudServiceError):
    """A service limit was violated (message size, attribute size, batch
    size, metadata size)."""


class InvalidRequestError(CloudServiceError):
    """The request was malformed (bad key, bad query, empty batch)."""


class QuerysyntaxError(InvalidRequestError):
    """A SimpleDB ``Select`` expression could not be parsed."""


class ClientCrashError(ReproError):
    """Raised by the fault injector to simulate a client machine crash at a
    designated crash point.  Protocol state already sent to the cloud
    survives; in-memory client state is lost."""

    def __init__(self, crash_point: str):
        super().__init__(f"client crashed at crash point {crash_point!r}")
        self.crash_point = crash_point


# --------------------------------------------------------------------------
# Provenance substrate errors
# --------------------------------------------------------------------------

class ProvenanceError(ReproError):
    """Base class for provenance-graph and collector errors."""


class CycleError(ProvenanceError):
    """Adding an edge would have made an object its own ancestor."""


class UnknownNodeError(ProvenanceError):
    """An edge or query referenced a node absent from the graph."""


class TraceError(ReproError):
    """A syscall trace was malformed (e.g. read from a never-opened fd)."""


# --------------------------------------------------------------------------
# Protocol errors
# --------------------------------------------------------------------------

class ProtocolError(ReproError):
    """Base class for protocol-level failures."""


class CouplingViolationError(ProtocolError):
    """Detection layer found data and provenance that do not match."""


class CausalOrderingViolationError(ProtocolError):
    """Detection layer found a dangling ancestor pointer."""


class TransactionIncompleteError(ProtocolError):
    """The commit daemon was asked to force-commit an incomplete
    transaction."""


class DrainExhaustedError(ProtocolError):
    """``CommitDaemon.drain`` hit its poll budget with messages still
    flowing — the queue kept yielding past ``max_polls``, so returning
    would silently leave committed-looking state behind a live backlog."""
