"""Filesystem-backed S3: the local blob-store backend.

Objects live on disk.  Every key maps to a directory (percent-encoded,
so slashes in keys are safe), and every write appends a numbered
*version*: a ``v-<n>.json`` sidecar carrying the version's commit and
visibility timestamps, tombstone flag, user metadata, and content
digest — plus a ``v-<n>.bin`` payload file when the blob carries real
bytes (synthetic workload blobs store size+digest only, exactly like
the simulator's :class:`~repro.cloud.blob.Blob`).

The service logic — request pricing, eventual-consistency observation,
LIST pagination, billing — is inherited unchanged from
:class:`~repro.cloud.s3.S3Service`; only the storage registry differs.
Version resolution reloads the on-disk history into the shared
:class:`~repro.cloud.consistency.VersionedRegister` and asks it, so
stale-read semantics are byte-identical to the simulated backend.

Streaming is the one genuinely new capability: ``put_stream`` pipes a
file object into a staged payload (incremental SHA-1, chunked writes)
and commits it through the same scheduler/billing path as ``put``;
``get_stream`` copies a version's payload out in chunks without ever
materializing it in memory.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import BinaryIO, Dict, Iterator, Optional, Tuple
from urllib.parse import quote, unquote

from repro.cloud.blob import Blob
from repro.cloud.consistency import VersionedRegister
from repro.cloud.network import Request
from repro.cloud.s3 import METADATA_LIMIT_BYTES, S3ObjectRecord, S3Service
from repro.errors import LimitExceededError, NoSuchKeyError

#: Chunk size for streaming puts and gets.
STREAM_CHUNK_BYTES = 64 * 1024


def _quote(part: str) -> str:
    return quote(part, safe="")


class FsObjectRegister:
    """One key's version history as numbered files in a directory."""

    __slots__ = ("_dir",)

    def __init__(self, directory: Path):
        self._dir = directory

    # -- storage --------------------------------------------------------------

    def _version_metas(self):
        if not self._dir.is_dir():
            return []
        return sorted(self._dir.glob("v-*.json"))

    def _next_seq(self) -> int:
        return len(self._version_metas()) + 1

    def _write_meta(self, seq: int, meta: Dict[str, object]) -> None:
        self._dir.mkdir(parents=True, exist_ok=True)
        path = self._dir / f"v-{seq:08d}.json"
        path.write_text(json.dumps(meta), encoding="utf-8")

    def write(
        self, record: S3ObjectRecord, committed_at: float, visible_at: float
    ) -> None:
        seq = self._next_seq()
        blob = record.blob
        has_data = blob.data is not None
        if has_data:
            self._dir.mkdir(parents=True, exist_ok=True)
            bin_path = self._dir / f"v-{seq:08d}.bin"
            with open(bin_path, "wb") as handle:
                data = blob.data
                for start in range(0, len(data), STREAM_CHUNK_BYTES):
                    handle.write(data[start : start + STREAM_CHUNK_BYTES])
        self._write_meta(
            seq,
            {
                "committed_at": committed_at,
                "visible_at": visible_at,
                "deleted": False,
                "size": blob.size,
                "digest": blob.digest,
                "has_data": has_data,
                "metadata": dict(record.metadata),
            },
        )

    def write_staged(
        self,
        staged: Path,
        size: int,
        digest: str,
        metadata: Dict[str, str],
        committed_at: float,
        visible_at: float,
    ) -> None:
        """Commit a payload already streamed to ``staged`` as the next
        version (rename into place — no second copy of the bytes)."""
        seq = self._next_seq()
        self._dir.mkdir(parents=True, exist_ok=True)
        os.replace(staged, self._dir / f"v-{seq:08d}.bin")
        self._write_meta(
            seq,
            {
                "committed_at": committed_at,
                "visible_at": visible_at,
                "deleted": False,
                "size": size,
                "digest": digest,
                "has_data": True,
                "metadata": dict(metadata),
            },
        )

    def delete(self, committed_at: float, visible_at: float) -> None:
        self._write_meta(
            self._next_seq(),
            {
                "committed_at": committed_at,
                "visible_at": visible_at,
                "deleted": True,
            },
        )

    # -- reads ----------------------------------------------------------------

    def _load(self) -> VersionedRegister:
        """Reload the history into the shared register implementation,
        so version resolution (last-writer-wins, visibility filtering,
        tie-breaking) is the simulator's own code path."""
        register: VersionedRegister[S3ObjectRecord] = VersionedRegister()
        for meta_path in self._version_metas():
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            if meta["deleted"]:
                register.delete(meta["committed_at"], meta["visible_at"])
                continue
            data = None
            if meta["has_data"]:
                data = meta_path.with_suffix(".bin").read_bytes()
            record = S3ObjectRecord(
                Blob(size=meta["size"], digest=meta["digest"], data=data),
                dict(meta["metadata"]),
            )
            register.write(record, meta["committed_at"], meta["visible_at"])
        return register

    def read(self, at: float, model):
        return self._load().read(at, model)

    def read_latest_committed(self, at: float):
        return self._load().read_latest_committed(at)

    def history(self):
        return self._load().history()

    def ever_written(self) -> bool:
        return bool(self._version_metas())

    def resolve_payload(self, at: float, model) -> Tuple[Dict[str, object], Path]:
        """The visible version's metadata and payload path, for
        streaming reads.  Raises like a GET on absence."""
        metas = self._version_metas()
        best = None
        best_path: Optional[Path] = None
        for meta_path in metas:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            from repro.cloud.consistency import ConsistencyModel

            stamp = (
                meta["committed_at"]
                if model is ConsistencyModel.STRICT
                else meta["visible_at"]
            )
            if stamp <= at and (
                best is None or meta["committed_at"] >= best["committed_at"]
            ):
                best = meta
                best_path = meta_path
        if best is None or best["deleted"]:
            raise NoSuchKeyError(f"no visible version at t={at:.2f}")
        if not best.get("has_data"):
            raise ValueError("synthetic blob has no real bytes to stream")
        return best, best_path.with_suffix(".bin")


class FsBucket:
    """One bucket's key→register mapping over an ``objects/`` directory."""

    __slots__ = ("_dir",)

    def __init__(self, directory: Path):
        self._dir = directory

    def _key_dir(self, key: str) -> Path:
        return self._dir / _quote(key)

    def setdefault(self, key: str, default=None) -> FsObjectRegister:
        del default
        return FsObjectRegister(self._key_dir(key))

    def get(self, key: str, default=None):
        register = FsObjectRegister(self._key_dir(key))
        return register if register.ever_written() else default

    def __getitem__(self, key: str) -> FsObjectRegister:
        register = self.get(key)
        if register is None:
            raise KeyError(key)
        return register

    def __iter__(self) -> Iterator[str]:
        if not self._dir.is_dir():
            return
        for child in self._dir.iterdir():
            if child.is_dir() and any(child.glob("v-*.json")):
                yield unquote(child.name)

    def items(self) -> Iterator[Tuple[str, FsObjectRegister]]:
        for key in self:
            yield key, FsObjectRegister(self._key_dir(key))


class FsBucketMap:
    """The top-level bucket→:class:`FsBucket` mapping on disk."""

    __slots__ = ("_root",)

    def __init__(self, root: Path):
        self._root = root
        root.mkdir(parents=True, exist_ok=True)

    def _objects_dir(self, bucket: str) -> Path:
        return self._root / _quote(bucket) / "objects"

    def setdefault(self, bucket: str, default=None) -> FsBucket:
        del default
        directory = self._objects_dir(bucket)
        directory.mkdir(parents=True, exist_ok=True)
        return FsBucket(directory)

    def __getitem__(self, bucket: str) -> FsBucket:
        directory = self._objects_dir(bucket)
        if not directory.is_dir():
            raise KeyError(bucket)
        return FsBucket(directory)

    def get(self, bucket: str, default=None):
        try:
            return self[bucket]
        except KeyError:
            return default

    def __iter__(self) -> Iterator[str]:
        if not self._root.is_dir():
            return
        for child in sorted(self._root.iterdir()):
            if (child / "objects").is_dir():
                yield unquote(child.name)


class LocalS3Service(S3Service):
    """S3 over the filesystem: same API, real files, plus streaming."""

    def __init__(self, scheduler, profile, billing, consistency=None, *, root: Path):
        super().__init__(scheduler, profile, billing, consistency)
        self._root = Path(root)
        self._buckets = FsBucketMap(self._root)

    # -- streaming ------------------------------------------------------------

    def put_stream(
        self,
        bucket: str,
        key: str,
        reader: BinaryIO,
        metadata: Optional[Dict[str, str]] = None,
        chunk_bytes: int = STREAM_CHUNK_BYTES,
    ) -> Blob:
        """Stream a PUT: the payload is copied from ``reader`` in
        chunks (incremental SHA-1, never fully in memory), staged next
        to the object, and committed through the scheduler with the
        same pricing and visibility draw as :meth:`put`.  Returns a
        size+digest :class:`Blob` describing what was stored."""
        metadata = dict(metadata or {})
        if sum(len(k) + len(v) for k, v in metadata.items()) > METADATA_LIMIT_BYTES:
            raise LimitExceededError(
                f"metadata for {key!r} exceeds {METADATA_LIMIT_BYTES} bytes"
            )
        objects = self._bucket(bucket)
        register = objects.setdefault(key)
        staged = register._dir.parent / f".staged-{_quote(key)}"
        register._dir.parent.mkdir(parents=True, exist_ok=True)
        digest = hashlib.sha1()
        size = 0
        with open(staged, "wb") as handle:
            while True:
                chunk = reader.read(chunk_bytes)
                if not chunk:
                    break
                digest.update(chunk)
                size += len(chunk)
                handle.write(chunk)
        blob = Blob(size=size, digest=digest.hexdigest())

        def apply(start: float, finish: float) -> None:
            visible = self._consistency.visibility_for(finish)
            register.write_staged(
                staged, size, blob.digest, metadata, finish, visible
            )
            self._billing.record("s3", "PUT", bytes_in=size)

        self._scheduler.execute_one(
            Request(
                profile=self._profile,
                apply=apply,
                payload_bytes=size,
                label=f"s3.PUT(stream) {bucket}/{key}",
            )
        )
        return blob

    def get_stream(
        self,
        bucket: str,
        key: str,
        writer: BinaryIO,
        chunk_bytes: int = STREAM_CHUNK_BYTES,
    ) -> Tuple[int, Dict[str, str]]:
        """Stream a GET: the visible version's payload is copied into
        ``writer`` in chunks.  Returns ``(size, metadata)``; billed and
        priced exactly like :meth:`get`."""
        objects = self._bucket(bucket)
        size_hint = self._size_hint(objects, key)

        def apply(start: float, finish: float) -> Tuple[int, Dict[str, str]]:
            register = objects.get(key)
            if register is None:
                self._billing.record("s3", "GET")
                raise NoSuchKeyError(f"no such key {key!r}")
            try:
                meta, payload = register.resolve_payload(
                    start, self._consistency.model
                )
            except NoSuchKeyError:
                self._billing.record("s3", "GET")
                raise
            copied = 0
            with open(payload, "rb") as handle:
                while True:
                    chunk = handle.read(chunk_bytes)
                    if not chunk:
                        break
                    writer.write(chunk)
                    copied += len(chunk)
            self._billing.record("s3", "GET", bytes_out=copied)
            return copied, dict(meta["metadata"])

        return self._scheduler.execute_one(
            Request(
                profile=self._profile,
                apply=apply,
                response_bytes=size_hint,
                read_only=True,
                label=f"s3.GET(stream) {bucket}/{key}",
            )
        )

    # -- omniscient inspection ------------------------------------------------

    def stored_object_dir(self, bucket: str, key: str) -> Path:
        """Where a key's versions live on disk (tests only)."""
        return self._root / _quote(bucket) / "objects" / _quote(key)
