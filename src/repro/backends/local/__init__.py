"""The local backend: real storage behind the simulated services' APIs.

Three substrates, one directory:

- ``tables.sqlite`` — :class:`LocalSimpleDBService` (attribute table),
- ``queue.sqlite`` — :class:`LocalSQSService` (durable queue),
- ``s3/`` — :class:`LocalS3Service` (versioned filesystem blob store).

:func:`build_local_services` is the factory
:func:`repro.backends.build_backend` delegates to.  It owns resource
lifecycle: when no ``root`` is given a temporary directory is created
and the returned ``close()`` removes it again; with an explicit
``root`` the data is durable and ``close()`` only drops the sqlite
connections — reopening the same root resurrects domains, queues, and
objects.
"""

from __future__ import annotations

import shutil
import sqlite3
import tempfile
from pathlib import Path
from typing import Optional

from repro.backends.local.blobstore import LocalS3Service
from repro.backends.local.queue import LocalSQSService
from repro.backends.local.tablestore import LocalSimpleDBService
from repro.cloud.billing import BillingMeter
from repro.cloud.consistency import ConsistencyModel
from repro.cloud.network import ParallelScheduler
from repro.cloud.profiles import SimulationProfile

__all__ = [
    "LocalS3Service",
    "LocalSQSService",
    "LocalSimpleDBService",
    "build_local_services",
]


def _connect(path: Path) -> sqlite3.Connection:
    # Autocommit (isolation_level=None): every service-level apply() is
    # already atomic under the virtual clock, and the HTTP front end
    # serves requests from a worker thread, hence check_same_thread=False.
    return sqlite3.connect(str(path), isolation_level=None, check_same_thread=False)


def build_local_services(
    *,
    scheduler: ParallelScheduler,
    profile: SimulationProfile,
    billing: BillingMeter,
    consistency: ConsistencyModel,
    seed: int,
    telemetry=None,
    root: Optional[str] = None,
    index_store: str = "array",
):
    from repro.backends import BackendServices, _engines

    auto_root = root is None
    if auto_root:
        root = tempfile.mkdtemp(prefix="repro-backend-")
    root_path = Path(root)
    root_path.mkdir(parents=True, exist_ok=True)

    tables_conn = _connect(root_path / "tables.sqlite")
    queue_conn = _connect(root_path / "queue.sqlite")
    s3_engine, sdb_engine = _engines(profile, consistency, seed)

    services = BackendServices(
        name="local",
        s3=LocalS3Service(
            scheduler,
            profile.service("s3"),
            billing,
            s3_engine,
            root=root_path / "s3",
        ),
        simpledb=LocalSimpleDBService(
            scheduler,
            profile.service("simpledb"),
            billing,
            sdb_engine,
            telemetry=telemetry,
            index_store=index_store,
            conn=tables_conn,
        ),
        sqs=LocalSQSService(
            scheduler,
            profile.service("sqs"),
            billing,
            seed=seed + 3,
            telemetry=telemetry,
            conn=queue_conn,
        ),
        root=str(root_path),
        close=lambda: None,
    )

    closed = False

    def close() -> None:
        nonlocal closed
        if closed:
            return
        closed = True
        tables_conn.close()
        queue_conn.close()
        if auto_root:
            shutil.rmtree(root_path, ignore_errors=True)

    services.close = close
    return services
