"""Sqlite-backed SQS: the local durable-queue backend.

Messages, receipt handles, and the message-id counter all live in
sqlite, so a queue survives process restart — the durability P3's WAL
actually needs from its provider.  The delivery *semantics* are the
simulated service's, reproduced draw for draw: the same seeded RNG
decides best-effort reordering and duplicate delivery, receipt handles
follow the same ``msg-<n>#r<k>`` scheme, visibility timeouts and the
four-day retention window use the same virtual-clock timestamps, and
``ChangeMessageVisibility`` applies the same expired-lease no-op rule.
The differential matrix holds the two backends to byte-identical
deliveries under identical workloads.
"""

from __future__ import annotations

import sqlite3
from typing import List, Optional

from repro.cloud.billing import BillingMeter
from repro.cloud.network import ParallelScheduler, Request
from repro.cloud.profiles import ServiceProfile
from repro.cloud.sqs import (
    DEFAULT_VISIBILITY_TIMEOUT,
    MESSAGE_LIMIT_BYTES,
    RECEIVE_BATCH_LIMIT,
    RETENTION_SECONDS,
    Message,
    SQSService,
)
from repro.errors import InvalidRequestError, LimitExceededError, NoSuchQueueError

_SCHEMA = """
CREATE TABLE IF NOT EXISTS sqs_queues (
    url TEXT PRIMARY KEY,
    name TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS sqs_messages (
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    queue TEXT NOT NULL,
    message_id TEXT NOT NULL,
    body TEXT NOT NULL,
    sent_at REAL NOT NULL,
    invisible_until REAL NOT NULL DEFAULT 0,
    deleted INTEGER NOT NULL DEFAULT 0,
    receipt_counter INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS sqs_messages_receive
    ON sqs_messages(queue, deleted, invisible_until, seq);
CREATE TABLE IF NOT EXISTS sqs_receipts (
    handle TEXT PRIMARY KEY,
    queue TEXT NOT NULL,
    message_id TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS sqs_counters (
    name TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
"""


def ensure_schema(conn: sqlite3.Connection) -> None:
    conn.executescript(_SCHEMA)


class LocalSQSService(SQSService):
    """SQS over sqlite: same delivery semantics, durable rows."""

    def __init__(
        self,
        scheduler: ParallelScheduler,
        profile: ServiceProfile,
        billing: BillingMeter,
        seed: int = 0,
        duplicate_delivery_rate: float = 0.0,
        telemetry=None,
        *,
        conn: sqlite3.Connection,
    ):
        self._conn = conn
        ensure_schema(conn)
        super().__init__(
            scheduler,
            profile,
            billing,
            seed=seed,
            duplicate_delivery_rate=duplicate_delivery_rate,
            telemetry=telemetry,
        )
        # Reopening an existing database: re-register the stored queues'
        # telemetry gauges (the rows themselves are already durable).
        for (url, name) in conn.execute(
            "SELECT url, name FROM sqs_queues"
        ).fetchall():
            self._register_gauge(url, name)

    # -- queue lifecycle -------------------------------------------------------

    def _register_gauge(self, url: str, name: str) -> None:
        if self._telemetry is not None:
            self._telemetry.metrics.gauge_fn(
                "sqs.queue_depth",
                lambda url=url: self.pending_count(url),
                queue=name,
            )

    def create_queue(self, name: str) -> str:
        url = f"sqs://queues/{name}"
        existing = self._conn.execute(
            "SELECT 1 FROM sqs_queues WHERE url = ?", (url,)
        ).fetchone()
        if existing is None:
            self._conn.execute(
                "INSERT INTO sqs_queues(url, name) VALUES (?, ?)", (url, name)
            )
            self._register_gauge(url, name)
        return url

    def _require_queue(self, url: str) -> None:
        row = self._conn.execute(
            "SELECT 1 FROM sqs_queues WHERE url = ?", (url,)
        ).fetchone()
        if row is None:
            raise NoSuchQueueError(f"queue {url!r} does not exist")

    def _next_message_id(self) -> str:
        # The counter is global across queues (like the simulator's
        # itertools.count) and durable across restarts.
        self._conn.execute(
            "INSERT INTO sqs_counters(name, value) VALUES ('message_id', 0)"
            " ON CONFLICT(name) DO NOTHING"
        )
        self._conn.execute(
            "UPDATE sqs_counters SET value = value + 1 WHERE name = 'message_id'"
        )
        (value,) = self._conn.execute(
            "SELECT value FROM sqs_counters WHERE name = 'message_id'"
        ).fetchone()
        return f"msg-{value}"

    # -- request builders ------------------------------------------------------

    def send_request(self, url: str, body: str) -> Request:
        encoded = body.encode("utf-8")
        if len(encoded) > MESSAGE_LIMIT_BYTES:
            raise LimitExceededError(
                f"message body is {len(encoded)} bytes; SQS limit is "
                f"{MESSAGE_LIMIT_BYTES}"
            )
        if not body:
            raise InvalidRequestError("message body must be non-empty")
        self._require_queue(url)
        size = len(encoded)

        def apply(start: float, finish: float) -> str:
            message_id = self._next_message_id()
            self._conn.execute(
                "INSERT INTO sqs_messages(queue, message_id, body, sent_at)"
                " VALUES (?, ?, ?, ?)",
                (url, message_id, body, finish),
            )
            self._billing.record("sqs", "SendMessage", bytes_in=size)
            return message_id

        return Request(
            profile=self._profile,
            apply=apply,
            payload_bytes=size,
            label=f"sqs.Send {url}",
        )

    def receive_request(
        self,
        url: str,
        max_messages: int = RECEIVE_BATCH_LIMIT,
        visibility_timeout: float = DEFAULT_VISIBILITY_TIMEOUT,
    ) -> Request:
        if not 1 <= max_messages <= RECEIVE_BATCH_LIMIT:
            raise InvalidRequestError(
                f"max_messages must be in [1, {RECEIVE_BATCH_LIMIT}]"
            )
        self._require_queue(url)

        def apply(start: float, finish: float) -> List[Message]:
            self._expire_stored(url, start)
            available = self._conn.execute(
                "SELECT seq, message_id, body, sent_at, receipt_counter"
                " FROM sqs_messages"
                " WHERE queue = ? AND deleted = 0 AND invisible_until <= ?"
                " ORDER BY seq",
                (url, start),
            ).fetchall()
            # Identical RNG consumption to the simulated service: one
            # shuffle guard draw, then per-delivery duplicate draws.
            if len(available) > 1 and self._rng.random() < 0.2:
                self._rng.shuffle(available)
            picked = available[:max_messages]
            delivered: List[Message] = []
            for seq, message_id, body, sent_at, receipt_counter in picked:

                def lease(counter: int) -> str:
                    handle = f"{message_id}#r{counter}"
                    self._conn.execute(
                        "UPDATE sqs_messages SET invisible_until = ?,"
                        " receipt_counter = ? WHERE seq = ?",
                        (start + visibility_timeout, counter, seq),
                    )
                    self._conn.execute(
                        "INSERT OR REPLACE INTO sqs_receipts"
                        "(handle, queue, message_id) VALUES (?, ?, ?)",
                        (handle, url, message_id),
                    )
                    return handle

                receipt_counter += 1
                handle = lease(receipt_counter)
                delivered.append(Message(message_id, handle, body, sent_at))
                if (
                    self.duplicate_delivery_rate > 0
                    and self._rng.random() < self.duplicate_delivery_rate
                    and len(delivered) < max_messages
                ):
                    receipt_counter += 1
                    dup_handle = lease(receipt_counter)
                    delivered.append(Message(message_id, dup_handle, body, sent_at))
            size = sum(len(m.body.encode()) for m in delivered)
            self._billing.record("sqs", "ReceiveMessage", bytes_out=size)
            return delivered

        return Request(
            profile=self._profile,
            apply=apply,
            read_only=True,
            label=f"sqs.Receive {url}",
        )

    def change_visibility_request(
        self,
        url: str,
        receipt_handle: str,
        visibility_timeout: float = 0.0,
    ) -> Request:
        """See :meth:`SQSService.change_visibility_request` — same
        semantics, including the expired-lease no-op rule: the handle
        must be the message's latest receipt and the lease still open."""
        if visibility_timeout < 0:
            raise InvalidRequestError(
                f"visibility_timeout must be >= 0 (got {visibility_timeout})"
            )
        self._require_queue(url)

        def apply(start: float, finish: float) -> None:
            row = self._conn.execute(
                "SELECT message_id FROM sqs_receipts WHERE handle = ? AND queue = ?",
                (receipt_handle, url),
            ).fetchone()
            if row is not None:
                (message_id,) = row
                stored = self._conn.execute(
                    "SELECT seq, receipt_counter, invisible_until FROM sqs_messages"
                    " WHERE queue = ? AND message_id = ? AND deleted = 0",
                    (url, message_id),
                ).fetchone()
                if stored is not None:
                    seq, receipt_counter, invisible_until = stored
                    latest = f"{message_id}#r{receipt_counter}"
                    if receipt_handle == latest and invisible_until > start:
                        self._conn.execute(
                            "UPDATE sqs_messages SET invisible_until = ?"
                            " WHERE seq = ?",
                            (start + visibility_timeout, seq),
                        )
            self._billing.record("sqs", "ChangeMessageVisibility")

        return Request(
            profile=self._profile,
            apply=apply,
            label=f"sqs.ChangeVisibility {url}",
        )

    def delete_request(self, url: str, receipt_handle: str) -> Request:
        self._require_queue(url)

        def apply(start: float, finish: float) -> None:
            row = self._conn.execute(
                "SELECT message_id FROM sqs_receipts WHERE handle = ? AND queue = ?",
                (receipt_handle, url),
            ).fetchone()
            if row is not None:
                (message_id,) = row
                self._conn.execute(
                    "DELETE FROM sqs_receipts WHERE handle = ?", (receipt_handle,)
                )
                self._conn.execute(
                    "UPDATE sqs_messages SET deleted = 1"
                    " WHERE queue = ? AND message_id = ?",
                    (url, message_id),
                )
            self._billing.record("sqs", "DeleteMessage")

        return Request(
            profile=self._profile,
            apply=apply,
            label=f"sqs.Delete {url}",
        )

    # -- internals -------------------------------------------------------------

    def _expire_stored(self, url: str, now: float) -> None:
        self._conn.execute(
            "UPDATE sqs_messages SET deleted = 1"
            " WHERE queue = ? AND deleted = 0 AND sent_at < ?",
            (url, now - RETENTION_SECONDS),
        )

    # -- omniscient inspection -------------------------------------------------

    def pending_count(self, url: str, now: Optional[float] = None) -> int:
        self._require_queue(url)
        if now is not None:
            self._expire_stored(url, now)
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM sqs_messages WHERE queue = ? AND deleted = 0",
            (url,),
        ).fetchone()
        return count

    def stored_message_count(self, url: str) -> int:
        """Raw row count including tombstones (tests: proves the queue
        actually lives in sqlite)."""
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM sqs_messages WHERE queue = ?", (url,)
        ).fetchone()
        return count
