"""Sqlite-backed SimpleDB: the local attribute-table backend.

The authoritative store is a sqlite database: one row per committed
item version (``sdb_versions``), carrying the attribute bag as JSON
plus the version's commit and visibility timestamps.  Reads — gets,
selects, peeks — round-trip through SQL; nothing item-level survives
only in process memory.

Everything *above* the storage substrate is shared with the simulated
service by subclassing :class:`~repro.cloud.simpledb.SimpleDBService`:
the select grammar and planner, request pricing, billing, snapshot
pagination, validation limits, and the eventual-consistency policy
(the same seeded :class:`~repro.cloud.consistency.PropagationSampler`
stamps each row's ``visible_at``).  That sharing is what pins the two
backends byte-identical — the differential matrix replays the same
workload on both and compares rows, ordering, and billing bit for bit.

The in-memory secondary indexes (:class:`_DomainState`) remain derived
data, exactly as a database's indexes are: they are rebuilt from the
sqlite rows when an existing database is reopened, and every candidate
they produce is re-verified against a SQL-backed read before it can
reach an answer.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Iterator, List, Optional, Tuple

from repro.cloud.billing import BillingMeter
from repro.cloud.consistency import (
    ConsistencyEngine,
    ConsistencyModel,
    WriteVersion,
)
from repro.cloud.network import ParallelScheduler
from repro.cloud.profiles import ServiceProfile
from repro.cloud.simpledb import (
    ItemAttributes,
    SimpleDBService,
    _DomainStateBase,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS sdb_domains (
    name TEXT PRIMARY KEY
);
CREATE TABLE IF NOT EXISTS sdb_versions (
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    domain TEXT NOT NULL,
    item TEXT NOT NULL,
    committed_at REAL NOT NULL,
    visible_at REAL NOT NULL,
    deleted INTEGER NOT NULL DEFAULT 0,
    attrs TEXT
);
CREATE INDEX IF NOT EXISTS sdb_versions_read
    ON sdb_versions(domain, item, committed_at DESC, seq DESC);
"""


def ensure_schema(conn: sqlite3.Connection) -> None:
    conn.executescript(_SCHEMA)


def _decode_attrs(text: Optional[str]) -> Optional[ItemAttributes]:
    if text is None:
        return None
    return json.loads(text)


class SqliteRegister:
    """One item's version history, stored as sqlite rows.

    Implements the :class:`~repro.cloud.consistency.VersionedRegister`
    interface the service reads and writes through.  ``read`` resolves
    the same version the in-memory register would: among rows observable
    at ``at`` (``visible_at <= at`` under EVENTUAL, ``committed_at <=
    at`` under STRICT), the one with the greatest commit time, ties
    broken toward the latest insertion (``seq``)."""

    __slots__ = ("_conn", "_domain", "_item")

    def __init__(self, conn: sqlite3.Connection, domain: str, item: str):
        self._conn = conn
        self._domain = domain
        self._item = item

    # -- writes ---------------------------------------------------------------

    def write(
        self, value: ItemAttributes, committed_at: float, visible_at: float
    ) -> None:
        self._conn.execute(
            "INSERT INTO sdb_versions(domain, item, committed_at, visible_at,"
            " deleted, attrs) VALUES (?, ?, ?, ?, 0, ?)",
            (self._domain, self._item, committed_at, visible_at, json.dumps(value)),
        )

    def delete(self, committed_at: float, visible_at: float) -> None:
        self._conn.execute(
            "INSERT INTO sdb_versions(domain, item, committed_at, visible_at,"
            " deleted, attrs) VALUES (?, ?, ?, ?, 1, NULL)",
            (self._domain, self._item, committed_at, visible_at),
        )

    # -- reads ----------------------------------------------------------------

    def _best_row(self, column: str, at: float):
        return self._conn.execute(
            f"SELECT attrs, committed_at, visible_at, deleted FROM sdb_versions"
            f" WHERE domain = ? AND item = ? AND {column} <= ?"
            f" ORDER BY committed_at DESC, seq DESC LIMIT 1",
            (self._domain, self._item, at),
        ).fetchone()

    def read(
        self, at: float, model: ConsistencyModel
    ) -> Optional[WriteVersion[ItemAttributes]]:
        column = "committed_at" if model is ConsistencyModel.STRICT else "visible_at"
        row = self._best_row(column, at)
        if row is None:
            return None
        attrs, committed_at, visible_at, deleted = row
        return WriteVersion(
            value=_decode_attrs(attrs),
            committed_at=committed_at,
            visible_at=visible_at,
            deleted=bool(deleted),
        )

    def read_latest_committed(
        self, at: float
    ) -> Optional[WriteVersion[ItemAttributes]]:
        return self.read(at, ConsistencyModel.STRICT)

    def history(self) -> List[WriteVersion[ItemAttributes]]:
        rows = self._conn.execute(
            "SELECT attrs, committed_at, visible_at, deleted FROM sdb_versions"
            " WHERE domain = ? AND item = ? ORDER BY committed_at, seq",
            (self._domain, self._item),
        ).fetchall()
        return [
            WriteVersion(_decode_attrs(a), c, v, bool(d)) for a, c, v, d in rows
        ]

    def ever_written(self) -> bool:
        return (
            self._conn.execute(
                "SELECT 1 FROM sdb_versions WHERE domain = ? AND item = ? LIMIT 1",
                (self._domain, self._item),
            ).fetchone()
            is not None
        )


class SqliteRegistry:
    """The dict-of-registers view one domain's service code sees,
    backed by the shared sqlite connection."""

    __slots__ = ("_conn", "_domain")

    def __init__(self, conn: sqlite3.Connection, domain: str):
        self._conn = conn
        self._domain = domain

    def _exists(self, item: str) -> bool:
        return (
            self._conn.execute(
                "SELECT 1 FROM sdb_versions WHERE domain = ? AND item = ? LIMIT 1",
                (self._domain, item),
            ).fetchone()
            is not None
        )

    def __contains__(self, item: str) -> bool:
        return self._exists(item)

    def get(self, item: str, default=None):
        if not self._exists(item):
            return default
        return SqliteRegister(self._conn, self._domain, item)

    def setdefault(self, item: str, default=None) -> SqliteRegister:
        # Registers materialize lazily: no row is written until the
        # service commits a version, mirroring the dict semantics where
        # an empty register is indistinguishable from none.
        del default
        return SqliteRegister(self._conn, self._domain, item)

    def items(self) -> Iterator[Tuple[str, SqliteRegister]]:
        rows = self._conn.execute(
            "SELECT item FROM sdb_versions WHERE domain = ?"
            " GROUP BY item ORDER BY MIN(seq)",
            (self._domain,),
        ).fetchall()
        for (item,) in rows:
            yield item, SqliteRegister(self._conn, self._domain, item)


class LocalSimpleDBService(SimpleDBService):
    """SimpleDB over sqlite: same API, same grammar, real rows."""

    def __init__(
        self,
        scheduler: ParallelScheduler,
        profile: ServiceProfile,
        billing: BillingMeter,
        consistency: Optional[ConsistencyEngine] = None,
        use_indexes: bool = True,
        telemetry=None,
        index_store: str = "array",
        *,
        conn: sqlite3.Connection,
    ):
        self._conn = conn
        ensure_schema(conn)
        super().__init__(
            scheduler,
            profile,
            billing,
            consistency,
            use_indexes=use_indexes,
            telemetry=telemetry,
            index_store=index_store,
        )
        # Reopening an existing database: resurrect its domains (and
        # rebuild their derived in-memory indexes from the stored rows).
        for (name,) in conn.execute("SELECT name FROM sdb_domains").fetchall():
            self.create_domain(name)

    def create_domain(self, domain: str) -> None:
        if domain in self._domains:
            return
        state = self._new_domain_state()
        state.registry = SqliteRegistry(self._conn, domain)
        self._domains[domain] = state
        self._conn.execute(
            "INSERT OR IGNORE INTO sdb_domains(name) VALUES (?)", (domain,)
        )
        self._rebuild_indexes(domain, state)

    def _rebuild_indexes(self, domain: str, state: _DomainStateBase) -> None:
        """Replay the stored versions into the derived secondary indexes.

        The rebuilt index over-approximates — it records every pair any
        version ever held, and delete-driven pruning state is not
        reconstructed — which is exactly the invariant the planner
        requires (candidates are a superset; verification decides)."""
        seen = set()
        rows = self._conn.execute(
            "SELECT item, attrs FROM sdb_versions"
            " WHERE domain = ? AND deleted = 0 ORDER BY seq",
            (domain,),
        ).fetchall()
        for item, attrs_text in rows:
            if item not in seen:
                seen.add(item)
                state.add_name(item)
            attrs = _decode_attrs(attrs_text) or {}
            state.note_pairs(
                item, [(a, v) for a, values in attrs.items() for v in values]
            )

    # -- omniscient inspection ------------------------------------------------

    def stored_version_count(self, domain: str) -> int:
        """Raw row count in the sqlite store (tests: proves the data
        actually lives in the database, not in process memory)."""
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM sdb_versions WHERE domain = ?", (domain,)
        ).fetchone()
        return count
