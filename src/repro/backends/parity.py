"""Store fingerprints for the cross-backend differential matrix.

A *fingerprint* is a SHA-1 over a canonical text rendering of a store's
fully-propagated state — every domain's items and attribute bags, every
bucket's keys with sizes, digests, and metadata, every queue's pending
depth.  Two backends that executed the same workload must produce the
same fingerprint; the differential tests (``tests/backend_matrix.py``)
and the chaos harness assert exactly that.

Fingerprints use the services' omniscient ``peek_*`` APIs, so they see
through eventual-consistency visibility delays: they compare what the
stores *hold*, not what a client could observe mid-propagation.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Optional


def _sha1(text: str) -> str:
    return hashlib.sha1(text.encode("utf-8")).hexdigest()


def simpledb_fingerprint(simpledb, domains: Optional[Iterable[str]] = None) -> str:
    """Canonical digest of every domain's fully-propagated items."""
    if domains is None:
        domains = sorted(simpledb._domains)
    parts: List[str] = []
    for domain in sorted(domains):
        parts.append(f"domain={domain}")
        for name in simpledb.peek_item_names(domain):
            attrs = simpledb.peek_item(domain, name)
            bag = sorted((a, tuple(sorted(vs))) for a, vs in attrs.items())
            parts.append(f"  item={name} attrs={bag!r}")
    return _sha1("\n".join(parts))


def s3_fingerprint(s3, buckets: Optional[Iterable[str]] = None) -> str:
    """Canonical digest of every bucket's fully-propagated objects."""
    if buckets is None:
        buckets = sorted(s3._buckets)
    parts: List[str] = []
    for bucket in sorted(buckets):
        parts.append(f"bucket={bucket}")
        for key in s3.peek_keys(bucket):
            record = s3.peek_latest(bucket, key)
            if record is None:
                continue
            blob = record.blob
            meta = sorted(record.metadata.items())
            parts.append(
                f"  key={key} size={blob.size} digest={blob.digest} meta={meta!r}"
            )
    return _sha1("\n".join(parts))


def sqs_fingerprint(sqs, urls: Iterable[str]) -> str:
    """Canonical digest of the named queues' pending depths."""
    parts = [f"queue={url} pending={sqs.pending_count(url)}" for url in sorted(urls)]
    return _sha1("\n".join(parts))


def store_fingerprint(
    account,
    domains: Optional[Iterable[str]] = None,
    buckets: Optional[Iterable[str]] = None,
    queue_urls: Iterable[str] = (),
) -> str:
    """One digest over an account's SimpleDB + S3 (+ optionally SQS)
    state.  With ``domains``/``buckets`` omitted, every domain and
    bucket the account holds is covered."""
    return _sha1(
        "\n".join(
            (
                simpledb_fingerprint(account.simpledb, domains),
                s3_fingerprint(account.s3, buckets),
                sqs_fingerprint(account.sqs, queue_urls),
            )
        )
    )
