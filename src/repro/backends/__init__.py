"""Pluggable storage backends behind the cloud-service APIs.

The paper's portability claim (§6) is that P1–P3 are defined purely
against three provider primitives — a blob store, an attribute table,
and a queue — so the protocols move between providers unchanged.  This
package cashes that claim in for the reproduction: every
:class:`~repro.cloud.account.CloudAccount` constructs its three services
through :func:`build_backend`, and two backends exist today:

- ``"sim"`` — the in-memory simulated services (the default; identical
  to the pre-backend-factory construction),
- ``"local"`` — :mod:`repro.backends.local`: a sqlite-backed SimpleDB,
  a filesystem-backed S3, and a sqlite-backed durable SQS, all driven
  by the *same* virtual clock, consistency engines, billing meter, and
  request scheduler.

The contract both backends satisfy is byte-identity: the differential
matrix (``tests/backend_matrix.py``) replays identical workloads on
both and asserts answers, row ordering, billing, and store fingerprints
equal.  That is only possible because timing and visibility stay on the
shared virtual-clock abstractions — the local backend stores real rows
and files, but *when* a write becomes visible is decided by the same
seeded :class:`~repro.cloud.consistency.PropagationSampler` draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.cloud.billing import BillingMeter
from repro.cloud.consistency import (
    ConsistencyEngine,
    ConsistencyModel,
    PropagationSampler,
)
from repro.cloud.network import ParallelScheduler
from repro.cloud.profiles import SimulationProfile

#: Names accepted by :func:`build_backend` (and ``CloudAccount(backend=)``).
BACKEND_NAMES = ("sim", "local")


@dataclass
class BackendServices:
    """One backend's constructed service triple plus its lifecycle."""

    name: str
    s3: object
    simpledb: object
    sqs: object
    #: Storage root for on-disk backends (``None`` for ``"sim"``).
    root: Optional[str]
    #: Idempotent resource teardown (sqlite connections, temp dirs).
    close: Callable[[], None]


def _engines(profile: SimulationProfile, consistency: ConsistencyModel, seed: int):
    """The three services' consistency engines, with the account's fixed
    seed offsets (s3: ``seed+1``, simpledb: ``seed+2``) — shared by every
    backend so propagation-delay draws are byte-identical across them."""
    s3_profile = profile.service("s3")
    sdb_profile = profile.service("simpledb")
    return (
        ConsistencyEngine(
            consistency,
            PropagationSampler(s3_profile.propagation_delay_mean_s, seed + 1),
        ),
        ConsistencyEngine(
            consistency,
            PropagationSampler(sdb_profile.propagation_delay_mean_s, seed + 2),
        ),
    )


def build_backend(
    name: str,
    *,
    scheduler: ParallelScheduler,
    profile: SimulationProfile,
    billing: BillingMeter,
    consistency: ConsistencyModel,
    seed: int,
    telemetry=None,
    root: Optional[str] = None,
    index_store: str = "array",
) -> BackendServices:
    """Construct one backend's S3/SimpleDB/SQS service triple.

    ``root`` is the storage directory for on-disk backends; when omitted
    a temporary directory is created and removed again by ``close()``.
    ``"sim"`` ignores ``root`` and its ``close`` is a no-op.
    ``index_store`` picks the SimpleDB secondary-index substrate
    (``"array"``, the default, or ``"legacy"``); answers are
    byte-identical either way.
    """
    if name == "sim":
        from repro.cloud.s3 import S3Service
        from repro.cloud.simpledb import SimpleDBService
        from repro.cloud.sqs import SQSService

        s3_engine, sdb_engine = _engines(profile, consistency, seed)
        return BackendServices(
            name="sim",
            s3=S3Service(scheduler, profile.service("s3"), billing, s3_engine),
            simpledb=SimpleDBService(
                scheduler,
                profile.service("simpledb"),
                billing,
                sdb_engine,
                telemetry=telemetry,
                index_store=index_store,
            ),
            sqs=SQSService(
                scheduler,
                profile.service("sqs"),
                billing,
                seed=seed + 3,
                telemetry=telemetry,
            ),
            root=None,
            close=lambda: None,
        )
    if name == "local":
        from repro.backends.local import build_local_services

        return build_local_services(
            scheduler=scheduler,
            profile=profile,
            billing=billing,
            consistency=consistency,
            seed=seed,
            telemetry=telemetry,
            root=root,
            index_store=index_store,
        )
    raise ValueError(f"unknown backend {name!r} (one of {BACKEND_NAMES})")
