"""Provenance query layer.

- :mod:`repro.query.engine` — the paper's four evaluation queries (Q1–Q4,
  §5.3) against both provenance backends: S3 provenance objects (P1) and
  SimpleDB items (P2/P3), in sequential and parallel variants, with
  time/bytes/operations accounting,
- :mod:`repro.query.ancestry` — client-side graph reconstruction and
  ancestor/descendant closures over fetched provenance,
- :mod:`repro.query.search` — the Shah et al. provenance-weighted search
  ranking the paper cites as a cloud use case (§2.2).
"""

from repro.query.ancestry import ProvenanceIndex
from repro.query.engine import (
    QueryStats,
    S3QueryEngine,
    SimpleDBQueryEngine,
    query_engine_for,
)
from repro.query.search import provenance_ranked_search

__all__ = [
    "ProvenanceIndex",
    "QueryStats",
    "S3QueryEngine",
    "SimpleDBQueryEngine",
    "provenance_ranked_search",
    "query_engine_for",
]
