"""Provenance-weighted search ranking (§2.2's "Improving Text Search
Results" use case).

Shah et al. showed that provenance links between files — like hyperlinks
between web pages — improve desktop search.  The scheme: start from a
content-based result set, then traverse the provenance DAG ``P`` times,
updating each node's weight from its incoming/outgoing edges; finally
re-rank and admit newly discovered files.

This implementation runs over a :class:`~repro.query.ancestry.ProvenanceIndex`
(fetched from either backend), so the same ranking works on cloud-stored
provenance — the scenario the paper motivates: content-based indexing
refined by inter-file dependencies saves the user from downloading every
archived object.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.provenance.graph import NodeRef
from repro.query.ancestry import ProvenanceIndex

#: Fraction of a node's weight spread to its provenance neighbours.
_SPREAD = 0.5


def provenance_ranked_search(
    index: ProvenanceIndex,
    content_scores: Dict[NodeRef, float],
    iterations: int = 3,
    top_k: int = 10,
) -> List[Tuple[NodeRef, float]]:
    """Re-rank content-search results using provenance links.

    Args:
        index: fetched provenance.
        content_scores: initial content-based scores (the pure-text
            result set); nodes absent from the map start at zero.
        iterations: traversal passes (Shah's ``P``).
        top_k: result count.

    Returns:
        The top ``top_k`` (node, weight) pairs, best first.  Files never
        matched by content can surface through their provenance
        neighbourhood — the scheme's whole point.
    """
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    weights: Dict[NodeRef, float] = {
        ref: float(score) for ref, score in content_scores.items()
    }

    for _ in range(iterations):
        updated = dict(weights)
        for ref, weight in weights.items():
            if weight <= 0:
                continue
            neighbours = index.ancestors_direct(ref) | index.direct_dependents(ref)
            if not neighbours:
                continue
            share = _SPREAD * weight / len(neighbours)
            for neighbour in neighbours:
                updated[neighbour] = updated.get(neighbour, 0.0) + share
        weights = updated

    ranked = sorted(weights.items(), key=lambda kv: (-kv[1], kv[0]))
    files_only = [
        (ref, weight)
        for ref, weight in ranked
        if "file" in index.attributes(ref).get("type", ["file"])
    ]
    return files_only[:top_k]
