"""The paper's four evaluation queries (§5.3).

- **Q1** — retrieve all the provenance ever recorded,
- **Q2** — given an object, retrieve the provenance of all its versions,
- **Q3** — find all files directly output by a program (Blast),
- **Q4** — find all descendants of files derived from that program.

Two engines implement them against the two storage schemes:

- :class:`S3QueryEngine` (P1): LIST the provenance prefix and GET every
  object; Q3/Q4 require the *full* scan plus local processing — the
  paper's demonstration that P1 lacks efficient query,
- :class:`SimpleDBQueryEngine` (P2/P3): server-side ``Select`` with
  indexed attributes; Q1 pages sequentially through next-tokens (which is
  why it cannot be parallelized), Q3/Q4 are selective index lookups.

Every query returns its answer plus :class:`QueryStats` — elapsed virtual
seconds, bytes transferred, and operation count — the three columns of
the paper's Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cloud.account import CloudAccount
from repro.cloud.simpledb import PreparedSelect, prepare_select
from repro.errors import NoSuchKeyError
from repro.provenance.graph import NodeRef
from repro.provenance.serialization import decode_records

from repro.core.protocol_base import data_key, provenance_object_key
from repro.core.sdb_items import OVERFLOW_ATTRIBUTE, is_spill_pointer, spill_pointer_key
from repro.query.ancestry import ProvenanceIndex

#: Default chunk size for ``IN (...)`` value lists in SimpleDB selects
#: (shared with the fleet's query-side readers so their Q3/Q4-shaped
#: traffic matches the engine's request profile).  Per-engine override:
#: the ``in_chunk`` constructor argument, so benchmarks can sweep the
#: chunking without touching module state.
IN_CHUNK = 20


@dataclass
class QueryStats:
    """Cost of one query execution (a Table 5 row fragment)."""

    elapsed_seconds: float
    bytes_transferred: int
    operations: int

    @property
    def mb_transferred(self) -> float:
        return self.bytes_transferred / (1024.0 * 1024.0)


@dataclass
class ShardFanoutStats:
    """How an engine's chunked selects were routed across domains.

    The routing contract the regression tests pin: chunks rooted at
    ``itemName()`` values go to exactly the shard owning those names
    (``single_shard_chunks``); attribute-rooted chunks cannot be routed
    — the matching items may live in any shard — so they fan out to
    every domain (``fanned_out_selects`` counts each chunk x domain
    chain)."""

    #: itemName-rooted IN chunks, each routed to exactly one domain.
    single_shard_chunks: int = 0
    #: Select chains issued by unrouted fan-out (chunk x domain).
    fanned_out_selects: int = 0
    #: Select chains this engine started, per domain.
    selects_by_domain: Dict[str, int] = field(default_factory=dict)
    #: chunk x domain selects *not* issued because the shard's Bloom
    #: filter proved the shard cannot match (the fan-out win).
    bloom_skipped_selects: int = 0
    #: itemName-rooted chunks dropped whole: no name in the chunk can
    #: exist in its owning shard.
    bloom_skipped_chunks: int = 0

    def note_select(self, domain: str) -> None:
        self.selects_by_domain[domain] = (
            self.selects_by_domain.get(domain, 0) + 1
        )


class _Measured:
    """Meters a query against the account's clock and billing."""

    def __init__(self, account: CloudAccount):
        self._account = account
        self._ops = account.billing.operation_count()
        self._bytes = (
            account.billing.bytes_received() + account.billing.bytes_transmitted()
        )
        self._stopwatch = account.stopwatch()

    def stats(self) -> QueryStats:
        billing = self._account.billing
        return QueryStats(
            elapsed_seconds=self._stopwatch.elapsed(),
            bytes_transferred=(
                billing.bytes_received() + billing.bytes_transmitted() - self._bytes
            ),
            operations=billing.operation_count() - self._ops,
        )


class S3QueryEngine:
    """Queries against P1's uuid-named provenance objects."""

    def __init__(
        self,
        account: CloudAccount,
        bucket: str = "pass-data",
        parallel_connections: int = 8,
    ):
        self.account = account
        self.bucket = bucket
        self.parallel_connections = parallel_connections

    # -- internals -----------------------------------------------------------

    def _list_provenance_keys(self) -> List[str]:
        return self.account.s3.list_keys(self.bucket, "prov/")

    def _fetch_all(self, parallel: bool) -> ProvenanceIndex:
        """Q1's body: GET every provenance object, build a local index."""
        keys = self._list_provenance_keys()
        index = ProvenanceIndex()
        if parallel:
            requests = [self.account.s3.get_request(self.bucket, k) for k in keys]
            batch = self.account.scheduler.execute_batch(
                requests, self.parallel_connections
            )
            payloads = batch.results
        else:
            payloads = [self.account.s3.get(self.bucket, key) for key in keys]
        for blob, _meta in payloads:
            if blob.data is not None:
                index.ingest(decode_records(blob.text()))
        return index

    # -- the four queries ---------------------------------------------------------

    def q1_all_provenance(
        self, parallel: bool = False
    ) -> Tuple[ProvenanceIndex, QueryStats]:
        """Q1: dump every provenance record."""
        window = _Measured(self.account)
        index = self._fetch_all(parallel)
        return index, window.stats()

    def q2_object_provenance(
        self, path: str
    ) -> Tuple[Dict[str, List[str]], QueryStats]:
        """Q2: all recorded provenance of one object (every version).

        HEAD the data object to learn its uuid, then GET the provenance
        object — two inherently sequential requests (§5.3).
        """
        window = _Measured(self.account)
        head = self.account.s3.head(self.bucket, data_key(path))
        uuid = head.metadata.get("prov-uuid", "")
        attributes: Dict[str, List[str]] = {}
        if uuid:
            try:
                blob, _ = self.account.s3.get(
                    self.bucket, provenance_object_key(uuid)
                )
            except NoSuchKeyError:
                blob = None
            if blob is not None and blob.data is not None:
                for record in decode_records(blob.text()):
                    attributes.setdefault(record.attribute, []).append(
                        record.value_text()
                    )
        return attributes, window.stats()

    def q3_direct_outputs(
        self, program: str, parallel: bool = False
    ) -> Tuple[List[NodeRef], QueryStats]:
        """Q3: files directly output by ``program`` — a full scan plus
        local filtering (S3 cannot look up by attribute)."""
        window = _Measured(self.account)
        index = self._fetch_all(parallel)
        outputs = self._direct_outputs_local(index, program)
        return sorted(outputs), window.stats()

    def q4_all_descendants(
        self, program: str, parallel: bool = False
    ) -> Tuple[List[NodeRef], QueryStats]:
        """Q4: the full descendant closure of files derived from
        ``program`` — same scan, deeper local traversal."""
        window = _Measured(self.account)
        index = self._fetch_all(parallel)
        outputs = self._direct_outputs_local(index, program)
        descendants: Set[NodeRef] = set(outputs)
        for ref in outputs:
            descendants |= index.descendants(ref)
        return sorted(descendants), window.stats()

    @staticmethod
    def _direct_outputs_local(index: ProvenanceIndex, program: str) -> Set[NodeRef]:
        procs = {
            ref
            for ref in index.find("name", program)
            if "proc" in index.attributes(ref).get("type", [])
        }
        outputs: Set[NodeRef] = set()
        for proc in procs:
            for dependent in index.direct_dependents(proc):
                if "file" in index.attributes(dependent).get("type", []):
                    outputs.add(dependent)
        return outputs


class SimpleDBQueryEngine:
    """Queries against P2/P3's SimpleDB items."""

    def __init__(
        self,
        account: CloudAccount,
        domain: str = "pass-prov",
        bucket: str = "pass-data",
        parallel_connections: int = 8,
        in_chunk: int = IN_CHUNK,
    ):
        if in_chunk < 1:
            raise ValueError("in_chunk must be >= 1")
        self.account = account
        self.domain = domain
        self.bucket = bucket
        self.parallel_connections = parallel_connections
        #: Values per ``IN (...)`` chunk — tunable per engine so the
        #: planner-fanout bench can sweep it.
        self.in_chunk = in_chunk
        self.fanout = ShardFanoutStats()
        # Telemetry: routing counters as callback gauges, labelled per
        # engine instance (an experiment often builds several engines).
        telemetry = account.telemetry
        label = f"query-engine-{telemetry.instance_id('query-engine')}"
        fanout = self.fanout
        telemetry.metrics.gauge_fn(
            "query.single_shard_chunks",
            lambda: fanout.single_shard_chunks,
            engine=label,
        )
        telemetry.metrics.gauge_fn(
            "query.fanned_out_selects",
            lambda: fanout.fanned_out_selects,
            engine=label,
        )
        telemetry.metrics.gauge_fn(
            "query.bloom_skipped_selects",
            lambda: fanout.bloom_skipped_selects,
            engine=label,
        )

    # -- domain routing (overridden by the sharded engine) ---------------------

    def _domains(self) -> Sequence[str]:
        """Every domain holding provenance items, in stable order."""
        return (self.domain,)

    def _domain_for_uuid(self, uuid: str) -> str:
        """The single domain holding the items of one object's uuid."""
        return self.domain

    def _domains_for_names(
        self, names: Sequence[str]
    ) -> List[Tuple[str, List[str]]]:
        """Group item names by the domain that owns them, preserving
        order within each group.  The base engine has one domain; the
        sharded engine routes each name to its owning shard via the
        router's uuid hash."""
        return [(self.domain, list(names))]

    def _domains_for_values(
        self, attribute: str, values: Sequence[str]
    ) -> Sequence[str]:
        """Domains that might hold an item with ``attribute`` equal to
        any of ``values``.  The base engine has one domain and no way
        to rule it out; the sharded engine consults the router's
        per-shard Bloom filters and skips shards that provably cannot
        match (counting the skips in ``fanout.bloom_skipped_selects``).
        """
        del attribute, values
        return self._domains()

    # -- internals ------------------------------------------------------------

    def _rows_to_index(self, rows) -> ProvenanceIndex:
        index = ProvenanceIndex()
        for name, attributes in rows:
            try:
                ref = NodeRef.parse(name)
            except ValueError:
                continue
            index.ingest_attribute_map(ref, self._resolve(attributes))
        return index

    def _resolve(self, attributes: Dict[str, List[str]]) -> Dict[str, List[str]]:
        """Fetch spilled values / overflow records back from S3."""
        resolved: Dict[str, List[str]] = {}
        for attribute, values in attributes.items():
            if attribute == OVERFLOW_ATTRIBUTE:
                for value in values:
                    if not is_spill_pointer(value):
                        continue
                    try:
                        blob, _ = self.account.s3.get(
                            self.bucket, spill_pointer_key(value)
                        )
                    except NoSuchKeyError:
                        continue
                    if blob.data is not None:
                        for record in decode_records(blob.text()):
                            resolved.setdefault(record.attribute, []).append(
                                record.value_text()
                            )
                continue
            out = []
            for value in values:
                if is_spill_pointer(value):
                    try:
                        blob, _ = self.account.s3.get(
                            self.bucket, spill_pointer_key(value)
                        )
                        out.append(
                            blob.text() if blob.data is not None else value
                        )
                    except NoSuchKeyError:
                        out.append(value)
                else:
                    out.append(value)
            resolved.setdefault(attribute, []).extend(out)
        return resolved

    def _paged_rows(
        self, prepared: PreparedSelect
    ) -> List[Tuple[str, Dict[str, List[str]]]]:
        """One select chain run to completion: the single parsed/planned
        :class:`PreparedSelect` is reused across every next-token page
        instead of re-parsing the expression per page."""
        self.fanout.note_select(prepared.domain)
        return self.account.simpledb.select(prepared)

    def _run_select_chains(
        self, selects: Sequence[PreparedSelect], parallel: bool
    ) -> List[Tuple[str, Dict[str, List[str]]]]:
        """Run independent select chains to completion, concatenating
        their rows in chain order.  With ``parallel`` the first pages go
        out in one batch and each chain's continuation pages advance
        sequentially (next-tokens cannot be parallelized within a
        chain)."""
        rows: List[Tuple[str, Dict[str, List[str]]]] = []
        if parallel:
            for prepared in selects:
                self.fanout.note_select(prepared.domain)
            requests = [
                self.account.simpledb.select_request(prepared)
                for prepared in selects
            ]
            batch = self.account.scheduler.execute_batch(
                requests, self.parallel_connections
            )
            for expr_index, page in enumerate(batch.results):
                rows.extend(page.rows)
                token = page.next_token
                while token:
                    next_page = self.account.scheduler.execute_one(
                        self.account.simpledb.select_request(
                            selects[expr_index], token
                        )
                    )
                    rows.extend(next_page.rows)
                    token = next_page.next_token
        else:
            for prepared in selects:
                rows.extend(self._paged_rows(prepared))
        return rows

    def _select_by_names(
        self, names: Sequence[str], parallel: bool = False
    ) -> List[Tuple[str, Dict[str, List[str]]]]:
        """All visible items with the given names, fetched as chunked
        ``itemName() IN (...)`` selects.  Unlike attribute-rooted
        lookups these chunks are *routable*: each chunk's names all hash
        to one known domain, so on a sharded deployment it contacts
        exactly the owning shard instead of fanning out."""
        selects: List[PreparedSelect] = []
        for domain, group in self._domains_for_names(names):
            for start in range(0, len(group), self.in_chunk):
                chunk = group[start : start + self.in_chunk]
                selects.append(
                    prepare_select(
                        "select * from {} where itemName() in ({})".format(
                            domain, ", ".join(f"'{name}'" for name in chunk)
                        )
                    )
                )
        self.fanout.single_shard_chunks += len(selects)
        return self._run_select_chains(selects, parallel)

    def _select_procs_named(self, program: str) -> List[NodeRef]:
        refs: List[NodeRef] = []
        for domain in self._domains_for_values("name", (program,)):
            rows = self._paged_rows(prepare_select(
                f"select * from {domain} where name = '{program}' and type = 'proc'"
            ))
            refs.extend(NodeRef.parse(name) for name, _ in rows)
        return refs

    def _select_referencing(
        self, attribute: str, targets: Sequence[NodeRef], parallel: bool
    ) -> List[Tuple[str, Dict[str, List[str]]]]:
        """All items whose ``attribute`` references any of ``targets``,
        issued as chunked ``IN`` selects (parallelizable — each chunk is
        independent, unlike Q1's next-token chain).  With a sharded
        router the referencing items may live in any domain, so each
        chunk fans out — to every shard whose Bloom filter admits one of
        the chunk's values (``_domains_for_values``; the base engine and
        a bloom-disabled sharded engine fan to all).  Each chunk's
        expression is prepared once and reused for its whole
        continuation chain."""
        chunks = [
            [str(ref) for ref in targets[i : i + self.in_chunk]]
            for i in range(0, len(targets), self.in_chunk)
        ]
        selects = [
            prepare_select(
                "select * from {} where {} in ({})".format(
                    domain,
                    attribute,
                    ", ".join(f"'{value}'" for value in chunk),
                )
            )
            for chunk in chunks
            for domain in self._domains_for_values(attribute, chunk)
        ]
        self.fanout.fanned_out_selects += len(selects)
        return self._run_select_chains(selects, parallel)

    # -- the four queries ------------------------------------------------------------

    def q1_all_provenance(
        self, parallel: bool = False
    ) -> Tuple[ProvenanceIndex, QueryStats]:
        """Q1: ``SELECT *`` paged to completion.  The next-token chain is
        inherently sequential, so ``parallel`` changes nothing (§5.3
        reports no parallel number for SimpleDB Q1)."""
        del parallel
        window = _Measured(self.account)
        rows: List[Tuple[str, Dict[str, List[str]]]] = []
        for domain in self._domains():
            rows.extend(self._paged_rows(prepare_select(f"select * from {domain}")))
        index = self._rows_to_index(rows)
        return index, window.stats()

    def q2_object_provenance(
        self, path: str
    ) -> Tuple[Dict[str, List[str]], QueryStats]:
        """Q2: HEAD the object for its uuid, then select its items."""
        window = _Measured(self.account)
        head = self.account.s3.head(self.bucket, data_key(path))
        uuid = head.metadata.get("prov-uuid", "")
        merged: Dict[str, List[str]] = {}
        if uuid:
            rows = self._paged_rows(prepare_select(
                "select * from {} where itemName() like '{}_%'".format(
                    self._domain_for_uuid(uuid), uuid
                )
            ))
            for _name, attributes in rows:
                for attribute, values in self._resolve(attributes).items():
                    merged.setdefault(attribute, []).extend(values)
        return merged, window.stats()

    def q2_version_range(
        self,
        path: str,
        first_version: int,
        last_version: int,
        parallel: bool = False,
    ) -> Tuple[Dict[str, List[str]], QueryStats]:
        """Q2 bounded by version: the provenance of one object's
        versions ``first_version..last_version`` (inclusive) — the
        version-bounded ancestry lookups the paper's queries are shaped
        like.  HEAD the data object for its uuid, then fetch exactly the
        items ``uuid_first .. uuid_last`` through itemName-rooted IN
        chunks.  Explicit names rather than an item-name range because
        versions in item names are not zero-padded (``uuid_10`` sorts
        before ``uuid_2``); on a sharded deployment every chunk routes
        to the one shard owning the uuid."""
        window = _Measured(self.account)
        head = self.account.s3.head(self.bucket, data_key(path))
        uuid = head.metadata.get("prov-uuid", "")
        merged: Dict[str, List[str]] = {}
        if uuid and last_version >= first_version:
            names = [
                str(NodeRef(uuid, version))
                for version in range(first_version, last_version + 1)
            ]
            for _name, attributes in self._select_by_names(names, parallel):
                for attribute, values in self._resolve(attributes).items():
                    merged.setdefault(attribute, []).extend(values)
        return merged, window.stats()

    def q3_direct_outputs(
        self, program: str, parallel: bool = False
    ) -> Tuple[List[NodeRef], QueryStats]:
        """Q3: select the program's process items, then select the file
        items referencing them — two indexed lookups."""
        window = _Measured(self.account)
        procs = self._select_procs_named(program)
        outputs: Set[NodeRef] = set()
        if procs:
            for name, attributes in self._select_referencing(
                "input", procs, parallel
            ):
                if "file" in attributes.get("type", []):
                    outputs.add(NodeRef.parse(name))
        return sorted(outputs), window.stats()

    def q4_all_descendants(
        self, program: str, parallel: bool = False
    ) -> Tuple[List[NodeRef], QueryStats]:
        """Q4: repeat Q3's reference lookup recursively until the full
        descendant closure is found (§5.3)."""
        window = _Measured(self.account)
        frontier = self._select_procs_named(program)
        seen: Set[NodeRef] = set()
        results: Set[NodeRef] = set()
        while frontier:
            rows = self._select_referencing("input", frontier, parallel)
            next_frontier: List[NodeRef] = []
            for name, _attributes in rows:
                ref = NodeRef.parse(name)
                if ref in seen:
                    continue
                seen.add(ref)
                results.add(ref)
                next_frontier.append(ref)
            frontier = next_frontier
        return sorted(results), window.stats()


class ShardedSimpleDBQueryEngine(SimpleDBQueryEngine):
    """Q1–Q4 over provenance spread across N shard domains.

    Fan-out/merge on top of the single-domain engine: Q2 routes straight
    to the one shard holding the object's items (the stable uuid hash
    makes that lookup local), Q3/Q4's reference lookups fan out to every
    shard, and Q1 pages each shard's next-token chain — chains of
    *different* shards are independent, so unlike the single-domain case
    Q1 can run them in parallel.  The routing is *index-aware* for
    itemName-rooted chunks: a ``itemName() IN (...)`` chunk's names all
    hash to a known shard, so `_select_by_names` contacts exactly the
    owning shard instead of fanning the chunk to every domain
    (``fanout.single_shard_chunks`` vs ``fanout.fanned_out_selects``).
    Answers are byte-identical to the single-domain engine over the same
    store: routing moves items between domains but never changes them.

    With ``bloom_routing`` (the default) attribute-rooted lookups are
    pruned through the router's per-shard Bloom filters: a chunk is only
    sent to shards whose filter admits at least one of its values, and
    itemName-rooted chunks are dropped whole when no name in them can
    exist.  Sound when ingest went through the routed write pipeline
    (every production path); a filter false positive costs one select
    chain that returns no rows — never a wrong answer, because every
    issued select still verifies its rows.  Pass ``bloom_routing=False``
    for the full-fan-out baseline (also the safe mode for stores
    populated behind the router's back).
    """

    def __init__(
        self,
        account: CloudAccount,
        router,
        bucket: str = "pass-data",
        parallel_connections: int = 8,
        in_chunk: int = IN_CHUNK,
        bloom_routing: bool = True,
    ):
        super().__init__(
            account,
            domain=router.domains[0],
            bucket=bucket,
            parallel_connections=parallel_connections,
            in_chunk=in_chunk,
        )
        self.router = router
        self.bloom_routing = bloom_routing

    def _bloom(self):
        if not self.bloom_routing:
            return None
        return getattr(self.router, "bloom", None)

    def _domains(self) -> Sequence[str]:
        return self.router.domains

    def _domain_for_uuid(self, uuid: str) -> str:
        return self.router.domain_for(uuid)

    def _domains_for_names(
        self, names: Sequence[str]
    ) -> List[Tuple[str, List[str]]]:
        """Route each ``uuid_version`` item name to its owning shard via
        the router's stable uuid hash — the index-aware fan-out: a chunk
        of names never needs to visit a shard that cannot hold them.
        With Bloom routing a whole group is dropped when the owning
        shard's filter rules out every name in it (a version-range probe
        past an object's last version costs nothing at all)."""
        grouped: Dict[str, List[str]] = {}
        for name in names:
            uuid = name.rpartition("_")[0] or name
            grouped.setdefault(self.router.domain_for(uuid), []).append(name)
        bloom = self._bloom()
        if bloom is None:
            return list(grouped.items())
        kept: List[Tuple[str, List[str]]] = []
        for domain, group in grouped.items():
            if bloom.might_contain_any_name(domain, group):
                kept.append((domain, group))
            else:
                self.fanout.bloom_skipped_chunks += 1
        return kept

    def _domains_for_values(
        self, attribute: str, values: Sequence[str]
    ) -> Sequence[str]:
        """Every shard whose Bloom filter admits at least one of the
        values — the attribute-rooted pruning that shrinks Q3/Q4's
        chunk x domain fan-out."""
        bloom = self._bloom()
        if bloom is None:
            return self._domains()
        kept = [
            domain
            for domain in self.router.domains
            if bloom.might_contain_any_value(domain, attribute, values)
        ]
        self.fanout.bloom_skipped_selects += len(self.router.domains) - len(
            kept
        )
        return kept

    def q1_all_provenance(
        self, parallel: bool = False
    ) -> Tuple[ProvenanceIndex, QueryStats]:
        """Q1 with cross-shard parallelism: the per-domain next-token
        chains stay sequential, but the first page of every shard goes
        out in one batch and each chain advances independently."""
        if not parallel or len(self._domains()) == 1:
            return super().q1_all_provenance(parallel=False)
        window = _Measured(self.account)
        selects = [
            prepare_select(f"select * from {domain}") for domain in self._domains()
        ]
        rows = self._run_select_chains(selects, parallel=True)
        return self._rows_to_index(rows), window.stats()


def query_engine_for(protocol_name: str, account: CloudAccount, **kwargs):
    """Engine matching a protocol's provenance backend (P1 → S3;
    P2/P3 → SimpleDB).  Pass ``router=`` to get the shard-aware engine
    for a multi-domain deployment."""
    if protocol_name == "p1":
        return S3QueryEngine(account, **kwargs)
    if protocol_name in ("p2", "p3"):
        router = kwargs.pop("router", None)
        if router is not None and len(router.domains) > 1:
            kwargs.pop("domain", None)  # the router owns domain selection
            return ShardedSimpleDBQueryEngine(account, router, **kwargs)
        if router is not None:
            kwargs.setdefault("domain", router.domains[0])
        return SimpleDBQueryEngine(account, **kwargs)
    raise ValueError(f"no query backend for protocol {protocol_name!r}")
