"""Client-side provenance graph reconstruction.

P1 has no server-side query capability: clients download provenance
objects and process them locally (§5.3: "we implemented these two queries
in S3 by retrieving all provenance objects and then processing the query
locally").  :class:`ProvenanceIndex` is that local processing: it ingests
records and answers attribute lookups and closure queries.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.provenance.graph import NodeRef
from repro.provenance.records import ProvenanceRecord

#: Attributes whose values are node references (dependency edges).
XREF_ATTRIBUTES = frozenset({"input", "forkparent", "exec", "version-of"})


class ProvenanceIndex:
    """An in-memory index over fetched provenance records."""

    def __init__(self) -> None:
        #: ref -> attribute -> values
        self._attributes: Dict[NodeRef, Dict[str, List[str]]] = defaultdict(
            lambda: defaultdict(list)
        )
        #: dependency edges: ref -> ancestors it points at.
        self._out: Dict[NodeRef, Set[NodeRef]] = defaultdict(set)
        #: reverse edges: ref -> nodes that point at it.
        self._in: Dict[NodeRef, Set[NodeRef]] = defaultdict(set)

    def ingest(self, records: Iterable[ProvenanceRecord]) -> None:
        """Add records to the index."""
        for record in records:
            self.add(record.subject, record.attribute, record.value_text())

    def add(self, subject: NodeRef, attribute: str, value: str) -> None:
        """Add one attribute value (parsing xrefs into edges)."""
        self._attributes[subject][attribute].append(value)
        if attribute in XREF_ATTRIBUTES:
            try:
                target = NodeRef.parse(value)
            except ValueError:
                return
            self._out[subject].add(target)
            self._in[target].add(subject)

    def ingest_attribute_map(
        self, ref: NodeRef, attributes: Dict[str, List[str]]
    ) -> None:
        """Add a whole attribute map for one node (SimpleDB item shape)."""
        for attribute, values in attributes.items():
            for value in values:
                self.add(ref, attribute, value)

    # -- lookups -------------------------------------------------------------

    def refs(self) -> List[NodeRef]:
        return sorted(self._attributes)

    def attributes(self, ref: NodeRef) -> Dict[str, List[str]]:
        return {a: list(v) for a, v in self._attributes.get(ref, {}).items()}

    def find(self, attribute: str, value: str) -> List[NodeRef]:
        """All nodes with ``attribute`` containing ``value``."""
        return sorted(
            ref
            for ref, attrs in self._attributes.items()
            if value in attrs.get(attribute, [])
        )

    def versions_of(self, uuid: str) -> List[NodeRef]:
        return sorted(ref for ref in self._attributes if ref.uuid == uuid)

    # -- closures ---------------------------------------------------------------

    def ancestors(self, ref: NodeRef) -> Set[NodeRef]:
        """Transitive dependencies of ``ref`` (excluding itself)."""
        return self._closure(ref, self._out)

    def descendants(self, ref: NodeRef) -> Set[NodeRef]:
        """Transitive dependents of ``ref`` (excluding itself)."""
        return self._closure(ref, self._in)

    def direct_dependents(self, ref: NodeRef) -> Set[NodeRef]:
        return set(self._in.get(ref, set()))

    def ancestors_direct(self, ref: NodeRef) -> Set[NodeRef]:
        """Direct dependencies (one hop along out-edges)."""
        return set(self._out.get(ref, set()))

    def _closure(
        self, ref: NodeRef, adjacency: Dict[NodeRef, Set[NodeRef]]
    ) -> Set[NodeRef]:
        seen: Set[NodeRef] = set()
        stack = [ref]
        while stack:
            current = stack.pop()
            for nxt in adjacency.get(current, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def __len__(self) -> int:
        return len(self._attributes)
