"""Calibrated performance envelopes for the simulated services.

The paper reports service behaviour qualitatively (S3 and SQS scale to at
least 150 concurrent connections while SimpleDB peaks around 40; SQS is
dramatically faster for provenance upload; SimpleDB is the slowest) and
quantitatively in Table 2 (324.7 s / 537.1 s / 36.2 s to upload 50 MB of
provenance to S3 / SimpleDB / SQS).  The constants below are calibrated so
the simulator reproduces those shapes:

- every request pays a WAN round-trip latency (2009-era, client to AWS),
- bytes move at a per-connection bandwidth, additionally capped by the
  client NIC shared across all active connections,
- SimpleDB pays a per-item processing cost (this is what makes
  ``BatchPutAttributes`` slow and why SimpleDB loses Table 2),
- each service stops benefiting from extra connections past its cap.

Environment profiles model where the client runs (native EC2, a UML guest
on EC2, or a local machine across the WAN); period profiles model the
service-side improvements the paper observed between September 2009 and
December 2009/January 2010.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


@dataclass(frozen=True)
class ServiceProfile:
    """Performance envelope of one cloud service.

    Attributes:
        name: service identifier ("s3", "simpledb", "sqs").
        request_latency_s: fixed per-*write*-request time (WAN RTT plus
            the service's commit path: S3 PUTs replicate before they
            acknowledge, which is why writes are ~25× slower than reads).
        read_latency_s: fixed per-*read*-request time (GET/HEAD/Select).
            Calibrated from the paper's Table 5: Q2 on S3 costs 0.060 s —
            one HEAD plus one GET at ~30 ms each.
        per_connection_bw: sustained bytes/second one connection achieves
            (effectively NIC-limited; the client NIC cap in the
            environment profile is the binding constraint).
        per_item_s: service-side seconds per attribute-value pair,
            serialized through the service's shared indexing pipeline
            (SimpleDB only; zero for S3/SQS).  The pipeline limits
            *sustained* ingest — isolated calls stay fast — which is what
            makes SimpleDB lose Table 2 yet add little to Figure 4.
        max_useful_connections: adding connections beyond this count gives
            no additional throughput (the paper measured ~150 for S3/SQS
            and ~40 for SimpleDB).
        propagation_delay_mean_s: mean time for a write to become visible
            at every replica (the eventual-consistency window).
    """

    name: str
    request_latency_s: float
    per_connection_bw: float
    read_latency_s: float = 0.03
    per_item_s: float = 0.0
    max_useful_connections: int = 150
    propagation_delay_mean_s: float = 4.0

    def scaled(self, latency_scale: float, bw_scale: float) -> "ServiceProfile":
        """Return a copy with latency and bandwidth scaled (period model)."""
        return replace(
            self,
            request_latency_s=self.request_latency_s * latency_scale,
            read_latency_s=self.read_latency_s * latency_scale,
            per_item_s=self.per_item_s * latency_scale,
            per_connection_bw=self.per_connection_bw * bw_scale,
        )


@dataclass(frozen=True)
class EnvironmentProfile:
    """Where the client runs.

    Attributes:
        name: "ec2", "uml", or "local".
        nic_bw: aggregate client network bandwidth in bytes/second, shared
            by all concurrent connections.
        extra_latency_s: additional per-request latency (a local machine
            is further from AWS than an EC2 instance).
        cpu_factor: multiplier on client-side compute time (UML guests are
            slower than native EC2).
        memory_penalty: multiplier applied to the compute time of
            memory-hungry workloads (the paper found Blast thrashing in
            UML's 512 MB guest: 650 s native vs 1322 s under UML).
        prov_cpu_per_request_s: client-side CPU seconds spent preparing
            each provenance request (PASS record extraction, DPAPI
            marshalling, serialization).  This work is serial on the
            client and is the main reason provenance upload costs more
            than its byte count suggests; scaled by ``cpu_factor``.
        prov_cpu_per_item_s: client-side CPU seconds per attribute-value
            pair marshalled into a SimpleDB request (the 2009 API's
            per-pair XML/HTTP encoding); what makes P2 the slowest
            protocol in the paper's microbenchmark.
        instance_hourly_usd: EC2 instance cost attributed to the run
            (zero for a local machine).
    """

    name: str
    nic_bw: float
    extra_latency_s: float = 0.0
    cpu_factor: float = 1.0
    memory_penalty: float = 1.0
    prov_cpu_per_request_s: float = 0.04
    prov_cpu_per_item_s: float = 0.0005
    instance_hourly_usd: float = 0.0


@dataclass(frozen=True)
class PeriodProfile:
    """When the experiment ran.

    AWS performance improved over the paper's measurement window; elapsed
    times dropped between 4 % and 44.5 % from September 2009 to
    December 2009/January 2010.  We model that as a uniform service-side
    speedup.
    """

    name: str
    latency_scale: float = 1.0
    bw_scale: float = 1.0


# --------------------------------------------------------------------------
# Calibrated defaults
# --------------------------------------------------------------------------

#: S3, January-2010 behaviour as seen from EC2 (us-east).  The write
#: latency is calibrated against Table 2 (uploading ~65 k provenance
#: versions over 150 connections in ~325 s), the read latency against
#: Table 5 (Q2 = HEAD + GET = 0.060 s).
S3_PROFILE = ServiceProfile(
    name="s3",
    request_latency_s=0.50,
    read_latency_s=0.03,
    per_connection_bw=50 * MB,
    per_item_s=0.0,
    max_useful_connections=150,
    propagation_delay_mean_s=4.0,
)

#: SimpleDB: a shared per-attribute indexing pipeline and a ~40-connection
#: ceiling.  Calibrated against Table 2: 50 MB of provenance = ~690 k
#: attribute pairs at ~1300 pairs/s sustained = ~537 s.
SIMPLEDB_PROFILE = ServiceProfile(
    name="simpledb",
    request_latency_s=0.70,
    read_latency_s=0.03,
    per_connection_bw=50 * MB,
    per_item_s=0.00078,
    max_useful_connections=40,
    propagation_delay_mean_s=4.0,
)

#: SQS: same WAN write latency, but 8 KB bundling means far fewer
#: requests — Table 2's 36.2 s for 50 MB (~6400 messages, 150 conns).
SQS_PROFILE = ServiceProfile(
    name="sqs",
    request_latency_s=0.80,
    read_latency_s=0.10,
    per_connection_bw=50 * MB,
    per_item_s=0.0,
    max_useful_connections=150,
    propagation_delay_mean_s=2.0,
)

#: Native EC2 Medium instance (the paper's benchmark host).
EC2_ENV = EnvironmentProfile(
    name="ec2",
    nic_bw=int(5.6 * MB),
    extra_latency_s=0.0,
    cpu_factor=1.0,
    memory_penalty=1.0,
    instance_hourly_usd=0.17,
)

#: User-Mode Linux guest (512 MB) on an EC2 Medium instance.  The paper
#: measured nightly-backup I/O at 419 s native vs 528 s under UML
#: (cpu_factor ~1.26) and Blast at 650 s vs 1322 s (memory_penalty ~2.03).
UML_ENV = EnvironmentProfile(
    name="uml",
    nic_bw=int(5.6 * MB),
    extra_latency_s=0.0,
    cpu_factor=1.26,
    memory_penalty=2.03,
    instance_hourly_usd=0.17,
)

#: A local machine across the WAN: slower uplink, higher RTT, no EC2 bill.
LOCAL_ENV = EnvironmentProfile(
    name="local",
    nic_bw=int(3.0 * MB),
    extra_latency_s=0.05,
    cpu_factor=1.0,
    memory_penalty=1.0,
    instance_hourly_usd=0.0,
)

#: September 2009: services were measurably slower.
SEP09 = PeriodProfile(name="sep09", latency_scale=1.25, bw_scale=0.80)

#: December 2009 / January 2010: the baseline for the calibrated profiles.
DEC09 = PeriodProfile(name="dec09", latency_scale=1.0, bw_scale=1.0)


@dataclass(frozen=True)
class SimulationProfile:
    """Complete performance configuration for one experiment run."""

    s3: ServiceProfile = S3_PROFILE
    simpledb: ServiceProfile = SIMPLEDB_PROFILE
    sqs: ServiceProfile = SQS_PROFILE
    environment: EnvironmentProfile = EC2_ENV
    period: PeriodProfile = DEC09

    def service(self, name: str) -> ServiceProfile:
        """Return the period-adjusted profile for a service by name."""
        base = {"s3": self.s3, "simpledb": self.simpledb, "sqs": self.sqs}
        try:
            profile = base[name]
        except KeyError:
            raise ValueError(f"unknown service {name!r}") from None
        return profile.scaled(self.period.latency_scale, self.period.bw_scale)

    def with_environment(self, env: EnvironmentProfile) -> "SimulationProfile":
        """Return a copy of this profile running in a different environment."""
        return replace(self, environment=env)

    def with_period(self, period: PeriodProfile) -> "SimulationProfile":
        """Return a copy of this profile measured in a different period."""
        return replace(self, period=period)


ENVIRONMENTS = {"ec2": EC2_ENV, "uml": UML_ENV, "local": LOCAL_ENV}
PERIODS = {"sep09": SEP09, "dec09": DEC09}
