"""Simulated Amazon SQS (circa January 2010).

Semantics implemented (§2.3 and §4.3.3 of the paper):

- queues identified by URL,
- ``SendMessage`` with an 8 KB body limit (the limit that forces P3 to
  chunk provenance and to spill data payloads to temporary S3 objects),
- ``ReceiveMessage`` returns up to 10 messages with a *visibility
  timeout*: a received message is hidden from other consumers until the
  timeout lapses, then redelivered (at-least-once delivery),
- ``DeleteMessage`` by receipt handle,
- best-effort ordering: approximately FIFO, with occasional seeded
  reordering,
- messages are retained for four days and then silently dropped —
  exactly the garbage-collection behaviour P3 relies on for abandoned
  transactions.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cloud.billing import BillingMeter
from repro.cloud.network import ParallelScheduler, Request
from repro.cloud.profiles import ServiceProfile
from repro.errors import InvalidRequestError, LimitExceededError, NoSuchQueueError

#: SQS message body limit (8 KB).
MESSAGE_LIMIT_BYTES = 8 * 1024

#: Messages are retained for four days, then dropped.
RETENTION_SECONDS = 4 * 24 * 3600.0

#: Maximum messages returned by one ReceiveMessage call.
RECEIVE_BATCH_LIMIT = 10

#: Default visibility timeout, seconds.
DEFAULT_VISIBILITY_TIMEOUT = 30.0


@dataclass
class Message:
    """A message as seen by a consumer."""

    message_id: str
    receipt_handle: str
    body: str
    sent_at: float


@dataclass
class _StoredMessage:
    message_id: str
    body: str
    sent_at: float
    invisible_until: float = 0.0
    deleted: bool = False
    receipt_counter: int = 0


@dataclass
class _Queue:
    url: str
    messages: List[_StoredMessage] = field(default_factory=list)
    #: receipt handle -> message id (handles invalidate on redelivery).
    receipts: Dict[str, str] = field(default_factory=dict)


class SQSService:
    """In-process SQS stand-in."""

    service_name = "sqs"

    def __init__(
        self,
        scheduler: ParallelScheduler,
        profile: ServiceProfile,
        billing: BillingMeter,
        seed: int = 0,
        duplicate_delivery_rate: float = 0.0,
        telemetry=None,
    ):
        self._scheduler = scheduler
        self._profile = profile
        self._billing = billing
        self._rng = random.Random(seed)
        self._queues: Dict[str, _Queue] = {}
        self._ids = itertools.count(1)
        self._telemetry = telemetry
        #: Probability a received message is delivered twice (fault knob).
        self.duplicate_delivery_rate = duplicate_delivery_rate

    @property
    def profile(self) -> ServiceProfile:
        return self._profile

    def create_queue(self, name: str) -> str:
        """Create a queue; returns its URL (idempotent)."""
        url = f"sqs://queues/{name}"
        if url not in self._queues:
            self._queues[url] = _Queue(url=url)
            if self._telemetry is not None:
                self._telemetry.metrics.gauge_fn(
                    "sqs.queue_depth",
                    lambda url=url: self.pending_count(url),
                    queue=name,
                )
        return url

    def _queue(self, url: str) -> _Queue:
        try:
            return self._queues[url]
        except KeyError:
            raise NoSuchQueueError(f"queue {url!r} does not exist") from None

    # -- request builders ----------------------------------------------------

    def send_request(self, url: str, body: str) -> Request:
        """Build a SendMessage request; resolves to the message id."""
        encoded = body.encode("utf-8")
        if len(encoded) > MESSAGE_LIMIT_BYTES:
            raise LimitExceededError(
                f"message body is {len(encoded)} bytes; SQS limit is "
                f"{MESSAGE_LIMIT_BYTES}"
            )
        if not body:
            raise InvalidRequestError("message body must be non-empty")
        queue = self._queue(url)
        size = len(encoded)

        def apply(start: float, finish: float) -> str:
            message_id = f"msg-{next(self._ids)}"
            queue.messages.append(
                _StoredMessage(message_id=message_id, body=body, sent_at=finish)
            )
            self._billing.record("sqs", "SendMessage", bytes_in=size)
            return message_id

        return Request(
            profile=self._profile,
            apply=apply,
            payload_bytes=size,
            label=f"sqs.Send {url}",
        )

    def receive_request(
        self,
        url: str,
        max_messages: int = RECEIVE_BATCH_LIMIT,
        visibility_timeout: float = DEFAULT_VISIBILITY_TIMEOUT,
    ) -> Request:
        """Build a ReceiveMessage request; resolves to a list of
        :class:`Message` (possibly empty)."""
        if not 1 <= max_messages <= RECEIVE_BATCH_LIMIT:
            raise InvalidRequestError(
                f"max_messages must be in [1, {RECEIVE_BATCH_LIMIT}]"
            )
        queue = self._queue(url)

        def apply(start: float, finish: float) -> List[Message]:
            self._expire(queue, start)
            available = [
                m
                for m in queue.messages
                if not m.deleted and m.invisible_until <= start
            ]
            # Best-effort ordering: approximately FIFO with light shuffling.
            if len(available) > 1 and self._rng.random() < 0.2:
                self._rng.shuffle(available)
            picked = available[:max_messages]
            delivered: List[Message] = []
            for stored in picked:
                stored.invisible_until = start + visibility_timeout
                stored.receipt_counter += 1
                handle = f"{stored.message_id}#r{stored.receipt_counter}"
                queue.receipts[handle] = stored.message_id
                delivered.append(
                    Message(stored.message_id, handle, stored.body, stored.sent_at)
                )
                if (
                    self.duplicate_delivery_rate > 0
                    and self._rng.random() < self.duplicate_delivery_rate
                    and len(delivered) < max_messages
                ):
                    # At-least-once delivery: hand out a duplicate receipt.
                    stored.receipt_counter += 1
                    dup_handle = f"{stored.message_id}#r{stored.receipt_counter}"
                    queue.receipts[dup_handle] = stored.message_id
                    delivered.append(
                        Message(
                            stored.message_id, dup_handle, stored.body, stored.sent_at
                        )
                    )
            size = sum(len(m.body.encode()) for m in delivered)
            self._billing.record("sqs", "ReceiveMessage", bytes_out=size)
            return delivered

        return Request(
            profile=self._profile,
            apply=apply,
            read_only=True,
            label=f"sqs.Receive {url}",
        )

    def change_visibility_request(
        self,
        url: str,
        receipt_handle: str,
        visibility_timeout: float = 0.0,
    ) -> Request:
        """Build a ChangeMessageVisibility request: reset the message's
        invisibility window from *now*.  A timeout of ``0`` hands the
        message straight back to other consumers — how a retiring daemon
        returns an in-flight transaction to the WAL without waiting out
        the original visibility timeout.  Idempotent on stale handles;
        the receipt handle stays valid.

        The request only acts while the caller still *holds* the lease:
        the handle must be the message's most recent receipt and the
        invisibility window must still be open.  Once the lease has
        expired the message already belongs to the queue (or to whoever
        re-received it), so a late ``ChangeMessageVisibility`` — timeout
        ``0`` from a retiring daemon, or any other value — is a no-op
        rather than a clobber of the next consumer's lease."""
        if visibility_timeout < 0:
            raise InvalidRequestError(
                f"visibility_timeout must be >= 0 (got {visibility_timeout})"
            )
        queue = self._queue(url)

        def apply(start: float, finish: float) -> None:
            message_id = queue.receipts.get(receipt_handle)
            if message_id is not None:
                for stored in queue.messages:
                    if stored.message_id == message_id and not stored.deleted:
                        latest = f"{stored.message_id}#r{stored.receipt_counter}"
                        if receipt_handle == latest and stored.invisible_until > start:
                            stored.invisible_until = start + visibility_timeout
                        break
            self._billing.record("sqs", "ChangeMessageVisibility")

        return Request(
            profile=self._profile,
            apply=apply,
            label=f"sqs.ChangeVisibility {url}",
        )

    def delete_request(self, url: str, receipt_handle: str) -> Request:
        """Build a DeleteMessage request (idempotent on stale handles)."""
        queue = self._queue(url)

        def apply(start: float, finish: float) -> None:
            message_id = queue.receipts.pop(receipt_handle, None)
            if message_id is not None:
                for stored in queue.messages:
                    if stored.message_id == message_id:
                        stored.deleted = True
                        break
            self._billing.record("sqs", "DeleteMessage")

        return Request(
            profile=self._profile,
            apply=apply,
            label=f"sqs.Delete {url}",
        )

    # -- sequential conveniences ----------------------------------------------

    def send_message(self, url: str, body: str) -> str:
        return self._scheduler.execute_one(self.send_request(url, body))

    def receive_messages(
        self,
        url: str,
        max_messages: int = RECEIVE_BATCH_LIMIT,
        visibility_timeout: float = DEFAULT_VISIBILITY_TIMEOUT,
    ) -> List[Message]:
        return self._scheduler.execute_one(
            self.receive_request(url, max_messages, visibility_timeout)
        )

    def delete_message(self, url: str, receipt_handle: str) -> None:
        self._scheduler.execute_one(self.delete_request(url, receipt_handle))

    def change_visibility(
        self, url: str, receipt_handle: str, visibility_timeout: float = 0.0
    ) -> None:
        self._scheduler.execute_one(
            self.change_visibility_request(url, receipt_handle, visibility_timeout)
        )

    # -- internals --------------------------------------------------------------

    @staticmethod
    def _expire(queue: _Queue, now: float) -> None:
        cutoff = now - RETENTION_SECONDS
        for stored in queue.messages:
            if not stored.deleted and stored.sent_at < cutoff:
                stored.deleted = True

    # -- omniscient inspection (tests & daemons' bookkeeping) --------------------

    def pending_count(self, url: str, now: Optional[float] = None) -> int:
        """Number of undeleted, unexpired messages (tests/monitoring)."""
        queue = self._queue(url)
        if now is not None:
            self._expire(queue, now)
        return sum(1 for m in queue.messages if not m.deleted)
