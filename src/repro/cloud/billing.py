"""AWS price book (January 2010) and usage metering.

Table 4 of the paper reports per-benchmark USD costs around one dollar;
the dominant components are data transfer into S3, S3 storage, request
charges, and the EC2 instance-hours consumed by the run.  The constants
here are the published US-East prices from the paper's measurement window.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict

GB = 1024.0 ** 3


@dataclass(frozen=True)
class PriceBook:
    """US-East prices, January 2010 (USD)."""

    # S3
    s3_storage_gb_month: float = 0.15
    s3_data_in_gb: float = 0.10
    s3_data_out_gb: float = 0.17
    s3_put_per_1000: float = 0.01  # PUT, COPY, POST, LIST
    s3_get_per_10000: float = 0.01
    # SimpleDB
    sdb_machine_hour: float = 0.14
    sdb_data_in_gb: float = 0.10
    sdb_data_out_gb: float = 0.17
    sdb_box_usage_hours_per_request: float = 0.0000057
    #: Box usage per attribute-value pair written (SimpleDB metered
    #: "machine utilization" roughly proportionally to pairs touched).
    sdb_box_usage_hours_per_item: float = 0.0000044
    # SQS
    sqs_per_10000_requests: float = 0.01
    sqs_data_in_gb: float = 0.10
    sqs_data_out_gb: float = 0.17
    # EC2 (Medium instance, the paper's benchmark host)
    ec2_medium_hour: float = 0.17


@dataclass
class ServiceUsage:
    """Accumulated usage counters for one service."""

    requests: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    bytes_in: int = 0
    bytes_out: int = 0
    items: int = 0

    def total_requests(self) -> int:
        return sum(self.requests.values())


class BillingMeter:
    """Meters every simulated request and prices the total.

    The meter is intentionally dumb: services call :meth:`record` on each
    request; experiments call :meth:`cost` with the run's storage footprint
    and elapsed instance time to obtain a Table 4-style USD figure.
    """

    def __init__(self, prices: PriceBook = PriceBook()):
        self.prices = prices
        self.usage: Dict[str, ServiceUsage] = defaultdict(ServiceUsage)

    def record(
        self,
        service: str,
        op: str,
        bytes_in: int = 0,
        bytes_out: int = 0,
        items: int = 0,
    ) -> None:
        """Record one request against ``service`` (e.g. ``("s3", "PUT")``)."""
        entry = self.usage[service]
        entry.requests[op] += 1
        entry.bytes_in += bytes_in
        entry.bytes_out += bytes_out
        entry.items += items

    # -- reporting ---------------------------------------------------------

    def bind_metrics(self, registry) -> None:
        """Expose the running totals as callback gauges on a
        :class:`~repro.obs.metrics.MetricsRegistry` — the scraper then
        turns spend into a time series without the meter changing."""
        registry.gauge_fn("billing.operations", self.operation_count)
        registry.gauge_fn("billing.bytes_tx", self.bytes_transmitted)
        registry.gauge_fn("billing.bytes_rx", self.bytes_received)
        registry.gauge_fn("billing.cost_usd", self.cost)

    def operation_count(self, service: str = "") -> int:
        """Total requests, optionally restricted to one service."""
        if service:
            return self.usage[service].total_requests()
        return sum(u.total_requests() for u in self.usage.values())

    def bytes_transmitted(self, service: str = "") -> int:
        """Total bytes sent to the cloud (uploads)."""
        if service:
            return self.usage[service].bytes_in
        return sum(u.bytes_in for u in self.usage.values())

    def bytes_received(self, service: str = "") -> int:
        """Total bytes received from the cloud (downloads)."""
        if service:
            return self.usage[service].bytes_out
        return sum(u.bytes_out for u in self.usage.values())

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Per-service request counts by operation (for Table 3/5)."""
        return {
            service: dict(entry.requests) for service, entry in self.usage.items()
        }

    def diff_operations(self, before: Dict[str, Dict[str, int]]) -> int:
        """Requests issued since a :meth:`snapshot`."""
        now = self.operation_count()
        then = sum(sum(ops.values()) for ops in before.values())
        return now - then

    # -- pricing -----------------------------------------------------------

    def cost(
        self,
        stored_gb_month: float = 0.0,
        instance_hours: float = 0.0,
    ) -> float:
        """Total USD for the metered usage.

        Args:
            stored_gb_month: GB-months of S3 storage the run is billed for
                (the paper bills a month of storage for the uploaded data).
            instance_hours: EC2 Medium instance-hours consumed by the run.
        """
        p = self.prices
        total = 0.0
        s3 = self.usage.get("s3", ServiceUsage())
        put_like = sum(
            count
            for op, count in s3.requests.items()
            if op in ("PUT", "COPY", "POST", "LIST")
        )
        get_like = sum(
            count for op, count in s3.requests.items() if op in ("GET", "HEAD")
        )
        total += put_like / 1000.0 * p.s3_put_per_1000
        total += get_like / 10000.0 * p.s3_get_per_10000
        total += s3.bytes_in / GB * p.s3_data_in_gb
        total += s3.bytes_out / GB * p.s3_data_out_gb
        total += stored_gb_month * p.s3_storage_gb_month

        sdb = self.usage.get("simpledb", ServiceUsage())
        box_hours = (
            sdb.total_requests() * p.sdb_box_usage_hours_per_request
            + sdb.items * p.sdb_box_usage_hours_per_item
        )
        total += box_hours * p.sdb_machine_hour
        total += sdb.bytes_in / GB * p.sdb_data_in_gb
        total += sdb.bytes_out / GB * p.sdb_data_out_gb

        sqs = self.usage.get("sqs", ServiceUsage())
        total += sqs.total_requests() / 10000.0 * p.sqs_per_10000_requests
        total += sqs.bytes_in / GB * p.sqs_data_in_gb
        total += sqs.bytes_out / GB * p.sqs_data_out_gb

        total += instance_hours * p.ec2_medium_hour
        return total

    def reset(self) -> None:
        """Clear all counters (new experiment)."""
        self.usage = defaultdict(ServiceUsage)
