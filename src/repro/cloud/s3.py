"""Simulated Amazon S3 (circa January 2010).

Semantics implemented (the subset the paper's protocols rely on, §2.3):

- buckets of objects keyed by string; each object is data + user metadata,
- ``PUT`` atomically overwrites data *and* metadata (last writer wins),
- ``GET``/``HEAD`` may observe stale versions under eventual consistency,
- ``COPY`` is server-side (no client data transfer; the paper leans on
  this for P3's temp-to-final rename, priced at $0.01 per thousand),
- ``DELETE`` writes a tombstone; ``LIST`` returns keys in lexicographic
  order, paginated at 1000 per request,
- user metadata is limited to 2 KB per object.

Every operation is available in two forms: ``*_request`` builds a
:class:`~repro.cloud.network.Request` for batched parallel execution, and
the plain method executes sequentially against the virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cloud.billing import BillingMeter
from repro.cloud.blob import Blob
from repro.cloud.consistency import (
    ConsistencyEngine,
    ConsistencyModel,
    VersionedRegister,
)
from repro.cloud.network import ParallelScheduler, Request
from repro.cloud.profiles import ServiceProfile
from repro.errors import (
    InvalidRequestError,
    LimitExceededError,
    NoSuchBucketError,
    NoSuchKeyError,
)

#: Maximum user metadata per object (S3 limits headers to 2 KB).
METADATA_LIMIT_BYTES = 2 * 1024

#: LIST pagination size.
LIST_PAGE_SIZE = 1000


@dataclass(frozen=True)
class S3ObjectRecord:
    """Stored value of one object version: content plus user metadata."""

    blob: Blob
    metadata: Dict[str, str]


@dataclass(frozen=True)
class HeadResult:
    """Result of a HEAD request: metadata and content length."""

    metadata: Dict[str, str]
    content_length: int


def _metadata_size(metadata: Dict[str, str]) -> int:
    return sum(len(k) + len(v) for k, v in metadata.items())


class S3Service:
    """In-process S3 stand-in wired to a clock, scheduler, and meter."""

    service_name = "s3"

    def __init__(
        self,
        scheduler: ParallelScheduler,
        profile: ServiceProfile,
        billing: BillingMeter,
        consistency: Optional[ConsistencyEngine] = None,
    ):
        self._scheduler = scheduler
        self._profile = profile
        self._billing = billing
        self._consistency = consistency or ConsistencyEngine()
        self._buckets: Dict[str, Dict[str, VersionedRegister[S3ObjectRecord]]] = {}

    @property
    def profile(self) -> ServiceProfile:
        return self._profile

    # -- bucket management --------------------------------------------------

    def create_bucket(self, bucket: str) -> None:
        """Create a bucket (idempotent, free, instantaneous)."""
        self._buckets.setdefault(bucket, {})

    def _bucket(self, bucket: str) -> Dict[str, VersionedRegister[S3ObjectRecord]]:
        try:
            return self._buckets[bucket]
        except KeyError:
            raise NoSuchBucketError(f"bucket {bucket!r} does not exist") from None

    # -- request builders ----------------------------------------------------

    def put_request(
        self,
        bucket: str,
        key: str,
        blob: Blob,
        metadata: Optional[Dict[str, str]] = None,
    ) -> Request:
        """Build a PUT request (atomic data + metadata overwrite)."""
        metadata = dict(metadata or {})
        if not key:
            raise InvalidRequestError("object key must be non-empty")
        if _metadata_size(metadata) > METADATA_LIMIT_BYTES:
            raise LimitExceededError(
                f"metadata for {key!r} exceeds {METADATA_LIMIT_BYTES} bytes"
            )
        objects = self._bucket(bucket)

        def apply(start: float, finish: float) -> None:
            register = objects.setdefault(key, VersionedRegister())
            visible = self._consistency.visibility_for(finish)
            register.write(S3ObjectRecord(blob, metadata), finish, visible)
            self._billing.record("s3", "PUT", bytes_in=blob.size)

        return Request(
            profile=self._profile,
            apply=apply,
            payload_bytes=blob.size,
            label=f"s3.PUT {bucket}/{key}",
        )

    def get_request(self, bucket: str, key: str) -> Request:
        """Build a GET request; resolves to ``(Blob, metadata)``."""
        objects = self._bucket(bucket)
        size_hint = self._size_hint(objects, key)

        def apply(start: float, finish: float) -> Tuple[Blob, Dict[str, str]]:
            try:
                record = self._observe(objects, key, start)
            except NoSuchKeyError:
                # A 404 still costs a round trip.
                self._billing.record("s3", "GET")
                raise
            self._billing.record("s3", "GET", bytes_out=record.blob.size)
            return record.blob, dict(record.metadata)

        return Request(
            profile=self._profile,
            apply=apply,
            response_bytes=size_hint,
            read_only=True,
            label=f"s3.GET {bucket}/{key}",
        )

    def head_request(self, bucket: str, key: str) -> Request:
        """Build a HEAD request; resolves to :class:`HeadResult`."""
        objects = self._bucket(bucket)

        def apply(start: float, finish: float) -> HeadResult:
            self._billing.record("s3", "HEAD")
            record = self._observe(objects, key, start)
            return HeadResult(dict(record.metadata), record.blob.size)

        return Request(
            profile=self._profile,
            apply=apply,
            read_only=True,
            label=f"s3.HEAD {bucket}/{key}",
        )

    def copy_request(
        self,
        src_bucket: str,
        src_key: str,
        dst_bucket: str,
        dst_key: str,
        metadata: Optional[Dict[str, str]] = None,
    ) -> Request:
        """Build a server-side COPY.

        When ``metadata`` is given it replaces the destination metadata
        (S3's ``REPLACE`` directive — P3 uses this to stamp the new
        version during its temp-to-final copy); otherwise the source
        metadata is carried over.  No client bandwidth is consumed.
        """
        src_objects = self._bucket(src_bucket)
        dst_objects = self._bucket(dst_bucket)
        if metadata is not None and _metadata_size(metadata) > METADATA_LIMIT_BYTES:
            raise LimitExceededError("copy replacement metadata exceeds limit")

        def apply(start: float, finish: float) -> None:
            record = self._observe(src_objects, src_key, start)
            new_meta = dict(metadata) if metadata is not None else dict(record.metadata)
            register = dst_objects.setdefault(dst_key, VersionedRegister())
            visible = self._consistency.visibility_for(finish)
            register.write(S3ObjectRecord(record.blob, new_meta), finish, visible)
            self._billing.record("s3", "COPY")

        return Request(
            profile=self._profile,
            apply=apply,
            label=f"s3.COPY {src_bucket}/{src_key} -> {dst_bucket}/{dst_key}",
        )

    def delete_request(self, bucket: str, key: str) -> Request:
        """Build a DELETE (tombstone write; deleting a missing key is a
        silent success, matching S3)."""
        objects = self._bucket(bucket)

        def apply(start: float, finish: float) -> None:
            register = objects.setdefault(key, VersionedRegister())
            visible = self._consistency.visibility_for(finish)
            register.delete(finish, visible)
            self._billing.record("s3", "DELETE")

        return Request(
            profile=self._profile,
            apply=apply,
            label=f"s3.DELETE {bucket}/{key}",
        )

    def list_request(
        self, bucket: str, prefix: str = "", marker: str = ""
    ) -> Request:
        """Build one LIST page request; resolves to
        ``(keys, next_marker)`` where ``next_marker`` is empty when the
        listing is complete."""
        objects = self._bucket(bucket)

        def apply(start: float, finish: float) -> Tuple[List[str], str]:
            visible = []
            for key in sorted(objects):
                if key <= marker or not key.startswith(prefix):
                    continue
                record = objects[key].read(start, self._consistency.model)
                if record is not None and not record.deleted:
                    visible.append(key)
                if len(visible) > LIST_PAGE_SIZE:
                    break
            page = visible[:LIST_PAGE_SIZE]
            next_marker = page[-1] if len(visible) > LIST_PAGE_SIZE else ""
            self._billing.record("s3", "LIST", bytes_out=sum(len(k) for k in page))
            return page, next_marker

        return Request(
            profile=self._profile,
            apply=apply,
            read_only=True,
            label=f"s3.LIST {bucket}/{prefix}*",
        )

    # -- sequential conveniences ----------------------------------------------

    def put(
        self,
        bucket: str,
        key: str,
        blob: Blob,
        metadata: Optional[Dict[str, str]] = None,
    ) -> None:
        self._scheduler.execute_one(self.put_request(bucket, key, blob, metadata))

    def get(self, bucket: str, key: str) -> Tuple[Blob, Dict[str, str]]:
        return self._scheduler.execute_one(self.get_request(bucket, key))

    def head(self, bucket: str, key: str) -> HeadResult:
        return self._scheduler.execute_one(self.head_request(bucket, key))

    def copy(
        self,
        src_bucket: str,
        src_key: str,
        dst_bucket: str,
        dst_key: str,
        metadata: Optional[Dict[str, str]] = None,
    ) -> None:
        self._scheduler.execute_one(
            self.copy_request(src_bucket, src_key, dst_bucket, dst_key, metadata)
        )

    def delete(self, bucket: str, key: str) -> None:
        self._scheduler.execute_one(self.delete_request(bucket, key))

    def list_keys(self, bucket: str, prefix: str = "") -> List[str]:
        """List all keys under a prefix, issuing as many paginated LIST
        requests as needed."""
        keys: List[str] = []
        marker = ""
        while True:
            page, marker = self._scheduler.execute_one(
                self.list_request(bucket, prefix, marker)
            )
            keys.extend(page)
            if not marker:
                return keys

    # -- internals -------------------------------------------------------------

    def _observe(
        self,
        objects: Dict[str, VersionedRegister[S3ObjectRecord]],
        key: str,
        at: float,
    ) -> S3ObjectRecord:
        register = objects.get(key)
        if register is None:
            raise NoSuchKeyError(f"no such key {key!r}")
        version = register.read(at, self._consistency.model)
        if version is None or version.deleted or version.value is None:
            raise NoSuchKeyError(f"no such key {key!r} (not visible at t={at:.2f})")
        return version.value

    def _size_hint(
        self, objects: Dict[str, VersionedRegister[S3ObjectRecord]], key: str
    ) -> int:
        register = objects.get(key)
        if register is None:
            return 0
        latest = register.read_latest_committed(float("inf"))
        if latest is None or latest.deleted or latest.value is None:
            return 0
        return latest.value.blob.size

    # -- omniscient inspection (tests & property checkers only) ---------------

    def peek_latest(self, bucket: str, key: str) -> Optional[S3ObjectRecord]:
        """The fully propagated latest value, ignoring visibility delays.

        For property checkers and tests only — real clients cannot do this.
        """
        register = self._buckets.get(bucket, {}).get(key)
        if register is None:
            return None
        version = register.read_latest_committed(float("inf"))
        if version is None or version.deleted:
            return None
        return version.value

    def peek_keys(self, bucket: str, prefix: str = "") -> List[str]:
        """All non-deleted keys, ignoring visibility (tests only)."""
        result = []
        for key, register in self._buckets.get(bucket, {}).items():
            if not key.startswith(prefix):
                continue
            version = register.read_latest_committed(float("inf"))
            if version is not None and not version.deleted:
                result.append(key)
        return sorted(result)

    def ever_existed(self, bucket: str, key: str) -> bool:
        """Whether any write (including later-deleted) hit this key."""
        register = self._buckets.get(bucket, {}).get(key)
        return register is not None and register.ever_written()
