"""The :class:`CloudAccount` bundle.

One account is one experiment's cloud: a virtual clock, a scheduler tied
to an environment profile, the three services with their calibrated
(period-adjusted) profiles, a billing meter, and a fault plan.  Protocols
and workloads receive an account and never construct services directly.

The services themselves come from a pluggable *backend*
(:mod:`repro.backends`): ``"sim"`` (default) keeps everything in process
memory, ``"local"`` stores rows in sqlite and blobs on the filesystem —
same APIs, same seeded consistency draws, byte-identical answers.
"""

from __future__ import annotations

from typing import Optional

from repro.backends import build_backend
from repro.cloud.billing import BillingMeter, PriceBook
from repro.cloud.clock import Stopwatch, VirtualClock
from repro.cloud.consistency import ConsistencyModel
from repro.cloud.faults import FaultPlan
from repro.cloud.network import ParallelScheduler
from repro.cloud.profiles import SimulationProfile
from repro.obs import Telemetry


class CloudAccount:
    """Everything one experiment needs to talk to "AWS".

    Args:
        profile: the complete performance configuration (service
            envelopes, environment, period).
        consistency: ``EVENTUAL`` (AWS, the paper's assumption) or
            ``STRICT`` (Azure-style).
        seed: master seed for propagation delays and SQS reordering;
            fixing it makes runs bit-for-bit reproducible.
        faults: crash-point plan (defaults to a fresh, unarmed plan).
        telemetry: a :class:`~repro.obs.Telemetry` hub, or a bool to
            construct one enabled/disabled.  Telemetry is observational
            only — the suite pins that disabling it leaves answers and
            billing byte-identical.
        backend: which storage backend serves S3/SimpleDB/SQS —
            ``"sim"`` (in-memory, default) or ``"local"``
            (sqlite + filesystem; see :mod:`repro.backends.local`).
        backend_root: storage directory for on-disk backends.  Omitted,
            a temporary directory is used and removed by :meth:`close`;
            given, the data is durable across accounts.
        index_store: SimpleDB's secondary-index substrate — ``"array"``
            (default; string-id posting arrays and two-tier sorted runs)
            or ``"legacy"`` (the dict-of-sets baseline).  Answers and
            billing are byte-identical either way; the knob exists for
            equivalence tests and memory-comparison sweeps.
    """

    def __init__(
        self,
        profile: SimulationProfile = SimulationProfile(),
        consistency: ConsistencyModel = ConsistencyModel.EVENTUAL,
        seed: int = 0,
        faults: Optional[FaultPlan] = None,
        prices: PriceBook = PriceBook(),
        telemetry=None,
        backend: str = "sim",
        backend_root: Optional[str] = None,
        index_store: str = "array",
    ):
        self.profile = profile
        self.clock = VirtualClock()
        self.telemetry = Telemetry.coerce(telemetry)
        self.scheduler = ParallelScheduler(self.clock, profile.environment)
        self.billing = BillingMeter(prices)
        self.faults = faults if faults is not None else FaultPlan()
        self.consistency_model = consistency

        self._backend = build_backend(
            backend,
            scheduler=self.scheduler,
            profile=profile,
            billing=self.billing,
            consistency=consistency,
            seed=seed,
            telemetry=self.telemetry,
            root=backend_root,
            index_store=index_store,
        )
        self.backend = self._backend.name
        self.backend_root = self._backend.root
        self.s3 = self._backend.s3
        self.simpledb = self._backend.simpledb
        self.sqs = self._backend.sqs

        self.billing.bind_metrics(self.telemetry.metrics)

    def close(self) -> None:
        """Release backend resources (sqlite connections; temp dirs when
        the backend root was auto-created).  Idempotent; a no-op for the
        in-memory backend."""
        self._backend.close()

    def stopwatch(self) -> Stopwatch:
        """A stopwatch over the account's virtual clock."""
        return Stopwatch(self.clock)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now

    def settle(self, seconds: float = 60.0) -> None:
        """Advance the clock far enough for eventual consistency to settle
        (all pending writes become visible).  Used by experiments that
        need a quiescent view — e.g. running queries after an upload."""
        self.clock.advance(seconds)

    def instance_hours(self) -> float:
        """EC2 instance-hours consumed so far (elapsed virtual time when
        running on EC2/UML; zero for a local machine)."""
        if self.profile.environment.instance_hourly_usd == 0:
            return 0.0
        return self.clock.now / 3600.0
