"""The :class:`CloudAccount` bundle.

One account is one experiment's cloud: a virtual clock, a scheduler tied
to an environment profile, the three services with their calibrated
(period-adjusted) profiles, a billing meter, and a fault plan.  Protocols
and workloads receive an account and never construct services directly.
"""

from __future__ import annotations

from typing import Optional

from repro.cloud.billing import BillingMeter, PriceBook
from repro.cloud.clock import Stopwatch, VirtualClock
from repro.cloud.consistency import (
    ConsistencyEngine,
    ConsistencyModel,
    PropagationSampler,
)
from repro.cloud.faults import FaultPlan
from repro.cloud.network import ParallelScheduler
from repro.cloud.profiles import SimulationProfile
from repro.cloud.s3 import S3Service
from repro.cloud.simpledb import SimpleDBService
from repro.cloud.sqs import SQSService
from repro.obs import Telemetry


class CloudAccount:
    """Everything one experiment needs to talk to "AWS".

    Args:
        profile: the complete performance configuration (service
            envelopes, environment, period).
        consistency: ``EVENTUAL`` (AWS, the paper's assumption) or
            ``STRICT`` (Azure-style).
        seed: master seed for propagation delays and SQS reordering;
            fixing it makes runs bit-for-bit reproducible.
        faults: crash-point plan (defaults to a fresh, unarmed plan).
        telemetry: a :class:`~repro.obs.Telemetry` hub, or a bool to
            construct one enabled/disabled.  Telemetry is observational
            only — the suite pins that disabling it leaves answers and
            billing byte-identical.
    """

    def __init__(
        self,
        profile: SimulationProfile = SimulationProfile(),
        consistency: ConsistencyModel = ConsistencyModel.EVENTUAL,
        seed: int = 0,
        faults: Optional[FaultPlan] = None,
        prices: PriceBook = PriceBook(),
        telemetry=None,
    ):
        self.profile = profile
        self.clock = VirtualClock()
        self.telemetry = Telemetry.coerce(telemetry)
        self.scheduler = ParallelScheduler(self.clock, profile.environment)
        self.billing = BillingMeter(prices)
        self.faults = faults if faults is not None else FaultPlan()
        self.consistency_model = consistency

        s3_profile = profile.service("s3")
        sdb_profile = profile.service("simpledb")
        sqs_profile = profile.service("sqs")

        self.s3 = S3Service(
            self.scheduler,
            s3_profile,
            self.billing,
            ConsistencyEngine(
                consistency,
                PropagationSampler(s3_profile.propagation_delay_mean_s, seed + 1),
            ),
        )
        self.simpledb = SimpleDBService(
            self.scheduler,
            sdb_profile,
            self.billing,
            ConsistencyEngine(
                consistency,
                PropagationSampler(sdb_profile.propagation_delay_mean_s, seed + 2),
            ),
            telemetry=self.telemetry,
        )
        self.sqs = SQSService(
            self.scheduler,
            sqs_profile,
            self.billing,
            seed=seed + 3,
            telemetry=self.telemetry,
        )

        self.billing.bind_metrics(self.telemetry.metrics)

    def stopwatch(self) -> Stopwatch:
        """A stopwatch over the account's virtual clock."""
        return Stopwatch(self.clock)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now

    def settle(self, seconds: float = 60.0) -> None:
        """Advance the clock far enough for eventual consistency to settle
        (all pending writes become visible).  Used by experiments that
        need a quiescent view — e.g. running queries after an upload."""
        self.clock.advance(seconds)

    def instance_hours(self) -> float:
        """EC2 instance-hours consumed so far (elapsed virtual time when
        running on EC2/UML; zero for a local machine)."""
        if self.profile.environment.instance_hourly_usd == 0:
            return 0.0
        return self.clock.now / 3600.0
