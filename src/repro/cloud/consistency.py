"""Eventual consistency for the simulated services.

AWS circa 2009/2010 was eventually consistent (§2.3.1 of the paper): a GET
immediately after a PUT may return the previous version because the request
is served by a replica that has not yet received the update; concurrent
PUTs resolve last-writer-wins, but for a window either value may be
returned.

We model each key as a :class:`VersionedRegister` holding the full write
history.  Every write is stamped with its commit time and a *visibility
time* — commit time plus a propagation delay drawn from a seeded
exponential distribution.  A read at time ``t`` observes the latest write
whose visibility time is ``<= t``; writes still propagating are invisible,
which yields exactly the paper's stale-read behaviour deterministically
(given the seed).

``ConsistencyModel.STRICT`` disables the window (Azure-style services).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Any, Generic, List, Optional, TypeVar

T = TypeVar("T")


class ConsistencyModel(enum.Enum):
    """Visibility semantics for a service."""

    EVENTUAL = "eventual"
    STRICT = "strict"


@dataclass
class WriteVersion(Generic[T]):
    """One committed write: the value, when it committed, when it is
    visible everywhere, and whether it is a deletion tombstone."""

    value: Optional[T]
    committed_at: float
    visible_at: float
    deleted: bool = False


class PropagationSampler:
    """Draws propagation delays from a seeded exponential distribution.

    The delay is capped at four times the mean so pathological samples
    cannot make a write invisible forever.
    """

    def __init__(self, mean_delay_s: float, seed: int = 0):
        if mean_delay_s < 0:
            raise ValueError("mean delay must be non-negative")
        self._mean = mean_delay_s
        self._rng = random.Random(seed)

    def sample(self) -> float:
        if self._mean == 0:
            return 0.0
        return min(self._rng.expovariate(1.0 / self._mean), 4.0 * self._mean)


class VersionedRegister(Generic[T]):
    """Write history of one key under last-writer-wins semantics."""

    def __init__(self) -> None:
        self._history: List[WriteVersion[T]] = []

    def write(self, value: T, committed_at: float, visible_at: float) -> None:
        """Record a write; history is kept sorted by commit time."""
        self._insert(WriteVersion(value, committed_at, visible_at, deleted=False))

    def delete(self, committed_at: float, visible_at: float) -> None:
        """Record a deletion tombstone."""
        self._insert(WriteVersion(None, committed_at, visible_at, deleted=True))

    def _insert(self, version: WriteVersion[T]) -> None:
        self._history.append(version)
        # Writes usually arrive in commit order; keep the invariant cheap.
        if len(self._history) > 1 and (
            self._history[-1].committed_at < self._history[-2].committed_at
        ):
            self._history.sort(key=lambda v: v.committed_at)

    def read(self, at: float, model: ConsistencyModel) -> Optional[WriteVersion[T]]:
        """Latest observable version at time ``at``, or ``None`` if no
        write is visible yet.  Tombstones are returned (callers must check
        ``deleted``) so a visible delete hides earlier values."""
        best: Optional[WriteVersion[T]] = None
        for version in self._history:
            observable = (
                version.committed_at <= at
                if model is ConsistencyModel.STRICT
                else version.visible_at <= at
            )
            if observable and (best is None or version.committed_at >= best.committed_at):
                best = version
        return best

    def read_latest_committed(self, at: float) -> Optional[WriteVersion[T]]:
        """The true last-writer-wins value (what a fully propagated read
        would see), ignoring visibility delays."""
        return self.read(at, ConsistencyModel.STRICT)

    def history(self) -> List[WriteVersion[T]]:
        """All writes in commit order (for property checkers)."""
        return sorted(self._history, key=lambda v: v.committed_at)

    def ever_written(self) -> bool:
        return bool(self._history)


@dataclass
class ConsistencyEngine:
    """Shared visibility policy for one service instance."""

    model: ConsistencyModel = ConsistencyModel.EVENTUAL
    sampler: PropagationSampler = field(default_factory=lambda: PropagationSampler(4.0))

    def visibility_for(self, committed_at: float) -> float:
        """Compute the visible-at timestamp for a write committing now."""
        if self.model is ConsistencyModel.STRICT:
            return committed_at
        return committed_at + self.sampler.sample()
