"""Simulated AWS substrate.

This subpackage provides in-process stand-ins for the three cloud services
the paper's protocols use:

- :mod:`repro.cloud.s3` — an object store with S3 semantics,
- :mod:`repro.cloud.simpledb` — a semi-structured database service,
- :mod:`repro.cloud.sqs` — a distributed message queue,

plus the machinery that makes their behaviour faithful to 2009-era AWS:

- :mod:`repro.cloud.clock` — a virtual clock (all "time" in benchmarks is
  simulated, so experiments run deterministically and fast),
- :mod:`repro.cloud.profiles` — calibrated latency/throughput/parallelism
  envelopes per service, environment, and measurement period,
- :mod:`repro.cloud.consistency` — eventual consistency with configurable
  propagation windows (and a strict mode for Azure-style services),
- :mod:`repro.cloud.network` — a makespan scheduler for parallel request
  batches under per-service connection caps,
- :mod:`repro.cloud.billing` — the January-2010 AWS price book and usage
  meters,
- :mod:`repro.cloud.faults` — crash-point and message-fault injection,
- :mod:`repro.cloud.account` — a bundle of all of the above.
"""

from repro.cloud.account import CloudAccount
from repro.cloud.billing import BillingMeter, PriceBook
from repro.cloud.clock import VirtualClock
from repro.cloud.consistency import ConsistencyModel
from repro.cloud.faults import FaultPlan
from repro.cloud.network import ParallelScheduler
from repro.cloud.profiles import (
    EnvironmentProfile,
    PeriodProfile,
    ServiceProfile,
    SimulationProfile,
)
from repro.cloud.s3 import S3Service
from repro.cloud.simpledb import SimpleDBService
from repro.cloud.sqs import SQSService

__all__ = [
    "BillingMeter",
    "CloudAccount",
    "ConsistencyModel",
    "EnvironmentProfile",
    "FaultPlan",
    "ParallelScheduler",
    "PeriodProfile",
    "PriceBook",
    "S3Service",
    "ServiceProfile",
    "SimpleDBService",
    "SimulationProfile",
    "SQSService",
    "VirtualClock",
]
