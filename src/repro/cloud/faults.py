"""Fault injection.

The paper's property arguments (§3, §4.3) hinge on what survives when a
client crashes between cloud requests: P1/P2 decouple data from provenance
if the crash lands between the provenance write and the data write, while
P3's WAL lets another machine finish the transaction.

:class:`FaultPlan` arms named *crash points*.  Protocol code calls
:meth:`FaultPlan.crash_point` at each step boundary; if that point is
armed (and its countdown has reached zero) a
:class:`~repro.errors.ClientCrashError` propagates, abandoning all
in-memory client state while everything already applied to the simulated
services survives — exactly a machine crash from the cloud's point of
view.

Crash point names used by the protocols:

========================  =====================================================
``p1.after_prov_put``     P1: provenance object written, data object not yet
``p1.after_data_put``     P1: both writes done (crash after completion)
``p2.after_prov_put``     P2: SimpleDB items written, data object not yet
``p2.after_data_put``     P2: both writes done
``p3.mid_log``            P3: some WAL messages sent, transaction incomplete
``p3.after_log``          P3: WAL complete, commit daemon has not run
``p3.mid_commit``         P3: commit daemon crashed between commit steps
========================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ClientCrashError


@dataclass
class _ArmedPoint:
    """Countdown until the crash fires: 0 means "next hit crashes"."""

    remaining_skips: int = 0
    fired: bool = False


@dataclass
class TimedCrash:
    """A wall-of-virtual-time trigger: kill ``target`` at time ``at``.

    Crash points fire when code *reaches* a step boundary; timed crashes
    fire when the clock reaches ``at``, whatever the target is doing —
    "crash client 7 at t=42s".  The simulation kernel materialises armed
    timed crashes as events and kills the named process when they pop
    (``scheduled`` marks a crash the kernel has already enqueued).
    """

    target: str
    at: float
    fired: bool = False
    fired_at: float = -1.0
    scheduled: bool = False


@dataclass
class FaultPlan:
    """Arms crash points and counts how often each point was passed."""

    _armed: Dict[str, _ArmedPoint] = field(default_factory=dict)
    hits: Dict[str, int] = field(default_factory=dict)
    _timed: List[TimedCrash] = field(default_factory=list)

    def arm_crash(self, point: str, skip: int = 0) -> None:
        """Arm ``point`` so that its ``skip+1``-th hit raises
        :class:`ClientCrashError`."""
        self._armed[point] = _ArmedPoint(remaining_skips=skip)

    def disarm(self, point: str) -> None:
        """Remove the armed crash at ``point`` (idempotent)."""
        self._armed.pop(point, None)

    def disarm_all(self) -> None:
        self._armed.clear()

    def crash_point(self, point: str) -> None:
        """Called by protocol code at each step boundary."""
        self.hits[point] = self.hits.get(point, 0) + 1
        armed = self._armed.get(point)
        if armed is None or armed.fired:
            return
        if armed.remaining_skips > 0:
            armed.remaining_skips -= 1
            return
        armed.fired = True
        raise ClientCrashError(point)

    def fired(self, point: str) -> bool:
        """Whether the armed crash at ``point`` has already gone off."""
        armed = self._armed.get(point)
        return armed is not None and armed.fired

    # -- timed crashes ("crash client 7 at t=42s") ---------------------------

    def arm_timed_crash(self, target: str, at: float) -> TimedCrash:
        """Arm a crash that kills process ``target`` at virtual time
        ``at``.  Consumed by the simulation kernel."""
        if at < 0:
            raise ValueError(f"cannot arm a crash before t=0 (at={at})")
        crash = TimedCrash(target=target, at=at)
        self._timed.append(crash)
        return crash

    def timed_crashes_for(self, target: str) -> List[TimedCrash]:
        """Armed timed crashes naming ``target``, in arming order."""
        return [crash for crash in self._timed if crash.target == target]

    def fire_timed_crash(self, target: str, now: float) -> None:
        """Mark every due timed crash for ``target`` as fired."""
        for crash in self._timed:
            if crash.target == target and not crash.fired and crash.at <= now:
                crash.fired = True
                crash.fired_at = now


#: A plan with nothing armed — the default for healthy runs.
NO_FAULTS = FaultPlan()
