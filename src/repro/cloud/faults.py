"""Fault injection.

The paper's property arguments (§3, §4.3) hinge on what survives when a
client crashes between cloud requests: P1/P2 decouple data from provenance
if the crash lands between the provenance write and the data write, while
P3's WAL lets another machine finish the transaction.

:class:`FaultPlan` arms named *crash points*.  Protocol code calls
:meth:`FaultPlan.crash_point` at each step boundary; if that point is
armed (and its countdown has reached zero) a
:class:`~repro.errors.ClientCrashError` propagates, abandoning all
in-memory client state while everything already applied to the simulated
services survives — exactly a machine crash from the cloud's point of
view.

Crash point names used by the protocols:

========================  =====================================================
``p1.after_prov_put``     P1: provenance object written, data object not yet
``p1.after_data_put``     P1: both writes done (crash after completion)
``p2.after_prov_put``     P2: SimpleDB items written, data object not yet
``p2.after_data_put``     P2: both writes done
``p3.mid_log``            P3: some WAL messages sent, transaction incomplete
``p3.after_log``          P3: WAL complete, commit daemon has not run
``p3.mid_commit``         P3: commit daemon crashed between commit steps
========================  =====================================================

Beyond single crashes, :class:`FaultSchedule` (reachable as
``FaultPlan.schedule``) describes *chaos over time* for kernel runs:
recurring crashes (kill the target every N virtual seconds), respawn
policies (bring a fresh process up after its predecessor dies — the
"any other machine can run a daemon against the same queue" claim made
executable), and network-degradation windows that scale the
environment's ``extra_latency_s`` and arm SQS duplicate delivery
between two virtual times.  The schedule is declarative; the simulation
kernel is the interpreter (see :mod:`repro.sim.kernel`).

Every schedule action the kernel interprets is also *observable*: firing
a crash, spawning a respawn, or opening/closing a degradation window
emits a structured ``fault.*`` event (target, incarnation, clock time)
into the account's telemetry event log — ``SimKernel.fault_events``
lists them, and the timeline exporter renders them as instant markers on
the Perfetto fault lane (see :mod:`repro.obs`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional

from repro.errors import ClientCrashError


@dataclass
class _ArmedPoint:
    """Countdown until the crash fires: 0 means "next hit crashes"."""

    remaining_skips: int = 0
    fired: bool = False


@dataclass
class TimedCrash:
    """A wall-of-virtual-time trigger: kill ``target`` at time ``at``.

    Crash points fire when code *reaches* a step boundary; timed crashes
    fire when the clock reaches ``at``, whatever the target is doing —
    "crash client 7 at t=42s".  The simulation kernel materialises armed
    timed crashes as events and kills the named process when they pop
    (``scheduled`` marks a crash the kernel has already enqueued).
    """

    target: str
    at: float
    fired: bool = False
    fired_at: float = -1.0
    scheduled: bool = False


@dataclass
class RecurringCrash:
    """Kill ``target`` every ``every_s`` virtual seconds.

    The first kill lands at ``start_at`` (default: one period in), then
    every period after that, up to ``times`` kills (``None`` means
    unbounded — the schedule outlives any one process, which is what
    makes it compose with a respawn policy: the respawned process is
    killed again on the next beat).  ``fired_at`` records every kill;
    ``next_at``/``scheduled`` are kernel bookkeeping.
    """

    target: str
    every_s: float
    start_at: float
    times: Optional[int] = None
    fired_at: List[float] = field(default_factory=list)
    next_at: float = 0.0
    scheduled: bool = False

    def exhausted(self) -> bool:
        return self.times is not None and len(self.fired_at) >= self.times


@dataclass
class RespawnRecord:
    """Bookkeeping for one respawn: when the target died, the delay the
    policy chose (after backoff), and the virtual time the replacement
    was scheduled to start.  The *actual* first activation can land
    later than ``scheduled_at`` when the clock has already jumped past
    it (an experiment's settle); tests assert the scheduled-vs-actual
    gap from here plus the replacement process's time domain."""

    died_at: float
    delay_s: float
    scheduled_at: float


@dataclass
class RespawnPolicy:
    """Bring ``target`` back ``delay_s`` after it crashes.

    ``factory`` builds the replacement generator — typically a *fresh*
    object's process (e.g. a new ``CommitDaemon.process()``) resuming
    from durable service state, exactly the paper's recovery story: the
    WAL queue, not the dead process's memory, is the authority.  The
    kernel spawns the replacement under the same process name, so timed
    and recurring crashes aimed at that name keep applying to it.

    With ``base_delay_s`` set the policy backs off exponentially and
    deterministically: the n-th respawn (1-based) waits
    ``base_delay_s * multiplier**(n-1)`` seconds, capped at
    ``max_delay_s`` — a crash-looping target stops hot-respawning
    without any jitter that would break same-seed replay.  The default
    (``base_delay_s=None``) keeps the flat ``delay_s`` behaviour, so
    existing chaos schedules replay byte-identically.
    """

    target: str
    factory: Callable[[], Generator]
    delay_s: float = 1.0
    max_respawns: Optional[int] = None
    #: Backoff: first-respawn delay.  ``None`` means "no backoff, use
    #: the flat ``delay_s`` every time" (the pre-supervisor behaviour).
    base_delay_s: Optional[float] = None
    #: Backoff growth factor per successive respawn (>= 1).
    multiplier: float = 2.0
    #: Backoff ceiling; ``None`` leaves the growth uncapped.
    max_delay_s: Optional[float] = None
    #: Number of respawns performed so far (kernel bookkeeping).
    respawns: int = 0
    #: Virtual times at which replacements were scheduled.
    respawned_at: List[float] = field(default_factory=list)
    #: One :class:`RespawnRecord` per respawn — the scheduled delay (and
    #: time) each death actually got, for scheduled-vs-actual assertions.
    log: List[RespawnRecord] = field(default_factory=list)

    def exhausted(self) -> bool:
        return self.max_respawns is not None and self.respawns >= self.max_respawns

    def delay_for(self, respawn_index: int) -> float:
        """Delay the ``respawn_index``-th respawn (0-based) waits: the
        flat ``delay_s`` without backoff, else the capped exponential."""
        if self.base_delay_s is None:
            return self.delay_s
        delay = self.base_delay_s * (self.multiplier ** respawn_index)
        if self.max_delay_s is not None:
            delay = min(delay, self.max_delay_s)
        return delay


@dataclass
class DegradationWindow:
    """Degrade the network between virtual times ``t1`` and ``t2``.

    While the window is open the environment's per-request
    ``extra_latency_s`` becomes ``baseline * latency_scale +
    add_latency_s`` (both knobs exist because the EC2 baseline is 0.0 —
    a pure multiplier could never degrade it), and, when
    ``duplicate_delivery_rate`` is set, SQS delivers duplicates at that
    rate (the at-least-once behaviour a flaky network amplifies).  At
    ``t2`` the kernel restores exactly what it saved at ``t1``.
    Windows must not overlap: each restores the state it captured, so
    overlapping windows would resurrect a mid-degradation baseline.

    A window can also degrade a *single shard* instead of the whole
    network: with ``domain`` set, that SimpleDB domain's indexing
    pipeline runs ``item_scale`` times slower for the window's duration
    (the per-domain ingest ceiling of §5, temporarily collapsed on one
    shard) while every other shard keeps its baseline throughput —
    service-tier chaos for the shard-routed deployment.
    """

    t1: float
    t2: float
    latency_scale: float = 1.0
    add_latency_s: float = 0.0
    duplicate_delivery_rate: Optional[float] = None
    #: When set, only this SimpleDB domain's indexer pipeline degrades.
    domain: Optional[str] = None
    #: Per-item indexing slowdown applied to ``domain`` while open.
    item_scale: float = 1.0
    applied: bool = False
    restored: bool = False
    scheduled: bool = False
    #: What the kernel saved at t1 (restored verbatim at t2).
    saved_environment: object = None
    saved_duplicate_rate: float = 0.0
    saved_item_scale: float = 1.0


@dataclass
class FaultSchedule:
    """A declarative chaos timetable, interpreted by the kernel."""

    recurring: List[RecurringCrash] = field(default_factory=list)
    respawns: Dict[str, RespawnPolicy] = field(default_factory=dict)
    windows: List[DegradationWindow] = field(default_factory=list)

    def crash_every(
        self,
        target: str,
        every_s: float,
        start_at: Optional[float] = None,
        times: Optional[int] = None,
    ) -> RecurringCrash:
        """Arm a recurring kill of ``target``; first at ``start_at``
        (default one period in), then every ``every_s`` seconds."""
        if every_s <= 0:
            raise ValueError(f"every_s must be positive (got {every_s})")
        first = every_s if start_at is None else start_at
        if first < 0:
            raise ValueError(f"cannot schedule a crash before t=0 (at={first})")
        if times is not None and times < 1:
            raise ValueError(f"times must be >= 1 when given (got {times})")
        crash = RecurringCrash(
            target=target, every_s=every_s, start_at=first, times=times,
            next_at=first,
        )
        self.recurring.append(crash)
        return crash

    def respawn(
        self,
        target: str,
        factory: Callable[[], Generator],
        delay_s: float = 1.0,
        max_respawns: Optional[int] = None,
        base_delay_s: Optional[float] = None,
        multiplier: float = 2.0,
        max_delay_s: Optional[float] = None,
    ) -> RespawnPolicy:
        """Register a respawn policy for ``target`` (one per target;
        re-registering replaces the previous policy).  Passing
        ``base_delay_s`` switches the policy to deterministic
        exponential backoff (see :class:`RespawnPolicy`)."""
        if delay_s < 0:
            raise ValueError(f"delay_s must be >= 0 (got {delay_s})")
        if base_delay_s is not None and base_delay_s < 0:
            raise ValueError(f"base_delay_s must be >= 0 (got {base_delay_s})")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1 (got {multiplier})")
        if max_delay_s is not None:
            if base_delay_s is None:
                raise ValueError("max_delay_s needs base_delay_s")
            if max_delay_s < base_delay_s:
                raise ValueError(
                    f"max_delay_s ({max_delay_s}) must be >= base_delay_s "
                    f"({base_delay_s})"
                )
        policy = RespawnPolicy(
            target=target, factory=factory, delay_s=delay_s,
            max_respawns=max_respawns, base_delay_s=base_delay_s,
            multiplier=multiplier, max_delay_s=max_delay_s,
        )
        self.respawns[target] = policy
        return policy

    def degrade(
        self,
        t1: float,
        t2: float,
        latency_scale: float = 1.0,
        add_latency_s: float = 0.0,
        duplicate_delivery_rate: Optional[float] = None,
        domain: Optional[str] = None,
        item_scale: float = 1.0,
    ) -> DegradationWindow:
        """Arm a degradation window over [t1, t2).  With ``domain`` set,
        ``item_scale`` slows only that shard's indexing pipeline."""
        if t1 < 0 or t2 <= t1:
            raise ValueError(
                f"degradation window needs 0 <= t1 < t2 (got t1={t1}, t2={t2})"
            )
        if latency_scale < 0 or add_latency_s < 0:
            raise ValueError("degradation knobs must be non-negative")
        if item_scale < 1.0:
            raise ValueError(f"item_scale must be >= 1 (got {item_scale})")
        if item_scale != 1.0 and domain is None:
            raise ValueError("item_scale needs a target domain")
        window = DegradationWindow(
            t1=t1, t2=t2, latency_scale=latency_scale,
            add_latency_s=add_latency_s,
            duplicate_delivery_rate=duplicate_delivery_rate,
            domain=domain, item_scale=item_scale,
        )
        self.windows.append(window)
        return window

    def empty(self) -> bool:
        return not (self.recurring or self.respawns or self.windows)


@dataclass
class FaultPlan:
    """Arms crash points and counts how often each point was passed."""

    _armed: Dict[str, _ArmedPoint] = field(default_factory=dict)
    hits: Dict[str, int] = field(default_factory=dict)
    _timed: List[TimedCrash] = field(default_factory=list)
    #: The chaos timetable (recurring crashes, respawns, degradation
    #: windows), interpreted by the simulation kernel.
    schedule: FaultSchedule = field(default_factory=FaultSchedule)

    def arm_crash(self, point: str, skip: int = 0) -> None:
        """Arm ``point`` so that its ``skip+1``-th hit raises
        :class:`ClientCrashError`."""
        self._armed[point] = _ArmedPoint(remaining_skips=skip)

    def disarm(self, point: str) -> None:
        """Remove the armed crash at ``point`` (idempotent)."""
        self._armed.pop(point, None)

    def disarm_all(self) -> None:
        self._armed.clear()

    def crash_point(self, point: str) -> None:
        """Called by protocol code at each step boundary."""
        self.hits[point] = self.hits.get(point, 0) + 1
        armed = self._armed.get(point)
        if armed is None or armed.fired:
            return
        if armed.remaining_skips > 0:
            armed.remaining_skips -= 1
            return
        armed.fired = True
        raise ClientCrashError(point)

    def fired(self, point: str) -> bool:
        """Whether the armed crash at ``point`` has already gone off."""
        armed = self._armed.get(point)
        return armed is not None and armed.fired

    # -- timed crashes ("crash client 7 at t=42s") ---------------------------

    def arm_timed_crash(self, target: str, at: float) -> TimedCrash:
        """Arm a crash that kills process ``target`` at virtual time
        ``at``.  Consumed by the simulation kernel."""
        if at < 0:
            raise ValueError(f"cannot arm a crash before t=0 (at={at})")
        crash = TimedCrash(target=target, at=at)
        self._timed.append(crash)
        return crash

    def timed_crashes_for(self, target: str) -> List[TimedCrash]:
        """Armed timed crashes naming ``target``, in arming order."""
        return [crash for crash in self._timed if crash.target == target]

    def fire_timed_crash(self, target: str, now: float) -> None:
        """Mark every due timed crash for ``target`` as fired."""
        for crash in self._timed:
            if crash.target == target and not crash.fired and crash.at <= now:
                crash.fired = True
                crash.fired_at = now


#: A plan with nothing armed — the default for healthy runs.
NO_FAULTS = FaultPlan()
