"""Makespan scheduling of cloud requests over shared resources.

The protocols issue requests either sequentially (clock advances by each
request's duration) or in parallel batches (the paper parallelizes uploads
aggressively; §5 notes 150 connections for S3/SQS and 40 for SimpleDB).

Each request consumes up to three resources:

- a **connection** from the batch's pool (``k = min(requested, service
  cap)``): holds the request for its round-trip latency,
- the **client NIC**: payload/response bytes serialize through the
  client's uplink at the environment's ``nic_bw`` — ten parallel 100 MB
  uploads still move 1 GB through one NIC,
- the **service indexer** (SimpleDB only): batched attribute-value pairs
  serialize through the service's indexing pipeline at ``1/per_item_s``
  pairs per second.  This is what limits SimpleDB's *sustained* ingest
  (Table 2) while leaving isolated calls fast (Figure 4's small
  overheads), and why SimpleDB stops scaling with connections while S3
  and SQS keep going.

A batch's makespan is charged to the virtual clock; daemon work can be
scheduled with ``advance_clock=False`` (billed and applied, but excluded
from elapsed time, matching the paper's commit-daemon accounting).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.cloud.clock import VirtualClock
from repro.cloud.profiles import EnvironmentProfile, ServiceProfile


@dataclass
class Request:
    """One cloud request, prepared but not yet executed.

    Attributes:
        profile: the (period-adjusted) service profile that prices the
            request.
        apply: callable invoked as ``apply(start, finish)`` once the
            scheduler has placed the request; it mutates service state and
            returns the request's result.  Writes become *committed* at
            ``finish`` (visibility is then governed by the consistency
            model).
        payload_bytes: bytes sent to the service.
        response_bytes: bytes returned by the service.
        items: batched unit count serialized through the service indexer
            (SimpleDB: attribute-value pairs in a batch put).
        read_only: reads (GET/HEAD/Select/Receive) pay the service's
            ``read_latency_s`` instead of the write commit latency.
        indexer_key: which indexing pipeline the request's items serialize
            through.  Defaults to the service name; SimpleDB keys it per
            *domain*, because the service's ingest ceiling is per-domain
            (the §5 domain-limit discussion) — writes to different domains
            index independently, which is what makes shard routing scale.
        label: free-form description, used in error messages.
    """

    profile: ServiceProfile
    apply: Callable[[float, float], Any]
    payload_bytes: int = 0
    response_bytes: int = 0
    items: int = 0
    read_only: bool = False
    indexer_key: Optional[str] = None
    label: str = ""

    def latency(self, env: EnvironmentProfile) -> float:
        """Round-trip latency of this request."""
        base = (
            self.profile.read_latency_s
            if self.read_only
            else self.profile.request_latency_s
        )
        return base + env.extra_latency_s

    def transfer_bytes(self) -> int:
        return self.payload_bytes + self.response_bytes


@dataclass
class BatchResult:
    """Outcome of a scheduled batch: results plus timing."""

    results: List[Any]
    makespan: float
    started_at: float
    finished_at: float
    connections_used: int = 0
    request_finish_times: List[float] = field(default_factory=list)


class ParallelScheduler:
    """Schedules request batches against the virtual clock.

    The scheduler owns the shared-resource state (NIC, per-service
    indexer pipelines), which persists across batches: a daemon that
    saturates the uplink delays the requests that follow it.
    """

    def __init__(self, clock: VirtualClock, environment: EnvironmentProfile):
        self._clock = clock
        self._env = environment
        #: Time at which the client NIC frees up.
        self._nic_free_at = 0.0
        #: Per-service time at which the indexing pipeline frees up.
        self._indexer_free_at: Dict[str, float] = {}
        #: Per-pipeline multiplier on ``per_item_s`` — how a degradation
        #: window slows one shard's domain without touching the others.
        self._pipeline_item_scale: Dict[str, float] = {}

    @property
    def environment(self) -> EnvironmentProfile:
        return self._env

    def set_environment(self, environment: EnvironmentProfile) -> None:
        """Swap the environment mid-run.  Requests placed after the swap
        pay the new profile's latency; in-flight resource occupancy
        (NIC, indexers) carries over.  This is how degradation windows
        (:class:`~repro.cloud.faults.DegradationWindow`) take effect and
        how they restore the baseline afterwards."""
        self._env = environment

    def pipeline_item_scale(self, key: str) -> float:
        """Current ``per_item_s`` multiplier for one indexing pipeline."""
        return self._pipeline_item_scale.get(key, 1.0)

    def set_pipeline_item_scale(self, key: str, scale: float) -> None:
        """Scale one indexing pipeline's per-item cost (``1.0`` restores
        the baseline).  Keyed like :attr:`Request.indexer_key`, e.g.
        ``"simpledb:domain-2"`` for a single shard's domain."""
        if scale <= 0:
            raise ValueError(f"pipeline item scale must be > 0 (got {scale})")
        if scale == 1.0:
            self._pipeline_item_scale.pop(key, None)
        else:
            self._pipeline_item_scale[key] = scale

    def reset_resources(self) -> None:
        """Forget accumulated NIC/indexer occupancy (used after untimed
        setup such as input staging, so the measured run starts clean)."""
        self._nic_free_at = self._clock.now
        self._indexer_free_at.clear()

    # -- placement ------------------------------------------------------------

    def _place(self, request: Request, start: float) -> float:
        """Compute the finish time of a request starting at ``start`` and
        update the shared-resource state."""
        done = start + request.latency(self._env)
        transfer = request.transfer_bytes()
        if transfer > 0:
            rate = min(request.profile.per_connection_bw, self._env.nic_bw)
            begin = max(done, self._nic_free_at)
            done = begin + transfer / rate if rate > 0 else begin
            self._nic_free_at = done
        if request.items > 0 and request.profile.per_item_s > 0:
            pipeline = request.indexer_key or request.profile.name
            per_item = (
                request.profile.per_item_s
                * self._pipeline_item_scale.get(pipeline, 1.0)
            )
            begin = max(done, self._indexer_free_at.get(pipeline, 0.0))
            done = begin + request.items * per_item
            self._indexer_free_at[pipeline] = done
        return done

    def execute_one(self, request: Request) -> Any:
        """Execute a single request sequentially, advancing the clock."""
        start = self._clock.now
        finish = self._place(request, start)
        result = request.apply(start, finish)
        self._clock.advance_to(finish)
        return result

    def execute_batch(
        self,
        requests: Sequence[Request],
        connections: int,
        advance_clock: bool = True,
    ) -> BatchResult:
        """Execute ``requests`` over at most ``connections`` connections.

        Requests are placed greedily in submission order onto the
        earliest-free connection; results are returned in submission
        order.  When ``advance_clock`` is false the batch is scheduled and
        applied (state mutations land with correct timestamps) but the
        caller's clock does not move — this models work done by an
        asynchronous daemon whose time the paper excludes from elapsed
        measurements.
        """
        if not requests:
            now = self._clock.now
            return BatchResult([], 0.0, now, now, 0)
        if connections < 1:
            raise ValueError("connections must be >= 1")

        caps = {r.profile.max_useful_connections for r in requests}
        cap = min(caps)
        k = max(1, min(connections, cap, len(requests)))

        start = self._clock.now
        # Connection pool as a min-heap of (free_at, connection_id).
        pool = [(start, i) for i in range(k)]
        heapq.heapify(pool)

        results: List[Any] = []
        finish_times: List[float] = []
        batch_end = start
        for request in requests:
            free_at, conn = heapq.heappop(pool)
            finish = self._place(request, free_at)
            results.append(request.apply(free_at, finish))
            finish_times.append(finish)
            heapq.heappush(pool, (finish, conn))
            if finish > batch_end:
                batch_end = finish

        if advance_clock:
            self._clock.advance_to(batch_end)
        return BatchResult(
            results=results,
            makespan=batch_end - start,
            started_at=start,
            finished_at=batch_end,
            connections_used=k,
            request_finish_times=finish_times,
        )

    def estimate_batch(self, requests: Sequence[Request], connections: int) -> float:
        """Makespan a batch *would* take, without executing anything or
        disturbing the shared-resource state."""
        if not requests:
            return 0.0
        caps = {r.profile.max_useful_connections for r in requests}
        k = max(1, min(connections, min(caps), len(requests)))
        pool = [0.0] * k
        heapq.heapify(pool)
        nic_free = 0.0
        indexer_free: Dict[str, float] = {}
        end = 0.0
        for request in requests:
            free_at = heapq.heappop(pool)
            done = free_at + request.latency(self._env)
            transfer = request.transfer_bytes()
            if transfer > 0:
                rate = min(request.profile.per_connection_bw, self._env.nic_bw)
                begin = max(done, nic_free)
                done = begin + transfer / rate if rate > 0 else begin
                nic_free = done
            if request.items > 0 and request.profile.per_item_s > 0:
                pipeline = request.indexer_key or request.profile.name
                per_item = (
                    request.profile.per_item_s
                    * self._pipeline_item_scale.get(pipeline, 1.0)
                )
                begin = max(done, indexer_free.get(pipeline, 0.0))
                done = begin + request.items * per_item
                indexer_free[pipeline] = done
            heapq.heappush(pool, done)
            end = max(end, done)
        return end


def effective_bandwidth(
    profile: ServiceProfile, env: EnvironmentProfile, active_connections: int = 1
) -> float:
    """Best-case bytes/second for one transfer (NIC- or stream-capped)."""
    del active_connections  # transfers serialize through the NIC instead
    return max(1.0, min(profile.per_connection_bw, env.nic_bw))
