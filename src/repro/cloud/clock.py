"""Virtual clock.

Every simulated service charges operation time against a shared
:class:`VirtualClock` instead of sleeping.  Benchmarks therefore complete in
milliseconds of wall time while reporting realistic elapsed seconds, and —
because the clock is deterministic — repeated runs of the same experiment
produce identical numbers unless the seed changes.
"""

from __future__ import annotations


class VirtualClock:
    """A monotonically non-decreasing simulated clock, in seconds.

    The clock supports two usage styles:

    - ``advance(dt)`` — move time forward by ``dt`` seconds (sequential
      work),
    - ``advance_to(t)`` — jump to an absolute time, used by the parallel
      scheduler after it computes the makespan of a request batch.
    """

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError("clock cannot start before t=0")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds since the epoch of the run."""
        return self._now

    def advance(self, dt: float) -> float:
        """Advance the clock by ``dt`` seconds and return the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Advance the clock to absolute time ``t`` (no-op if in the past)."""
        if t > self._now:
            self._now = t
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.3f}s)"


class TimeDomain:
    """Per-process accounting of virtual time.

    The simulation kernel gives every process its own time domain: the
    shared :class:`VirtualClock` orders events globally, while the domain
    records what *this* process's timeline looked like — when it first
    ran, how much virtual time it spent executing charged work (busy)
    versus sleeping between activations (idle), and when it finished.
    This is the generalisation of the pre-kernel ``advance_clock=False``
    daemon accounting: the paper excludes commit-daemon time from client
    elapsed times, and under the kernel that falls out naturally because
    the daemon's busy time accrues to its own domain, not the client's.
    """

    def __init__(self, name: str):
        self.name = name
        self.busy_s = 0.0
        self.idle_s = 0.0
        self.activations = 0
        self.started_at: float = -1.0
        self.finished_at: float = -1.0
        self._last_seen = 0.0

    def activate(self, now: float) -> None:
        """Record one activation at virtual time ``now``."""
        if self.started_at < 0:
            self.started_at = now
        self.activations += 1
        self._last_seen = now

    def charge_busy(self, dt: float) -> None:
        self.busy_s += dt

    def charge_idle(self, dt: float) -> None:
        self.idle_s += dt

    def finish(self, now: float) -> None:
        if self.finished_at < 0:
            self.finished_at = now
        self._last_seen = now

    @property
    def elapsed(self) -> float:
        """Virtual seconds from first activation to completion (or to the
        latest activation while still running)."""
        if self.started_at < 0:
            return 0.0
        end = self.finished_at if self.finished_at >= 0 else self._last_seen
        return end - self.started_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TimeDomain({self.name!r}, busy={self.busy_s:.3f}s, "
            f"idle={self.idle_s:.3f}s, activations={self.activations})"
        )


class Stopwatch:
    """Measures elapsed virtual time across a region of code.

    Example::

        sw = Stopwatch(clock)
        ... run simulated work ...
        elapsed = sw.elapsed()
    """

    def __init__(self, clock: VirtualClock):
        self._clock = clock
        self._start = clock.now

    def restart(self) -> None:
        """Reset the stopwatch origin to the current time."""
        self._start = self._clock.now

    def elapsed(self) -> float:
        """Virtual seconds since construction (or the last restart)."""
        return self._clock.now - self._start
