"""Content blobs.

Workloads in the paper move hundreds of megabytes to gigabytes.  Storing
real bytes for those payloads would make the simulator needlessly slow, so
data payloads are :class:`Blob` values: a size, a content digest, and —
only when the content actually matters (provenance text, small records) —
the real bytes.

Two blobs are equal iff their sizes and digests match, which is exactly
the property the protocols' coupling-detection layer relies on (the paper
suggests storing a hash of the data in the provenance; §3).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Blob:
    """An immutable content value: ``size`` bytes with digest ``digest``."""

    size: int
    digest: str
    data: Optional[bytes] = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("blob size cannot be negative")
        if self.data is not None and len(self.data) != self.size:
            raise ValueError(
                f"blob data length {len(self.data)} != declared size {self.size}"
            )

    @staticmethod
    def from_bytes(data: bytes) -> "Blob":
        """A blob backed by real bytes (use for provenance payloads)."""
        return Blob(size=len(data), digest=hashlib.sha1(data).hexdigest(), data=data)

    @staticmethod
    def from_text(text: str) -> "Blob":
        """A blob from UTF-8 text."""
        return Blob.from_bytes(text.encode("utf-8"))

    @staticmethod
    def synthetic(size: int, identity: str) -> "Blob":
        """A blob standing in for ``size`` bytes of content identified by
        ``identity`` (e.g. a workload file path + version).  No bytes are
        allocated; the digest is derived from the identity so that two
        writes of "the same" content compare equal and a changed identity
        models changed content."""
        digest = hashlib.sha1(f"synthetic:{identity}:{size}".encode()).hexdigest()
        return Blob(size=size, digest=digest)

    def text(self) -> str:
        """Decode real bytes as UTF-8 (raises if the blob is synthetic)."""
        if self.data is None:
            raise ValueError("synthetic blob has no real bytes to decode")
        return self.data.decode("utf-8")

    def matches(self, other: "Blob") -> bool:
        """Content equality (size + digest)."""
        return self.size == other.size and self.digest == other.digest


EMPTY_BLOB = Blob.from_bytes(b"")
