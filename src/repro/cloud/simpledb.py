"""Simulated Amazon SimpleDB (circa January 2010).

Semantics implemented (§2.3 of the paper):

- domains of *items*; an item is a named bag of attribute-value pairs,
- attributes are multi-valued and schemaless; names and values are limited
  to 1 KB (the limit that forces P2/P3 to spill large provenance values to
  S3),
- ``BatchPutAttributes`` accepts at most 25 items per call,
- ``Select`` supports a subset of the SimpleDB query language used by the
  paper's queries: ``=``, ``!=``, ``<``, ``<=``, ``>``, ``>=``,
  ``BETWEEN ... AND ...``, ``LIKE 'prefix%'``, ``IN (...)``,
  ``AND``/``OR``, and ``itemName()``; every attribute is indexed, results
  are paginated with a next-token.  Comparisons are *lexicographic* on
  the string values, exactly like the real service — numeric attributes
  must be zero-padded by callers for range predicates to order correctly
  (``'0002' < '0010'`` but ``'10' < '2'``),
- reads are eventually consistent at item granularity.

Pagination is capped at :data:`SELECT_PAGE_ITEMS` items (standing in for
SimpleDB's 1 MB/2500-item response limits) — this is why the paper's Q1
needs several sequential round-trips on SimpleDB.

Select execution is *indexed*, like the real service: every
``put``/``batch_put``/``delete`` incrementally maintains per-domain
secondary indexes (attribute-value → item names, the sorted item-name
order, and a bisect-maintained sorted list of each attribute's distinct
values serving the ordered comparisons), and a small planner extracts
index-usable predicates from the parsed WHERE tree.  The indexes
over-approximate — they record every value an item has *ever* held,
except that an explicit ``DeleteAttributes`` un-indexes the deleted
pairs once the deletion has fully propagated (``replace`` puts never
un-index) — so each candidate is still verified through the same
eventually-consistent ``_observe`` read the full scan uses, keeping
answers, row ordering, and billing byte-identical to the
``use_indexes=False`` scan fallback.  A chain of pages runs off a
snapshot token: the match set is computed once at the first page and
served page by page, instead of re-matching the whole domain per page.
This makes a chain a *snapshot-consistent cursor* — a deliberate
semantic choice: writes whose visibility window elapses mid-chain no
longer surface in later pages (the pre-snapshot engine re-matched per
page and could; legacy numeric offset tokens keep that behaviour).
"""

from __future__ import annotations

import bisect
import re
import sys
from array import array
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.cloud.billing import BillingMeter
from repro.cloud.consistency import ConsistencyEngine, VersionedRegister
from repro.cloud.network import ParallelScheduler, Request
from repro.cloud.profiles import ServiceProfile
from repro.obs.tracing import SDB_VISIBLE
from repro.errors import (
    InvalidRequestError,
    LimitExceededError,
    NoSuchDomainError,
    QuerysyntaxError,
)

#: SimpleDB limits attribute names and values to 1 KB.
ATTRIBUTE_LIMIT_BYTES = 1024

#: Maximum items per BatchPutAttributes call.
BATCH_PUT_LIMIT = 25

#: Maximum attribute-value pairs per item.
ITEM_ATTRIBUTE_LIMIT = 256

#: Items returned per Select page.
SELECT_PAGE_ITEMS = 1200

#: Virtual seconds an untouched select snapshot survives before it is
#: garbage-collected (the way SQS expires in-flight messages): abandoned
#: chains — a crashed client mid-pagination, a query engine that stopped
#: following tokens — would otherwise pin their match sets forever.
SELECT_SNAPSHOT_TTL_SECONDS = 300.0

#: One item: (item name, [(attribute, value), ...]).
ItemPut = Tuple[str, Sequence[Tuple[str, str]]]

#: Materialized item attributes: attribute -> list of values.
ItemAttributes = Dict[str, List[str]]


# --------------------------------------------------------------------------
# Select expression AST + parser
# --------------------------------------------------------------------------

class _Condition:
    """Base class for parsed WHERE conditions."""

    def matches(self, item_name: str, attributes: ItemAttributes) -> bool:
        raise NotImplementedError


@dataclass
class _Comparison(_Condition):
    attribute: str
    op: str
    values: List[str]
    #: Compiled once at parse time.  Rebuilding the ``^...$`` regex per
    #: row dominated full-scan matching; conditions are immutable after
    #: parsing (``parse_select`` shares them through an LRU cache).
    _like_re: "Optional[re.Pattern[str]]" = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.op == "like":
            # re.escape turns % into \%; rewrite those as wildcards.
            pattern = self.values[0]
            regex = (
                "^"
                + re.escape(pattern).replace("\\%", ".*").replace("%", ".*")
                + "$"
            )
            self._like_re = re.compile(regex)

    def matches(self, item_name: str, attributes: ItemAttributes) -> bool:
        if self.attribute == "itemName()":
            candidates = [item_name]
        else:
            candidates = attributes.get(self.attribute, [])
        if self.op == "=":
            return any(v == self.values[0] for v in candidates)
        if self.op == "!=":
            # SimpleDB: true if any value differs (and the attribute exists).
            return any(v != self.values[0] for v in candidates)
        if self.op == "like":
            like_re = self._like_re
            return any(like_re.match(v) for v in candidates)
        if self.op == "in":
            allowed = set(self.values)
            return any(v in allowed for v in candidates)
        # Ordered comparisons are lexicographic on the raw strings, like
        # the real service; a multi-valued attribute matches if any of
        # its values does.
        if self.op == "<":
            return any(v < self.values[0] for v in candidates)
        if self.op == "<=":
            return any(v <= self.values[0] for v in candidates)
        if self.op == ">":
            return any(v > self.values[0] for v in candidates)
        if self.op == ">=":
            return any(v >= self.values[0] for v in candidates)
        if self.op == "between":
            low, high = self.values
            return any(low <= v <= high for v in candidates)
        raise QuerysyntaxError(f"unsupported operator {self.op!r}")

    def like_prefix(self) -> Optional[str]:
        """The pure prefix of a ``LIKE 'prefix%'`` pattern, or ``None``
        when the pattern wildcards anywhere but the tail (those fall back
        to scan matching)."""
        pattern = self.values[0]
        if pattern.endswith("%") and "%" not in pattern[:-1]:
            return pattern[:-1]
        if "%" not in pattern:
            return pattern  # exact match; range degenerates to one name
        return None


@dataclass
class _BoolOp(_Condition):
    op: str  # "and" | "or"
    left: _Condition
    right: _Condition

    def matches(self, item_name: str, attributes: ItemAttributes) -> bool:
        if self.op == "and":
            return self.left.matches(item_name, attributes) and self.right.matches(
                item_name, attributes
            )
        return self.left.matches(item_name, attributes) or self.right.matches(
            item_name, attributes
        )


_TOKEN_RE = re.compile(
    r"""
    \s*(
        '(?:[^']|'')*'            # quoted string (with '' escapes)
      | itemName\(\)              # item name function
      | [A-Za-z_][A-Za-z0-9_.\-]* # identifier / keyword
      | `[^`]+`                   # backtick-quoted attribute
      | != | <= | >= | < | > | = | \( | \) | ,
    )
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            if text[pos:].strip() == "":
                break
            raise QuerysyntaxError(f"cannot tokenize query at: {text[pos:]!r}")
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser for the WHERE clause grammar::

        expr    := term (OR term)*
        term    := factor (AND factor)*
        factor  := '(' expr ')' | comparison
        comparison := attr ('=' | '!=' | '<' | '<=' | '>' | '>=') value
                    | attr LIKE value
                    | attr BETWEEN value AND value
                    | attr IN '(' value (',' value)* ')'
    """

    def __init__(self, tokens: List[str]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> Optional[str]:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise QuerysyntaxError("unexpected end of query")
        self._pos += 1
        return token

    def parse(self) -> _Condition:
        expr = self._expr()
        if self._peek() is not None:
            raise QuerysyntaxError(f"trailing tokens: {self._tokens[self._pos:]}")
        return expr

    def _expr(self) -> _Condition:
        left = self._term()
        while self._peek() and self._peek().lower() == "or":
            self._next()
            left = _BoolOp("or", left, self._term())
        return left

    def _term(self) -> _Condition:
        left = self._factor()
        while self._peek() and self._peek().lower() == "and":
            self._next()
            left = _BoolOp("and", left, self._factor())
        return left

    def _factor(self) -> _Condition:
        if self._peek() == "(":
            self._next()
            expr = self._expr()
            if self._next() != ")":
                raise QuerysyntaxError("expected ')'")
            return expr
        return self._comparison()

    def _comparison(self) -> _Condition:
        attribute = self._attribute(self._next())
        op = self._next().lower()
        if op in ("=", "!=", "<", "<=", ">", ">="):
            return _Comparison(attribute, op, [self._value(self._next())])
        if op == "between":
            low = self._value(self._next())
            keyword = self._next()
            if keyword.lower() != "and":
                raise QuerysyntaxError(
                    f"expected AND in BETWEEN, got {keyword!r}"
                )
            high = self._value(self._next())
            return _Comparison(attribute, "between", [low, high])
        if op == "like":
            return _Comparison(attribute, "like", [self._value(self._next())])
        if op == "in":
            if self._next() != "(":
                raise QuerysyntaxError("expected '(' after IN")
            values = [self._value(self._next())]
            while self._peek() == ",":
                self._next()
                values.append(self._value(self._next()))
            if self._next() != ")":
                raise QuerysyntaxError("expected ')' closing IN list")
            return _Comparison(attribute, "in", values)
        raise QuerysyntaxError(f"unsupported operator {op!r}")

    @staticmethod
    def _attribute(token: str) -> str:
        if token.startswith("`") and token.endswith("`"):
            return token[1:-1]
        return token

    @staticmethod
    def _value(token: str) -> str:
        if not (token.startswith("'") and token.endswith("'")):
            raise QuerysyntaxError(f"expected quoted value, got {token!r}")
        return token[1:-1].replace("''", "'")


_SELECT_RE = re.compile(
    r"^\s*select\s+\*\s+from\s+(`[^`]+`|[A-Za-z0-9_.\-]+)(?:\s+where\s+(.*))?\s*$",
    re.IGNORECASE | re.DOTALL,
)


@lru_cache(maxsize=1024)
def _parse_select_cached(expression: str) -> Tuple[str, Optional[_Condition]]:
    match = _SELECT_RE.match(expression)
    if not match:
        raise QuerysyntaxError(f"cannot parse select expression: {expression!r}")
    domain = match.group(1)
    if domain.startswith("`"):
        domain = domain[1:-1]
    where = match.group(2)
    condition = _Parser(_tokenize(where)).parse() if where else None
    return domain, condition


def parse_select(expression: str) -> Tuple[str, Optional[_Condition]]:
    """Parse a ``SELECT * FROM domain [WHERE ...]`` expression.

    Returns the domain name and the parsed condition (``None`` for no
    WHERE clause).  Results are LRU-cached — conditions are immutable
    after parsing, so repeated selects (a paging chain, a daemon's poll
    loop) share one compiled condition tree.
    """
    return _parse_select_cached(expression)


@dataclass(frozen=True)
class PreparedSelect:
    """A parsed select, reusable across a whole next-token page chain.

    Build one with :func:`prepare_select` (or implicitly by passing an
    expression string to ``select_request``); pass it back for every
    continuation page so the expression is parsed and planned once per
    chain rather than once per page.
    """

    expression: str
    domain: str
    condition: Optional[_Condition]


def prepare_select(expression: str) -> PreparedSelect:
    """Parse an expression into a reusable :class:`PreparedSelect`."""
    domain, condition = parse_select(expression)
    return PreparedSelect(expression=expression, domain=domain, condition=condition)


# --------------------------------------------------------------------------
# Per-domain state: the registry plus incrementally maintained indexes
# --------------------------------------------------------------------------

#: Tail size at which a two-tier run folds its mutable tail into the
#: sorted main run.  Small enough that an out-of-order ``insort`` into
#: the tail stays cheap, large enough that merges amortize; in-order
#: arrivals (the common provenance pattern — item names and interned
#: ids are both assigned in increasing order) bypass the tail entirely
#: and append straight to the main run.
_TAIL_MERGE_THRESHOLD = 2048


def _range_slice(
    ordered: Sequence[str],
    low: Optional[str],
    high: Optional[str],
    incl_low: bool,
    incl_high: bool,
) -> Tuple[int, int]:
    """Binary-searched ``[start, stop)`` indices of a lexicographic
    range over a sorted sequence (``None`` bound = unbounded)."""
    start = 0
    if low is not None:
        start = (
            bisect.bisect_left(ordered, low)
            if incl_low
            else bisect.bisect_right(ordered, low)
        )
    stop = len(ordered)
    if high is not None:
        stop = (
            bisect.bisect_right(ordered, high)
            if incl_high
            else bisect.bisect_left(ordered, high)
        )
    return start, max(start, stop)


class _StringTable:
    """Interning id table: one uint32 id per distinct string, assigned
    in first-seen order.  Posting lists store the 4-byte ids instead of
    8-byte object pointers, and because first-seen order is monotone,
    fresh items append to the end of their sorted posting runs."""

    __slots__ = ("_ids", "_strings")

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self._strings: List[str] = []

    def __len__(self) -> int:
        return len(self._strings)

    def intern(self, text: str) -> int:
        ident = self._ids.get(text)
        if ident is None:
            ident = len(self._strings)
            self._ids[text] = ident
            self._strings.append(text)
        return ident

    def id_of(self, text: str) -> Optional[int]:
        return self._ids.get(text)

    def string(self, ident: int) -> str:
        return self._strings[ident]

    @property
    def strings(self) -> List[str]:
        return self._strings

    def memory_bytes(self) -> int:
        # Containers plus the boxed id ints; the strings themselves are
        # charged once by the caller (they are shared with the sorted
        # name run and the registry keys).
        total = sys.getsizeof(self._ids) + sys.getsizeof(self._strings)
        total += sum(sys.getsizeof(i) for i in self._ids.values())
        return total


class _SortedIdRun:
    """Two-tier sorted run of uint32 string ids with set semantics.

    The sorted ``main`` run is an ``array('I')``; out-of-order inserts
    go to a small sorted ``tail`` array that is merged into the main
    run once it reaches :data:`_TAIL_MERGE_THRESHOLD`.  In-order
    inserts (ids larger than everything seen — the common case, since
    ids are assigned in first-write order) append directly to the main
    run in O(1) and never allocate a tail; membership tests bisect
    both tiers, so inserts amortize to O(log n) instead of the O(n)
    element shifts of ``bisect.insort`` into one flat structure."""

    _THRESHOLD = _TAIL_MERGE_THRESHOLD

    __slots__ = ("main", "tail")

    def __init__(self) -> None:
        self.main = array("I")
        self.tail: Optional[array] = None

    def __len__(self) -> int:
        return len(self.main) + (len(self.tail) if self.tail is not None else 0)

    def __iter__(self):
        # Unordered across tiers — posting consumers build sets.
        yield from self.main
        if self.tail is not None:
            yield from self.tail

    def __contains__(self, ident: int) -> bool:
        main = self.main
        index = bisect.bisect_left(main, ident)
        if index < len(main) and main[index] == ident:
            return True
        tail = self.tail
        if tail is None:
            return False
        index = bisect.bisect_left(tail, ident)
        return index < len(tail) and tail[index] == ident

    def add(self, ident: int) -> bool:
        """Insert ``ident`` if absent; returns True when newly added."""
        main = self.main
        tail = self.tail
        if tail is None and (not main or ident > main[-1]):
            main.append(ident)
            return True
        if ident in self:
            return False
        if tail is None:
            tail = self.tail = array("I")
        if not tail or ident > tail[-1]:
            tail.append(ident)
        else:
            tail.insert(bisect.bisect_left(tail, ident), ident)
        if len(tail) >= self._THRESHOLD:
            self._merge_tail()
        return True

    def discard(self, ident: int) -> bool:
        """Remove ``ident`` if present; returns True when removed."""
        main = self.main
        index = bisect.bisect_left(main, ident)
        if index < len(main) and main[index] == ident:
            del main[index]
            return True
        tail = self.tail
        if tail is None:
            return False
        index = bisect.bisect_left(tail, ident)
        if index < len(tail) and tail[index] == ident:
            del tail[index]
            if not tail:
                self.tail = None
            return True
        return False

    def _merge_tail(self) -> None:
        tail = self.tail
        if tail:
            main = self.main
            if main and tail[0] < main[-1]:
                # General merge: Timsort sees two sorted runs and
                # gallops through them in C.
                merged = list(main)
                merged.extend(tail)
                merged.sort()
                self.main = array("I", merged)
            else:
                main.extend(tail)
        self.tail = None

    def memory_bytes(self) -> int:
        total = sys.getsizeof(self.main)
        if self.tail is not None:
            total += sys.getsizeof(self.tail)
        return total


class _SortedStringRun:
    """Two-tier sorted run of unique strings (callers guarantee
    uniqueness — the registry guards item names, the per-attribute
    value dict guards distinct values).  Same shape as
    :class:`_SortedIdRun`: in-order inserts append to the sorted main
    list, out-of-order inserts land in a small sorted tail merged at
    the threshold.  Readers call :meth:`ordered`, which folds any tail
    in first — reads are rarer than writes at ingest scale, and a fold
    after ≤ threshold tail inserts is one two-run Timsort merge."""

    _THRESHOLD = _TAIL_MERGE_THRESHOLD

    __slots__ = ("_main", "_tail")

    def __init__(self) -> None:
        self._main: List[str] = []
        self._tail: Optional[List[str]] = None

    def __len__(self) -> int:
        return len(self._main) + (len(self._tail) if self._tail is not None else 0)

    def __iter__(self):
        return iter(self.ordered())

    def add(self, text: str) -> None:
        main = self._main
        tail = self._tail
        if tail is None:
            if not main or text > main[-1]:
                main.append(text)
                return
            tail = self._tail = []
        if not tail or text > tail[-1]:
            tail.append(text)
        else:
            bisect.insort(tail, text)
        if len(tail) >= self._THRESHOLD:
            self._fold_tail()
        return

    def discard(self, text: str) -> bool:
        main = self._main
        index = bisect.bisect_left(main, text)
        if index < len(main) and main[index] == text:
            del main[index]
            return True
        tail = self._tail
        if tail is None:
            return False
        index = bisect.bisect_left(tail, text)
        if index < len(tail) and tail[index] == text:
            del tail[index]
            if not tail:
                self._tail = None
            return True
        return False

    def _fold_tail(self) -> None:
        tail = self._tail
        if tail:
            main = self._main
            if main and tail[0] < main[-1]:
                main.extend(tail)
                main.sort()
            else:
                main.extend(tail)
        self._tail = None

    def ordered(self) -> List[str]:
        """The fully merged sorted list (folds any tail in first).
        Callers must treat it as read-only."""
        if self._tail is not None:
            self._fold_tail()
        return self._main

    def memory_bytes(self, count_strings: bool = False) -> int:
        total = sys.getsizeof(self._main)
        if self._tail is not None:
            total += sys.getsizeof(self._tail)
        if count_strings:
            total += sum(sys.getsizeof(text) for text in self._main)
            if self._tail is not None:
                total += sum(sys.getsizeof(text) for text in self._tail)
        return total


class _DomainStateBase:
    """One domain's item registry, secondary indexes, and selectivity
    bookkeeping — the storage-agnostic half.

    The indexes are *over-approximations* maintained on every write: they
    record every attribute-value pair an item has ever held (``replace``
    puts never un-index), so an index lookup yields a superset of the
    items matching at any observation time.  Every candidate is then
    verified through ``_observe`` + the full condition, which is what
    keeps indexed selects byte-identical to scans under eventual
    consistency.  Values form sets, so re-puts of the same pair (the
    commit daemon's idempotent re-commits) never double-index.

    The one removal path is an explicit ``DeleteAttributes``: the deleted
    pairs are scheduled for un-indexing at the deleting write's
    *visibility* time — never earlier, because until the delete has
    propagated an eventually-consistent read can still observe the old
    value, and pruning the entry then would make the indexed path miss a
    row the scan still finds.  A re-put of the same pair cancels the
    pending removal.

    Two concrete stores implement the substrate: the array-backed
    :class:`_ArrayDomainState` (the default — string-id posting arrays
    and two-tier sorted runs, built for million-item domains) and the
    dict-of-sets :class:`_LegacyDomainState` it replaced, kept
    selectable (``SimpleDBService(index_store="legacy")``) as the
    equivalence and memory baseline.
    """

    __slots__ = (
        "registry",
        "pending_unindex",
        "attr_postings",
        "set_size_hist",
    )

    def __init__(self) -> None:
        self.registry: Dict[str, VersionedRegister[ItemAttributes]] = {}
        #: (attribute, value, item name) -> virtual time at which the
        #: entry may be pruned (the deleting write's visibility time).
        self.pending_unindex: Dict[Tuple[str, str, str], float] = {}
        #: attribute -> total index entries (sum of its value sets'
        #: sizes), maintained incrementally — with the distinct-value
        #: count this gives the mean set size the cost model estimates
        #: range walks with, without touching the sets at plan time.
        #: Entries are popped when they reach zero; a stored count is
        #: always positive.
        self.attr_postings: Dict[str, int] = {}
        #: attribute -> log2-bucketed histogram of its value-set sizes
        #: (bucket = ``size.bit_length()``: sizes 1, 2–3, 4–7, ...).
        #: A skew diagnostic for :meth:`SimpleDBService.selectivity` —
        #: a uniform attribute has one hot bucket, a Zipfian one a tail.
        #: Bucket counts are popped at zero and the inner dict is popped
        #: when empty, so the histogram never leaks dead buckets and a
        #: stored count is always positive.
        self.set_size_hist: Dict[str, Dict[int, int]] = {}

    # -- shared selectivity bookkeeping --------------------------------------

    def _note_set_resize(self, attribute: str, old: int, new: int) -> None:
        """Move one value set's histogram entry from bucket(``old``) to
        bucket(``new``).  Decrements are guarded: a decrement may only
        consume a positive stored count (an absent bucket is never
        driven negative — it is left absent), counts are popped at
        zero, and an inner dict emptied by its last pop is removed from
        ``set_size_hist`` rather than leaking as ``{}`` forever."""
        hist = self.set_size_hist.get(attribute)
        if hist is None:
            if not new:
                return
            hist = self.set_size_hist[attribute] = {}
        if old > 0:
            bucket = old.bit_length()
            remaining = hist.get(bucket, 0) - 1
            if remaining > 0:
                hist[bucket] = remaining
            else:
                hist.pop(bucket, None)
        if new > 0:
            bucket = new.bit_length()
            hist[bucket] = hist.get(bucket, 0) + 1
        if not hist:
            self.set_size_hist.pop(attribute, None)

    def _note_posting_added(self, attribute: str) -> None:
        self.attr_postings[attribute] = self.attr_postings.get(attribute, 0) + 1

    def _note_posting_removed(self, attribute: str) -> None:
        remaining = self.attr_postings.get(attribute, 0) - 1
        if remaining > 0:
            self.attr_postings[attribute] = remaining
        else:
            # Guarded like the histogram: the count is popped at zero
            # and an unmatched decrement can never store a negative.
            self.attr_postings.pop(attribute, None)

    def recount_stats(
        self,
    ) -> Tuple[Dict[str, int], Dict[str, Dict[int, int]]]:
        """From-scratch recount of ``attr_postings``/``set_size_hist``
        off the live index sets — the invariant the property tests pin
        the incremental bookkeeping against after arbitrary put/delete/
        select interleavings."""
        postings: Dict[str, int] = {}
        hist: Dict[str, Dict[int, int]] = {}
        for attribute, values in self.by_attr.items():
            for members in values.values():
                size = len(members)
                if not size:
                    continue
                postings[attribute] = postings.get(attribute, 0) + size
                inner = hist.setdefault(attribute, {})
                bucket = size.bit_length()
                inner[bucket] = inner.get(bucket, 0) + 1
        return postings, hist

    def schedule_unindex(
        self, name: str, pairs: Sequence[Tuple[str, str]], visible_at: float
    ) -> None:
        """Queue index-entry removals for explicitly deleted pairs; they
        fire lazily once a select observes a time past ``visible_at``."""
        for attribute, value in pairs:
            key = (attribute, value, name)
            queued = self.pending_unindex.get(key)
            if queued is None or visible_at > queued:
                self.pending_unindex[key] = visible_at

    def note_item(self, name: str) -> None:
        if name not in self.registry:
            self.add_name(name)

    # -- interface the planner and service code against ----------------------

    def add_name(self, name: str) -> None:
        raise NotImplementedError

    def note_pairs(self, name: str, pairs: Sequence[Tuple[str, str]]) -> None:
        raise NotImplementedError

    def prune_unindexed(self, now: float) -> int:
        raise NotImplementedError

    def ordered_names(self) -> List[str]:
        """Every item name ever written, in sorted order (select page
        order, prefix and ``itemName()`` ranges read off it)."""
        raise NotImplementedError

    def names_with(self, attribute: str, value: str) -> Set[str]:
        raise NotImplementedError

    def count_with(self, attribute: str, value: str) -> int:
        """O(len-read) posting count for one ``attribute = value`` pair
        — the cost model's estimate probe, no set materialization."""
        raise NotImplementedError

    def distinct_value_count(self, attribute: str) -> int:
        raise NotImplementedError

    def ordered_values(self, attribute: str) -> List[str]:
        raise NotImplementedError

    def count_values_in_range(
        self,
        attribute: str,
        low: Optional[str],
        high: Optional[str],
        incl_low: bool,
        incl_high: bool,
    ) -> int:
        start, stop = _range_slice(
            self.ordered_values(attribute), low, high, incl_low, incl_high
        )
        return stop - start

    def count_names_with_prefix(self, prefix: str) -> int:
        names = self.ordered_names()
        start = bisect.bisect_left(names, prefix)
        stop = bisect.bisect_right(names, prefix + "\U0010ffff")
        return max(0, stop - start)

    def count_names_in_range(
        self,
        low: Optional[str],
        high: Optional[str],
        incl_low: bool,
        incl_high: bool,
    ) -> int:
        start, stop = _range_slice(
            self.ordered_names(), low, high, incl_low, incl_high
        )
        return stop - start

    def names_with_prefix(self, prefix: str) -> List[str]:
        names = self.ordered_names()
        start = bisect.bisect_left(names, prefix)
        out: List[str] = []
        for index in range(start, len(names)):
            name = names[index]
            if not name.startswith(prefix):
                break
            out.append(name)
        return out

    def names_in_name_range(
        self,
        low: Optional[str],
        high: Optional[str],
        incl_low: bool,
        incl_high: bool,
        limit: Optional[int] = None,
    ) -> Optional[List[str]]:
        """Item names inside a lexicographic ``itemName()`` range, read
        off the sorted name order — or ``None`` when the range spans
        more than ``limit`` names (the planner's wide-range bailout: a
        candidate walk over most of the domain is no faster than the
        scan it replaces)."""
        names = self.ordered_names()
        start, stop = _range_slice(names, low, high, incl_low, incl_high)
        if limit is not None and stop - start > limit:
            return None
        return names[start:stop]

    def names_in_value_range(
        self,
        attribute: str,
        low: Optional[str],
        high: Optional[str],
        incl_low: bool,
        incl_high: bool,
        limit: Optional[int] = None,
    ) -> Optional[Set[str]]:
        raise NotImplementedError

    def memory_bytes(self) -> int:
        raise NotImplementedError


class _ArrayDomainState(_DomainStateBase):
    """The array-backed index substrate (the default store).

    Item names are interned once into a :class:`_StringTable`; every
    posting list is a :class:`_SortedIdRun` of 4-byte ids instead of a
    ``set`` of string pointers; the sorted name order and each
    attribute's sorted distinct values are :class:`_SortedStringRun`
    two-tier runs.  Inserts amortize to O(log n) (O(1) for in-order
    arrivals) where the legacy store paid an O(n) ``bisect.insort``
    list shift, and per-posting memory drops from a hash-set slot to
    4 bytes — the difference that makes million-item domains fit."""

    __slots__ = ("strings", "names", "by_attr", "sorted_values")

    def __init__(self) -> None:
        super().__init__()
        #: The domain's item-name id table (ids in first-write order).
        self.strings = _StringTable()
        #: Every item name ever written, sorted (two-tier run).
        self.names = _SortedStringRun()
        #: attribute -> value -> sorted id run of item names.
        self.by_attr: Dict[str, Dict[str, _SortedIdRun]] = {}
        #: attribute -> its distinct values, sorted (two-tier runs).
        self.sorted_values: Dict[str, _SortedStringRun] = {}

    def add_name(self, name: str) -> None:
        self.names.add(name)

    def note_pairs(self, name: str, pairs: Sequence[Tuple[str, str]]) -> None:
        ident: Optional[int] = None
        for attribute, value in pairs:
            values = self.by_attr.setdefault(attribute, {})
            run = values.get(value)
            if run is None:
                run = values[value] = _SortedIdRun()
                self.sorted_values.setdefault(
                    attribute, _SortedStringRun()
                ).add(value)
            if ident is None:
                ident = self.strings.intern(name)
            before = len(run)
            if run.add(ident):
                self._note_posting_added(attribute)
                self._note_set_resize(attribute, before, before + 1)
            # A re-put beats any queued removal: the pair is live again.
            self.pending_unindex.pop((attribute, value, name), None)

    def prune_unindexed(self, now: float) -> int:
        """Apply every queued removal whose delete is fully visible at
        ``now``.  Returns how many entries were pruned."""
        if not self.pending_unindex:
            return 0
        fired = [
            key for key, at in self.pending_unindex.items() if at <= now
        ]
        for key in fired:
            del self.pending_unindex[key]
            attribute, value, name = key
            values = self.by_attr.get(attribute)
            if not values:
                continue
            run = values.get(value)
            if run is None:
                continue
            ident = self.strings.id_of(name)
            if ident is not None and run.discard(ident):
                after = len(run)
                self._note_posting_removed(attribute)
                self._note_set_resize(attribute, after + 1, after)
            if not run:
                del values[value]
                ordered = self.sorted_values.get(attribute)
                if ordered is not None:
                    ordered.discard(value)
                if not values:
                    # Last value gone: drop the attribute's (now empty)
                    # containers instead of leaking them.
                    del self.by_attr[attribute]
                    self.sorted_values.pop(attribute, None)
        return len(fired)

    def ordered_names(self) -> List[str]:
        return self.names.ordered()

    def names_with(self, attribute: str, value: str) -> Set[str]:
        values = self.by_attr.get(attribute)
        if not values:
            return set()
        run = values.get(value)
        if run is None:
            return set()
        string = self.strings.string
        return {string(ident) for ident in run}

    def count_with(self, attribute: str, value: str) -> int:
        values = self.by_attr.get(attribute)
        if not values:
            return 0
        run = values.get(value)
        return len(run) if run is not None else 0

    def distinct_value_count(self, attribute: str) -> int:
        return len(self.by_attr.get(attribute, {}))

    def ordered_values(self, attribute: str) -> List[str]:
        run = self.sorted_values.get(attribute)
        return run.ordered() if run is not None else []

    def names_in_value_range(
        self,
        attribute: str,
        low: Optional[str],
        high: Optional[str],
        incl_low: bool,
        incl_high: bool,
        limit: Optional[int] = None,
    ) -> Optional[Set[str]]:
        """Union of the posting runs for every indexed value of
        ``attribute`` inside the lexicographic range — or ``None`` when
        the range spans more than ``limit`` distinct values *or* the
        accumulated union exceeds ``limit`` names (a low-cardinality
        attribute can cover most of the domain in a handful of values;
        the bailout is about candidate-walk cost, which is names, not
        values)."""
        values = self.by_attr.get(attribute)
        if not values:
            return set()
        ordered = self.ordered_values(attribute)
        start, stop = _range_slice(ordered, low, high, incl_low, incl_high)
        if limit is not None and stop - start > limit:
            return None
        string = self.strings.string
        out: Set[str] = set()
        for value in ordered[start:stop]:
            run = values.get(value)
            if run:
                out.update(string(ident) for ident in run)
                if limit is not None and len(out) > limit:
                    return None
        return out

    def memory_bytes(self) -> int:
        """Index footprint: container overhead, the posting arrays, the
        boxed id ints, one count of each distinct string (name strings
        via the sorted run, attribute/value strings via their dict
        keys), the pending-unindex tuples, and the selectivity stats
        with their inner dicts."""
        total = self.strings.memory_bytes()
        total += self.names.memory_bytes(count_strings=True)
        total += sys.getsizeof(self.by_attr)
        for attribute, values in self.by_attr.items():
            total += sys.getsizeof(attribute) + sys.getsizeof(values)
            for value, run in values.items():
                total += sys.getsizeof(value) + sys.getsizeof(run)
                total += run.memory_bytes()
        total += sys.getsizeof(self.sorted_values)
        for run in self.sorted_values.values():
            total += sys.getsizeof(run) + run.memory_bytes()
        total += _pending_unindex_bytes(self.pending_unindex)
        total += _stats_bytes(self.attr_postings, self.set_size_hist)
        return total


class _LegacyDomainState(_DomainStateBase):
    """The dict-of-sets/``bisect.insort`` substrate the array store
    replaced — kept runnable (``index_store="legacy"``) as the
    byte-identity baseline for the equivalence battery and the memory
    comparison the scaling sweep charts.  O(n) list shifts per
    first-sighting insert; hash-set slots per posting."""

    __slots__ = ("names", "by_attr", "sorted_values")

    def __init__(self) -> None:
        super().__init__()
        #: Every item name ever written, kept sorted incrementally
        #: (``bisect.insort`` on first insert).
        self.names: List[str] = []
        #: attribute -> value -> set of item names that ever held it.
        self.by_attr: Dict[str, Dict[str, Set[str]]] = {}
        #: attribute -> its distinct values in sorted order
        #: (``bisect.insort`` on first sighting).
        self.sorted_values: Dict[str, List[str]] = {}

    def add_name(self, name: str) -> None:
        bisect.insort(self.names, name)

    def note_pairs(self, name: str, pairs: Sequence[Tuple[str, str]]) -> None:
        for attribute, value in pairs:
            values = self.by_attr.setdefault(attribute, {})
            if value not in values:
                values[value] = set()
                bisect.insort(
                    self.sorted_values.setdefault(attribute, []), value
                )
            names = values[value]
            if name not in names:
                before = len(names)
                names.add(name)
                self._note_posting_added(attribute)
                self._note_set_resize(attribute, before, before + 1)
            # A re-put beats any queued removal: the pair is live again.
            self.pending_unindex.pop((attribute, value, name), None)

    def prune_unindexed(self, now: float) -> int:
        """Apply every queued removal whose delete is fully visible at
        ``now``.  Returns how many entries were pruned."""
        if not self.pending_unindex:
            return 0
        fired = [
            key for key, at in self.pending_unindex.items() if at <= now
        ]
        for key in fired:
            del self.pending_unindex[key]
            attribute, value, name = key
            values = self.by_attr.get(attribute)
            if not values:
                continue
            names = values.get(value)
            if names is None:
                continue
            if name in names:
                before = len(names)
                names.discard(name)
                self._note_posting_removed(attribute)
                self._note_set_resize(attribute, before, before - 1)
            if not names:
                del values[value]
                ordered = self.sorted_values.get(attribute, [])
                index = bisect.bisect_left(ordered, value)
                if index < len(ordered) and ordered[index] == value:
                    ordered.pop(index)
                if not values:
                    del self.by_attr[attribute]
                    self.sorted_values.pop(attribute, None)
        return len(fired)

    def ordered_names(self) -> List[str]:
        return self.names

    def names_with(self, attribute: str, value: str) -> Set[str]:
        values = self.by_attr.get(attribute)
        if not values:
            return set()
        return values.get(value, set())

    def count_with(self, attribute: str, value: str) -> int:
        values = self.by_attr.get(attribute)
        if not values:
            return 0
        return len(values.get(value, ()))

    def distinct_value_count(self, attribute: str) -> int:
        return len(self.by_attr.get(attribute, {}))

    def ordered_values(self, attribute: str) -> List[str]:
        return self.sorted_values.get(attribute, [])

    def names_in_value_range(
        self,
        attribute: str,
        low: Optional[str],
        high: Optional[str],
        incl_low: bool,
        incl_high: bool,
        limit: Optional[int] = None,
    ) -> Optional[Set[str]]:
        values = self.by_attr.get(attribute)
        if not values:
            return set()
        ordered = self.sorted_values.get(attribute, [])
        start, stop = _range_slice(ordered, low, high, incl_low, incl_high)
        if limit is not None and stop - start > limit:
            return None
        out: Set[str] = set()
        for value in ordered[start:stop]:
            names = values.get(value)
            if names:
                out |= names
                if limit is not None and len(out) > limit:
                    return None
        return out

    def memory_bytes(self) -> int:
        """Index footprint of the legacy structures, with the same
        accounting contract as the array store: container overhead
        (set/list sizes include their pointer tables), one count of
        each distinct string, pending-unindex tuples, and the
        selectivity stats with their inner dicts."""
        total = sys.getsizeof(self.names)
        total += sum(sys.getsizeof(name) for name in self.names)
        total += sys.getsizeof(self.by_attr)
        for attribute, values in self.by_attr.items():
            total += sys.getsizeof(attribute) + sys.getsizeof(values)
            for value, names in values.items():
                total += sys.getsizeof(value) + sys.getsizeof(names)
        total += sys.getsizeof(self.sorted_values)
        total += sum(
            sys.getsizeof(ordered)
            for ordered in self.sorted_values.values()
        )
        total += _pending_unindex_bytes(self.pending_unindex)
        total += _stats_bytes(self.attr_postings, self.set_size_hist)
        return total


def _pending_unindex_bytes(pending: Dict[Tuple[str, str, str], float]) -> int:
    """The pending-unindex dict plus its tuple keys and float values —
    the part the old gauge skipped (it priced only the outer dict)."""
    total = sys.getsizeof(pending)
    for key, at in pending.items():
        total += sys.getsizeof(key) + sys.getsizeof(at)
    return total


def _stats_bytes(
    postings: Dict[str, int], hist: Dict[str, Dict[int, int]]
) -> int:
    """Selectivity-stat footprint including the per-attribute inner
    histogram dicts and boxed counts the old gauge undercounted."""
    total = sys.getsizeof(postings)
    total += sum(sys.getsizeof(count) for count in postings.values())
    total += sys.getsizeof(hist)
    for inner in hist.values():
        total += sys.getsizeof(inner)
        total += sum(
            sys.getsizeof(bucket) + sys.getsizeof(count)
            for bucket, count in inner.items()
        )
    return total


#: Default store alias (backends subclassing the service type-annotate
#: against it).
_DomainState = _ArrayDomainState

#: ``index_store=`` names accepted by :class:`SimpleDBService`.
INDEX_STORE_NAMES = ("array", "legacy")

_INDEX_STORES = {
    "array": _ArrayDomainState,
    "legacy": _LegacyDomainState,
}


def _range_plan_limit(state: "_DomainState") -> int:
    """The widest range (in distinct values / item names) the planner
    will materialize as a candidate set.  A half-open range like
    ``version >= '0000'`` can span nearly every value in the domain;
    walking all of it through the index is no faster than the scan it
    replaces, so past a quarter of the domain the range is treated as
    unindexable.  Under ``AND`` this is what makes intersections cheap:
    the narrow side alone narrows the query and verification enforces
    the wide side — sound even for multi-valued attributes, where
    true interval-merging would not be (two *different* values can
    satisfy ``a >= x AND a < y``)."""
    return max(64, len(state.names) // 4)


#: op -> (low, high, incl_low, incl_high) extracted from the condition's
#: value list; ``None`` bounds are unbounded.
_RANGE_BOUNDS = {
    "<": lambda values: (None, values[0], True, False),
    "<=": lambda values: (None, values[0], True, True),
    ">": lambda values: (values[0], None, False, True),
    ">=": lambda values: (values[0], None, True, True),
    "between": lambda values: (values[0], values[1], True, True),
}


def _plan_candidates(
    condition: _Condition, state: _DomainState
) -> Optional[Set[str]]:
    """Extract an index-usable candidate set from a condition tree.

    Returns ``None`` when no index applies (the caller scans), otherwise
    a superset of the item names that can match.  Rules:

    - ``attr = 'v'`` / ``attr IN (...)`` — hash-index lookups,
    - ``attr < / <= / > / >= 'v'`` and ``attr BETWEEN 'a' AND 'b'`` —
      binary-searched ranges over the attribute's sorted distinct
      values, unioning the hash-index name sets of the values in range,
    - ``itemName()`` comparisons — the sorted-name structure (``LIKE
      'prefix%'`` and the ordered comparisons become binary-searched
      ranges),
    - ``a AND b`` — intersect when both sides are indexable, else use
      whichever side is (the unindexed side is enforced by verification),
    - ``a OR b`` — union, but only when *both* sides are indexable,
    - ``!=`` and non-prefix ``LIKE`` — never indexable.
    """
    if isinstance(condition, _BoolOp):
        left = _plan_candidates(condition.left, state)
        right = _plan_candidates(condition.right, state)
        if condition.op == "and":
            if left is None:
                return right
            if right is None:
                return left
            return left & right
        if left is None or right is None:
            return None
        return left | right
    if not isinstance(condition, _Comparison):
        return None
    if condition.op == "=":
        if condition.attribute == "itemName()":
            return {condition.values[0]}
        return set(state.names_with(condition.attribute, condition.values[0]))
    if condition.op == "in":
        if condition.attribute == "itemName()":
            return set(condition.values)
        out: Set[str] = set()
        for value in condition.values:
            out |= state.names_with(condition.attribute, value)
        return out
    if condition.op == "like" and condition.attribute == "itemName()":
        prefix = condition.like_prefix()
        if prefix is None:
            return None
        return set(state.names_with_prefix(prefix))
    if condition.op in _RANGE_BOUNDS:
        low, high, incl_low, incl_high = _RANGE_BOUNDS[condition.op](
            condition.values
        )
        limit = _range_plan_limit(state)
        if condition.attribute == "itemName()":
            names = state.names_in_name_range(
                low, high, incl_low, incl_high, limit=limit
            )
            return None if names is None else set(names)
        return state.names_in_value_range(
            condition.attribute, low, high, incl_low, incl_high, limit=limit
        )
    return None


# --------------------------------------------------------------------------
# Cost-based planning: selectivity estimates drive the index decision
# --------------------------------------------------------------------------

def _cost_scan_threshold(state: _DomainState) -> int:
    """Estimated candidate count at which an index walk stops being
    cheaper than the scan it replaces.  A candidate walk sorts the set
    and re-verifies every survivor, so once the estimate approaches the
    domain it buys nothing; the 64-name floor keeps small domains (and
    every unit-test fixture) on the index path, where the walk is cheap
    regardless."""
    return max(64, len(state.names) // 2)


def _estimate_candidates(
    condition: _Condition, state: _DomainState
) -> Optional[int]:
    """Estimated candidate-walk size of a WHERE subtree, or ``None``
    when no index applies to it.

    Equality and ``IN`` read exact set sizes off the hash indexes.
    Ranges are estimated without materializing: ``itemName()`` ranges
    binary-search the sorted name order (exact); attribute ranges count
    the distinct values in range and multiply by the attribute's mean
    set size (``attr_postings / distinct``) — cheap, and close enough
    to order AND sides and to price the bailout.  ``AND`` costs what
    its cheapest indexable side costs (the others intersect or verify);
    ``OR`` costs the sum and is only indexable when every side is.
    """
    if isinstance(condition, _BoolOp):
        left = _estimate_candidates(condition.left, state)
        right = _estimate_candidates(condition.right, state)
        if condition.op == "and":
            if left is None:
                return right
            if right is None:
                return left
            return min(left, right)
        if left is None or right is None:
            return None
        return left + right
    if not isinstance(condition, _Comparison):
        return None
    attribute = condition.attribute
    if condition.op == "=":
        if attribute == "itemName()":
            return 1
        return state.count_with(attribute, condition.values[0])
    if condition.op == "in":
        if attribute == "itemName()":
            return len(condition.values)
        return sum(
            state.count_with(attribute, value)
            for value in condition.values
        )
    if condition.op == "like" and attribute == "itemName()":
        prefix = condition.like_prefix()
        if prefix is None:
            return None
        return state.count_names_with_prefix(prefix)
    if condition.op in _RANGE_BOUNDS:
        low, high, incl_low, incl_high = _RANGE_BOUNDS[condition.op](
            condition.values
        )
        if attribute == "itemName()":
            return state.count_names_in_range(low, high, incl_low, incl_high)
        distinct = state.distinct_value_count(attribute)
        if not distinct:
            return 0
        in_range = state.count_values_in_range(
            attribute, low, high, incl_low, incl_high
        )
        if in_range <= 0:
            return 0
        postings = state.attr_postings.get(attribute, 0)
        mean = postings / distinct
        return max(in_range, int(in_range * mean))
    return None


def _flatten_and(condition: _Condition, out: List[_Condition]) -> None:
    if isinstance(condition, _BoolOp) and condition.op == "and":
        _flatten_and(condition.left, out)
        _flatten_and(condition.right, out)
    else:
        out.append(condition)


def _describe_condition(condition: _Condition) -> str:
    if isinstance(condition, _BoolOp):
        return (
            f"({_describe_condition(condition.left)}) {condition.op} "
            f"({_describe_condition(condition.right)})"
        )
    assert isinstance(condition, _Comparison)
    return f"{condition.attribute} {condition.op} {condition.values}"


@dataclass
class _CostPlan:
    """One chain's planning outcome: the candidate set (``None`` =
    scan), the root estimate, and the explain payload."""

    candidates: Optional[Set[str]]
    estimate: Optional[int]
    #: True when the tree was indexable but the estimate priced the
    #: candidate walk at or above the scan threshold.
    bailed_out: bool = False
    #: AND conjuncts whose intersection was skipped as more expensive
    #: than letting verification enforce them.
    sides_skipped: int = 0
    #: JSON-able node descriptions for ``explain()``.
    nodes: List[Dict[str, object]] = field(default_factory=list)


def _materialize_leaf(
    condition: _Comparison, state: _DomainState, limit: int
) -> Optional[Set[str]]:
    """Materialize one comparison's candidate set (same index reads as
    the fixed planner's leaves), bailing past ``limit`` names."""
    if condition.op == "=":
        if condition.attribute == "itemName()":
            return {condition.values[0]}
        return set(state.names_with(condition.attribute, condition.values[0]))
    if condition.op == "in":
        if condition.attribute == "itemName()":
            return set(condition.values)
        out: Set[str] = set()
        for value in condition.values:
            out |= state.names_with(condition.attribute, value)
        return out
    if condition.op == "like" and condition.attribute == "itemName()":
        prefix = condition.like_prefix()
        if prefix is None:
            return None
        return set(state.names_with_prefix(prefix))
    if condition.op in _RANGE_BOUNDS:
        low, high, incl_low, incl_high = _RANGE_BOUNDS[condition.op](
            condition.values
        )
        if condition.attribute == "itemName()":
            names = state.names_in_name_range(
                low, high, incl_low, incl_high, limit=limit
            )
            return None if names is None else set(names)
        return state.names_in_value_range(
            condition.attribute, low, high, incl_low, incl_high, limit=limit
        )
    return None


def _cost_materialize(
    condition: _Condition, state: _DomainState, threshold: int, plan: _CostPlan
) -> Optional[Set[str]]:
    """Materialize a candidate set under the cost model.

    ``AND`` nodes are flattened and walked cheapest-estimate-first: the
    cheapest indexable conjunct seeds the set, and each further side is
    intersected only while its estimated cost is proportionate to the
    running set (``<= max(64, 2 * |current|)``) — a wide side costs more
    to materialize than the rows it would remove, and verification
    enforces it anyway.  ``OR`` unions both sides (both must be
    indexable, as in the fixed planner).  Every set returned is a
    superset of the true matches, so the decision only moves cost,
    never answers."""
    if isinstance(condition, _BoolOp) and condition.op == "and":
        conjuncts: List[_Condition] = []
        _flatten_and(condition, conjuncts)
        sides = [
            (_estimate_candidates(side, state), side) for side in conjuncts
        ]
        indexable = sorted(
            ((est, index) for index, (est, _) in enumerate(sides)
             if est is not None),
            key=lambda pair: pair[0],
        )
        current: Optional[Set[str]] = None
        for est, index in indexable:
            side = sides[index][1]
            if current is None:
                current = _cost_materialize(side, state, threshold, plan)
                continue
            if est > max(64, 2 * len(current)):
                plan.sides_skipped += 1
                plan.nodes.append({
                    "node": _describe_condition(side),
                    "estimate": est,
                    "action": "verify-only",
                })
                continue
            candidates = _cost_materialize(side, state, threshold, plan)
            if candidates is not None:
                current &= candidates
        return current
    if isinstance(condition, _BoolOp):
        left = _cost_materialize(condition.left, state, threshold, plan)
        if left is None:
            return None
        right = _cost_materialize(condition.right, state, threshold, plan)
        if right is None:
            return None
        return left | right
    assert isinstance(condition, _Comparison)
    candidates = _materialize_leaf(condition, state, threshold)
    plan.nodes.append({
        "node": _describe_condition(condition),
        "estimate": _estimate_candidates(condition, state),
        "action": "scan" if candidates is None else "index",
        "candidates": None if candidates is None else len(candidates),
    })
    return candidates


def _plan_candidates_cost(
    condition: _Condition, state: _DomainState
) -> _CostPlan:
    """The cost-based planner: estimate first, then decide.

    An unindexable tree scans, as before.  An indexable tree whose root
    estimate reaches :func:`_cost_scan_threshold` *also* scans — this is
    the estimated-cost decision that replaces the fixed quarter-domain
    range bailout (:func:`_range_plan_limit`, kept for the ``"fixed"``
    planner mode): the same half-open range is indexed in a domain
    where it is selective and scanned in one where it is not, instead
    of cutting over at a hard-coded fraction either way."""
    threshold = _cost_scan_threshold(state)
    estimate = _estimate_candidates(condition, state)
    if estimate is None:
        return _CostPlan(candidates=None, estimate=None)
    if estimate >= threshold:
        return _CostPlan(candidates=None, estimate=estimate, bailed_out=True)
    plan = _CostPlan(candidates=None, estimate=estimate)
    plan.candidates = _cost_materialize(condition, state, threshold, plan)
    if plan.candidates is not None and len(plan.candidates) >= max(
        threshold, 1
    ):
        # The estimate undershot (skewed value sets): the materialized
        # walk is scan-sized after all, so scan — cheaper and identical.
        plan.candidates = None
        plan.bailed_out = True
    return plan


# --------------------------------------------------------------------------
# The service
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class SelectPage:
    """One page of Select results."""

    rows: List[Tuple[str, ItemAttributes]]
    next_token: str

    @property
    def complete(self) -> bool:
        return not self.next_token


@dataclass
class SelectEngineStats:
    """How select chains were answered (diagnostics for tests/benchmarks).

    One chain = one expression run to completion through its next-token
    pages; the match set is computed once, at the first page.
    """

    #: Chains whose WHERE tree yielded an index candidate set.
    indexed: int = 0
    #: Chains with a WHERE clause the planner could not index.
    scanned: int = 0
    #: Chains with no WHERE clause (``select * from d`` — always a scan).
    unconditional: int = 0
    #: Pages resumed from a legacy numeric offset token (re-matched).
    legacy_tokens: int = 0
    #: Snapshots garbage-collected after the TTL elapsed untouched.
    snapshots_expired: int = 0
    #: Pages that resumed an *expired* snapshot token by re-matching the
    #: domain at the page's own observation time (the clean fallback).
    expired_token_rematches: int = 0
    #: Select chains started per domain (first pages only, not
    #: continuation pages) — the per-shard request counter the sharded
    #: query engine's routing tests assert against.
    chains_by_domain: Dict[str, int] = field(default_factory=dict)
    #: Index entries removed after a DeleteAttributes fully propagated.
    unindexed_pruned: int = 0
    #: Chains the cost model sent to scan because the estimated
    #: candidate walk priced at or above the scan threshold (the
    #: decision that replaced the fixed quarter-domain bailout).
    cost_bailouts: int = 0
    #: AND conjuncts the cost model left to verification instead of
    #: intersecting (their estimate outweighed the running set).
    and_sides_skipped: int = 0

    def note_chain(self, domain: str) -> None:
        self.chains_by_domain[domain] = self.chains_by_domain.get(domain, 0) + 1


@dataclass(frozen=True)
class AttributeSelectivity:
    """One attribute's selectivity statistics, as the planner sees them.

    Maintained incrementally at write time (``note_pairs``) and on
    delete-driven pruning — reading them is O(1), which is what lets
    the cost model consult them on every select chain."""

    attribute: str
    #: Distinct indexed values.
    distinct_values: int
    #: Total index entries (sum of the value sets' sizes).
    postings: int
    #: log2-bucketed histogram of value-set sizes: bucket ``b`` counts
    #: values held by ``2**(b-1) .. 2**b - 1`` items.
    set_size_histogram: Dict[int, int]

    @property
    def mean_set_size(self) -> float:
        if not self.distinct_values:
            return 0.0
        return self.postings / self.distinct_values


def _pairs_size(pairs: Sequence[Tuple[str, str]]) -> int:
    return sum(len(a.encode()) + len(v.encode()) for a, v in pairs)


@dataclass
class _SelectSnapshot:
    """One live chain's materialized match list plus its GC clock."""

    matches: List[Tuple[str, ItemAttributes]]
    last_used_at: float


class SimpleDBService:
    """In-process SimpleDB stand-in."""

    service_name = "simpledb"

    def __init__(
        self,
        scheduler: ParallelScheduler,
        profile: ServiceProfile,
        billing: BillingMeter,
        consistency: Optional[ConsistencyEngine] = None,
        use_indexes: bool = True,
        telemetry=None,
        index_store: str = "array",
    ):
        self._scheduler = scheduler
        self._profile = profile
        self._billing = billing
        self._consistency = consistency or ConsistencyEngine()
        if index_store not in _INDEX_STORES:
            raise ValueError(
                f"unknown index_store {index_store!r} "
                f"(use one of {INDEX_STORE_NAMES})"
            )
        #: Which per-domain index substrate new domains get: ``"array"``
        #: (the default — string-id posting arrays, two-tier sorted
        #: runs) or ``"legacy"`` (the dict-of-sets baseline).  Both
        #: answer byte-identically; the knob exists for the equivalence
        #: battery and the memory-comparison sweeps.
        self.index_store = index_store
        self._domains: Dict[str, _DomainStateBase] = {}
        #: When false the planner is bypassed and every select chain
        #: scans — the regression baseline.  Indexes are maintained
        #: either way, so the flag can be toggled mid-run.
        self.use_indexes = use_indexes
        #: Which planner decides the index-vs-scan cut: ``"cost"`` (the
        #: default) estimates each tree's candidate walk from the
        #: selectivity statistics; ``"fixed"`` is the legacy heuristic
        #: planner with its quarter-domain range bailout.  Candidate
        #: sets are supersets under either, so the mode can be toggled
        #: mid-run without changing any answer.
        self.planner = "cost"
        self.select_stats = SelectEngineStats()
        self._telemetry = telemetry
        if telemetry is not None:
            metrics = telemetry.metrics
            stats = self.select_stats
            metrics.gauge_fn("sdb.select.indexed", lambda: stats.indexed)
            metrics.gauge_fn("sdb.select.scanned", lambda: stats.scanned)
            metrics.gauge_fn(
                "sdb.select.unconditional", lambda: stats.unconditional
            )
            metrics.gauge_fn(
                "sdb.select.cost_bailouts", lambda: stats.cost_bailouts
            )
            metrics.gauge_fn(
                "sdb.select.and_sides_skipped",
                lambda: stats.and_sides_skipped,
            )
            metrics.gauge_fn(
                "sdb.index.memory_bytes", self.index_memory_bytes
            )
        #: Snapshot id -> the chain's materialized match list; created at
        #: a chain's first page, dropped at its last — or expired by
        #: :meth:`_expire_snapshots` once untouched past the TTL.
        self._select_snapshots: Dict[int, _SelectSnapshot] = {}
        self._snapshot_seq = 0

    @property
    def profile(self) -> ServiceProfile:
        return self._profile

    def _new_domain_state(self) -> _DomainStateBase:
        """A fresh per-domain state of the configured store kind."""
        return _INDEX_STORES[self.index_store]()

    def create_domain(self, domain: str) -> None:
        """Create a domain (idempotent, free)."""
        if domain not in self._domains:
            self._domains[domain] = self._new_domain_state()

    def _domain(self, domain: str) -> _DomainStateBase:
        try:
            return self._domains[domain]
        except KeyError:
            raise NoSuchDomainError(f"domain {domain!r} does not exist") from None

    # -- request builders ----------------------------------------------------

    def batch_put_request(
        self, domain: str, items: Sequence[ItemPut], replace: bool = False
    ) -> Request:
        """Build a ``BatchPutAttributes`` request (≤ 25 items).

        With ``replace=False`` (SimpleDB default) new values are appended
        to existing multi-valued attributes; with ``replace=True`` each
        named attribute is overwritten.
        """
        if not items:
            raise InvalidRequestError("BatchPutAttributes requires at least one item")
        if len(items) > BATCH_PUT_LIMIT:
            raise LimitExceededError(
                f"BatchPutAttributes limited to {BATCH_PUT_LIMIT} items, got {len(items)}"
            )
        self._validate_items(items)
        state = self._domain(domain)
        payload = sum(_pairs_size(pairs) + len(name.encode()) for name, pairs in items)
        item_count = len(items)
        # The service's per-unit cost scales with attribute-value pairs
        # (each one is indexed), not with item count.
        attr_pairs = sum(len(pairs) for _, pairs in items)

        def apply(start: float, finish: float) -> None:
            for name, pairs in items:
                self._merge_item(state, name, pairs, replace, finish)
            self._billing.record(
                "simpledb", "BatchPutAttributes", bytes_in=payload, items=attr_pairs
            )

        return Request(
            profile=self._profile,
            apply=apply,
            payload_bytes=payload,
            items=attr_pairs,
            indexer_key=f"simpledb:{domain}",
            label=f"sdb.BatchPut {domain} x{item_count}",
        )

    def put_request(
        self,
        domain: str,
        item: str,
        pairs: Sequence[Tuple[str, str]],
        replace: bool = False,
    ) -> Request:
        """Build a single-item ``PutAttributes`` request."""
        self._validate_items([(item, pairs)])
        state = self._domain(domain)
        payload = _pairs_size(pairs) + len(item.encode())

        def apply(start: float, finish: float) -> None:
            self._merge_item(state, item, pairs, replace, finish)
            self._billing.record(
                "simpledb", "PutAttributes", bytes_in=payload, items=len(pairs)
            )

        return Request(
            profile=self._profile,
            apply=apply,
            payload_bytes=payload,
            items=len(pairs),
            indexer_key=f"simpledb:{domain}",
            label=f"sdb.Put {domain}/{item}",
        )

    def delete_request(
        self,
        domain: str,
        item: str,
        attributes: Optional[Sequence[Union[str, Tuple[str, str]]]] = None,
    ) -> Request:
        """Build a ``DeleteAttributes`` request.

        With ``attributes=None`` (the default) the whole item is
        deleted: a deletion tombstone is written and, once it
        propagates, the item disappears from gets and selects.  Each
        entry of ``attributes`` may be an attribute name (delete every
        value of that attribute) or an ``(attribute, value)`` pair
        (delete that one value); deleting an item's last attribute
        deletes the item, as in the real service.

        Either way the deleted pairs are *scheduled* for removal from
        the secondary indexes at the deleting write's visibility time —
        not before, because an eventually-consistent read inside the
        propagation window can still observe the old values, and the
        planner's candidate sets must stay supersets of what any
        observation time can see.  Until the pruning fires, ``_observe``
        filters the deleted values out of every candidate set, so
        indexed and scanned selects agree throughout."""
        state = self._domain(domain)
        payload = len(item.encode())
        if attributes:
            for spec in attributes:
                if isinstance(spec, str):
                    payload += len(spec.encode())
                else:
                    payload += len(spec[0].encode()) + len(spec[1].encode())

        def apply(start: float, finish: float) -> None:
            register = state.registry.get(item)
            if register is not None:
                latest = register.read_latest_committed(finish)
                current: ItemAttributes = {}
                if latest is not None and not latest.deleted and latest.value:
                    current = {a: list(v) for a, v in latest.value.items()}
                visible = self._consistency.visibility_for(finish)
                removed: List[Tuple[str, str]] = []
                # Truthiness, not an is-None check, so an empty spec
                # list agrees with the payload branch and means a
                # whole-item delete rather than a silent item rewrite.
                if not attributes:
                    removed = [
                        (a, v) for a, vals in current.items() for v in vals
                    ]
                    current = {}
                else:
                    for spec in attributes:
                        if isinstance(spec, str):
                            for value in current.pop(spec, []):
                                removed.append((spec, value))
                        else:
                            attr, value = spec
                            values = current.get(attr, [])
                            if value in values:
                                values.remove(value)
                                removed.append((attr, value))
                            if not values:
                                current.pop(attr, None)
                if current:
                    register.write(current, finish, visible)
                else:
                    register.delete(finish, visible)
                state.schedule_unindex(item, removed, visible)
            # Deleting an absent item is a billable no-op (idempotent).
            self._billing.record("simpledb", "DeleteAttributes", bytes_in=payload)

        return Request(
            profile=self._profile,
            apply=apply,
            payload_bytes=payload,
            label=f"sdb.Delete {domain}/{item}",
        )

    def get_request(self, domain: str, item: str) -> Request:
        """Build a ``GetAttributes`` request; resolves to the item's
        attributes (empty dict if the item is absent or not yet visible)."""
        state = self._domain(domain)

        def apply(start: float, finish: float) -> ItemAttributes:
            attributes = self._observe(state.registry, item, start)
            size = sum(
                len(a) + sum(len(v) for v in vals) for a, vals in attributes.items()
            )
            self._billing.record("simpledb", "GetAttributes", bytes_out=size)
            return {a: list(vals) for a, vals in attributes.items()}

        return Request(
            profile=self._profile,
            apply=apply,
            read_only=True,
            label=f"sdb.Get {domain}/{item}",
        )

    def select_request(
        self, expression: Union[str, PreparedSelect], next_token: str = ""
    ) -> Request:
        """Build one ``Select`` page request; resolves to
        :class:`SelectPage`.  Pages must be fetched sequentially — each
        next-token comes from the previous page (the reason the paper's Q1
        cannot be parallelized on SimpleDB).

        ``expression`` may be a raw string (parsed through the LRU cache)
        or a :class:`PreparedSelect` reused across the whole chain.  The
        first page plans the query — index candidates when the WHERE tree
        allows, full scan otherwise — materializes the match list once,
        and issues a snapshot token; continuation pages serve from the
        snapshot instead of re-matching the domain."""
        prepared = (
            expression
            if isinstance(expression, PreparedSelect)
            else prepare_select(expression)
        )
        state = self._domain(prepared.domain)
        condition = prepared.condition

        def apply(start: float, finish: float) -> SelectPage:
            self._expire_snapshots(start)
            if not next_token:
                self.select_stats.note_chain(prepared.domain)
            snapshot_id: Optional[int] = None
            if next_token:
                snapshot_id, offset, matches = self._resume_select(
                    next_token, state, condition, start
                )
            else:
                offset = 0
                matches = self._match_rows(state, condition, start)
            page = matches[offset : offset + SELECT_PAGE_ITEMS]
            done = offset + SELECT_PAGE_ITEMS >= len(matches)
            if done:
                token = ""
                if snapshot_id is not None:
                    self._select_snapshots.pop(snapshot_id, None)
            else:
                if snapshot_id is None:
                    self._snapshot_seq += 1
                    snapshot_id = self._snapshot_seq
                    self._select_snapshots[snapshot_id] = _SelectSnapshot(
                        matches=matches, last_used_at=start
                    )
                token = f"snap-{snapshot_id}:{offset + SELECT_PAGE_ITEMS}"
            size = sum(
                len(n)
                + sum(len(a) + sum(len(v) for v in vals) for a, vals in attrs.items())
                for n, attrs in page
            )
            self._billing.record("simpledb", "Select", bytes_out=size)
            return SelectPage(rows=page, next_token=token)

        return Request(
            profile=self._profile,
            apply=apply,
            response_bytes=0,
            read_only=True,
            label=f"sdb.Select {prepared.expression[:60]}",
        )

    # -- sequential conveniences ----------------------------------------------

    def batch_put(
        self, domain: str, items: Sequence[ItemPut], replace: bool = False
    ) -> None:
        self._scheduler.execute_one(self.batch_put_request(domain, items, replace))

    def put_attributes(
        self,
        domain: str,
        item: str,
        pairs: Sequence[Tuple[str, str]],
        replace: bool = False,
    ) -> None:
        self._scheduler.execute_one(self.put_request(domain, item, pairs, replace))

    def get_attributes(self, domain: str, item: str) -> ItemAttributes:
        return self._scheduler.execute_one(self.get_request(domain, item))

    def delete_attributes(
        self,
        domain: str,
        item: str,
        attributes: Optional[Sequence[Union[str, Tuple[str, str]]]] = None,
    ) -> None:
        self._scheduler.execute_one(
            self.delete_request(domain, item, attributes)
        )

    def select(
        self, expression: Union[str, PreparedSelect]
    ) -> List[Tuple[str, ItemAttributes]]:
        """Run a Select to completion, following next-tokens sequentially.
        The expression is parsed/planned once and the one
        :class:`PreparedSelect` is reused across the page chain."""
        prepared = (
            expression
            if isinstance(expression, PreparedSelect)
            else prepare_select(expression)
        )
        rows: List[Tuple[str, ItemAttributes]] = []
        token = ""
        while True:
            page: SelectPage = self._scheduler.execute_one(
                self.select_request(prepared, token)
            )
            rows.extend(page.rows)
            if page.complete:
                return rows
            token = page.next_token

    # -- internals --------------------------------------------------------------

    @staticmethod
    def _validate_items(items: Sequence[ItemPut]) -> None:
        for name, pairs in items:
            if not name:
                raise InvalidRequestError("item name must be non-empty")
            if len(name.encode()) > ATTRIBUTE_LIMIT_BYTES:
                raise LimitExceededError(f"item name {name[:32]!r}... exceeds 1 KB")
            if len(pairs) > ITEM_ATTRIBUTE_LIMIT:
                raise LimitExceededError(
                    f"item {name!r} has {len(pairs)} attribute pairs (limit "
                    f"{ITEM_ATTRIBUTE_LIMIT})"
                )
            for attribute, value in pairs:
                if len(attribute.encode()) > ATTRIBUTE_LIMIT_BYTES:
                    raise LimitExceededError(
                        f"attribute name {attribute[:32]!r}... exceeds 1 KB"
                    )
                if len(value.encode()) > ATTRIBUTE_LIMIT_BYTES:
                    raise LimitExceededError(
                        f"value of {attribute!r} exceeds 1 KB ({len(value)} bytes); "
                        "spill it to S3"
                    )

    def _merge_item(
        self,
        state: _DomainState,
        name: str,
        pairs: Sequence[Tuple[str, str]],
        replace: bool,
        committed_at: float,
    ) -> None:
        # Intern attribute names and values: provenance traffic repeats
        # the same small vocabulary (type/name/input/...) across millions
        # of items, and the registry, hash indexes, and sorted-value
        # lists all hold references to the same pair strings — one
        # canonical object per distinct string instead of one copy per
        # write (``index_memory_bytes`` gauges the footprint).
        pairs = [
            (sys.intern(attribute), sys.intern(value))
            for attribute, value in pairs
        ]
        state.note_item(name)
        register = state.registry.setdefault(name, VersionedRegister())
        latest = register.read_latest_committed(committed_at)
        current: ItemAttributes = {}
        if latest is not None and not latest.deleted and latest.value:
            current = {a: list(v) for a, v in latest.value.items()}
        if replace:
            for attribute, _ in pairs:
                current.pop(attribute, None)
        for attribute, value in pairs:
            # An attribute's values form a set: re-putting an existing
            # pair is a no-op, which is what makes the commit daemon's
            # re-issued writes idempotent (§4.3.3).
            values = current.setdefault(attribute, [])
            if value not in values:
                values.append(value)
        # Index the incoming pairs (set semantics: re-puts are no-ops;
        # earlier versions' values are already indexed, so the index stays
        # a superset of what any observation time can see).
        state.note_pairs(name, pairs)
        visible = self._consistency.visibility_for(committed_at)
        register.write(current, committed_at, visible)
        if self._telemetry is not None:
            # O(1) dict probe: only items pre-registered as trace aliases
            # (P3 txn items) land a mark; bulk workloads pay nothing.
            self._telemetry.tracer.mark_if_traced(name, SDB_VISIBLE, visible)

    def _match_rows(
        self,
        state: _DomainState,
        condition: Optional[_Condition],
        start: float,
        count_stats: bool = True,
    ) -> List[Tuple[str, ItemAttributes]]:
        """Materialize a select chain's full match list, in item-name
        order, as observed at time ``start``.

        The planner narrows the walk to index candidates when it can;
        either way every surviving name goes through the same
        ``_observe`` + condition verification, so the indexed and scan
        paths return byte-identical rows.  ``count_stats`` is false for
        legacy-token re-matches, which are continuation pages of a chain
        already counted."""
        # Apply any DeleteAttributes un-indexing whose propagation window
        # has fully elapsed by this observation time.  Pruning never
        # changes answers (candidates are verified either way); it keeps
        # range and equality candidate sets from accreting dead values.
        self.select_stats.unindexed_pruned += state.prune_unindexed(start)
        candidates: Optional[Set[str]] = None
        if condition is None:
            if count_stats:
                self.select_stats.unconditional += 1
        elif self.use_indexes:
            if self.planner == "fixed":
                candidates = _plan_candidates(condition, state)
            elif self.planner == "cost":
                plan = _plan_candidates_cost(condition, state)
                candidates = plan.candidates
                if count_stats:
                    self.select_stats.and_sides_skipped += plan.sides_skipped
                    if plan.bailed_out:
                        self.select_stats.cost_bailouts += 1
            else:
                raise InvalidRequestError(
                    f"unknown planner {self.planner!r} (use 'cost' or 'fixed')"
                )
            if count_stats:
                if candidates is None:
                    self.select_stats.scanned += 1
                else:
                    self.select_stats.indexed += 1
        elif count_stats:
            self.select_stats.scanned += 1
        names: Sequence[str] = (
            state.ordered_names() if candidates is None else sorted(candidates)
        )
        matches: List[Tuple[str, ItemAttributes]] = []
        for name in names:
            attributes = self._observe(state.registry, name, start)
            if not attributes:
                continue
            if condition is None or condition.matches(name, attributes):
                matches.append(
                    (name, {a: list(v) for a, v in attributes.items()})
                )
        return matches

    def _resume_select(
        self,
        token: str,
        state: _DomainState,
        condition: Optional[_Condition],
        start: float,
    ) -> Tuple[Optional[int], int, List[Tuple[str, ItemAttributes]]]:
        """Resolve a continuation token to (snapshot id, offset, match
        list).  Legacy bare-offset tokens (pre-snapshot clients) re-match
        the domain at this page's observation time, as the old engine
        did; so do tokens of snapshots that no longer exist — whether
        the TTL collected an abandoned chain or a client replays a token
        from a chain that already completed (the snapshot is popped at
        the final page; distinguishing the two would mean remembering
        every completed chain forever, the very leak the GC removes).
        Either way the chain degrades to legacy per-page semantics
        instead of failing.  Tokens naming a snapshot that was *never
        issued* are rejected."""
        if token.startswith("snap-"):
            head, _, offset_text = token[len("snap-"):].partition(":")
            try:
                snapshot_id = int(head)
                offset = int(offset_text)
            except ValueError:
                raise InvalidRequestError(
                    f"malformed select token {token!r}"
                ) from None
            snapshot = self._select_snapshots.get(snapshot_id)
            if snapshot is None:
                if not 1 <= snapshot_id <= self._snapshot_seq:
                    raise InvalidRequestError(
                        f"select token {token!r} was never issued"
                    )
                # The snapshot was garbage-collected (abandoned past the
                # TTL, then resumed after all).  Fall back cleanly:
                # re-match at this page's observation time and continue
                # from the recorded offset, exactly the legacy-token
                # behaviour.
                self.select_stats.expired_token_rematches += 1
                return None, offset, self._match_rows(
                    state, condition, start, count_stats=False
                )
            snapshot.last_used_at = start
            return snapshot_id, offset, snapshot.matches
        try:
            offset = int(token)
        except ValueError:
            raise InvalidRequestError(
                f"malformed select token {token!r}"
            ) from None
        self.select_stats.legacy_tokens += 1
        return None, offset, self._match_rows(
            state, condition, start, count_stats=False
        )

    def _expire_snapshots(self, now: float) -> None:
        """Drop snapshots untouched for the TTL — virtual-time GC of
        abandoned chains, mirroring SQS's in-flight expiry.  Long fleet
        runs with crashed or lazy readers stop leaking match sets."""
        cutoff = now - SELECT_SNAPSHOT_TTL_SECONDS
        stale = [
            snapshot_id
            for snapshot_id, snapshot in self._select_snapshots.items()
            if snapshot.last_used_at < cutoff
        ]
        for snapshot_id in stale:
            del self._select_snapshots[snapshot_id]
        self.select_stats.snapshots_expired += len(stale)

    def _observe(
        self,
        registry: Dict[str, VersionedRegister[ItemAttributes]],
        name: str,
        at: float,
    ) -> ItemAttributes:
        register = registry.get(name)
        if register is None:
            return {}
        version = register.read(at, self._consistency.model)
        if version is None or version.deleted or version.value is None:
            return {}
        return version.value

    # -- planner diagnostics -----------------------------------------------------

    def explain(
        self, expression: Union[str, PreparedSelect]
    ) -> Dict[str, object]:
        """Dry-run the planner on a select expression and dump the plan.

        Returns a JSON-able dict: the decision (``index`` / ``scan`` /
        ``unconditional-scan``), the root selectivity estimate, the
        scan threshold it was priced against, and — for the cost
        planner — one node per comparison with its estimate and chosen
        action (``index``, ``scan``, or ``verify-only`` for AND sides
        left to verification).  Purely diagnostic: no stats counters
        move, no snapshot is created, nothing is billed."""
        prepared = (
            expression
            if isinstance(expression, PreparedSelect)
            else prepare_select(expression)
        )
        state = self._domain(prepared.domain)
        condition = prepared.condition
        out: Dict[str, object] = {
            "domain": prepared.domain,
            "planner": self.planner if self.use_indexes else "scan",
            "domain_items": len(state.names),
            "scan_threshold": _cost_scan_threshold(state),
        }
        if condition is None:
            out["decision"] = "unconditional-scan"
            return out
        if not self.use_indexes:
            out["decision"] = "scan"
            return out
        if self.planner == "fixed":
            candidates = _plan_candidates(condition, state)
            out["decision"] = "scan" if candidates is None else "index"
            out["candidates"] = (
                None if candidates is None else len(candidates)
            )
            return out
        plan = _plan_candidates_cost(condition, state)
        out["decision"] = "scan" if plan.candidates is None else "index"
        out["estimated_candidates"] = plan.estimate
        out["candidates"] = (
            None if plan.candidates is None else len(plan.candidates)
        )
        out["cost_bailout"] = plan.bailed_out
        out["and_sides_skipped"] = plan.sides_skipped
        out["nodes"] = plan.nodes
        return out

    def selectivity(self, domain: str, attribute: str) -> AttributeSelectivity:
        """The write-time selectivity statistics of one attribute —
        exactly what the cost model consults (O(1) reads)."""
        state = self._domains.get(domain)
        if state is None:
            return AttributeSelectivity(attribute, 0, 0, {})
        return AttributeSelectivity(
            attribute=attribute,
            distinct_values=state.distinct_value_count(attribute),
            postings=state.attr_postings.get(attribute, 0),
            set_size_histogram=dict(state.set_size_hist.get(attribute, {})),
        )

    def index_memory_bytes(self) -> int:
        """Approximate heap footprint of the secondary indexes across
        all domains (container overhead, posting arrays, one count of
        each distinct string — interning makes the index share string
        objects with the registry — plus the pending-unindex queue and
        the selectivity statistics, inner containers included).  Feeds
        the ``sdb.index.memory_bytes`` gauge, so benchmarks can chart
        bytes-per-item beside wall clock."""
        return sum(
            state.memory_bytes() for state in self._domains.values()
        )

    # -- omniscient inspection (tests & property checkers only) -----------------

    def peek_item(self, domain: str, item: str) -> ItemAttributes:
        """Fully propagated item state (tests only)."""
        state = self._domains.get(domain)
        register = state.registry.get(item) if state is not None else None
        if register is None:
            return {}
        version = register.read_latest_committed(float("inf"))
        if version is None or version.deleted or version.value is None:
            return {}
        return {a: list(v) for a, v in version.value.items()}

    def peek_item_names(self, domain: str) -> List[str]:
        """All item names with visible-eventually state (tests only)."""
        state = self._domains.get(domain)
        if state is None:
            return []
        names = []
        for name, register in state.registry.items():
            version = register.read_latest_committed(float("inf"))
            if version is not None and not version.deleted and version.value:
                names.append(name)
        return sorted(names)

    def index_cardinality(self, domain: str, attribute: str, value: str) -> int:
        """How many item names the secondary index holds for
        ``attribute = value`` (tests & planner diagnostics).  Set
        semantics: idempotent re-puts must not grow this."""
        state = self._domains.get(domain)
        if state is None:
            return 0
        return len(state.names_with(attribute, value))

    def sorted_index_values(self, domain: str, attribute: str) -> List[str]:
        """The sorted distinct values the range index currently holds
        for ``attribute`` (tests & planner diagnostics).  Values whose
        ``DeleteAttributes`` has propagated — and whose last holder was
        pruned by a subsequent select — no longer appear."""
        state = self._domains.get(domain)
        if state is None:
            return []
        return list(state.ordered_values(attribute))
