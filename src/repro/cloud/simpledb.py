"""Simulated Amazon SimpleDB (circa January 2010).

Semantics implemented (§2.3 of the paper):

- domains of *items*; an item is a named bag of attribute-value pairs,
- attributes are multi-valued and schemaless; names and values are limited
  to 1 KB (the limit that forces P2/P3 to spill large provenance values to
  S3),
- ``BatchPutAttributes`` accepts at most 25 items per call,
- ``Select`` supports a subset of the SimpleDB query language used by the
  paper's queries: ``=``, ``!=``, ``LIKE 'prefix%'``, ``IN (...)``,
  ``AND``/``OR``, and ``itemName()``; every attribute is indexed, results
  are paginated with a next-token,
- reads are eventually consistent at item granularity.

Pagination is capped at :data:`SELECT_PAGE_ITEMS` items (standing in for
SimpleDB's 1 MB/2500-item response limits) — this is why the paper's Q1
needs several sequential round-trips on SimpleDB.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cloud.billing import BillingMeter
from repro.cloud.consistency import ConsistencyEngine, VersionedRegister
from repro.cloud.network import ParallelScheduler, Request
from repro.cloud.profiles import ServiceProfile
from repro.errors import (
    InvalidRequestError,
    LimitExceededError,
    NoSuchDomainError,
    QuerysyntaxError,
)

#: SimpleDB limits attribute names and values to 1 KB.
ATTRIBUTE_LIMIT_BYTES = 1024

#: Maximum items per BatchPutAttributes call.
BATCH_PUT_LIMIT = 25

#: Maximum attribute-value pairs per item.
ITEM_ATTRIBUTE_LIMIT = 256

#: Items returned per Select page.
SELECT_PAGE_ITEMS = 1200

#: One item: (item name, [(attribute, value), ...]).
ItemPut = Tuple[str, Sequence[Tuple[str, str]]]

#: Materialized item attributes: attribute -> list of values.
ItemAttributes = Dict[str, List[str]]


# --------------------------------------------------------------------------
# Select expression AST + parser
# --------------------------------------------------------------------------

class _Condition:
    """Base class for parsed WHERE conditions."""

    def matches(self, item_name: str, attributes: ItemAttributes) -> bool:
        raise NotImplementedError


@dataclass
class _Comparison(_Condition):
    attribute: str
    op: str
    values: List[str]

    def matches(self, item_name: str, attributes: ItemAttributes) -> bool:
        if self.attribute == "itemName()":
            candidates = [item_name]
        else:
            candidates = attributes.get(self.attribute, [])
        if self.op == "=":
            return any(v == self.values[0] for v in candidates)
        if self.op == "!=":
            # SimpleDB: true if any value differs (and the attribute exists).
            return any(v != self.values[0] for v in candidates)
        if self.op == "like":
            # re.escape turns % into \%; rewrite those as wildcards.
            pattern = self.values[0]
            regex = "^" + re.escape(pattern).replace("\\%", ".*").replace("%", ".*") + "$"
            return any(re.match(regex, v) for v in candidates)
        if self.op == "in":
            allowed = set(self.values)
            return any(v in allowed for v in candidates)
        raise QuerysyntaxError(f"unsupported operator {self.op!r}")


@dataclass
class _BoolOp(_Condition):
    op: str  # "and" | "or"
    left: _Condition
    right: _Condition

    def matches(self, item_name: str, attributes: ItemAttributes) -> bool:
        if self.op == "and":
            return self.left.matches(item_name, attributes) and self.right.matches(
                item_name, attributes
            )
        return self.left.matches(item_name, attributes) or self.right.matches(
            item_name, attributes
        )


_TOKEN_RE = re.compile(
    r"""
    \s*(
        '(?:[^']|'')*'            # quoted string (with '' escapes)
      | itemName\(\)              # item name function
      | [A-Za-z_][A-Za-z0-9_.\-]* # identifier / keyword
      | `[^`]+`                   # backtick-quoted attribute
      | != | = | \( | \) | ,
    )
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            if text[pos:].strip() == "":
                break
            raise QuerysyntaxError(f"cannot tokenize query at: {text[pos:]!r}")
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser for the WHERE clause grammar::

        expr    := term (OR term)*
        term    := factor (AND factor)*
        factor  := '(' expr ')' | comparison
        comparison := attr ('=' | '!=') value
                    | attr LIKE value
                    | attr IN '(' value (',' value)* ')'
    """

    def __init__(self, tokens: List[str]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> Optional[str]:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise QuerysyntaxError("unexpected end of query")
        self._pos += 1
        return token

    def parse(self) -> _Condition:
        expr = self._expr()
        if self._peek() is not None:
            raise QuerysyntaxError(f"trailing tokens: {self._tokens[self._pos:]}")
        return expr

    def _expr(self) -> _Condition:
        left = self._term()
        while self._peek() and self._peek().lower() == "or":
            self._next()
            left = _BoolOp("or", left, self._term())
        return left

    def _term(self) -> _Condition:
        left = self._factor()
        while self._peek() and self._peek().lower() == "and":
            self._next()
            left = _BoolOp("and", left, self._factor())
        return left

    def _factor(self) -> _Condition:
        if self._peek() == "(":
            self._next()
            expr = self._expr()
            if self._next() != ")":
                raise QuerysyntaxError("expected ')'")
            return expr
        return self._comparison()

    def _comparison(self) -> _Condition:
        attribute = self._attribute(self._next())
        op = self._next().lower()
        if op in ("=", "!="):
            return _Comparison(attribute, op, [self._value(self._next())])
        if op == "like":
            return _Comparison(attribute, "like", [self._value(self._next())])
        if op == "in":
            if self._next() != "(":
                raise QuerysyntaxError("expected '(' after IN")
            values = [self._value(self._next())]
            while self._peek() == ",":
                self._next()
                values.append(self._value(self._next()))
            if self._next() != ")":
                raise QuerysyntaxError("expected ')' closing IN list")
            return _Comparison(attribute, "in", values)
        raise QuerysyntaxError(f"unsupported operator {op!r}")

    @staticmethod
    def _attribute(token: str) -> str:
        if token.startswith("`") and token.endswith("`"):
            return token[1:-1]
        return token

    @staticmethod
    def _value(token: str) -> str:
        if not (token.startswith("'") and token.endswith("'")):
            raise QuerysyntaxError(f"expected quoted value, got {token!r}")
        return token[1:-1].replace("''", "'")


_SELECT_RE = re.compile(
    r"^\s*select\s+\*\s+from\s+(`[^`]+`|[A-Za-z0-9_.\-]+)(?:\s+where\s+(.*))?\s*$",
    re.IGNORECASE | re.DOTALL,
)


def parse_select(expression: str) -> Tuple[str, Optional[_Condition]]:
    """Parse a ``SELECT * FROM domain [WHERE ...]`` expression.

    Returns the domain name and the parsed condition (``None`` for no
    WHERE clause).
    """
    match = _SELECT_RE.match(expression)
    if not match:
        raise QuerysyntaxError(f"cannot parse select expression: {expression!r}")
    domain = match.group(1)
    if domain.startswith("`"):
        domain = domain[1:-1]
    where = match.group(2)
    condition = _Parser(_tokenize(where)).parse() if where else None
    return domain, condition


# --------------------------------------------------------------------------
# The service
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class SelectPage:
    """One page of Select results."""

    rows: List[Tuple[str, ItemAttributes]]
    next_token: str

    @property
    def complete(self) -> bool:
        return not self.next_token


def _pairs_size(pairs: Sequence[Tuple[str, str]]) -> int:
    return sum(len(a.encode()) + len(v.encode()) for a, v in pairs)


class SimpleDBService:
    """In-process SimpleDB stand-in."""

    service_name = "simpledb"

    def __init__(
        self,
        scheduler: ParallelScheduler,
        profile: ServiceProfile,
        billing: BillingMeter,
        consistency: Optional[ConsistencyEngine] = None,
    ):
        self._scheduler = scheduler
        self._profile = profile
        self._billing = billing
        self._consistency = consistency or ConsistencyEngine()
        self._domains: Dict[str, Dict[str, VersionedRegister[ItemAttributes]]] = {}

    @property
    def profile(self) -> ServiceProfile:
        return self._profile

    def create_domain(self, domain: str) -> None:
        """Create a domain (idempotent, free)."""
        self._domains.setdefault(domain, {})

    def _domain(self, domain: str) -> Dict[str, VersionedRegister[ItemAttributes]]:
        try:
            return self._domains[domain]
        except KeyError:
            raise NoSuchDomainError(f"domain {domain!r} does not exist") from None

    # -- request builders ----------------------------------------------------

    def batch_put_request(
        self, domain: str, items: Sequence[ItemPut], replace: bool = False
    ) -> Request:
        """Build a ``BatchPutAttributes`` request (≤ 25 items).

        With ``replace=False`` (SimpleDB default) new values are appended
        to existing multi-valued attributes; with ``replace=True`` each
        named attribute is overwritten.
        """
        if not items:
            raise InvalidRequestError("BatchPutAttributes requires at least one item")
        if len(items) > BATCH_PUT_LIMIT:
            raise LimitExceededError(
                f"BatchPutAttributes limited to {BATCH_PUT_LIMIT} items, got {len(items)}"
            )
        self._validate_items(items)
        registry = self._domain(domain)
        payload = sum(_pairs_size(pairs) + len(name.encode()) for name, pairs in items)
        item_count = len(items)
        # The service's per-unit cost scales with attribute-value pairs
        # (each one is indexed), not with item count.
        attr_pairs = sum(len(pairs) for _, pairs in items)

        def apply(start: float, finish: float) -> None:
            for name, pairs in items:
                self._merge_item(registry, name, pairs, replace, finish)
            self._billing.record(
                "simpledb", "BatchPutAttributes", bytes_in=payload, items=attr_pairs
            )

        return Request(
            profile=self._profile,
            apply=apply,
            payload_bytes=payload,
            items=attr_pairs,
            indexer_key=f"simpledb:{domain}",
            label=f"sdb.BatchPut {domain} x{item_count}",
        )

    def put_request(
        self,
        domain: str,
        item: str,
        pairs: Sequence[Tuple[str, str]],
        replace: bool = False,
    ) -> Request:
        """Build a single-item ``PutAttributes`` request."""
        self._validate_items([(item, pairs)])
        registry = self._domain(domain)
        payload = _pairs_size(pairs) + len(item.encode())

        def apply(start: float, finish: float) -> None:
            self._merge_item(registry, item, pairs, replace, finish)
            self._billing.record(
                "simpledb", "PutAttributes", bytes_in=payload, items=len(pairs)
            )

        return Request(
            profile=self._profile,
            apply=apply,
            payload_bytes=payload,
            items=len(pairs),
            indexer_key=f"simpledb:{domain}",
            label=f"sdb.Put {domain}/{item}",
        )

    def get_request(self, domain: str, item: str) -> Request:
        """Build a ``GetAttributes`` request; resolves to the item's
        attributes (empty dict if the item is absent or not yet visible)."""
        registry = self._domain(domain)

        def apply(start: float, finish: float) -> ItemAttributes:
            attributes = self._observe(registry, item, start)
            size = sum(
                len(a) + sum(len(v) for v in vals) for a, vals in attributes.items()
            )
            self._billing.record("simpledb", "GetAttributes", bytes_out=size)
            return {a: list(vals) for a, vals in attributes.items()}

        return Request(
            profile=self._profile,
            apply=apply,
            read_only=True,
            label=f"sdb.Get {domain}/{item}",
        )

    def select_request(self, expression: str, next_token: str = "") -> Request:
        """Build one ``Select`` page request; resolves to
        :class:`SelectPage`.  Pages must be fetched sequentially — each
        next-token comes from the previous page (the reason the paper's Q1
        cannot be parallelized on SimpleDB)."""
        domain_name, condition = parse_select(expression)
        registry = self._domain(domain_name)
        offset = int(next_token) if next_token else 0

        def apply(start: float, finish: float) -> SelectPage:
            matches: List[Tuple[str, ItemAttributes]] = []
            for name in sorted(registry):
                attributes = self._observe(registry, name, start)
                if not attributes:
                    continue
                if condition is None or condition.matches(name, attributes):
                    matches.append((name, {a: list(v) for a, v in attributes.items()}))
            page = matches[offset : offset + SELECT_PAGE_ITEMS]
            done = offset + SELECT_PAGE_ITEMS >= len(matches)
            token = "" if done else str(offset + SELECT_PAGE_ITEMS)
            size = sum(
                len(n)
                + sum(len(a) + sum(len(v) for v in vals) for a, vals in attrs.items())
                for n, attrs in page
            )
            self._billing.record("simpledb", "Select", bytes_out=size)
            return SelectPage(rows=page, next_token=token)

        return Request(
            profile=self._profile,
            apply=apply,
            response_bytes=0,
            read_only=True,
            label=f"sdb.Select {expression[:60]}",
        )

    # -- sequential conveniences ----------------------------------------------

    def batch_put(
        self, domain: str, items: Sequence[ItemPut], replace: bool = False
    ) -> None:
        self._scheduler.execute_one(self.batch_put_request(domain, items, replace))

    def put_attributes(
        self,
        domain: str,
        item: str,
        pairs: Sequence[Tuple[str, str]],
        replace: bool = False,
    ) -> None:
        self._scheduler.execute_one(self.put_request(domain, item, pairs, replace))

    def get_attributes(self, domain: str, item: str) -> ItemAttributes:
        return self._scheduler.execute_one(self.get_request(domain, item))

    def select(self, expression: str) -> List[Tuple[str, ItemAttributes]]:
        """Run a Select to completion, following next-tokens sequentially."""
        rows: List[Tuple[str, ItemAttributes]] = []
        token = ""
        while True:
            page: SelectPage = self._scheduler.execute_one(
                self.select_request(expression, token)
            )
            rows.extend(page.rows)
            if page.complete:
                return rows
            token = page.next_token

    # -- internals --------------------------------------------------------------

    @staticmethod
    def _validate_items(items: Sequence[ItemPut]) -> None:
        for name, pairs in items:
            if not name:
                raise InvalidRequestError("item name must be non-empty")
            if len(name.encode()) > ATTRIBUTE_LIMIT_BYTES:
                raise LimitExceededError(f"item name {name[:32]!r}... exceeds 1 KB")
            if len(pairs) > ITEM_ATTRIBUTE_LIMIT:
                raise LimitExceededError(
                    f"item {name!r} has {len(pairs)} attribute pairs (limit "
                    f"{ITEM_ATTRIBUTE_LIMIT})"
                )
            for attribute, value in pairs:
                if len(attribute.encode()) > ATTRIBUTE_LIMIT_BYTES:
                    raise LimitExceededError(
                        f"attribute name {attribute[:32]!r}... exceeds 1 KB"
                    )
                if len(value.encode()) > ATTRIBUTE_LIMIT_BYTES:
                    raise LimitExceededError(
                        f"value of {attribute!r} exceeds 1 KB ({len(value)} bytes); "
                        "spill it to S3"
                    )

    def _merge_item(
        self,
        registry: Dict[str, VersionedRegister[ItemAttributes]],
        name: str,
        pairs: Sequence[Tuple[str, str]],
        replace: bool,
        committed_at: float,
    ) -> None:
        register = registry.setdefault(name, VersionedRegister())
        latest = register.read_latest_committed(committed_at)
        current: ItemAttributes = {}
        if latest is not None and not latest.deleted and latest.value:
            current = {a: list(v) for a, v in latest.value.items()}
        if replace:
            for attribute, _ in pairs:
                current.pop(attribute, None)
        for attribute, value in pairs:
            # An attribute's values form a set: re-putting an existing
            # pair is a no-op, which is what makes the commit daemon's
            # re-issued writes idempotent (§4.3.3).
            values = current.setdefault(attribute, [])
            if value not in values:
                values.append(value)
        visible = self._consistency.visibility_for(committed_at)
        register.write(current, committed_at, visible)

    def _observe(
        self,
        registry: Dict[str, VersionedRegister[ItemAttributes]],
        name: str,
        at: float,
    ) -> ItemAttributes:
        register = registry.get(name)
        if register is None:
            return {}
        version = register.read(at, self._consistency.model)
        if version is None or version.deleted or version.value is None:
            return {}
        return version.value

    # -- omniscient inspection (tests & property checkers only) -----------------

    def peek_item(self, domain: str, item: str) -> ItemAttributes:
        """Fully propagated item state (tests only)."""
        register = self._domains.get(domain, {}).get(item)
        if register is None:
            return {}
        version = register.read_latest_committed(float("inf"))
        if version is None or version.deleted or version.value is None:
            return {}
        return {a: list(v) for a, v in version.value.items()}

    def peek_item_names(self, domain: str) -> List[str]:
        """All item names with visible-eventually state (tests only)."""
        names = []
        for name, register in self._domains.get(domain, {}).items():
            version = register.read_latest_committed(float("inf"))
            if version is not None and not version.deleted and version.value:
                names.append(name)
        return sorted(names)
