"""The Figure 3 microbenchmark tool (§5.1).

The paper isolates protocol throughput from application and collection
overheads: it runs Blast on an unmodified PASS system, captures the
provenance, and then replays the upload through each protocol — "the
operation count ... reduced as we only upload the final results of the
computation".

This module does the same: a dry collector pass over the trace gathers
every flush's provenance closure; the upload phase then replays each
flush's provenance (so P1's append pattern and P2/P3's per-version item
counts are faithful) but uploads each data object only once, at its final
version.  All requests go out in one large parallel batch — the
"protocols upload ... in parallel" configuration the paper benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cloud.account import CloudAccount
from repro.cloud.consistency import ConsistencyModel
from repro.cloud.profiles import SimulationProfile
from repro.core.p1_store_only import ProtocolP1
from repro.core.p2_store_db import ProtocolP2
from repro.core.p3_wal import ProtocolP3
from repro.core.pas3fs import stage_inputs
from repro.core.protocol_base import FlushWork, UploadMode, data_key
from repro.provenance.pass_collector import FlushIntent, PassCollector
from repro.workloads.base import MOUNT, Workload

PROTOCOL_NAMES = ("s3fs", "p1", "p2", "p3")


@dataclass
class MicrobenchResult:
    """One microbenchmark configuration's measurements."""

    configuration: str
    elapsed_seconds: float
    operations: int
    bytes_transmitted: int
    cost_usd: float = 0.0

    @property
    def mb_transmitted(self) -> float:
        return self.bytes_transmitted / (1024.0 * 1024.0)

    def overhead_vs(self, baseline: "MicrobenchResult") -> float:
        """Fractional elapsed-time overhead relative to a baseline run."""
        if baseline.elapsed_seconds == 0:
            return 0.0
        return self.elapsed_seconds / baseline.elapsed_seconds - 1.0


def capture_flush_works(workload: Workload) -> List[FlushWork]:
    """Dry collector pass: return every mount flush with its provenance
    closure, marking only the final flush of each object as
    data-carrying."""
    collector = PassCollector()
    works: List[FlushWork] = []
    last_data_index: Dict[str, int] = {}
    for event in workload.trace:
        for intent in collector.feed(event):
            if not isinstance(intent, FlushIntent):
                continue
            if not intent.path.startswith(MOUNT):
                continue
            bundles = collector.pop_pending_closure(intent.uuid)
            works.append(FlushWork(primary=intent, bundles=bundles))
            last_data_index[intent.uuid] = len(works) - 1
    finals = set(last_data_index.values())
    for index, work in enumerate(works):
        work.include_data = index in finals
    return works


def run_microbenchmark(
    workload: Workload,
    configuration: str,
    profile: SimulationProfile = SimulationProfile(),
    connections: int = 150,
    seed: int = 0,
    account: Optional[CloudAccount] = None,
) -> MicrobenchResult:
    """Upload a captured workload through one configuration.

    Args:
        workload: the trace to capture (the paper uses Blast).
        configuration: "s3fs", "p1", "p2", or "p3".
        profile: performance profile (environment decides EC2 vs UML).
        connections: parallel connections for the upload batch.
        seed: consistency-model seed.
        account: supply an account to keep the populated store afterwards
            (the query benchmark does this); a fresh one is made otherwise.
    """
    account, works = _prepare_run(workload, configuration, profile, seed, account)
    stopwatch = account.stopwatch()
    requests = _upload_requests(account, works, configuration, connections)
    account.scheduler.execute_batch(requests, connections)
    return MicrobenchResult(
        configuration=configuration,
        elapsed_seconds=stopwatch.elapsed(),
        operations=account.billing.operation_count(),
        bytes_transmitted=account.billing.bytes_transmitted(),
        cost_usd=account.billing.cost(),
    )


def run_microbenchmark_kernel(
    workload: Workload,
    configuration: str,
    profile: SimulationProfile = SimulationProfile(),
    connections: int = 150,
    seed: int = 0,
    account: Optional[CloudAccount] = None,
) -> MicrobenchResult:
    """Compatibility-mode kernel run of the microbenchmark: the capture
    and request-build path is shared with :func:`run_microbenchmark`;
    the upload executes as a single client process on the simulation
    kernel.  The equivalence regression test holds this to byte-identical
    numbers against the phased driver."""
    from repro.sim import Batch, SimKernel

    account, works = _prepare_run(workload, configuration, profile, seed, account)
    stopwatch = account.stopwatch()
    requests = _upload_requests(account, works, configuration, connections)

    kernel = SimKernel(account)

    def uploader():
        yield Batch(requests, connections)

    kernel.spawn(uploader(), name=f"microbench-{configuration}")
    kernel.run()
    return MicrobenchResult(
        configuration=configuration,
        elapsed_seconds=stopwatch.elapsed(),
        operations=account.billing.operation_count(),
        bytes_transmitted=account.billing.bytes_transmitted(),
        cost_usd=account.billing.cost(),
    )


def _prepare_run(
    workload: Workload,
    configuration: str,
    profile: SimulationProfile,
    seed: int,
    account: Optional[CloudAccount],
) -> Tuple[CloudAccount, List[FlushWork]]:
    """Validate, build the account, stage inputs, capture the flushes."""
    if configuration not in PROTOCOL_NAMES:
        raise ValueError(
            f"unknown configuration {configuration!r}; pick from {PROTOCOL_NAMES}"
        )
    if account is None:
        account = CloudAccount(
            profile=profile, consistency=ConsistencyModel.EVENTUAL, seed=seed
        )
    if workload.staged_inputs:
        stage_inputs(account, "pass-data", workload.staged_inputs)
    return account, capture_flush_works(workload)


def _upload_requests(
    account: CloudAccount,
    works: List[FlushWork],
    configuration: str,
    connections: int,
) -> List:
    """Build the configuration's full upload batch (serial client CPU is
    charged here, as the protocols do while marshalling); HEADs of
    not-yet-existing keys are wrapped to tolerate the expected 404 — the
    request still costs time and money."""
    if configuration == "s3fs":
        requests = []
        for work in works:
            if not work.include_data:
                continue
            key = data_key(work.primary.path)
            requests.append(account.s3.head_request("pass-data", key))
            requests.append(
                account.s3.put_request("pass-data", key, work.primary.blob)
            )
    else:
        protocol_cls = {"p1": ProtocolP1, "p2": ProtocolP2, "p3": ProtocolP3}[
            configuration
        ]
        protocol = protocol_cls(
            account, mode=UploadMode.PARALLEL, connections=connections
        )
        protocol.begin_deferred()
        requests = []
        for work in works:
            if work.include_data:
                requests.append(
                    account.s3.head_request(
                        protocol.bucket, data_key(work.primary.path)
                    )
                )
            protocol.flush(work)
        requests.extend(protocol.end_deferred())
    return [_tolerate_missing(request) for request in requests]


def _tolerate_missing(request):
    from repro.errors import NoSuchKeyError

    original = request.apply

    def apply(start: float, finish: float):
        try:
            return original(start, finish)
        except NoSuchKeyError:
            return None

    request.apply = apply
    return request
