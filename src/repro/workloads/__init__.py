"""Workload generators.

Deterministic stand-ins for the paper's three evaluation workloads (§5),
matched to their published shapes — provenance-tree depth, compute/IO mix,
output volume — plus the Linux-compile provenance stream behind Table 2
and the Figure 3 microbenchmark tool:

- :mod:`repro.workloads.nightly` — CVSROOT nightly backup: 30 snapshot
  tarballs, nearly flat provenance, I/O-bound,
- :mod:`repro.workloads.blast` — the NIH-style Blast job: depth-5
  provenance, heavy memory-bound compute, ~700 MB of final output,
- :mod:`repro.workloads.challenge` — the First Provenance Challenge fMRI
  pipeline: the deepest graph (max path length ~11),
- :mod:`repro.workloads.linux_compile` — 50 MB of kernel-compile
  provenance records (Table 2's upload payload),
- :mod:`repro.workloads.microbench` — replays captured provenance +
  final data objects through each protocol (Figure 3, Table 3),
- :mod:`repro.workloads.fleet` — the multi-tenant client fleet: many
  deterministic clients driven through the service-tier ingest gateway.
"""

from repro.workloads.base import Workload
from repro.workloads.blast import make_blast_workload
from repro.workloads.challenge import make_challenge_workload
from repro.workloads.fleet import (
    FleetClient,
    FleetRunResult,
    make_fleet,
    run_fleet,
)
from repro.workloads.linux_compile import make_linux_compile_records
from repro.workloads.microbench import MicrobenchResult, run_microbenchmark
from repro.workloads.nightly import make_nightly_workload

__all__ = [
    "FleetClient",
    "FleetRunResult",
    "MicrobenchResult",
    "Workload",
    "make_blast_workload",
    "make_challenge_workload",
    "make_fleet",
    "make_linux_compile_records",
    "make_nightly_workload",
    "run_fleet",
    "run_microbenchmark",
]
