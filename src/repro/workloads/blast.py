"""Blast workload (§5): the typical NIH Blast job.

Blast finds protein sequences closely related across two species.  The
pipeline, per query batch (job):

1. ``formatdb`` formats the query batch into a search-ready file,
2. ``blastall`` scans the (local) protein database for every query —
   the memory-hungry phase that thrashes under UML's 512 MB guest —
   appending raw hits and emitting periodic checkpoint chunks,
3. ``sorthits`` merges and sorts the raw output,
4. ``filterhits`` applies the e-value cutoff,
5. ``report`` renders HTML + XML reports.

Shape targets from the paper: provenance depth ~5, a compute/IO mix with
~650 s of native compute (1322 s under UML), ~700 MB of final output, and
a provenance stream of ~10 k node-versions (blastall's read-query/
write-hit cycle re-versions the process per query — these per-version
SimpleDB items are what makes P2 the slowest protocol in Figure 3).
"""

from __future__ import annotations

from repro.provenance.syscalls import TraceBuilder
from repro.workloads.base import MOUNT, Workload

KB = 1024
MB = 1024 * 1024


def make_blast_workload(
    jobs: int = 28,
    queries_per_job: int = 600,
    chunk_count: int = 5,
    raw_hits_bytes: int = 8 * MB,
) -> Workload:
    """Build the Blast trace.

    Args:
        jobs: query batches (each is one full pipeline run).
        queries_per_job: queries blastall processes per batch; each query
            is a read-compute-write cycle that re-versions the process.
        chunk_count: checkpoint chunk files blastall writes per job.
        raw_hits_bytes: size of the raw hit file per job.
    """
    builder = TraceBuilder()
    staged = {f"{MOUNT}shared/blosum62.matrix": 16 * KB}
    compute_per_query = 18.0 / queries_per_job  # 18 s memory-bound per job

    scheduler = builder.spawn(
        "blast-batch.sh",
        argv=["blast-batch.sh", f"--jobs={jobs}"],
        exec_path="/usr/local/bin/blast-batch.sh",
    )

    for job in range(jobs):
        prefix = f"{MOUNT}blast/job-{job:03d}"

        fmt = builder.spawn(
            "formatdb",
            argv=["formatdb", "-i", f"batch-{job}.fasta"],
            parent_pid=scheduler,
            exec_path="/usr/bin/formatdb",
        )
        builder.read(fmt, f"/local/queries/batch-{job:03d}.fasta", 2 * MB)
        builder.compute(fmt, 1.5)
        builder.write_close(fmt, f"{prefix}/query.fmt", 1 * MB)
        builder.exit(fmt)

        blast = builder.spawn(
            "blastall",
            argv=["blastall", "-p", "blastp", "-d", "nr", "-e", "1e-5"],
            env=(("BLASTDB", "/local/db"), ("BLASTMAT", "/local/matrices")),
            parent_pid=scheduler,
            exec_path="/usr/bin/blastall",
        )
        builder.read(blast, f"{prefix}/query.fmt", 1 * MB)
        builder.read(blast, f"{MOUNT}shared/blosum62.matrix", 16 * KB)
        builder.read(blast, "/local/db/nr.pal", 200 * MB)

        raw = f"{prefix}/raw.hits"
        chunk_every = max(1, queries_per_job // chunk_count)
        for query in range(queries_per_job):
            # One query: read the next sequence from the batch file,
            # search (memory-bound), append the hit.  The read-after-write
            # cycle re-versions the process — the per-version provenance
            # items that dominate P2's SimpleDB traffic.
            builder.read(blast, f"/local/queries/batch-{job:03d}.fasta", 4 * KB)
            builder.compute(blast, compute_per_query, memory_bound=True)
            grown = raw_hits_bytes * (query + 1) // queries_per_job
            builder.write(blast, raw, max(grown, 1))
            if (query + 1) % chunk_every == 0:
                chunk_index = (query + 1) // chunk_every - 1
                if chunk_index < chunk_count:
                    builder.write_close(
                        blast, f"{prefix}/chunk-{chunk_index}.out", 300 * KB
                    )
                    # Checkpoint the raw hits too; the flush freezes the
                    # version, so later appends start a new one.
                    builder.flush(blast, raw)
        builder.close(blast, raw)
        builder.exit(blast)

        sort = builder.spawn(
            "sorthits",
            argv=["sorthits", raw],
            parent_pid=scheduler,
            exec_path="/usr/bin/sorthits",
        )
        builder.read(sort, raw, raw_hits_bytes)
        for chunk_index in range(chunk_count):
            builder.read(sort, f"{prefix}/chunk-{chunk_index}.out", 300 * KB)
        builder.compute(sort, 1.0)
        builder.write_close(sort, f"{prefix}/sorted.hits", raw_hits_bytes)
        builder.exit(sort)

        filt = builder.spawn(
            "filterhits",
            argv=["filterhits", "--evalue", "1e-5"],
            parent_pid=scheduler,
            exec_path="/usr/bin/filterhits",
        )
        builder.read(filt, f"{prefix}/sorted.hits", raw_hits_bytes)
        builder.compute(filt, 0.8)
        builder.write_close(filt, f"{prefix}/filtered.hits", 5 * MB)
        builder.exit(filt)

        report = builder.spawn(
            "blastreport",
            argv=["blastreport", "--format", "html+xml"],
            parent_pid=scheduler,
            exec_path="/usr/bin/blastreport",
        )
        builder.read(report, f"{prefix}/filtered.hits", 5 * MB)
        builder.compute(report, 0.7)
        builder.write_close(report, f"{prefix}/report.html", 1536 * KB)
        builder.write_close(report, f"{prefix}/report.xml", 1 * MB)
        builder.exit(report)

    builder.exit(scheduler)
    return Workload(
        name="blast",
        trace=builder.trace,
        staged_inputs=staged,
        description=(
            f"{jobs} Blast jobs x {queries_per_job} queries "
            "(formatdb | blastall | sort | filter | report)"
        ),
    )
