"""The client-fleet simulator.

Drives dozens-to-thousands of simulated PA-S3fs clients through the
multi-tenant :class:`~repro.service.gateway.IngestGateway` under a fixed
seed.  Each client runs a small synthetic pipeline: one worker process
reads an input and writes a chain of output files, so the fleet's merged
provenance exercises every query shape — Q2 per-object lookups, Q3's
program→outputs select, and a Q4 closure deeper than one hop (each
client's later files derive from its earlier ones).

Determinism is the point: client uuids are namespaced by client id
(``c0007-f002``), sizes and chain shapes come from one seeded RNG, and
the round-robin submission order is fixed by the same seed — so the same
seed and shard count reproduce identical billing totals and identical
query answers, which is what lets the scaling benchmark compare shard
counts on everything *except* the sharding.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Set

from repro.cloud.account import CloudAccount
from repro.cloud.blob import Blob
from repro.cloud.simpledb import prepare_select
from repro.obs.tracing import READ_FIRST
from repro.provenance.graph import NodeRef
from repro.provenance.pass_collector import FlushIntent
from repro.provenance.records import ProvenanceBundle, ProvenanceRecord
from repro.query.engine import IN_CHUNK
from repro.sim import Batch, Delay, SimKernel

from repro.core.protocol_base import FlushWork
from repro.workloads.base import MOUNT

#: The program name every fleet worker runs under (the Q3/Q4 target).
FLEET_PROGRAM = "fleetworker"


@dataclass
class FleetClient:
    """One simulated client: an id and its ordered flush stream."""

    client_id: str
    works: List[FlushWork] = field(default_factory=list)

    def file_paths(self) -> List[str]:
        return [work.primary.path for work in self.works]


def make_fleet(
    clients: int = 16,
    files_per_client: int = 4,
    file_bytes: int = 32 * 1024,
    extra_attributes: int = 24,
    seed: int = 0,
) -> List[FleetClient]:
    """Build a deterministic fleet of clients and their flush streams.

    Args:
        clients: number of simulated clients.
        files_per_client: output files each client closes.
        file_bytes: nominal data size per file (±25 % seeded jitter).
        extra_attributes: synthetic metadata records per file version —
            the attribute-pair volume that loads SimpleDB's per-domain
            indexing pipeline (more pairs ⇒ sharding matters more).
        seed: fixes sizes, chain shapes, and everything downstream.
    """
    rng = random.Random(seed)
    fleet: List[FleetClient] = []
    for c in range(clients):
        cid = f"c{c:04d}"
        client = FleetClient(client_id=cid)

        proc_ref = NodeRef(f"{cid}-p0", 0)
        proc_bundle = ProvenanceBundle(uuid=proc_ref.uuid)
        proc_bundle.add(ProvenanceRecord(proc_ref, "type", "proc"))
        proc_bundle.add(ProvenanceRecord(proc_ref, "name", FLEET_PROGRAM))
        proc_bundle.add(
            ProvenanceRecord(
                proc_ref, "argv", f"{FLEET_PROGRAM} --client {cid}"
            )
        )
        proc_bundle.add(ProvenanceRecord(proc_ref, "input", f"/local/{cid}/seed.dat"))

        previous_ref: Optional[NodeRef] = None
        for j in range(files_per_client):
            path = f"{MOUNT}fleet/{cid}/f{j:03d}.dat"
            ref = NodeRef(f"{cid}-f{j:03d}", 1)
            size = int(file_bytes * rng.uniform(0.75, 1.25))
            bundle = ProvenanceBundle(uuid=ref.uuid)
            bundle.add(ProvenanceRecord(ref, "type", "file"))
            bundle.add(ProvenanceRecord(ref, "name", path))
            bundle.add(ProvenanceRecord(ref, "input", proc_ref))
            # Half the files (after the first) also derive from the
            # previous output, giving Q4 a closure deeper than one hop.
            if previous_ref is not None and rng.random() < 0.5:
                bundle.add(ProvenanceRecord(ref, "input", previous_ref))
            for k in range(extra_attributes):
                bundle.add(
                    ProvenanceRecord(
                        ref, f"meta{k:03d}", f"{cid}:{j}:{rng.randrange(1 << 30)}"
                    )
                )
            bundles = [bundle] if j > 0 else [proc_bundle, bundle]
            client.works.append(
                FlushWork(
                    primary=FlushIntent(
                        path=path,
                        uuid=ref.uuid,
                        ref=ref,
                        blob=Blob.synthetic(size, f"{path}@{ref.version}"),
                    ),
                    bundles=bundles,
                )
            )
            previous_ref = ref
        fleet.append(client)
    return fleet


@dataclass
class FleetRunResult:
    """What one fleet run through the gateway measured."""

    clients: int
    flushes: int
    elapsed_seconds: float
    operations: int
    bytes_transmitted: int
    cost_usd: float

    @property
    def flushes_per_second(self) -> float:
        """Total commit throughput in virtual time — the scaling metric."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.flushes / self.elapsed_seconds


def run_fleet(
    account: CloudAccount,
    gateway,
    fleet: List[FleetClient],
    seed: int = 0,
) -> FleetRunResult:
    """Drive the fleet through the gateway, one batching window per
    round: every live client submits its next flush, then the gateway
    coalesces the window.  Client order within a round is shuffled by
    the seeded RNG (clients are concurrent, arrival order is not fixed)
    but deterministically so."""
    rng = random.Random(seed)
    stopwatch = account.stopwatch()
    ops_before = account.billing.operation_count()
    bytes_before = account.billing.bytes_transmitted()
    cost_before = account.billing.cost()

    cursors: Dict[str, int] = {client.client_id: 0 for client in fleet}
    by_id = {client.client_id: client for client in fleet}
    flushes = 0
    while True:
        live = [
            cid for cid, cursor in cursors.items()
            if cursor < len(by_id[cid].works)
        ]
        if not live:
            break
        rng.shuffle(live)
        for cid in live:
            gateway.submit(cid, by_id[cid].works[cursors[cid]])
            cursors[cid] += 1
            flushes += 1
        gateway.flush_pending()

    return FleetRunResult(
        clients=len(fleet),
        flushes=flushes,
        elapsed_seconds=stopwatch.elapsed(),
        operations=account.billing.operation_count() - ops_before,
        bytes_transmitted=account.billing.bytes_transmitted() - bytes_before,
        cost_usd=account.billing.cost() - cost_before,
    )


# ==========================================================================
# Kernel-driven execution
# ==========================================================================

def client_process(
    gateway, client: FleetClient, think_s: float, rng: random.Random
) -> Generator:
    """One fleet client as a kernel process: submit a flush into the
    gateway's current window, think for a seeded-jittered interval,
    repeat.  Submission itself is instantaneous — the gateway's
    *time-based* window decides when the flush actually ships."""
    for work in client.works:
        gateway.submit(client.client_id, work)
        yield Delay(think_s * rng.uniform(0.5, 1.5))


def run_fleet_kernel(
    account: CloudAccount,
    gateway,
    fleet: List[FleetClient],
    seed: int = 0,
    think_s: float = 0.5,
    window_s: float = 0.25,
) -> FleetRunResult:
    """Drive the fleet concurrently on the simulation kernel: every
    client is its own process, and the gateway flushes *time-based*
    coalescing windows every ``window_s`` virtual seconds.  Deterministic
    for a fixed seed and fleet."""
    kernel = SimKernel(account)
    stopwatch = account.stopwatch()
    ops_before = account.billing.operation_count()
    bytes_before = account.billing.bytes_transmitted()
    cost_before = account.billing.cost()

    kernel.spawn(gateway.process(window_s), name="gateway", daemon=True)
    master = random.Random(seed)
    for client in fleet:
        rng = random.Random(master.randrange(1 << 30))
        kernel.spawn(
            client_process(gateway, client, think_s, rng), name=client.client_id
        )
    kernel.run()
    # Let the gateway ship the tail windows the clients left behind
    # (``busy`` also covers a window cut mid-flush by the run horizon).
    # Respawn policies spawn replacement incarnations the moment the old
    # one dies (scheduled for a later activation), so checking *any*
    # alive incarnation also covers a respawn still on its way; only a
    # gateway that is dead for good can never drain.
    while gateway.busy and any(
        p.alive for p in kernel.processes_named("gateway")
    ):
        kernel.run(until=account.now + window_s)

    return FleetRunResult(
        clients=len(fleet),
        flushes=sum(len(client.works) for client in fleet),
        elapsed_seconds=stopwatch.elapsed(),
        operations=account.billing.operation_count() - ops_before,
        bytes_transmitted=account.billing.bytes_transmitted() - bytes_before,
        cost_usd=account.billing.cost() - cost_before,
    )


@dataclass
class FleetWatch:
    """What the fleet has durably logged so far, by uuid.

    Clients running through :func:`protocol_client_process` record each
    work's primary uuid here the moment its flush plan completes (for P3
    that means *logged* — WAL complete — not yet committed).  Readers
    compare this against what their queries actually return, which is
    what makes read-your-writes staleness measurable: a uuid in
    ``flushed`` but absent from a query answer is a write the store has
    accepted but not yet made visible to that reader.
    """

    flushed: Set[str] = field(default_factory=set)
    flushed_at: Dict[str, float] = field(default_factory=dict)

    def note(self, uuid: str, now: float) -> None:
        if uuid not in self.flushed:
            self.flushed.add(uuid)
            self.flushed_at[uuid] = now


def protocol_client_process(
    protocol,
    client: FleetClient,
    think_s: float,
    rng: random.Random,
    watch: Optional[FleetWatch] = None,
) -> Generator:
    """One fleet client flushing directly through a storage protocol's
    ``flush_plan`` (P1, P2, or P3 — any protocol with a plan), thinking
    a seeded-jittered interval between files.  Mixed-protocol fleets are
    just different clients constructed over different protocols, all
    interleaved by the kernel."""
    for work in client.works:
        yield from protocol.flush_plan(work)
        if watch is not None:
            # The plan has fully resumed here, so account.now is this
            # client's own completion time for the flush.
            watch.note(work.primary.uuid, protocol.account.now)
        yield Delay(think_s * rng.uniform(0.5, 1.5))


# --------------------------------------------------------------------------
# Query-side readers: Q1-Q4 as kernel processes against a live store
# --------------------------------------------------------------------------

@dataclass
class ReaderSample:
    """One reader query against the store at virtual time ``t``.

    ``flushed`` counts uuids the fleet had durably logged when the query
    *started*; ``visible`` counts how many of those the answer actually
    surfaced.  ``stale`` is the read-your-writes gap — positive whenever
    eventual consistency, WAL backlog, or a crashed daemon keeps an
    acknowledged write out of view.  Only Q1 sees the whole store, so
    ``visible``/``stale`` are Q1-only; other shapes record answer size.
    """

    t: float
    query: str
    rows: int
    flushed: int = 0
    visible: int = 0

    @property
    def stale(self) -> int:
        return max(0, self.flushed - self.visible)


def _select_plan(account: CloudAccount, expression: str) -> Generator:
    """One select chain as an effect plan: each page is a Batch, tokens
    follow sequentially.  Returns the accumulated rows."""
    prepared = prepare_select(expression)
    rows: List = []
    token = ""
    while True:
        batch = yield Batch(
            [account.simpledb.select_request(prepared, token)], connections=1
        )
        page = batch.results[0]
        rows.extend(page.rows)
        if page.complete:
            return rows
        token = page.next_token


def _reader_q1(account: CloudAccount, domains: Sequence[str]) -> Generator:
    rows: List = []
    for domain in domains:
        rows.extend((yield from _select_plan(
            account, f"select * from {domain}"
        )))
    return rows


def _reader_q2(
    account: CloudAccount, domains: Sequence[str], uuid: str
) -> Generator:
    rows: List = []
    for domain in domains:
        rows.extend((yield from _select_plan(
            account,
            f"select * from {domain} where itemName() like '{uuid}_%'",
        )))
    return rows


def _reader_q3(
    account: CloudAccount, domains: Sequence[str], program: str
) -> Generator:
    procs = []
    for domain in domains:
        rows = yield from _select_plan(
            account,
            f"select * from {domain} "
            f"where name = '{program}' and type = 'proc'",
        )
        procs.extend(name for name, _ in rows)
    outputs: List = []
    for chunk_start in range(0, len(procs), IN_CHUNK):
        chunk = procs[chunk_start : chunk_start + IN_CHUNK]
        quoted = ", ".join(f"'{name}'" for name in chunk)
        for domain in domains:
            rows = yield from _select_plan(
                account,
                f"select * from {domain} where input in ({quoted})",
            )
            outputs.extend(
                name for name, attrs in rows if "file" in attrs.get("type", [])
            )
    return sorted(set(outputs))


def _reader_q4(
    account: CloudAccount, domains: Sequence[str], program: str
) -> Generator:
    frontier = []
    for domain in domains:
        rows = yield from _select_plan(
            account,
            f"select * from {domain} "
            f"where name = '{program}' and type = 'proc'",
        )
        frontier.extend(name for name, _ in rows)
    seen: Set[str] = set()
    while frontier:
        next_frontier: List[str] = []
        for chunk_start in range(0, len(frontier), IN_CHUNK):
            chunk = frontier[chunk_start : chunk_start + IN_CHUNK]
            quoted = ", ".join(f"'{name}'" for name in chunk)
            for domain in domains:
                rows = yield from _select_plan(
                    account,
                    f"select * from {domain} where input in ({quoted})",
                )
                for name, _attrs in rows:
                    if name not in seen:
                        seen.add(name)
                        next_frontier.append(name)
        frontier = next_frontier
    return sorted(seen)


def reader_process(
    account: CloudAccount,
    domains: Sequence[str],
    program: str,
    watch: FleetWatch,
    samples: List[ReaderSample],
    interval_s: float = 5.0,
    queries: Sequence[str] = ("q1", "q3"),
    target_uuid: str = "",
    rng: Optional[random.Random] = None,
    label: str = "reader",
) -> Generator:
    """A query-side kernel process: round-robin Q1-Q4 shapes against the
    provenance domains while clients are still writing them.

    Each query appends a :class:`ReaderSample`; Q1 samples additionally
    score read-your-writes staleness against ``watch``.  Spawn with
    ``daemon=True`` — readers poll forever; the experiment's run horizon
    stops them.  Deterministic when ``rng`` is seeded (jitters the
    inter-query think time the way clients jitter theirs).
    """
    rng = rng if rng is not None else random.Random(0)
    tracer = account.telemetry.tracer
    staleness_gauge = account.telemetry.metrics.gauge(
        "reader.staleness", reader=label
    )
    query_counter = account.telemetry.metrics.counter(
        "reader.queries", reader=label
    )
    while True:
        for kind in queries:
            started = account.now
            # Snapshot at query start: a write flushed *during* the
            # multi-page query must not mask staleness of the writes
            # the store had already acknowledged when the query began.
            flushed_set = set(watch.flushed)
            if kind == "q1":
                rows = yield from _reader_q1(account, domains)
                visible_uuids = {
                    NodeRef.parse(name).uuid
                    for name, _ in rows
                }
                visible = len(flushed_set & visible_uuids)
                sample = ReaderSample(
                    t=round(started, 6), query=kind, rows=len(rows),
                    flushed=len(flushed_set), visible=visible,
                )
                samples.append(sample)
                if tracer.enabled:
                    # First observation of each traced uuid closes its
                    # record lifecycle; staleness then falls out as the
                    # wal.logged -> read.first span.
                    observed_at = account.now
                    for uuid in sorted(visible_uuids):
                        tracer.mark_first(uuid, READ_FIRST, observed_at)
                staleness_gauge.set(sample.stale)
            elif kind == "q2":
                uuid = target_uuid or (sorted(watch.flushed)[0]
                                       if watch.flushed else "")
                rows = (yield from _reader_q2(account, domains, uuid)) if uuid else []
                samples.append(ReaderSample(
                    t=round(started, 6), query=kind, rows=len(rows),
                ))
            elif kind == "q3":
                outputs = yield from _reader_q3(account, domains, program)
                samples.append(ReaderSample(
                    t=round(started, 6), query=kind, rows=len(outputs),
                ))
            elif kind == "q4":
                closure = yield from _reader_q4(account, domains, program)
                samples.append(ReaderSample(
                    t=round(started, 6), query=kind, rows=len(closure),
                ))
            else:
                raise ValueError(f"unknown reader query {kind!r}")
            query_counter.inc()
            yield Delay(interval_s * rng.uniform(0.5, 1.5))


def run_fleet_compat_kernel(
    account: CloudAccount,
    gateway,
    fleet: List[FleetClient],
    seed: int = 0,
) -> FleetRunResult:
    """Compatibility mode: the exact :func:`run_fleet` round-robin drive
    loop, executed as a single process on the simulation kernel.  Same
    seeded shuffle, same windows, same requests — the equivalence
    regression test holds this to byte-identical numbers against the
    phased driver."""
    kernel = SimKernel(account)
    stopwatch = account.stopwatch()
    ops_before = account.billing.operation_count()
    bytes_before = account.billing.bytes_transmitted()
    cost_before = account.billing.cost()

    def rounds() -> Generator:
        rng = random.Random(seed)
        cursors: Dict[str, int] = {client.client_id: 0 for client in fleet}
        by_id = {client.client_id: client for client in fleet}
        while True:
            live = [
                cid for cid, cursor in cursors.items()
                if cursor < len(by_id[cid].works)
            ]
            if not live:
                break
            rng.shuffle(live)
            for cid in live:
                gateway.submit(cid, by_id[cid].works[cursors[cid]])
                cursors[cid] += 1
            yield from gateway.flush_plan()

    kernel.spawn(rounds(), name="fleet-compat")
    kernel.run()

    return FleetRunResult(
        clients=len(fleet),
        flushes=sum(len(client.works) for client in fleet),
        elapsed_seconds=stopwatch.elapsed(),
        operations=account.billing.operation_count() - ops_before,
        bytes_transmitted=account.billing.bytes_transmitted() - bytes_before,
        cost_usd=account.billing.cost() - cost_before,
    )
