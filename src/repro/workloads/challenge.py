"""The First Provenance Challenge workload (§5): fMRI image processing.

The challenge pipeline, per subject session:

1. ``align_warp`` (×4): normalize each new brain image against the
   reference image, producing a warp,
2. ``reslice`` (×4): transform each image using its warp,
3. ``softmean``: average the resliced images into one atlas,
4. ``slicer`` (×3): slice the atlas along each of three dimensions,
5. ``convert`` (×3): render each slice as a graphical atlas image.

Shape targets from the paper: the deepest provenance graph of the three
workloads (maximum path length ~11: image → align_warp → warp → reslice →
resliced → softmean → atlas → slicer → slice → convert → graphic), a mix
of compute and I/O, and a few thousand operations.
"""

from __future__ import annotations

from repro.provenance.syscalls import TraceBuilder
from repro.workloads.base import MOUNT, Workload

KB = 1024
MB = 1024 * 1024


def make_challenge_workload(
    sessions: int = 25,
    images_per_session: int = 4,
) -> Workload:
    """Build the Provenance Challenge trace.

    Args:
        sessions: independent subject sessions run through the pipeline.
        images_per_session: new brain images per session (paper: 4,
            plus one shared reference image).
    """
    builder = TraceBuilder()
    driver = builder.spawn(
        "challenge.sh",
        argv=["challenge.sh", f"--sessions={sessions}"],
        exec_path="/usr/local/bin/challenge.sh",
    )

    for session in range(sessions):
        prefix = f"{MOUNT}fmri/session-{session:03d}"
        reference = "/local/fmri/reference.img"

        resliced = []
        for image in range(images_per_session):
            anatomy = f"/local/fmri/s{session:03d}/anatomy-{image}.img"
            warp = f"{prefix}/warp-{image}.warp"

            align = builder.spawn(
                "align_warp",
                argv=["align_warp", anatomy, reference, warp, "-m", "12"],
                parent_pid=driver,
                exec_path="/usr/bin/align_warp",
            )
            builder.read(align, anatomy, 4 * MB)
            builder.read(align, anatomy.replace(".img", ".hdr"), 1 * KB)
            builder.read(align, reference, 4 * MB)
            builder.compute(align, 1.2)
            builder.write_close(align, warp, 200 * KB)
            builder.exit(align)

            res = builder.spawn(
                "reslice",
                argv=["reslice", warp, f"resliced-{image}"],
                parent_pid=driver,
                exec_path="/usr/bin/reslice",
            )
            builder.read(res, warp, 200 * KB)
            builder.compute(res, 0.8)
            img = f"{prefix}/resliced-{image}.img"
            hdr = f"{prefix}/resliced-{image}.hdr"
            builder.write_close(res, img, 2 * MB)
            builder.write_close(res, hdr, 1 * KB)
            builder.exit(res)
            resliced.append((img, hdr))

        softmean = builder.spawn(
            "softmean",
            argv=["softmean", "atlas", "y", "null"]
            + [img for img, _ in resliced],
            parent_pid=driver,
            exec_path="/usr/bin/softmean",
        )
        for img, hdr in resliced:
            builder.read(softmean, img, 2 * MB)
            builder.read(softmean, hdr, 1 * KB)
        builder.compute(softmean, 1.6)
        atlas_img = f"{prefix}/atlas.img"
        atlas_hdr = f"{prefix}/atlas.hdr"
        builder.write_close(softmean, atlas_img, 2 * MB)
        builder.write_close(softmean, atlas_hdr, 1 * KB)
        builder.exit(softmean)

        for axis in ("x", "y", "z"):
            slicer = builder.spawn(
                "slicer",
                argv=["slicer", atlas_img, f"-{axis}", ".5", f"atlas-{axis}.pgm"],
                parent_pid=driver,
                exec_path="/usr/bin/slicer",
            )
            builder.read(slicer, atlas_img, 2 * MB)
            builder.read(slicer, atlas_hdr, 1 * KB)
            builder.compute(slicer, 0.4)
            slice_path = f"{prefix}/atlas-{axis}.pgm"
            builder.write_close(slicer, slice_path, 500 * KB)
            builder.exit(slicer)

            convert = builder.spawn(
                "convert",
                argv=["convert", slice_path, f"atlas-{axis}.gif"],
                parent_pid=driver,
                exec_path="/usr/bin/convert",
            )
            builder.read(convert, slice_path, 500 * KB)
            builder.compute(convert, 0.3)
            builder.write_close(convert, f"{prefix}/atlas-{axis}.gif", 300 * KB)
            builder.exit(convert)

    builder.exit(driver)
    return Workload(
        name="challenge",
        trace=builder.trace,
        staged_inputs={},
        description=(
            f"{sessions} fMRI sessions through the First Provenance "
            "Challenge pipeline (align_warp | reslice | softmean | slicer | convert)"
        ),
    )
