"""CVSROOT nightly backup workload (§5).

Simulates nightly backups of a CVS repository: for each of 30 nights,
``tar`` packs that night's snapshot of the (local) repository into a
tarball on the S3fs mount, then ``md5sum`` writes a checksum and the
backup script appends a log entry.

Shape targets from the paper: a nearly flat provenance tree (the archiver
process is the only interesting ancestor), negligible compute, I/O-bound
(the tarballs dominate), and a few hundred S3 operations.
"""

from __future__ import annotations

from repro.provenance.syscalls import TraceBuilder
from repro.workloads.base import MOUNT, Workload

MB = 1024 * 1024


def make_nightly_workload(
    nights: int = 30,
    tarball_bytes: int = 100 * MB,
    repo_growth_bytes: int = 512 * 1024,
) -> Workload:
    """Build the nightly-backup trace.

    Args:
        nights: number of nightly snapshots (paper: 30).
        tarball_bytes: size of the first night's tarball; the repository
            grows a little every night.
        repo_growth_bytes: per-night growth of the repository.
    """
    builder = TraceBuilder()
    shell = builder.spawn(
        "backup.sh", argv=["backup.sh", "--nightly"], exec_path="/usr/local/bin/backup.sh"
    )
    for night in range(nights):
        size = tarball_bytes + night * repo_growth_bytes
        tarball = f"{MOUNT}backups/cvs-{night:02d}.tar.gz"

        tar = builder.spawn(
            "tar",
            argv=["tar", "czf", tarball, f"/repo/cvsroot"],
            parent_pid=shell,
            exec_path="/bin/tar",
        )
        # The repository lives on local disk: provenance is tracked, but
        # no cloud traffic results from these reads.
        builder.read(tar, f"/repo/cvsroot/snapshot-{night:02d}", size)
        builder.compute(tar, 0.4)
        builder.write_close(tar, tarball, size)
        builder.exit(tar)

        md5 = builder.spawn(
            "md5sum", argv=["md5sum", tarball], parent_pid=shell, exec_path="/usr/bin/md5sum"
        )
        builder.read(md5, tarball, size)
        builder.compute(md5, 0.1)
        builder.write_close(md5, f"{MOUNT}backups/cvs-{night:02d}.md5", 64)
        builder.exit(md5)

        builder.write(shell, f"{MOUNT}backups/backup-{night:02d}.log", 10 * 1024)
        builder.close(shell, f"{MOUNT}backups/backup-{night:02d}.log")
    builder.exit(shell)

    return Workload(
        name="nightly",
        trace=builder.trace,
        staged_inputs={},
        description=(
            f"{nights} nightly CVS snapshot tarballs "
            f"(~{tarball_bytes // MB} MB each) with checksums and logs"
        ),
    )
