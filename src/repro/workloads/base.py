"""Common workload descriptor."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.provenance.syscalls import SyscallTrace

#: The S3fs mount point used by all workloads.
MOUNT = "/mnt/s3/"


@dataclass
class Workload:
    """A named, deterministic workload.

    Attributes:
        name: short identifier ("nightly", "blast", "challenge").
        trace: the syscall event stream.
        staged_inputs: mount-resident input files (path -> bytes) that
            must exist in S3 before the run (pre-staged, untimed).
        description: one-line summary.
    """

    name: str
    trace: SyscallTrace
    staged_inputs: Dict[str, int] = field(default_factory=dict)
    description: str = ""

    def summary(self) -> str:
        return (
            f"{self.name}: {len(self.trace)} events, "
            f"{self.trace.total_compute_seconds():.0f}s compute, "
            f"{self.trace.total_bytes_written() / (1024 * 1024):.0f} MB written"
        )
