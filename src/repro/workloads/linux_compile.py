"""Linux-compile provenance stream (Table 2's payload).

The paper's service-throughput benchmark uploads "the first 50 MB of
provenance generated during a Linux compile" to each of S3, SimpleDB, and
SQS.  This generator synthesizes a stream with the same gross statistics:
compiler/linker process nodes rich in argv/env, object-file nodes with a
few inputs each, and header files read by many compilation units —
averaging ~110 bytes per record and ~7 records per node-version, so
50 MB works out to ~65 k node-versions / ~450 k records.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.provenance.graph import NodeRef
from repro.provenance.records import ProvenanceRecord

#: Common kernel source directories, used for plausible path shapes.
_DIRS = (
    "arch/x86/kernel", "drivers/net", "drivers/char", "fs/ext3", "fs/proc",
    "kernel", "mm", "net/ipv4", "net/core", "lib", "sound/pci", "block",
)

_CC_ENV = (
    "PATH=/usr/local/sbin:/usr/local/bin:/usr/sbin:/usr/bin:/sbin:/bin:"
    "/usr/games:/opt/cross/bin:/home/builder/bin:/usr/lib/ccache/bin",
    "HOME=/home/builder/workspaces/kernel-2.6.23.17/build-area/output",
    "LD_LIBRARY_PATH=/usr/local/lib:/usr/lib:/lib:/opt/toolchain/lib:"
    "/opt/toolchain/lib64:/usr/lib/x86_64-linux-gnu/ccache",
    "MAKEFLAGS=-j2 --no-print-directory -- KBUILD_VERBOSE=0 ARCH=x86 "
    "CROSS_COMPILE= INSTALL_MOD_PATH=/home/builder/mods",
    "PKG_CONFIG_PATH=/usr/local/lib/pkgconfig:/usr/lib/pkgconfig:"
    "/opt/toolchain/lib/pkgconfig:/usr/share/pkgconfig",
    "KBUILD_BUILD_TIMESTAMP=Wed Jan 13 11:42:07 EST 2010 build-host "
    "builder@ec2-medium (gcc version 4.1.2 20070925)",
)

_INCLUDE_FLAGS = (
    "-Iinclude -Iinclude/asm-x86/mach-default -Iarch/x86/include "
    "-D__KERNEL__ -Wall -Wundef -Wstrict-prototypes -Wno-trigraphs "
    "-fno-strict-aliasing -fno-common -Werror-implicit-function-declaration "
    "-Os -m32 -msoft-float -mregparm=3 -freg-struct-return "
    "-mpreferred-stack-boundary=2 -march=i686 -mtune=generic "
    "-ffreestanding -maccumulate-outgoing-args -DCONFIG_AS_CFI=1 "
    "-fomit-frame-pointer -fno-stack-protector -Wdeclaration-after-statement "
    "-Wno-pointer-sign -D\"KBUILD_STR(s)=#s\""
)


def make_linux_compile_records(
    target_bytes: int = 50 * 1024 * 1024,
    seed: int = 42,
) -> List[ProvenanceRecord]:
    """Generate at least ``target_bytes`` of encoded provenance records.

    The stream interleaves compilation units: each unit is a ``gcc``
    process node (argv + a few env records) plus an object-file node that
    depends on the process, its source file, and a handful of shared
    headers.  Returns the record list; use
    :func:`repro.provenance.records.ProvenanceBundle.wire_size`-style
    accounting (``sum(r.wire_size())``) to confirm the volume.
    """
    rng = random.Random(seed)
    records: List[ProvenanceRecord] = []
    total = 0

    # Shared headers: created once, referenced everywhere.
    headers: List[NodeRef] = []
    for index in range(200):
        ref = NodeRef(f"h-{index:05d}", 0)
        path = f"include/linux/{rng.choice(_DIRS).split('/')[-1]}-{index}.h"
        for record in (
            ProvenanceRecord(ref, "type", "file"),
            ProvenanceRecord(ref, "name", path),
        ):
            records.append(record)
            total += record.wire_size()
        headers.append(ref)

    unit = 0
    while total < target_bytes:
        directory = rng.choice(_DIRS)
        source = f"{directory}/unit{unit:06d}.c"
        obj = f"{directory}/unit{unit:06d}.o"

        src_ref = NodeRef(f"s-{unit:06d}", 0)
        cc_ref = NodeRef(f"p-{unit:06d}", 0)
        obj_ref = NodeRef(f"o-{unit:06d}", 0)

        source_sha = f"{rng.getrandbits(160):040x}"
        object_sha = f"{rng.getrandbits(160):040x}"
        batch: List[ProvenanceRecord] = [
            ProvenanceRecord(src_ref, "type", "file"),
            ProvenanceRecord(src_ref, "name", f"/usr/src/linux-2.6.23.17/{source}"),
            ProvenanceRecord(src_ref, "sha1", source_sha),
            ProvenanceRecord(src_ref, "mtime", "1263400927.331"),
            ProvenanceRecord(cc_ref, "type", "proc"),
            ProvenanceRecord(cc_ref, "name", "cc1"),
            ProvenanceRecord(cc_ref, "pid", str(3000 + unit)),
            ProvenanceRecord(cc_ref, "starttime", f"1263400{927 + unit % 1000}.112"),
            ProvenanceRecord(
                cc_ref,
                "argv",
                f"gcc -Wp,-MD,{obj}.d -nostdinc {_INCLUDE_FLAGS} -c -o {obj} {source}",
            ),
        ]
        for env in rng.sample(_CC_ENV, 4):
            batch.append(ProvenanceRecord(cc_ref, "env", env))
        batch.append(ProvenanceRecord(cc_ref, "input", src_ref))
        for header in rng.sample(headers, rng.randint(1, 4)):
            batch.append(ProvenanceRecord(cc_ref, "input", header))
        batch.extend(
            (
                ProvenanceRecord(obj_ref, "type", "file"),
                ProvenanceRecord(obj_ref, "name", f"/usr/src/linux-2.6.23.17/{obj}"),
                ProvenanceRecord(obj_ref, "sha1", object_sha),
                ProvenanceRecord(obj_ref, "mtime", "1263400931.007"),
                ProvenanceRecord(obj_ref, "input", cc_ref),
            )
        )

        for record in batch:
            records.append(record)
            total += record.wire_size()
        unit += 1

    return records


def records_total_bytes(records: List[ProvenanceRecord]) -> int:
    """Total wire bytes of a record stream."""
    return sum(record.wire_size() for record in records)
