"""Read-side detection of coupling and causal-ordering violations.

Systems without data-coupling can still *detect* decoupling on access
(§3): the provenance carries a content hash and the data object's
metadata carries its version, so a reader can tell when the pieces do not
match and refresh until they do.  This module implements that detection
for both provenance backends, plus the Merkle-style ancestry hash the
paper suggests for verifying multi-object causal ordering under eventual
consistency (§4.3.1).

Two access styles per backend:

- ``read_*`` — timed, visibility-respecting requests (what a real client
  sees; subject to eventual consistency),
- ``peek_*`` — omniscient final state, used only by the property checkers
  in :mod:`repro.core.properties`.
"""

from __future__ import annotations

import enum
import hashlib
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.cloud.account import CloudAccount
from repro.errors import NoSuchKeyError
from repro.provenance.graph import NodeRef
from repro.provenance.serialization import decode_records

from repro.core import sdb_items
from repro.core.protocol_base import data_key, provenance_object_key

#: Attributes whose values reference other nodes.
XREF_ATTRIBUTES = frozenset({"input", "forkparent", "exec", "version-of"})


class CouplingStatus(enum.Enum):
    """Outcome of a coupling check on one object."""

    COUPLED = "coupled"
    STALE_PROVENANCE = "stale-provenance"  # data is newer than provenance
    STALE_DATA = "stale-data"  # provenance is newer than data
    HASH_MISMATCH = "hash-mismatch"
    MISSING_PROVENANCE = "missing-provenance"
    MISSING_DATA = "missing-data"


# --------------------------------------------------------------------------
# Provenance readers
# --------------------------------------------------------------------------

class ProvenanceReader(ABC):
    """Uniform access to stored provenance, whichever backend holds it."""

    @abstractmethod
    def read_attributes(self, ref: NodeRef) -> Dict[str, List[str]]:
        """Timed fetch of one node-version's attributes (may be stale or
        empty under eventual consistency)."""

    @abstractmethod
    def peek_attributes(self, ref: NodeRef) -> Dict[str, List[str]]:
        """Omniscient final attributes (property checkers only)."""

    @abstractmethod
    def peek_refs(self) -> List[NodeRef]:
        """All stored node-versions (property checkers only)."""

    def peek_versions(self, uuid: str) -> List[int]:
        return sorted(r.version for r in self.peek_refs() if r.uuid == uuid)

    @staticmethod
    def xrefs_of(attributes: Dict[str, List[str]]) -> List[NodeRef]:
        """Node references contained in an attribute map."""
        refs: List[NodeRef] = []
        for attribute, values in attributes.items():
            if attribute not in XREF_ATTRIBUTES:
                continue
            for value in values:
                try:
                    refs.append(NodeRef.parse(value))
                except ValueError:
                    continue
        return refs


class S3ProvenanceReader(ProvenanceReader):
    """P1's backend: uuid-named S3 objects of encoded records."""

    def __init__(self, account: CloudAccount, bucket: str):
        self.account = account
        self.bucket = bucket

    def _attributes_from_text(
        self, text: str, ref: NodeRef
    ) -> Dict[str, List[str]]:
        attributes: Dict[str, List[str]] = {}
        for record in decode_records(text):
            if record.subject == ref:
                attributes.setdefault(record.attribute, []).append(
                    record.value_text()
                )
        return attributes

    def read_attributes(self, ref: NodeRef) -> Dict[str, List[str]]:
        try:
            blob, _ = self.account.s3.get(
                self.bucket, provenance_object_key(ref.uuid)
            )
        except NoSuchKeyError:
            return {}
        return self._attributes_from_text(blob.text(), ref)

    def peek_attributes(self, ref: NodeRef) -> Dict[str, List[str]]:
        record = self.account.s3.peek_latest(
            self.bucket, provenance_object_key(ref.uuid)
        )
        if record is None or record.blob.data is None:
            return {}
        return self._attributes_from_text(record.blob.text(), ref)

    def peek_refs(self) -> List[NodeRef]:
        refs: Set[NodeRef] = set()
        for key in self.account.s3.peek_keys(self.bucket, "prov/"):
            record = self.account.s3.peek_latest(self.bucket, key)
            if record is None or record.blob.data is None:
                continue
            for rec in decode_records(record.blob.text()):
                refs.add(rec.subject)
        return sorted(refs)


class SimpleDBProvenanceReader(ProvenanceReader):
    """P2/P3's backend: SimpleDB items named ``uuid_version``."""

    def __init__(self, account: CloudAccount, domain: str, bucket: str):
        self.account = account
        self.domain = domain
        self.bucket = bucket

    def _fetch_spill_text(self, key: str, timed: bool) -> Optional[str]:
        if timed:
            try:
                blob, _ = self.account.s3.get(self.bucket, key)
            except NoSuchKeyError:
                return None
        else:
            record = self.account.s3.peek_latest(self.bucket, key)
            if record is None:
                return None
            blob = record.blob
        return blob.text() if blob.data is not None else None

    def _resolve_spills(
        self, attributes: Dict[str, List[str]], timed: bool
    ) -> Dict[str, List[str]]:
        resolved: Dict[str, List[str]] = {}
        for attribute, values in attributes.items():
            if attribute == sdb_items.OVERFLOW_ATTRIBUTE:
                # Records beyond the 256-pair item limit live in an S3
                # overflow object; merge them back in.
                for value in values:
                    if not sdb_items.is_spill_pointer(value):
                        continue
                    text = self._fetch_spill_text(
                        sdb_items.spill_pointer_key(value), timed
                    )
                    if text is None:
                        continue
                    for record in decode_records(text):
                        resolved.setdefault(record.attribute, []).append(
                            record.value_text()
                        )
                continue
            out: List[str] = []
            for value in values:
                if sdb_items.is_spill_pointer(value):
                    key = sdb_items.spill_pointer_key(value)
                    if timed:
                        try:
                            blob, _ = self.account.s3.get(self.bucket, key)
                        except NoSuchKeyError:
                            out.append(value)
                            continue
                    else:
                        record = self.account.s3.peek_latest(self.bucket, key)
                        if record is None:
                            out.append(value)
                            continue
                        blob = record.blob
                    out.append(blob.text() if blob.data is not None else value)
                else:
                    out.append(value)
            # extend, not assign: overflow may already have merged values
            # for this attribute.
            resolved.setdefault(attribute, []).extend(out)
        return resolved

    def read_attributes(self, ref: NodeRef) -> Dict[str, List[str]]:
        attributes = self.account.simpledb.get_attributes(self.domain, str(ref))
        return self._resolve_spills(attributes, timed=True)

    def peek_attributes(self, ref: NodeRef) -> Dict[str, List[str]]:
        attributes = self.account.simpledb.peek_item(self.domain, str(ref))
        return self._resolve_spills(attributes, timed=False)

    def peek_refs(self) -> List[NodeRef]:
        refs = []
        for name in self.account.simpledb.peek_item_names(self.domain):
            try:
                refs.append(NodeRef.parse(name))
            except ValueError:
                continue
        return sorted(refs)


# --------------------------------------------------------------------------
# Coupling detection
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class CouplingCheck:
    """Result of checking one object's data against its provenance."""

    path: str
    status: CouplingStatus
    data_version: Optional[int] = None
    provenance_version: Optional[int] = None
    detail: str = ""

    @property
    def coupled(self) -> bool:
        return self.status is CouplingStatus.COUPLED


def check_coupling(
    account: CloudAccount,
    bucket: str,
    path: str,
    reader: ProvenanceReader,
    timed: bool = True,
) -> CouplingCheck:
    """Does the stored data at ``path`` match its stored provenance?

    Compares the version and content hash the data object's metadata
    carries against the ``sha1`` record in the provenance of that
    version, as §3's detection discussion prescribes.
    """
    key = data_key(path)
    if timed:
        try:
            head = account.s3.head(bucket, key)
            metadata = head.metadata
        except NoSuchKeyError:
            return CouplingCheck(path, CouplingStatus.MISSING_DATA)
    else:
        record = account.s3.peek_latest(bucket, key)
        if record is None:
            return CouplingCheck(path, CouplingStatus.MISSING_DATA)
        metadata = record.metadata

    uuid = metadata.get("prov-uuid", "")
    version = int(metadata.get("version", "-1"))
    digest = metadata.get("digest", "")
    if not uuid:
        return CouplingCheck(
            path, CouplingStatus.MISSING_PROVENANCE, detail="no provenance link"
        )
    ref = NodeRef(uuid, version)
    attributes = (
        reader.read_attributes(ref) if timed else reader.peek_attributes(ref)
    )
    if not attributes:
        return CouplingCheck(
            path,
            CouplingStatus.STALE_PROVENANCE,
            data_version=version,
            detail=f"no provenance stored for {ref}",
        )
    hashes = attributes.get("sha1", [])
    if digest and hashes and digest not in hashes:
        return CouplingCheck(
            path,
            CouplingStatus.HASH_MISMATCH,
            data_version=version,
            provenance_version=version,
            detail=f"provenance sha1 {hashes} != data digest {digest}",
        )
    # Is there provenance describing a *newer* version than the data shows?
    newest = max(reader.peek_versions(uuid), default=version)
    if newest > version:
        return CouplingCheck(
            path,
            CouplingStatus.STALE_DATA,
            data_version=version,
            provenance_version=newest,
            detail="provenance describes a version the data never reached",
        )
    return CouplingCheck(
        path,
        CouplingStatus.COUPLED,
        data_version=version,
        provenance_version=version,
    )


# --------------------------------------------------------------------------
# Causal ordering detection (dangling ancestors, Merkle ancestry hash)
# --------------------------------------------------------------------------

def find_dangling_ancestors(
    reader: ProvenanceReader, ref: NodeRef, timed: bool = False
) -> List[NodeRef]:
    """Ancestor references that resolve to no stored provenance — the
    dangling pointers a multi-object causal-ordering violation leaves."""
    dangling: List[NodeRef] = []
    seen: Set[NodeRef] = set()
    stack = [ref]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        attributes = (
            reader.read_attributes(current)
            if timed
            else reader.peek_attributes(current)
        )
        if not attributes:
            if current != ref:
                dangling.append(current)
            continue
        stack.extend(reader.xrefs_of(attributes))
    return dangling


def ancestry_hash(reader: ProvenanceReader, ref: NodeRef) -> str:
    """Merkle-style hash over a node's full ancestry.

    Two replicas agree on an object's complete causal history iff their
    ancestry hashes match — the verification scheme §4.3.1 sketches for
    readers that must check multi-object causal ordering under eventual
    consistency.  A missing ancestor hashes as the distinguished string
    ``MISSING``, so any dangling pointer changes the digest.
    """
    memo: Dict[NodeRef, str] = {}

    def visit(current: NodeRef, trail: Set[NodeRef]) -> str:
        if current in memo:
            return memo[current]
        if current in trail:
            return "CYCLE"
        attributes = reader.peek_attributes(current)
        if not attributes:
            memo[current] = hashlib.sha1(b"MISSING").hexdigest()
            return memo[current]
        hasher = hashlib.sha1()
        for attribute in sorted(attributes):
            for value in sorted(attributes[attribute]):
                hasher.update(f"{attribute}={value};".encode("utf-8"))
        for xref in sorted(reader.xrefs_of(attributes)):
            child = visit(xref, trail | {current})
            hasher.update(child.encode("ascii"))
        memo[current] = hasher.hexdigest()
        return memo[current]

    return visit(ref, set())
