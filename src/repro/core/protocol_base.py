"""Common protocol machinery.

All three protocols share:

- the *flush work unit*: the primary object being closed, the pending
  provenance bundles of its ancestor closure (ancestors first), and any
  ancestor file data that has not reached the cloud yet (multi-object
  causal ordering, §3),
- data-object naming and the metadata link (uuid + version) between a
  data object and its provenance (§4.3.1),
- bookkeeping of which object versions have been stored,
- the upload mode: ``CAUSAL`` uploads ancestors strictly before
  descendants; ``PARALLEL`` batches everything for throughput, which —
  as the paper notes in §5 — violates multi-object causal ordering for
  P1 and P2 (P3 keeps it, because the whole transaction commits or
  nothing does).
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cloud.account import CloudAccount
from repro.cloud.blob import Blob
from repro.provenance.graph import NodeRef
from repro.provenance.pass_collector import DeleteIntent, FlushIntent
from repro.provenance.records import ProvenanceBundle, ProvenanceRecord

#: Default bucket for data, temporaries, and provenance spill objects.
DATA_BUCKET = "pass-data"

#: SimpleDB domain for provenance items (P2, P3).
PROVENANCE_DOMAIN = "pass-prov"


class DomainRouter:
    """Maps an object uuid to the SimpleDB domain holding its provenance.

    The base router is the paper's configuration: every item lands in one
    domain (``PROVENANCE_DOMAIN``).  The multi-tenant service tier swaps
    in :class:`repro.service.sharding.ShardRouter`, which spreads items
    over N domains by stable hash — SimpleDB's ingest ceiling is
    per-domain (§5's domain-limit discussion), so routing is the scaling
    unit.  Protocols, the commit daemon, and the query engines all accept
    a router so the storage scheme stays consistent end to end.
    """

    def __init__(self, domain: str = PROVENANCE_DOMAIN):
        self._domain = domain

    @property
    def domains(self) -> Tuple[str, ...]:
        """Every domain this router can produce, in stable order."""
        return (self._domain,)

    def domain_for(self, uuid: str) -> str:
        """Domain holding the provenance items of ``uuid``."""
        return self._domain

    def group_by_domain(
        self, bundles: List[ProvenanceBundle]
    ) -> List[Tuple[str, List[ProvenanceBundle]]]:
        """Split bundles by target domain, preserving arrival order both
        across domains (first touch) and within each domain."""
        grouped: Dict[str, List[ProvenanceBundle]] = {}
        for bundle in bundles:
            grouped.setdefault(self.domain_for(bundle.uuid), []).append(bundle)
        return list(grouped.items())

    def note_indexed_items(
        self, domain: str, items: List[Tuple[str, List[Tuple[str, str]]]]
    ) -> None:
        """Write-path hook: the built SimpleDB items about to be put to
        ``domain``.  ``build_routed_requests`` calls this for every
        routed write (gateway, P2 flush, commit daemon), so a router
        that maintains per-shard routing state — the ShardRouter's
        Bloom filters — sees every item regardless of which tier wrote
        it.  The base router keeps no such state: no-op."""


class UploadMode(enum.Enum):
    """How a flush's requests are issued."""

    CAUSAL = "causal"
    PARALLEL = "parallel"


@dataclass
class FlushWork:
    """Everything one close/flush must persist."""

    primary: FlushIntent
    #: Pending provenance, ancestors before descendants.
    bundles: List[ProvenanceBundle] = field(default_factory=list)
    #: Ancestor file versions whose data is not yet in the cloud.
    ancestor_data: List[FlushIntent] = field(default_factory=list)
    #: When false, only provenance is uploaded (the microbenchmark tool
    #: replays every flush's provenance but uploads each data object once,
    #: at its final version — §5.1's "we only upload the final results").
    include_data: bool = True


def data_key(path: str) -> str:
    """S3 key for a file path (one object per file, §4.3.1)."""
    return "files/" + path.lstrip("/")


def provenance_object_key(uuid: str) -> str:
    """S3 key of a P1 provenance object (uuid-named, never deleted)."""
    return f"prov/{uuid}"


def spill_key(ref: NodeRef, attribute: str, index: int) -> str:
    """S3 key for a provenance value too large for SimpleDB's 1 KB limit."""
    return f"spill/{ref}/{attribute}/{index}"


def temp_key(txn_id: str, ref: NodeRef) -> str:
    """S3 key of a P3 temporary data object."""
    return f"tmp/{txn_id}/{ref}"


def coupling_records(intent: FlushIntent) -> List[ProvenanceRecord]:
    """Records binding provenance to the data it describes: the data
    object's name and a content hash (the detection hooks of §3)."""
    return [
        ProvenanceRecord(intent.ref, "object", data_key(intent.path)),
        ProvenanceRecord(intent.ref, "sha1", intent.blob.digest),
    ]


def data_object_metadata(intent: FlushIntent) -> Dict[str, str]:
    """Metadata stored on a data object, linking it to its provenance
    (§4.3.1: "we record a version number and the uuid")."""
    return {
        "prov-uuid": intent.uuid,
        "version": str(intent.ref.version),
        "digest": intent.blob.digest,
    }


def bundles_with_coupling(work: FlushWork) -> List[ProvenanceBundle]:
    """Append the coupling records to the primary object's bundle —
    shared by P2's flush and the ingest gateway, which store the same
    scheme."""
    out: List[ProvenanceBundle] = []
    for bundle in work.bundles:
        if bundle.uuid == work.primary.uuid:
            enriched = ProvenanceBundle(uuid=bundle.uuid)
            for record in bundle.records:
                enriched.add(record)
            for record in coupling_records(work.primary):
                enriched.add(record)
            out.append(enriched)
        else:
            out.append(bundle)
    return out


class StorageProtocol(ABC):
    """Interface all three protocols implement.

    Subclasses override :meth:`flush`; reading and deleting data follow
    identical S3 paths in all protocols and live here.
    """

    #: Short protocol name ("p1", "p2", "p3"); set by subclasses.
    name: str = "base"

    #: Whether provenance can be queried by attribute without a full scan
    #: (the efficient-query property, Table 1).
    supports_efficient_query: bool = False

    def __init__(
        self,
        account: CloudAccount,
        mode: UploadMode = UploadMode.PARALLEL,
        connections: int = 32,
        bucket: str = DATA_BUCKET,
    ):
        self.account = account
        self.mode = mode
        self.connections = connections
        self.bucket = bucket
        account.s3.create_bucket(bucket)
        #: object uuid -> set of versions whose provenance was persisted.
        self._stored_provenance: Dict[str, Set[int]] = {}
        #: object uuid -> latest data version persisted.
        self._stored_data: Dict[str, int] = {}
        #: When not None, requests are collected here instead of executed
        #: (the microbenchmark's "upload everything in parallel" mode).
        self._deferred: Optional[List] = None

    # -- interface ----------------------------------------------------------

    @abstractmethod
    def flush(self, work: FlushWork) -> None:
        """Persist the primary object's data and all pending provenance."""

    # -- deferred execution (microbenchmark tool) ------------------------------

    def begin_deferred(self) -> None:
        """Start collecting requests instead of executing them.  Client-side
        CPU costs are still charged; the caller executes the collected
        requests in one large parallel batch via :meth:`end_deferred`."""
        self._deferred = []

    def end_deferred(self) -> List:
        """Stop collecting; return the accumulated requests."""
        requests = self._deferred or []
        self._deferred = None
        return requests

    def _dispatch(self, requests: List):
        """Execute a request batch now, or stash it when deferred.
        Returns the batch result, or ``None`` when deferred."""
        if not requests:
            return None
        if self._deferred is not None:
            self._deferred.extend(requests)
            return None
        return self.account.scheduler.execute_batch(requests, self.connections)

    def prov_cpu_cost(self, request_count: int) -> float:
        """Serial client-side CPU seconds for preparing ``request_count``
        provenance requests (PASS record extraction, DPAPI marshalling,
        serialization).  Phased callers advance the shared clock by this;
        kernel processes yield it as a :class:`~repro.sim.events.Delay`
        in their own time domain."""
        if request_count <= 0:
            return 0.0
        env = self.account.profile.environment
        return request_count * env.prov_cpu_per_request_s * env.cpu_factor

    def prov_items_cost(self, item_count: int) -> float:
        """Serial client-side CPU seconds for marshalling ``item_count``
        attribute-value pairs into SimpleDB requests."""
        if item_count <= 0:
            return 0.0
        env = self.account.profile.environment
        return item_count * env.prov_cpu_per_item_s * env.cpu_factor

    def charge_prov_cpu(self, request_count: int) -> None:
        """Advance the shared clock by :meth:`prov_cpu_cost` (phased)."""
        cost = self.prov_cpu_cost(request_count)
        if cost > 0:
            self.account.clock.advance(cost)

    def charge_prov_items(self, item_count: int) -> None:
        """Advance the shared clock by :meth:`prov_items_cost` (phased)."""
        cost = self.prov_items_cost(item_count)
        if cost > 0:
            self.account.clock.advance(cost)

    def finalize(self) -> None:
        """Drain any asynchronous work (P3's commit daemon); default no-op."""

    def delete(self, intent: DeleteIntent) -> None:
        """Delete a file's data object.  Provenance is *not* touched —
        data-independent persistence (§3)."""
        self.account.s3.delete(self.bucket, data_key(intent.path))
        self._stored_data.pop(intent.uuid, None)

    def read_data(self, path: str) -> Tuple[Blob, Dict[str, str]]:
        """GET a data object (used by PA-S3fs on cache miss)."""
        return self.account.s3.get(self.bucket, data_key(path))

    # -- bookkeeping ----------------------------------------------------------

    def provenance_stored(self, ref: NodeRef) -> bool:
        return ref.version in self._stored_provenance.get(ref.uuid, set())

    def data_stored_version(self, uuid: str) -> Optional[int]:
        return self._stored_data.get(uuid)

    def _mark_provenance_stored(self, bundles: List[ProvenanceBundle]) -> None:
        for bundle in bundles:
            versions = self._stored_provenance.setdefault(bundle.uuid, set())
            versions.update(bundle.versions())

    def _mark_data_stored(self, intent: FlushIntent) -> None:
        self._stored_data[intent.uuid] = intent.ref.version

    # -- shared helpers ----------------------------------------------------------

    @staticmethod
    def coupling_records(intent: FlushIntent) -> List[ProvenanceRecord]:
        """See the module-level :func:`coupling_records`."""
        return coupling_records(intent)

    def data_metadata(self, intent: FlushIntent) -> Dict[str, str]:
        """See the module-level :func:`data_object_metadata`."""
        return data_object_metadata(intent)
