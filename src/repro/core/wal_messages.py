"""P3's write-ahead-log message format.

SQS messages are limited to 8 KB (§4.3.3), so a transaction is split into
numbered packets.  Every message is a set of lines:

- ``hdr|<txn_id>|<seq>|<total>`` — always the first line; ``total`` is
  the packet count of the transaction (the paper puts the total in the
  first packet; carrying it in every header costs a few bytes and makes
  reassembly order-independent, which SQS's best-effort ordering
  requires anyway),
- ``data|<final_key>|<uuid>|<version>|<tmp_key>|<size>|<digest>`` — one
  per data object in the transaction: where the committed object goes,
  which temporary S3 object holds its bytes, and the content hash used
  for coupling detection,
- ``rec|<encoded provenance record>`` — provenance records in the wire
  encoding of :mod:`repro.provenance.serialization`.

Large data never rides in the queue: the client stores it as a temporary
S3 object and the WAL carries only the pointer, exactly as §4.3.3
prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cloud.sqs import MESSAGE_LIMIT_BYTES
from repro.provenance.records import ProvenanceRecord
from repro.provenance.serialization import decode_record, encode_record

#: Bytes reserved for the header line in each message.
HEADER_RESERVE = 64


@dataclass(frozen=True)
class DataManifestEntry:
    """One data object carried by a transaction."""

    final_key: str
    uuid: str
    version: int
    tmp_key: str
    size: int
    digest: str

    def encode(self) -> str:
        return "|".join(
            (
                "data",
                self.final_key,
                self.uuid,
                str(self.version),
                self.tmp_key,
                str(self.size),
                self.digest,
            )
        )

    @staticmethod
    def decode(line: str) -> "DataManifestEntry":
        parts = line.split("|")
        if len(parts) != 7 or parts[0] != "data":
            raise ValueError(f"malformed data manifest line: {line!r}")
        return DataManifestEntry(
            final_key=parts[1],
            uuid=parts[2],
            version=int(parts[3]),
            tmp_key=parts[4],
            size=int(parts[5]),
            digest=parts[6],
        )


@dataclass
class ParsedMessage:
    """A WAL message after parsing."""

    txn_id: str
    seq: int
    total: int
    data_entries: List[DataManifestEntry] = field(default_factory=list)
    records: List[ProvenanceRecord] = field(default_factory=list)


def build_messages(
    txn_id: str,
    data_entries: Sequence[DataManifestEntry],
    records: Sequence[ProvenanceRecord],
    limit_bytes: int = MESSAGE_LIMIT_BYTES,
) -> List[str]:
    """Pack a transaction into WAL messages of at most ``limit_bytes``."""
    budget = limit_bytes - HEADER_RESERVE
    if budget <= 0:
        raise ValueError("message limit too small for the header")

    lines: List[str] = [entry.encode() for entry in data_entries]
    lines.extend("rec|" + encode_record(record) for record in records)
    if not lines:
        lines = ["noop"]

    groups: List[List[str]] = []
    current: List[str] = []
    current_size = 0
    for line in lines:
        size = len(line.encode("utf-8")) + 1
        if size > budget:
            raise ValueError(
                f"single WAL line of {size} bytes exceeds message budget "
                f"{budget}; spill the value to S3 first"
            )
        if current and current_size + size > budget:
            groups.append(current)
            current = []
            current_size = 0
        current.append(line)
        current_size += size
    if current:
        groups.append(current)

    total = len(groups)
    messages = []
    for seq, group in enumerate(groups):
        header = f"hdr|{txn_id}|{seq}|{total}"
        messages.append("\n".join([header] + group))
    return messages


def parse_message(body: str) -> ParsedMessage:
    """Parse one WAL message body."""
    lines = body.split("\n")
    header = lines[0].split("|")
    if len(header) != 4 or header[0] != "hdr":
        raise ValueError(f"malformed WAL header: {lines[0]!r}")
    parsed = ParsedMessage(txn_id=header[1], seq=int(header[2]), total=int(header[3]))
    for line in lines[1:]:
        if line.startswith("data|"):
            parsed.data_entries.append(DataManifestEntry.decode(line))
        elif line.startswith("rec|"):
            parsed.records.append(decode_record(line[len("rec|"):]))
        elif line == "noop" or not line:
            continue
        else:
            raise ValueError(f"unrecognized WAL line: {line!r}")
    return parsed
