"""The four provenance-system properties (§3) as executable checkers.

Each checker inspects the *final* cloud state (omniscient peeks — the
eventual view once all writes have propagated) and reports violations.
Running them after crash-injection experiments reproduces Table 1:

- **Provenance data-coupling** — every stored data object matches the
  provenance stored for its version (and vice versa: provenance that
  describes data the store never received is a violation).
- **Multi-object causal ordering** — every ancestor referenced by stored
  provenance has stored provenance itself (no dangling pointers).
- **Data-independent persistence** — provenance of deleted objects is
  still present.
- **Efficient query** — structural: the backend can retrieve provenance
  by attribute without scanning every object (S3 cannot; SimpleDB can).
  The quantitative side is Table 5's query benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cloud.account import CloudAccount
from repro.provenance.graph import NodeRef

from repro.core.detection import (
    CouplingCheck,
    CouplingStatus,
    ProvenanceReader,
    check_coupling,
)
from repro.core.protocol_base import StorageProtocol, data_key


@dataclass
class PropertyReport:
    """Outcome of one property check."""

    property_name: str
    holds: bool
    violations: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        mark = "yes" if self.holds else "NO"
        lines = [f"{self.property_name}: {mark}"]
        lines.extend(f"  - {v}" for v in self.violations[:10])
        if len(self.violations) > 10:
            lines.append(f"  ... and {len(self.violations) - 10} more")
        return "\n".join(lines)


def check_data_coupling(
    account: CloudAccount,
    bucket: str,
    reader: ProvenanceReader,
    paths: Sequence[str],
    expected_uuids: Optional[Dict[str, str]] = None,
    deleted_paths: Sequence[str] = (),
) -> PropertyReport:
    """Eventual provenance data-coupling over the given paths.

    Both directions count: stored data whose provenance is stale, and —
    when ``expected_uuids`` maps a path to its object uuid — stored
    provenance describing data the store never received (the violation a
    crash between P1/P2's provenance write and data write leaves behind).
    Paths in ``deleted_paths`` were removed on purpose; their surviving
    provenance is data-independent persistence, not a violation.
    """
    violations: List[str] = []
    expected_uuids = expected_uuids or {}
    deleted = set(deleted_paths)
    for path in paths:
        check = check_coupling(account, bucket, path, reader, timed=False)
        if check.status is CouplingStatus.MISSING_DATA:
            if path in deleted:
                continue
            uuid = expected_uuids.get(path)
            if uuid and reader.peek_versions(uuid):
                violations.append(
                    f"{path}: provenance stored for {uuid} but its data never "
                    "reached the store (crash between provenance and data writes)"
                )
            continue
        if not check.coupled:
            violations.append(
                f"{path}: {check.status.value} "
                f"(data v{check.data_version}, prov v{check.provenance_version}) "
                f"{check.detail}"
            )
    return PropertyReport("provenance-data-coupling", not violations, violations)


def check_causal_ordering(reader: ProvenanceReader) -> PropertyReport:
    """Eventual multi-object causal ordering over all stored provenance:
    every referenced ancestor must have stored provenance."""
    stored = set(reader.peek_refs())
    violations: List[str] = []
    for ref in stored:
        attributes = reader.peek_attributes(ref)
        for xref in reader.xrefs_of(attributes):
            if xref not in stored:
                violations.append(f"{ref} references missing ancestor {xref}")
    return PropertyReport("multi-object-causal-ordering", not violations, violations)


def check_persistence(
    account: CloudAccount,
    bucket: str,
    reader: ProvenanceReader,
    deleted: Sequence[NodeRef],
) -> PropertyReport:
    """Data-independent persistence: the provenance of every deleted
    object version must still be retrievable."""
    violations: List[str] = []
    for ref in deleted:
        if not reader.peek_attributes(ref):
            violations.append(f"provenance of deleted object {ref} is gone")
    return PropertyReport("data-independent-persistence", not violations, violations)


def check_efficient_query(protocol: StorageProtocol) -> PropertyReport:
    """Structural efficient-query property (Table 1's third row)."""
    if protocol.supports_efficient_query:
        return PropertyReport("efficient-query", True)
    return PropertyReport(
        "efficient-query",
        False,
        [
            f"protocol {protocol.name} stores provenance in the object store; "
            "attribute lookups require scanning every provenance object"
        ],
    )


@dataclass
class PropertyMatrix:
    """Table 1: which properties each protocol satisfied in an experiment."""

    rows: Dict[str, Dict[str, bool]] = field(default_factory=dict)

    def set(self, protocol: str, property_name: str, holds: bool) -> None:
        self.rows.setdefault(protocol, {})[property_name] = holds

    def get(self, protocol: str, property_name: str) -> Optional[bool]:
        return self.rows.get(protocol, {}).get(property_name)

    def render(self) -> str:
        """Text rendering in the paper's Table 1 layout."""
        properties = [
            "provenance-data-coupling",
            "multi-object-causal-ordering",
            "efficient-query",
        ]
        protocols = sorted(self.rows)
        width = max(len(p) for p in properties) + 2
        header = "Property".ljust(width) + "".join(
            p.upper().ljust(6) for p in protocols
        )
        lines = [header]
        for prop in properties:
            cells = []
            for protocol in protocols:
                value = self.rows[protocol].get(prop)
                cells.append(("yes" if value else "no").ljust(6))
            lines.append(prop.ljust(width) + "".join(cells))
        return "\n".join(lines)
