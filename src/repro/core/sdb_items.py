"""Building SimpleDB items from provenance bundles (shared by P2 and P3).

The storage scheme of §4.3.2: the provenance of one object *version* is
one SimpleDB item named ``uuid_version``; each provenance record becomes
an attribute-value pair (attributes are multi-valued, so repeated
``input`` records coexist).  Values larger than SimpleDB's 1 KB limit are
stored as separate S3 objects and replaced by a pointer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.cloud.blob import Blob
from repro.cloud.network import Request
from repro.cloud.s3 import S3Service
from repro.cloud.simpledb import ATTRIBUTE_LIMIT_BYTES, BATCH_PUT_LIMIT
from repro.provenance.graph import NodeRef
from repro.provenance.records import ProvenanceBundle, ProvenanceRecord

from repro.core import protocol_base

#: Pointer prefix marking a spilled value.
SPILL_POINTER_PREFIX = "s3-spill:"

#: Attribute holding the pointer to overflowed records (an item may carry
#: at most 256 attribute pairs; the paper's one-item-per-version scheme
#: needs an escape hatch for versions with more records than that).
OVERFLOW_ATTRIBUTE = "overflow"

#: Pairs kept inline before overflowing (leaves room for the pointer).
_INLINE_PAIR_LIMIT = 255


@dataclass
class ItemPlan:
    """The SimpleDB writes (and S3 spills) for a set of bundles."""

    #: SimpleDB items: (item name ``uuid_version``, [(attr, value), ...]).
    items: List[Tuple[str, List[Tuple[str, str]]]] = field(default_factory=list)
    #: Spill S3 PUT requests, to execute before/with the batch puts.
    spill_requests: List[Request] = field(default_factory=list)

    def batches(self) -> List[List[Tuple[str, List[Tuple[str, str]]]]]:
        """Split items into BatchPutAttributes-sized groups (≤ 25)."""
        return [
            self.items[i : i + BATCH_PUT_LIMIT]
            for i in range(0, len(self.items), BATCH_PUT_LIMIT)
        ]


def build_item_plan(
    bundles: Sequence[ProvenanceBundle],
    s3: S3Service,
    bucket: str,
) -> ItemPlan:
    """Convert bundles to SimpleDB items, spilling oversized values.

    The returned spill requests are not yet executed; the caller decides
    whether they run sequentially (causal mode) or in the flush batch.
    """
    plan = ItemPlan()
    for bundle in bundles:
        for version, records in sorted(bundle.by_version().items()):
            ref = NodeRef(bundle.uuid, version)
            pairs: List[Tuple[str, str]] = []
            overflow: List[ProvenanceRecord] = []
            spill_counter = 0
            for record in records:
                if len(pairs) >= _INLINE_PAIR_LIMIT:
                    overflow.append(record)
                    continue
                value = record.value_text()
                if len(value.encode("utf-8")) > ATTRIBUTE_LIMIT_BYTES:
                    key = protocol_base.spill_key(ref, record.attribute, spill_counter)
                    spill_counter += 1
                    plan.spill_requests.append(
                        s3.put_request(bucket, key, Blob.from_text(value))
                    )
                    value = SPILL_POINTER_PREFIX + key
                pairs.append((record.attribute, value))
            if overflow:
                from repro.provenance.serialization import encode_records

                key = protocol_base.spill_key(ref, OVERFLOW_ATTRIBUTE, 0)
                plan.spill_requests.append(
                    s3.put_request(bucket, key, Blob.from_text(encode_records(overflow)))
                )
                pairs.append((OVERFLOW_ATTRIBUTE, SPILL_POINTER_PREFIX + key))
            plan.items.append((str(ref), pairs))
    return plan


def build_routed_requests(
    router,
    bundles: Sequence[ProvenanceBundle],
    account,
    bucket: str,
) -> Tuple[List[Request], List[Request], int]:
    """Route bundles to their shard domains and build the cloud writes.

    The one sharding pipeline shared by every write path (P2's flush,
    P3's commit daemon, the ingest gateway): group bundles by the
    router's domain, build each group's item plan, and emit the spill
    PUTs plus per-domain ``BatchPutAttributes`` requests.  Returns
    ``(spill_requests, batch_requests, attribute_pair_count)``; nothing
    is executed — the caller owns scheduling and fault points.
    """
    spill_requests: List[Request] = []
    batch_requests: List[Request] = []
    item_pairs = 0
    for shard, group in router.group_by_domain(list(bundles)):
        plan = build_item_plan(group, account.s3, bucket)
        spill_requests.extend(plan.spill_requests)
        batch_requests.extend(
            account.simpledb.batch_put_request(shard, batch)
            for batch in plan.batches()
        )
        item_pairs += sum(len(pairs) for _, pairs in plan.items)
        # Feed the router's per-shard routing state (the ShardRouter's
        # Bloom filters) *before* the writes execute: an insert for a
        # write that later crashes is a harmless false positive, while
        # the reverse order could miss a committed item — a false
        # negative the pruning contract forbids.
        router.note_indexed_items(shard, plan.items)
    return spill_requests, batch_requests, item_pairs


def is_spill_pointer(value: str) -> bool:
    return value.startswith(SPILL_POINTER_PREFIX)


def spill_pointer_key(value: str) -> str:
    """Extract the S3 key from a spill pointer value."""
    if not is_spill_pointer(value):
        raise ValueError(f"not a spill pointer: {value!r}")
    return value[len(SPILL_POINTER_PREFIX):]
