"""P3's cleaner daemon (§4.3.3).

Temporary S3 objects belong to transactions; the commit daemon deletes
them on commit.  If a client crashes mid-log, its transaction never
commits and its temporaries are orphaned.  SQS garbage-collects the WAL
messages automatically (four-day retention); the temporaries need this
cleaner: remove any ``tmp/`` object that has not been touched for four
days.

Each temporary carries a ``created`` metadata timestamp (stamped by the
P3 client at PUT time); the cleaner lists the ``tmp/`` prefix, HEADs each
object, and deletes the stale ones.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.cloud.account import CloudAccount
from repro.cloud.network import Request
from repro.errors import NoSuchKeyError
from repro.sim.compat import run_plan_phased
from repro.sim.events import Batch, Delay

#: Age after which an orphaned temporary is collected (matches SQS's
#: message retention, §4.3.3).
DEFAULT_MAX_AGE_SECONDS = 4 * 24 * 3600.0


class CleanerDaemon:
    """Removes orphaned temporary objects."""

    def __init__(
        self,
        account: CloudAccount,
        bucket: str,
        max_age_seconds: float = DEFAULT_MAX_AGE_SECONDS,
        connections: int = 32,
        charge_time: bool = False,
    ):
        self.account = account
        self.bucket = bucket
        self.max_age_seconds = max_age_seconds
        self.connections = connections
        self.charge_time = charge_time
        #: Cumulative temporaries removed (the kernel process's counter).
        self.removed_total = 0
        #: The first LIST page request (marker "") reused across passes —
        #: every poll starts with the same listing; continuation markers
        #: vary per pass and are built fresh.
        self._first_list: Optional[Request] = None

    def clean(self) -> int:
        """One cleaning pass (phased driver); returns temporaries removed."""
        return run_plan_phased(
            self.account, self.clean_plan(), advance_clock=self.charge_time
        )

    def clean_plan(self) -> Generator:
        """One cleaning pass as an effect plan — list the ``tmp/`` prefix,
        HEAD each object, delete the stale ones."""
        now = self.account.now
        keys: List[str] = []
        marker = ""
        while True:
            if marker:
                list_request = self.account.s3.list_request(
                    self.bucket, "tmp/", marker
                )
            else:
                if self._first_list is None:
                    self._first_list = self.account.s3.list_request(
                        self.bucket, "tmp/", ""
                    )
                list_request = self._first_list
            batch = yield Batch([list_request], self.connections)
            page, marker = batch.results[0]
            keys.extend(page)
            if not marker:
                break

        stale: List[str] = []
        for key in keys:
            try:
                batch = yield Batch(
                    [self.account.s3.head_request(self.bucket, key)],
                    self.connections,
                )
            except NoSuchKeyError:
                continue
            head = batch.results[0]
            created = float(head.metadata.get("created", "0"))
            if now - created > self.max_age_seconds:
                stale.append(key)

        if stale:
            yield Batch(
                [self.account.s3.delete_request(self.bucket, key) for key in stale],
                self.connections,
            )
        self.removed_total += len(stale)
        return len(stale)

    def process(self, interval: float = 3600.0) -> Generator:
        """The cleaner as a long-running kernel process: one pass every
        ``interval`` virtual seconds.  Spawn with ``daemon=True``."""
        while True:
            yield from self.clean_plan()
            yield Delay(interval)
