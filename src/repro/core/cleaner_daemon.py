"""P3's cleaner daemon (§4.3.3).

Temporary S3 objects belong to transactions; the commit daemon deletes
them on commit.  If a client crashes mid-log, its transaction never
commits and its temporaries are orphaned.  SQS garbage-collects the WAL
messages automatically (four-day retention); the temporaries need this
cleaner: remove any ``tmp/`` object that has not been touched for four
days.

Each temporary carries a ``created`` metadata timestamp (stamped by the
P3 client at PUT time); the cleaner lists the ``tmp/`` prefix, HEADs each
object, and deletes the stale ones.
"""

from __future__ import annotations

from typing import List

from repro.cloud.account import CloudAccount
from repro.cloud.network import Request
from repro.errors import NoSuchKeyError

#: Age after which an orphaned temporary is collected (matches SQS's
#: message retention, §4.3.3).
DEFAULT_MAX_AGE_SECONDS = 4 * 24 * 3600.0


class CleanerDaemon:
    """Removes orphaned temporary objects."""

    def __init__(
        self,
        account: CloudAccount,
        bucket: str,
        max_age_seconds: float = DEFAULT_MAX_AGE_SECONDS,
        connections: int = 32,
        charge_time: bool = False,
    ):
        self.account = account
        self.bucket = bucket
        self.max_age_seconds = max_age_seconds
        self.connections = connections
        self.charge_time = charge_time

    def _run(self, requests: List[Request]) -> List:
        if not requests:
            return []
        return self.account.scheduler.execute_batch(
            requests, self.connections, advance_clock=self.charge_time
        ).results

    def clean(self) -> int:
        """One cleaning pass; returns the number of temporaries removed."""
        now = self.account.now
        keys: List[str] = []
        marker = ""
        while True:
            page, marker = self._run(
                [self.account.s3.list_request(self.bucket, "tmp/", marker)]
            )[0]
            keys.extend(page)
            if not marker:
                break

        stale: List[str] = []
        for key in keys:
            try:
                head = self._run([self.account.s3.head_request(self.bucket, key)])[0]
            except NoSuchKeyError:
                continue
            created = float(head.metadata.get("created", "0"))
            if now - created > self.max_age_seconds:
                stale.append(key)

        self._run(
            [self.account.s3.delete_request(self.bucket, key) for key in stale]
        )
        return len(stale)
