"""PA-S3fs and the plain S3fs baseline (§4.2).

``PlainS3fs`` is the paper's baseline: a user-level FUSE file system
backed by S3 with a local write-back cache — reads hit the cache or issue
a GET; close/flush issues a PUT; no provenance anywhere.  Like the real
S3fs, metadata lookups (``getattr``) cost a HEAD before each transfer.

``PAS3fs`` extends it the way the paper extends S3fs: system-call events
flow through the PASS collector, data is cached in a local temporary
directory and provenance in memory, and on close/flush both are pushed to
the cloud through one of the protocols (P1/P2/P3).  The flush carries the
pending provenance of the object's full ancestor closure, plus the data
of any ancestor file version that has not reached the cloud yet —
multi-object causal ordering's requirement.

Only paths under the *mount prefix* live on the cloud; other paths are
local files that PASS still tracks (their provenance rides along in
ancestor closures) but whose data never leaves the machine.

Application compute time is charged to the virtual clock, scaled by the
environment profile (UML's CPU penalty; its 512 MB memory penalty for
memory-bound phases — the effect that made Blast 2× slower under UML in
the paper's §5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.cloud.account import CloudAccount
from repro.cloud.blob import Blob
from repro.errors import NoSuchKeyError
from repro.provenance.pass_collector import (
    ComputeIntent,
    DeleteIntent,
    FlushIntent,
    PassCollector,
    ReadIntent,
)
from repro.provenance.syscalls import (
    CloseEvent,
    ComputeEvent,
    FlushEvent,
    ReadEvent,
    SyscallTrace,
    UnlinkEvent,
    WriteEvent,
)

from repro.core.protocol_base import FlushWork, StorageProtocol, data_key

#: Paths under this prefix live on the S3-backed mount.
DEFAULT_MOUNT_PREFIX = "/mnt/s3/"


@dataclass
class RunResult:
    """What one workload run measured (the raw material of Figures 3/4
    and Tables 3/4)."""

    configuration: str
    elapsed_seconds: float
    operations: int
    bytes_transmitted: int
    bytes_received: int
    compute_seconds: float = 0.0
    cost_usd: float = 0.0

    @property
    def mb_transmitted(self) -> float:
        return self.bytes_transmitted / (1024.0 * 1024.0)

    @property
    def mb_received(self) -> float:
        return self.bytes_received / (1024.0 * 1024.0)


def stage_inputs(
    account: CloudAccount,
    bucket: str,
    files: Dict[str, int],
    connections: int = 64,
) -> None:
    """Pre-populate input files in S3 before a run (untimed, unbilled
    setup — the paper's workload inputs already live on the mount).

    Writes land with ``advance_clock=False`` and a settle period makes
    them visible, so the run starts from a quiescent store.  Stage before
    issuing any billable workload traffic: the meters are reset.
    """
    account.s3.create_bucket(bucket)
    requests = [
        account.s3.put_request(
            bucket, data_key(path), Blob.synthetic(size, f"{path}@staged")
        )
        for path, size in sorted(files.items())
    ]
    account.scheduler.execute_batch(requests, connections, advance_clock=False)
    account.billing.reset()
    account.scheduler.reset_resources()
    account.settle(60.0)


class _MeterWindow:
    """Captures billing/clock deltas around a run."""

    def __init__(self, account: CloudAccount):
        self._account = account
        self._ops = account.billing.operation_count()
        self._bytes_in = account.billing.bytes_transmitted()
        self._bytes_out = account.billing.bytes_received()
        self._stopwatch = account.stopwatch()

    def result(
        self, configuration: str, compute_seconds: float
    ) -> RunResult:
        billing = self._account.billing
        return RunResult(
            configuration=configuration,
            elapsed_seconds=self._stopwatch.elapsed(),
            operations=billing.operation_count() - self._ops,
            bytes_transmitted=billing.bytes_transmitted() - self._bytes_in,
            bytes_received=billing.bytes_received() - self._bytes_out,
            compute_seconds=compute_seconds,
        )


class PlainS3fs:
    """The S3fs baseline: data only, no provenance."""

    def __init__(
        self,
        account: CloudAccount,
        bucket: str = "pass-data",
        connections: int = 32,
        mount_prefix: str = DEFAULT_MOUNT_PREFIX,
    ):
        self.account = account
        self.bucket = bucket
        self.connections = connections
        self.mount_prefix = mount_prefix
        account.s3.create_bucket(bucket)
        self._cache: Set[str] = set()
        self._sizes: Dict[str, int] = {}

    def on_mount(self, path: str) -> bool:
        return path.startswith(self.mount_prefix)

    def run(self, trace: SyscallTrace, configuration: str = "s3fs") -> RunResult:
        """Execute a trace against S3, returning measurements."""
        window = _MeterWindow(self.account)
        compute = 0.0
        env = self.account.profile.environment

        for event in trace:
            if isinstance(event, ComputeEvent):
                dt = event.seconds * env.cpu_factor
                if event.memory_bound:
                    dt *= env.memory_penalty
                compute += dt
                self.account.clock.advance(dt)
            elif isinstance(event, ReadEvent):
                if self.on_mount(event.path):
                    self._read(event.path)
            elif isinstance(event, WriteEvent):
                self._sizes[event.path] = event.size
                self._cache.add(event.path)
            elif isinstance(event, (CloseEvent, FlushEvent)):
                if self.on_mount(event.path):
                    self._flush(event.path)
            elif isinstance(event, UnlinkEvent):
                if self.on_mount(event.path):
                    self.account.s3.delete(self.bucket, data_key(event.path))
                self._cache.discard(event.path)
                self._sizes.pop(event.path, None)

        return window.result(configuration, compute)

    def _read(self, path: str) -> None:
        if path in self._cache:
            return
        # FUSE lookup: getattr (HEAD) precedes the data read.
        try:
            self.account.s3.head(self.bucket, data_key(path))
            self.account.s3.get(self.bucket, data_key(path))
        except NoSuchKeyError:
            # Not visible yet or never staged; requests were still billed.
            return
        self._cache.add(path)

    def _flush(self, path: str) -> None:
        size = self._sizes.get(path)
        if size is None:
            return
        blob = Blob.synthetic(size, f"{path}@plain")
        # getattr before the upload, as the FUSE path does.
        try:
            self.account.s3.head(self.bucket, data_key(path))
        except NoSuchKeyError:
            pass
        self.account.s3.put(self.bucket, data_key(path), blob)


class PAS3fs:
    """Provenance-Aware S3fs: PASS collection + protocol flushes."""

    def __init__(
        self,
        account: CloudAccount,
        protocol: StorageProtocol,
        collector: Optional[PassCollector] = None,
        mount_prefix: str = DEFAULT_MOUNT_PREFIX,
    ):
        self.account = account
        self.protocol = protocol
        self.collector = collector or PassCollector()
        self.mount_prefix = mount_prefix
        self._cache: Set[str] = set()
        #: mount paths deleted during the run (for persistence checks).
        self.deleted_paths: List[str] = []

    def on_mount(self, path: str) -> bool:
        return path.startswith(self.mount_prefix)

    def run(self, trace: SyscallTrace, configuration: str = "") -> RunResult:
        """Execute a trace, collecting provenance and flushing through the
        protocol.  The protocol's asynchronous work (P3's commit daemon)
        runs in :meth:`finalize`, which callers invoke separately so the
        elapsed time matches the paper's accounting."""
        window = _MeterWindow(self.account)
        compute = 0.0
        env = self.account.profile.environment

        for event in trace:
            for intent in self.collector.feed(event):
                if isinstance(intent, ComputeIntent):
                    dt = intent.seconds * env.cpu_factor
                    if intent.memory_bound:
                        dt *= env.memory_penalty
                    compute += dt
                    self.account.clock.advance(dt)
                elif isinstance(intent, ReadIntent):
                    if self.on_mount(intent.path):
                        self._read(intent)
                elif isinstance(intent, FlushIntent):
                    if self.on_mount(intent.path):
                        self._flush(intent)
                elif isinstance(intent, DeleteIntent):
                    if self.on_mount(intent.path):
                        self.protocol.delete(intent)
                        self.deleted_paths.append(intent.path)
                    self._cache.discard(intent.path)

        return window.result(configuration or self.protocol.name, compute)

    def finalize(self) -> None:
        """Drain asynchronous protocol work (P3's commit daemon)."""
        self.protocol.finalize()

    # -- intent handlers -----------------------------------------------------

    def _read(self, intent: ReadIntent) -> None:
        if intent.path in self._cache:
            return
        try:
            self.account.s3.head(
                self.protocol.bucket, data_key(intent.path)
            )
            self.protocol.read_data(intent.path)
        except NoSuchKeyError:
            return
        self._cache.add(intent.path)

    def _flush(self, intent: FlushIntent) -> None:
        self._cache.add(intent.path)
        bundles = self.collector.pop_pending_closure(intent.uuid)
        # getattr before the upload, matching the FUSE write-back path.
        try:
            self.account.s3.head(self.protocol.bucket, data_key(intent.path))
        except NoSuchKeyError:
            pass
        work = FlushWork(
            primary=intent,
            bundles=bundles,
            ancestor_data=self._unstored_ancestor_data(intent, bundles),
        )
        self.protocol.flush(work)

    def _unstored_ancestor_data(
        self, primary: FlushIntent, bundles
    ) -> List[FlushIntent]:
        """Ancestor *file* versions referenced by this flush whose data
        should be on the cloud but is not yet (written but not closed when
        a reader consumed them).  Their data rides along for causal
        ordering.  Local (off-mount) files contribute provenance only."""
        extra: List[FlushIntent] = []
        for bundle in bundles:
            if bundle.uuid == primary.uuid:
                continue
            if not self.collector.is_file_uuid(bundle.uuid):
                continue
            path = self.collector.path_of(bundle.uuid)
            if path is None or not self.on_mount(path):
                continue
            size = self.collector.file_size(path)
            if size is None:
                continue
            if self.protocol.data_stored_version(bundle.uuid) is not None:
                continue
            ref = self.collector.versions.current(bundle.uuid)
            extra.append(
                FlushIntent(
                    path=path,
                    uuid=bundle.uuid,
                    ref=ref,
                    blob=Blob.synthetic(size, f"{path}@{ref.version}"),
                )
            )
        return extra
