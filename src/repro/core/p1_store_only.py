"""Protocol P1: standalone cloud store (§4.3.1).

Storage scheme: each file maps to a *primary* S3 object holding the data;
its provenance lives in a second, uuid-named S3 object holding the encoded
records (plus a record naming the primary object).  The primary object's
metadata records the uuid and the current version, linking data to
provenance without coupling their lifetimes — deleting the data leaves the
provenance object untouched (data-independent persistence).

Flush, per the paper:

1. Extract the cached provenance.  PUT it into the S3 provenance object —
   and if that object already exists, GET it, append, and re-PUT (S3 has
   no append).
2. PUT the data object with metadata naming the provenance object and the
   current version.

Unrecorded ancestors and their provenance go first (CAUSAL mode) or in the
same parallel batch (PARALLEL mode — the throughput configuration the
paper benchmarks, which sacrifices causal ordering for P1).

Properties: no data-coupling (two non-atomic writes); eventual causal
ordering in CAUSAL mode; *no* efficient query — finding provenance by
attribute requires scanning every provenance object in the bucket.
"""

from __future__ import annotations

from typing import Dict, Generator, List

from repro.cloud.blob import Blob
from repro.cloud.network import Request
from repro.errors import NoSuchKeyError
from repro.provenance.records import ProvenanceBundle
from repro.provenance.serialization import encode_records
from repro.sim.events import Batch, Delay

from repro.core.protocol_base import (
    FlushWork,
    StorageProtocol,
    UploadMode,
    data_key,
    provenance_object_key,
)


class ProtocolP1(StorageProtocol):
    """P1 — both provenance and data in the cloud object store."""

    name = "p1"
    supports_efficient_query = False

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: uuids whose provenance object exists (avoid a HEAD per flush;
        #: a real client caches this the same way).
        self._prov_object_written: Dict[str, bool] = {}
        #: client-side copy of each provenance object's current content,
        #: so the GET-append-PUT cycle is simulated faithfully: the GET is
        #: still issued (and billed, and timed) but content comes from the
        #: authoritative append below.
        self._prov_content: Dict[str, str] = {}

    def flush(self, work: FlushWork) -> None:
        prov_requests = self._provenance_requests(work)
        data_requests = self._data_requests(work) if work.include_data else []
        self.charge_prov_cpu(len(prov_requests))

        if self.mode is UploadMode.PARALLEL:
            # Throughput configuration: everything in one batch.  The
            # paper notes this violates multi-object causal ordering.
            self._dispatch(prov_requests + data_requests)
            self.account.faults.crash_point("p1.after_prov_put")
        else:
            # Careful configuration: ancestors' provenance strictly before
            # the primary's data (ancestor data goes with provenance).
            ancestor_data = [
                self.account.s3.put_request(
                    self.bucket,
                    data_key(intent.path),
                    intent.blob,
                    self.data_metadata(intent),
                )
                for intent in work.ancestor_data
            ]
            self.account.scheduler.execute_batch(ancestor_data, self.connections)
            for request in prov_requests:
                self.account.scheduler.execute_one(request)
            self.account.faults.crash_point("p1.after_prov_put")
            if work.include_data:
                self.account.scheduler.execute_batch(
                    self._primary_data_request(work), self.connections
                )
        self._mark_provenance_stored(work.bundles)
        if work.include_data:
            self._mark_data_stored(work.primary)
            for intent in work.ancestor_data:
                self._mark_data_stored(intent)
        self.account.faults.crash_point("p1.after_data_put")

    def flush_plan(self, work: FlushWork) -> Generator:
        """One flush as an effect plan, for clients running as kernel
        processes.  Identical request construction and crash-point
        placement to :meth:`flush`; the serial marshalling CPU becomes a
        delay in the client's own time domain."""
        prov_requests = self._provenance_requests(work)
        data_requests = self._data_requests(work) if work.include_data else []
        cost = self.prov_cpu_cost(len(prov_requests))
        if cost > 0:
            yield Delay(cost)

        if self.mode is UploadMode.PARALLEL:
            if prov_requests or data_requests:
                yield Batch(prov_requests + data_requests, self.connections)
            self.account.faults.crash_point("p1.after_prov_put")
        else:
            ancestor_data = [
                self.account.s3.put_request(
                    self.bucket,
                    data_key(intent.path),
                    intent.blob,
                    self.data_metadata(intent),
                )
                for intent in work.ancestor_data
            ]
            if ancestor_data:
                yield Batch(ancestor_data, self.connections)
            for request in prov_requests:
                yield Batch([request], connections=1)
            self.account.faults.crash_point("p1.after_prov_put")
            if work.include_data:
                yield Batch(self._primary_data_request(work), self.connections)
        self._mark_provenance_stored(work.bundles)
        if work.include_data:
            self._mark_data_stored(work.primary)
            for intent in work.ancestor_data:
                self._mark_data_stored(intent)
        self.account.faults.crash_point("p1.after_data_put")

    # -- request construction -------------------------------------------------

    def _provenance_requests(self, work: FlushWork) -> List[Request]:
        """One append (GET + PUT, or just PUT the first time) per bundle."""
        requests: List[Request] = []
        for bundle in work.bundles:
            records = list(bundle.records)
            if bundle.uuid == work.primary.uuid:
                records.extend(self.coupling_records(work.primary))
            encoded = encode_records(records)
            key = provenance_object_key(bundle.uuid)
            if self._prov_object_written.get(bundle.uuid):
                # Appending requires reading the existing object back.
                # Under eventual consistency the read may 404 (our own
                # recent PUT not yet visible); the client falls back to
                # its cached copy — the request is still timed and billed.
                get = self.account.s3.get_request(self.bucket, key)
                original_apply = get.apply

                def tolerant_apply(start, finish, _apply=original_apply):
                    try:
                        return _apply(start, finish)
                    except NoSuchKeyError:
                        return None

                get.apply = tolerant_apply
                requests.append(get)
                content = self._prov_content.get(bundle.uuid, "") + encoded
            else:
                content = encoded
            self._prov_content[bundle.uuid] = content
            self._prov_object_written[bundle.uuid] = True
            requests.append(
                self.account.s3.put_request(self.bucket, key, Blob.from_text(content))
            )
        return requests

    def _primary_data_request(self, work: FlushWork) -> List[Request]:
        intent = work.primary
        return [
            self.account.s3.put_request(
                self.bucket,
                data_key(intent.path),
                intent.blob,
                self.data_metadata(intent),
            )
        ]

    def _data_requests(self, work: FlushWork) -> List[Request]:
        requests = self._primary_data_request(work)
        for intent in work.ancestor_data:
            requests.append(
                self.account.s3.put_request(
                    self.bucket,
                    data_key(intent.path),
                    intent.blob,
                    self.data_metadata(intent),
                )
            )
        return requests

    # -- provenance access (query layer) ----------------------------------------

    def fetch_provenance_text(self, uuid: str) -> str:
        """GET a provenance object's full content (used by queries)."""
        try:
            blob, _ = self.account.s3.get(self.bucket, provenance_object_key(uuid))
        except NoSuchKeyError:
            return ""
        return blob.text() if blob.data is not None else ""
