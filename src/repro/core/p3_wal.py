"""Protocol P3: cloud store + cloud database + messaging service (§4.3.3).

P3 splits a flush into two phases:

**Log phase** (client, synchronous — this is what workload elapsed time
includes):

1. Store the data as a *temporary* S3 object (``tmp/<txn>/<ref>``).
2. Allocate a transaction id; encode the provenance of the object and all
   its not-yet-written ancestors; chunk it into ≤ 8 KB WAL messages (the
   first carrying the packet count and the temp-object pointer) and send
   them to the client's SQS queue.

**Commit phase** (the commit daemon, asynchronous — excluded from elapsed
times, included in cost): see :mod:`repro.core.commit_daemon`.

Because an object, its provenance, *and its ancestors* ride in one
transaction that either fully commits or is ignored, P3 provides eventual
provenance data-coupling and keeps eventual multi-object causal ordering
even though packets are sent in parallel — the advantage the paper
highlights over P1/P2.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Generator, List, Optional

from repro.cloud.network import Request
from repro.obs.tracing import CLIENT_EMIT, WAL_LOGGED
from repro.provenance.graph import NodeRef
from repro.provenance.pass_collector import FlushIntent
from repro.sim.events import Batch, Delay

from repro.core.commit_daemon import CommitDaemon
from repro.core.cleaner_daemon import CleanerDaemon
from repro.core.protocol_base import (
    PROVENANCE_DOMAIN,
    DomainRouter,
    FlushWork,
    StorageProtocol,
    UploadMode,
    data_key,
    temp_key,
)
from repro.core.wal_messages import DataManifestEntry, build_messages


@dataclass
class _PreparedFlush:
    """The requests one flush will issue, before any is executed."""

    txn_id: str
    intents: List[FlushIntent] = field(default_factory=list)
    entries: List[DataManifestEntry] = field(default_factory=list)
    temp_puts: List[Request] = field(default_factory=list)
    send_requests: List[Request] = field(default_factory=list)


class ProtocolP3(StorageProtocol):
    """P3 — S3 + SimpleDB + an SQS write-ahead log."""

    name = "p3"
    supports_efficient_query = True

    def __init__(
        self,
        *args,
        domain: str = PROVENANCE_DOMAIN,
        client_id: str = "client-0",
        router: Optional[DomainRouter] = None,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.client_id = client_id
        self.router = router if router is not None else DomainRouter(domain)
        #: Legacy single-domain name (first shard under a multi-shard
        #: router; iterate ``router.domains`` to see every item).
        self.domain = self.router.domains[0]
        for shard in self.router.domains:
            self.account.simpledb.create_domain(shard)
        self.queue_url = self.account.sqs.create_queue(f"wal-{client_id}")
        self._txn_ids = itertools.count(1)
        self.commit_daemon = CommitDaemon(
            account=self.account,
            queue_url=self.queue_url,
            bucket=self.bucket,
            domain=self.domain,
            router=self.router,
        )
        self.cleaner_daemon = CleanerDaemon(account=self.account, bucket=self.bucket)

    def _prepare_flush(self, work: FlushWork) -> _PreparedFlush:
        """Allocate a transaction id and build every request the flush
        will issue — shared by the phased :meth:`flush` and the kernel
        :meth:`flush_plan`, so both execute identical traffic."""
        txn_id = f"txn-{next(self._txn_ids):08d}"

        # Data manifest: the primary object plus unrecorded ancestor data,
        # all bundled into the same transaction (multi-object causal
        # ordering by atomicity; §4.3.3).
        intents: List[FlushIntent] = (
            [work.primary] + list(work.ancestor_data) if work.include_data else []
        )
        entries: List[DataManifestEntry] = []
        temp_puts: List[Request] = []
        for intent in intents:
            tmp = temp_key(txn_id, intent.ref)
            entries.append(
                DataManifestEntry(
                    final_key=data_key(intent.path),
                    uuid=intent.uuid,
                    version=intent.ref.version,
                    tmp_key=tmp,
                    size=intent.blob.size,
                    digest=intent.blob.digest,
                )
            )
            temp_puts.append(
                self.account.s3.put_request(
                    self.bucket,
                    tmp,
                    intent.blob,
                    {"txn": txn_id, "created": f"{self.account.now:.3f}"},
                )
            )

        records = []
        for bundle in work.bundles:
            records.extend(bundle.records)
            if bundle.uuid == work.primary.uuid:
                records.extend(self.coupling_records(work.primary))
        messages = build_messages(txn_id, entries, records)
        send_requests = [
            self.account.sqs.send_request(self.queue_url, body) for body in messages
        ]

        # Open the record-lifecycle trace for this transaction.  Item
        # names (``uuid_version``) and record uuids alias onto it, so the
        # commit daemon, SimpleDB visibility, and readers can land their
        # marks knowing only what they already know.
        tracer = self.account.telemetry.tracer
        if tracer.enabled:
            tracer.begin(
                txn_id,
                protocol=self.name,
                client=self.client_id,
                packets=len(send_requests),
            )
            tracer.mark(txn_id, CLIENT_EMIT, self.account.now)
            for bundle in work.bundles:
                tracer.alias(bundle.uuid, txn_id)
                for version in bundle.by_version():
                    tracer.alias(str(NodeRef(bundle.uuid, version)), txn_id)

        return _PreparedFlush(
            txn_id=txn_id,
            intents=intents,
            entries=entries,
            temp_puts=temp_puts,
            send_requests=send_requests,
        )

    def flush(self, work: FlushWork) -> None:
        prepared = self._prepare_flush(work)
        self.charge_prov_cpu(len(prepared.send_requests))
        tracer = self.account.telemetry.tracer

        if self.mode is UploadMode.PARALLEL:
            # Packets can go in parallel: order does not matter once
            # everything is in the WAL (§4.3.3).
            result = self._dispatch(prepared.temp_puts + prepared.send_requests)
            if tracer.enabled and result is not None and prepared.send_requests:
                # Log completion = the latest WAL packet's finish — the
                # same instant SQS stamps as sent_at, so this mark and
                # the daemon's ``logged_at`` agree exactly.
                tracer.mark(
                    prepared.txn_id,
                    WAL_LOGGED,
                    max(result.request_finish_times[len(prepared.temp_puts):]),
                )
        else:
            self.account.scheduler.execute_batch(
                prepared.temp_puts, self.connections
            )
            for index, request in enumerate(prepared.send_requests):
                if index > 0:
                    self.account.faults.crash_point("p3.mid_log")
                self.account.scheduler.execute_one(request)
            if tracer.enabled and prepared.send_requests:
                # execute_one advanced the clock to the last send's finish.
                tracer.mark(prepared.txn_id, WAL_LOGGED, self.account.now)
        self.account.faults.crash_point("p3.after_log")

        # Once logged, the transaction is guaranteed to commit eventually.
        self._mark_provenance_stored(work.bundles)
        for intent in prepared.intents:
            self._mark_data_stored(intent)

    def flush_plan(self, work: FlushWork) -> Generator:
        """One flush as an effect plan, for clients running as kernel
        processes.  Identical request construction to :meth:`flush`; the
        serial marshalling CPU becomes a delay in the client's own time
        domain, and in causal mode each WAL packet is its own activation
        so crashes (timed or crash-point) can land mid-log."""
        prepared = self._prepare_flush(work)
        tracer = self.account.telemetry.tracer
        cost = self.prov_cpu_cost(len(prepared.send_requests))
        if cost > 0:
            yield Delay(cost)

        if self.mode is UploadMode.PARALLEL:
            result = yield Batch(
                prepared.temp_puts + prepared.send_requests, self.connections
            )
            if tracer.enabled and prepared.send_requests:
                tracer.mark(
                    prepared.txn_id,
                    WAL_LOGGED,
                    max(result.request_finish_times[len(prepared.temp_puts):]),
                )
        else:
            yield Batch(prepared.temp_puts, self.connections)
            last = None
            for index, request in enumerate(prepared.send_requests):
                if index > 0:
                    self.account.faults.crash_point("p3.mid_log")
                last = yield Batch([request], connections=1)
            if tracer.enabled and last is not None:
                tracer.mark(prepared.txn_id, WAL_LOGGED, last.finished_at)
        self.account.faults.crash_point("p3.after_log")

        self._mark_provenance_stored(work.bundles)
        for intent in prepared.intents:
            self._mark_data_stored(intent)

    def finalize(self) -> None:
        """Drain the WAL: run the commit daemon until the queue is empty
        (asynchronous in the paper — the scheduler does not charge this
        work to the client's elapsed time)."""
        self.commit_daemon.drain()

    def run_cleaner(self) -> int:
        """Run the cleaner daemon once; returns temp objects removed."""
        return self.cleaner_daemon.clean()
