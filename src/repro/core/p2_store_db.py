"""Protocol P2: cloud store with a cloud database (§4.3.2).

Storage scheme: each file is an S3 object; the provenance of each object
*version* is one SimpleDB item named ``uuid_version`` whose attributes are
the provenance records.  Values over SimpleDB's 1 KB limit are stored as
separate S3 objects referenced by pointer.  The data object's metadata
carries the uuid and current version, as in P1.

Flush, per the paper:

1. Spill any values larger than 1 KB to S3 and rewrite them as pointers.
2. Store the provenance via ``BatchPutAttributes`` (≤ 25 items per call).
3. PUT the data object with metadata naming the provenance and version.

Properties: efficient query (SimpleDB indexes every attribute) but still
no data-coupling — the SimpleDB writes and the S3 data write are separate,
non-atomic requests.
"""

from __future__ import annotations

from typing import List

from repro.cloud.network import Request
from repro.provenance.records import ProvenanceBundle, ProvenanceRecord

from repro.core.protocol_base import (
    PROVENANCE_DOMAIN,
    FlushWork,
    StorageProtocol,
    UploadMode,
    data_key,
)
from repro.core.sdb_items import build_item_plan


class ProtocolP2(StorageProtocol):
    """P2 — data in S3, provenance in SimpleDB."""

    name = "p2"
    supports_efficient_query = True

    def __init__(self, *args, domain: str = PROVENANCE_DOMAIN, **kwargs):
        super().__init__(*args, **kwargs)
        self.domain = domain
        self.account.simpledb.create_domain(domain)

    def flush(self, work: FlushWork) -> None:
        bundles = self._bundles_with_coupling(work)
        plan = build_item_plan(bundles, self.account.s3, self.bucket)
        batch_requests = [
            self.account.simpledb.batch_put_request(self.domain, batch)
            for batch in plan.batches()
        ]
        data_requests = self._data_requests(work) if work.include_data else []
        self.charge_prov_cpu(len(plan.spill_requests) + len(batch_requests))
        self.charge_prov_items(sum(len(pairs) for _, pairs in plan.items))

        if self.mode is UploadMode.PARALLEL:
            self._dispatch(plan.spill_requests + batch_requests + data_requests)
            self.account.faults.crash_point("p2.after_prov_put")
        else:
            ancestor_requests = data_requests[1:]
            self.account.scheduler.execute_batch(ancestor_requests, self.connections)
            self.account.scheduler.execute_batch(
                plan.spill_requests, self.connections
            )
            for request in batch_requests:
                self.account.scheduler.execute_one(request)
            self.account.faults.crash_point("p2.after_prov_put")
            self.account.scheduler.execute_batch(data_requests[:1], self.connections)

        self._mark_provenance_stored(work.bundles)
        if work.include_data:
            self._mark_data_stored(work.primary)
            for intent in work.ancestor_data:
                self._mark_data_stored(intent)
        self.account.faults.crash_point("p2.after_data_put")

    def _bundles_with_coupling(self, work: FlushWork) -> List[ProvenanceBundle]:
        """Append the coupling records (object name + content hash) to the
        primary object's bundle."""
        out: List[ProvenanceBundle] = []
        for bundle in work.bundles:
            if bundle.uuid == work.primary.uuid:
                enriched = ProvenanceBundle(uuid=bundle.uuid)
                for record in bundle.records:
                    enriched.add(record)
                for record in self.coupling_records(work.primary):
                    enriched.add(record)
                out.append(enriched)
            else:
                out.append(bundle)
        return out

    def _data_requests(self, work: FlushWork) -> List[Request]:
        """Primary data PUT first, then any unrecorded ancestor data."""
        requests = [
            self.account.s3.put_request(
                self.bucket,
                data_key(work.primary.path),
                work.primary.blob,
                self.data_metadata(work.primary),
            )
        ]
        for intent in work.ancestor_data:
            requests.append(
                self.account.s3.put_request(
                    self.bucket,
                    data_key(intent.path),
                    intent.blob,
                    self.data_metadata(intent),
                )
            )
        return requests
