"""Protocol P2: cloud store with a cloud database (§4.3.2).

Storage scheme: each file is an S3 object; the provenance of each object
*version* is one SimpleDB item named ``uuid_version`` whose attributes are
the provenance records.  Values over SimpleDB's 1 KB limit are stored as
separate S3 objects referenced by pointer.  The data object's metadata
carries the uuid and current version, as in P1.

Flush, per the paper:

1. Spill any values larger than 1 KB to S3 and rewrite them as pointers.
2. Store the provenance via ``BatchPutAttributes`` (≤ 25 items per call).
3. PUT the data object with metadata naming the provenance and version.

Properties: efficient query (SimpleDB indexes every attribute) but still
no data-coupling — the SimpleDB writes and the S3 data write are separate,
non-atomic requests.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.cloud.network import Request
from repro.sim.events import Batch, Delay

from repro.core.protocol_base import (
    PROVENANCE_DOMAIN,
    DomainRouter,
    FlushWork,
    StorageProtocol,
    UploadMode,
    bundles_with_coupling,
    data_key,
)
from repro.core.sdb_items import build_routed_requests


class ProtocolP2(StorageProtocol):
    """P2 — data in S3, provenance in SimpleDB."""

    name = "p2"
    supports_efficient_query = True

    def __init__(
        self,
        *args,
        domain: str = PROVENANCE_DOMAIN,
        router: Optional[DomainRouter] = None,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.router = router if router is not None else DomainRouter(domain)
        #: Legacy single-domain name.  With a multi-shard router this is
        #: only the *first* shard — consumers that want every provenance
        #: item (detection readers, ad-hoc selects) must iterate
        #: ``router.domains`` instead.
        self.domain = self.router.domains[0]
        for shard in self.router.domains:
            self.account.simpledb.create_domain(shard)

    def flush(self, work: FlushWork) -> None:
        bundles = bundles_with_coupling(work)
        spill_requests, batch_requests, item_pairs = build_routed_requests(
            self.router, bundles, self.account, self.bucket
        )
        data_requests = self._data_requests(work) if work.include_data else []
        self.charge_prov_cpu(len(spill_requests) + len(batch_requests))
        self.charge_prov_items(item_pairs)

        if self.mode is UploadMode.PARALLEL:
            self._dispatch(spill_requests + batch_requests + data_requests)
            self.account.faults.crash_point("p2.after_prov_put")
        else:
            ancestor_requests = data_requests[1:]
            self.account.scheduler.execute_batch(ancestor_requests, self.connections)
            self.account.scheduler.execute_batch(
                spill_requests, self.connections
            )
            for request in batch_requests:
                self.account.scheduler.execute_one(request)
            self.account.faults.crash_point("p2.after_prov_put")
            self.account.scheduler.execute_batch(data_requests[:1], self.connections)

        self._mark_provenance_stored(work.bundles)
        if work.include_data:
            self._mark_data_stored(work.primary)
            for intent in work.ancestor_data:
                self._mark_data_stored(intent)
        self.account.faults.crash_point("p2.after_data_put")

    def flush_plan(self, work: FlushWork) -> Generator:
        """One flush as an effect plan, for clients running as kernel
        processes.  Identical request construction and crash-point
        placement to :meth:`flush`; the serial marshalling CPU (per
        request and per attribute-value pair) becomes delays in the
        client's own time domain."""
        bundles = bundles_with_coupling(work)
        spill_requests, batch_requests, item_pairs = build_routed_requests(
            self.router, bundles, self.account, self.bucket
        )
        data_requests = self._data_requests(work) if work.include_data else []
        cost = self.prov_cpu_cost(len(spill_requests) + len(batch_requests))
        cost += self.prov_items_cost(item_pairs)
        if cost > 0:
            yield Delay(cost)

        if self.mode is UploadMode.PARALLEL:
            requests = spill_requests + batch_requests + data_requests
            if requests:
                yield Batch(requests, self.connections)
            self.account.faults.crash_point("p2.after_prov_put")
        else:
            ancestor_requests = data_requests[1:]
            if ancestor_requests:
                yield Batch(ancestor_requests, self.connections)
            if spill_requests:
                yield Batch(spill_requests, self.connections)
            for request in batch_requests:
                yield Batch([request], connections=1)
            self.account.faults.crash_point("p2.after_prov_put")
            if data_requests[:1]:
                yield Batch(data_requests[:1], self.connections)

        self._mark_provenance_stored(work.bundles)
        if work.include_data:
            self._mark_data_stored(work.primary)
            for intent in work.ancestor_data:
                self._mark_data_stored(intent)
        self.account.faults.crash_point("p2.after_data_put")

    def _data_requests(self, work: FlushWork) -> List[Request]:
        """Primary data PUT first, then any unrecorded ancestor data."""
        requests = [
            self.account.s3.put_request(
                self.bucket,
                data_key(work.primary.path),
                work.primary.blob,
                self.data_metadata(work.primary),
            )
        ]
        for intent in work.ancestor_data:
            requests.append(
                self.account.s3.put_request(
                    self.bucket,
                    data_key(intent.path),
                    intent.blob,
                    self.data_metadata(intent),
                )
            )
        return requests
