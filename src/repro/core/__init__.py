"""The paper's contribution: protocols for storing provenance in the cloud.

- :mod:`repro.core.protocol_base` — the common protocol interface and
  bookkeeping (ancestor tracking, data-object naming, flush work units),
- :mod:`repro.core.p1_store_only` — **P1**: standalone cloud store
  (provenance lives in uuid-named S3 objects),
- :mod:`repro.core.p2_store_db` — **P2**: cloud store + cloud database
  (provenance as SimpleDB items, one per object version, >1 KB values
  spilled to S3),
- :mod:`repro.core.p3_wal` — **P3**: cloud store + database + messaging
  service (an SQS write-ahead log plus a commit daemon gives eventual
  provenance data-coupling),
- :mod:`repro.core.commit_daemon` / :mod:`repro.core.cleaner_daemon` —
  P3's asynchronous halves,
- :mod:`repro.core.detection` — read-side detection of coupling and
  causal-ordering violations (version compare, content hash, Merkle
  ancestry hash),
- :mod:`repro.core.properties` — the four provenance-system properties
  (§3) as executable checkers,
- :mod:`repro.core.pas3fs` — PA-S3fs (the provenance-aware FUSE layer)
  and the plain S3fs baseline.
"""

from repro.core.commit_daemon import CommitDaemon
from repro.core.cleaner_daemon import CleanerDaemon
from repro.core.p1_store_only import ProtocolP1
from repro.core.p2_store_db import ProtocolP2
from repro.core.p3_wal import ProtocolP3
from repro.core.pas3fs import PAS3fs, PlainS3fs, RunResult
from repro.core.protocol_base import FlushWork, StorageProtocol, UploadMode

__all__ = [
    "CleanerDaemon",
    "CommitDaemon",
    "FlushWork",
    "PAS3fs",
    "PlainS3fs",
    "ProtocolP1",
    "ProtocolP2",
    "ProtocolP3",
    "RunResult",
    "StorageProtocol",
    "UploadMode",
]
