"""P3's commit daemon (§4.3.3).

The daemon reads the WAL queue, assembles packets into transactions, and
— once every packet of a transaction has arrived — commits it:

1. Spill any provenance value larger than 1 KB into its own S3 object and
   rewrite the attribute as a pointer.
2. Store the provenance in SimpleDB via ``BatchPutAttributes`` (≤ 25
   items per call).
3. ``COPY`` each temporary S3 object to its permanent key, stamping the
   uuid/version metadata as part of the copy (S3 has no rename; the copy
   costs $0.01 per thousand and moves no client bytes).
4. ``DELETE`` the temporary objects and the transaction's WAL messages.

Packets of incomplete transactions (a client that crashed mid-log) are
simply never committed; SQS's four-day retention garbage-collects them.
If the machine running the daemon crashes mid-commit, any other machine
can run a daemon against the same queue and finish the job — the WAL is
the authority.  Commits are idempotent: re-running a partially committed
transaction re-issues the same writes.

Daemon work is scheduled with ``advance_clock=False``: it consumes
requests (billed, counted) but does not extend the client's elapsed time,
matching the paper's measurement methodology ("the elapsed times we
present do not include the commit daemon times as it operates
asynchronously").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cloud.account import CloudAccount
from repro.cloud.network import Request
from repro.cloud.sqs import Message
from repro.errors import NoSuchKeyError, TransactionIncompleteError
from repro.provenance.records import ProvenanceBundle

from repro.core.protocol_base import DomainRouter
from repro.core.sdb_items import build_routed_requests
from repro.core.wal_messages import DataManifestEntry, ParsedMessage, parse_message


@dataclass
class _PendingTransaction:
    """Packets collected so far for one transaction."""

    txn_id: str
    total: int = -1
    #: seq -> (parsed message, receipt handles seen for that seq).
    packets: Dict[int, ParsedMessage] = field(default_factory=dict)
    receipts: List[str] = field(default_factory=list)

    def complete(self) -> bool:
        return self.total >= 0 and len(self.packets) == self.total


@dataclass
class CommitStats:
    """What a drain accomplished."""

    transactions_committed: int = 0
    transactions_pending: int = 0
    messages_processed: int = 0


class CommitDaemon:
    """Assembles and commits P3 transactions from the WAL queue."""

    def __init__(
        self,
        account: CloudAccount,
        queue_url: str,
        bucket: str,
        domain: str,
        connections: int = 32,
        charge_time: bool = False,
        router: Optional[DomainRouter] = None,
    ):
        self.account = account
        self.queue_url = queue_url
        self.bucket = bucket
        #: Routes each bundle's items to its shard domain; the default
        #: single-domain router reproduces the paper's configuration.
        self.router = router if router is not None else DomainRouter(domain)
        self.domain = domain
        self.connections = connections
        #: When true, daemon requests advance the clock (used by tests
        #: that reason about wall-clock visibility).
        self.charge_time = charge_time
        self._pending: Dict[str, _PendingTransaction] = {}
        self._committed_count = 0

    # -- scheduling that respects the async accounting ------------------------

    def _run(self, requests: List[Request]) -> List:
        if not requests:
            return []
        batch = self.account.scheduler.execute_batch(
            requests, self.connections, advance_clock=self.charge_time
        )
        return batch.results

    # -- queue consumption -------------------------------------------------------

    def poll_once(self) -> int:
        """Receive one batch of messages; commit any transactions they
        complete.  Returns the number of messages received."""
        messages: List[Message] = self._run(
            [self.account.sqs.receive_request(self.queue_url, max_messages=10)]
        )[0]
        for message in messages:
            self._ingest(message)
        self._commit_ready()
        return len(messages)

    def drain(self, max_polls: int = 100000) -> CommitStats:
        """Poll until the queue yields nothing and no complete transaction
        remains uncommitted.  Incomplete transactions are left pending."""
        stats = CommitStats()
        empty_polls = 0
        for _ in range(max_polls):
            received = self.poll_once()
            stats.messages_processed += received
            if received == 0:
                empty_polls += 1
                if empty_polls >= 2:
                    break
            else:
                empty_polls = 0
        stats.transactions_committed = self._committed_count
        stats.transactions_pending = len(self._pending)
        return stats

    def _ingest(self, message: Message) -> None:
        parsed = parse_message(message.body)
        txn = self._pending.setdefault(
            parsed.txn_id, _PendingTransaction(txn_id=parsed.txn_id)
        )
        txn.total = parsed.total
        # Duplicate deliveries overwrite the same seq slot harmlessly.
        txn.packets[parsed.seq] = parsed
        txn.receipts.append(message.receipt_handle)

    def _commit_ready(self) -> None:
        ready = [txn for txn in self._pending.values() if txn.complete()]
        for txn in ready:
            self.commit(txn.txn_id)

    # -- committing ------------------------------------------------------------------

    def commit(self, txn_id: str) -> None:
        """Commit one fully assembled transaction."""
        txn = self._pending.get(txn_id)
        if txn is None:
            raise TransactionIncompleteError(f"unknown transaction {txn_id}")
        if not txn.complete():
            raise TransactionIncompleteError(
                f"transaction {txn_id} has {len(txn.packets)}/{txn.total} packets"
            )

        records = []
        entries: List[DataManifestEntry] = []
        for seq in sorted(txn.packets):
            packet = txn.packets[seq]
            records.extend(packet.records)
            entries.extend(packet.data_entries)

        # 1 + 2: spill oversized values, then BatchPutAttributes into each
        # bundle's routed shard domain.
        bundles = self._bundles_from_records(records)
        spill_requests, batch_requests, _pairs = build_routed_requests(
            self.router, bundles, self.account, self.bucket
        )
        self._run(spill_requests)
        self._run(batch_requests)
        self.account.faults.crash_point("p3.mid_commit")

        # 3: COPY temp -> final, stamping the provenance link metadata.
        # Under eventual consistency the temp object may not be visible to
        # the copy yet; retry with backoff until it propagates (§2.3.1:
        # "clients must design appropriate mechanisms to detect
        # inconsistencies").
        for entry in entries:
            metadata = {
                "prov-uuid": entry.uuid,
                "version": str(entry.version),
                "digest": entry.digest,
            }
            copy = self.account.s3.copy_request(
                self.bucket, entry.tmp_key, self.bucket, entry.final_key, metadata
            )
            for attempt in range(32):
                try:
                    self._run([copy])
                    break
                except NoSuchKeyError:
                    self.account.clock.advance(2.0)
            else:  # pragma: no cover - 64 s exceeds any propagation window
                raise NoSuchKeyError(
                    f"temp object {entry.tmp_key} never became visible"
                )

        # 4: delete temporaries and WAL messages.
        deletes: List[Request] = [
            self.account.s3.delete_request(self.bucket, entry.tmp_key)
            for entry in entries
        ]
        deletes.extend(
            self.account.sqs.delete_request(self.queue_url, receipt)
            for receipt in txn.receipts
        )
        self._run(deletes)

        del self._pending[txn_id]
        self._committed_count += 1

    @staticmethod
    def _bundles_from_records(records) -> List[ProvenanceBundle]:
        by_uuid: Dict[str, ProvenanceBundle] = {}
        for record in records:
            bundle = by_uuid.setdefault(
                record.subject.uuid, ProvenanceBundle(uuid=record.subject.uuid)
            )
            bundle.add(record)
        return list(by_uuid.values())

    # -- introspection ------------------------------------------------------------------

    def pending_transactions(self) -> List[str]:
        return sorted(self._pending)

    def committed_count(self) -> int:
        return self._committed_count
