"""P3's commit daemon (§4.3.3).

The daemon reads the WAL queue, assembles packets into transactions, and
— once every packet of a transaction has arrived — commits it:

1. Spill any provenance value larger than 1 KB into its own S3 object and
   rewrite the attribute as a pointer.
2. Store the provenance in SimpleDB via ``BatchPutAttributes`` (≤ 25
   items per call).
3. ``COPY`` each temporary S3 object to its permanent key, stamping the
   uuid/version metadata as part of the copy (S3 has no rename; the copy
   costs $0.01 per thousand and moves no client bytes).
4. ``DELETE`` the temporary objects and the transaction's WAL messages.

Packets of incomplete transactions (a client that crashed mid-log) are
simply never committed; SQS's four-day retention garbage-collects them.
If the machine running the daemon crashes mid-commit, any other machine
can run a daemon against the same queue and finish the job — the WAL is
the authority.  Commits are idempotent: re-running a partially committed
transaction re-issues the same writes.

The daemon runs in two execution modes over one copy of the commit
logic (:meth:`CommitDaemon.commit_plan`, an effect-plan generator):

- **Phased** (the paper's measurement methodology): :meth:`drain` is
  called after the client finishes; batches run with
  ``advance_clock=False`` — billed and counted but excluded from the
  client's elapsed time ("the elapsed times we present do not include
  the commit daemon times as it operates asynchronously").
- **Kernel** (:meth:`process`): the daemon is a long-running process on
  the simulation kernel, polling SQS on an interval concurrently with
  the clients that feed the queue.  Its work charges its own time
  domain, so commit lag and WAL backlog become observable over virtual
  time while client elapsed times still exclude daemon time — the same
  accounting, now by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.cloud.account import CloudAccount
from repro.cloud.network import Request
from repro.cloud.sqs import DEFAULT_VISIBILITY_TIMEOUT, Message
from repro.errors import (
    DrainExhaustedError,
    NoSuchKeyError,
    TransactionIncompleteError,
)
from repro.obs.tracing import COMMIT_DONE, DAEMON_DEQUEUE, SDB_PUT
from repro.provenance.records import ProvenanceBundle
from repro.sim.compat import run_plan_phased
from repro.sim.events import Batch, Delay

from repro.core.protocol_base import DomainRouter
from repro.core.sdb_items import build_routed_requests
from repro.core.wal_messages import DataManifestEntry, ParsedMessage, parse_message


@dataclass
class _PendingTransaction:
    """Packets collected so far for one transaction."""

    txn_id: str
    total: int = -1
    #: seq -> (parsed message, receipt handles seen for that seq).
    packets: Dict[int, ParsedMessage] = field(default_factory=dict)
    receipts: List[str] = field(default_factory=list)

    def complete(self) -> bool:
        return self.total >= 0 and len(self.packets) == self.total


@dataclass
class CommitStats:
    """What a drain accomplished."""

    transactions_committed: int = 0
    transactions_pending: int = 0
    messages_processed: int = 0


@dataclass
class CommitRecord:
    """One committed transaction's timeline."""

    txn_id: str
    #: Virtual time the *latest* WAL packet of the transaction was sent —
    #: log completion, the moment the transaction became committable.
    logged_at: float
    #: Virtual time the commit finished.
    committed_at: float

    @property
    def lag(self) -> float:
        """Commit lag: log completion to commit completion."""
        return self.committed_at - self.logged_at


class CommitDaemon:
    """Assembles and commits P3 transactions from the WAL queue."""

    def __init__(
        self,
        account: CloudAccount,
        queue_url: str,
        bucket: str,
        domain: str,
        connections: int = 32,
        charge_time: bool = False,
        router: Optional[DomainRouter] = None,
        visibility_timeout: Optional[float] = None,
    ):
        self.account = account
        self.queue_url = queue_url
        self.bucket = bucket
        #: Routes each bundle's items to its shard domain; the default
        #: single-domain router reproduces the paper's configuration.
        self.router = router if router is not None else DomainRouter(domain)
        self.domain = domain
        self.connections = connections
        #: When true, daemon requests advance the clock (used by tests
        #: that reason about wall-clock visibility).
        self.charge_time = charge_time
        #: Visibility timeout this daemon's receives ask for.  Defaults
        #: to the SQS default; a supervisor running the daemon under a
        #: respawn policy shortens it (the control plane guarantees a
        #: replacement consumer, so a crashed daemon's in-flight messages
        #: should strand for seconds, not the stock 30 s).
        self.visibility_timeout = (
            DEFAULT_VISIBILITY_TIMEOUT
            if visibility_timeout is None
            else visibility_timeout
        )
        #: Set by :meth:`request_stop`; :meth:`process` notices at the top
        #: of its loop and runs :meth:`retire_plan` instead of receiving.
        self._stop_requested = False
        #: True once a graceful retirement completed.
        self.retired = False
        self._pending: Dict[str, _PendingTransaction] = {}
        self._committed_count = 0
        #: txn id -> virtual send time of its latest WAL packet seen
        #: (log completion).
        self._logged_at: Dict[str, float] = {}
        #: Timeline of every commit this daemon finished (commit lag).
        self.commit_log: List[CommitRecord] = []
        # Telemetry: per-instance labels (a respawned daemon is a new
        # instance) so pooled daemons sharing one queue don't clobber
        # each other's series.
        telemetry = account.telemetry
        self._tracer = telemetry.tracer
        label = f"commit-daemon-{telemetry.instance_id('commit-daemon')}"
        metrics = telemetry.metrics
        self._m_messages = metrics.counter("daemon.messages", daemon=label)
        self._m_commits = metrics.counter("daemon.commits", daemon=label)
        self._m_lag = metrics.histogram("daemon.commit_lag_s", daemon=label)
        metrics.gauge_fn(
            "daemon.pending_txns", lambda: len(self._pending), daemon=label
        )
        #: max_messages -> the one ReceiveMessage request reused across
        #: polls (building it validates arguments and resolves the queue;
        #: executing it re-applies against live queue state each time).
        self._receive_plans: Dict[int, Request] = {}

    def _receive_request(self, max_messages: int) -> Request:
        request = self._receive_plans.get(max_messages)
        if request is None:
            request = self.account.sqs.receive_request(
                self.queue_url,
                max_messages=max_messages,
                visibility_timeout=self.visibility_timeout,
            )
            self._receive_plans[max_messages] = request
        return request

    def set_visibility_timeout(self, visibility_timeout: float) -> None:
        """Change the visibility timeout future receives ask for."""
        self.visibility_timeout = visibility_timeout
        self._receive_plans.clear()

    def request_stop(self) -> None:
        """Ask :meth:`process` to retire gracefully: it finishes its
        current iteration, commits any complete transactions it holds,
        hands incomplete ones back to the WAL, and returns."""
        self._stop_requested = True

    # -- scheduling that respects the async accounting ------------------------

    def _run(self, requests: List[Request]) -> List:
        if not requests:
            return []
        batch = self.account.scheduler.execute_batch(
            requests, self.connections, advance_clock=self.charge_time
        )
        return batch.results

    # -- queue consumption -------------------------------------------------------

    def poll_once(self) -> int:
        """Receive one batch of messages; commit any transactions they
        complete.  Returns the number of messages received."""
        messages: List[Message] = self._run([self._receive_request(10)])[0]
        for message in messages:
            self._ingest(message)
        self._commit_ready()
        return len(messages)

    def drain(self, max_polls: int = 100000) -> CommitStats:
        """Poll until the queue yields nothing and no complete transaction
        remains uncommitted.  Incomplete transactions are left pending.

        Raises :class:`~repro.errors.DrainExhaustedError` if the queue is
        still yielding messages after ``max_polls`` polls — exhausting the
        budget silently would leave a live backlog behind an apparently
        successful drain."""
        stats = CommitStats()
        empty_polls = 0
        drained = False
        for _ in range(max_polls):
            received = self.poll_once()
            stats.messages_processed += received
            if received == 0:
                empty_polls += 1
                if empty_polls >= 2:
                    drained = True
                    break
            else:
                empty_polls = 0
        if not drained:
            # The poll budget ran out before two consecutive empty polls
            # confirmed quiescence.  Only raise if messages genuinely
            # remain — a queue that emptied on the very last poll is a
            # successful drain, not an exhaustion.
            backlog = self.account.sqs.pending_count(self.queue_url)
            if backlog > 0:
                raise DrainExhaustedError(
                    f"drain exhausted {max_polls} polls with the WAL queue "
                    f"still holding {backlog} messages "
                    f"({len(self._pending)} transactions pending)"
                )
        stats.transactions_committed = self._committed_count
        stats.transactions_pending = len(self._pending)
        return stats

    def process(
        self, poll_interval: float = 1.0, max_messages: int = 10
    ) -> Generator:
        """The daemon as a long-running kernel process: receive, assemble,
        commit, and sleep ``poll_interval`` virtual seconds whenever the
        queue comes up empty.  Spawn with ``daemon=True`` — the process
        never returns; the kernel stops it when the experiment ends."""
        while True:
            if self._stop_requested:
                yield from self.retire_plan()
                return
            batch = yield Batch(
                [self._receive_request(max_messages)],
                connections=1,
            )
            messages: List[Message] = batch.results[0]
            for message in messages:
                self._ingest(message)
            for txn_id in [
                txn.txn_id for txn in self._pending.values() if txn.complete()
            ]:
                yield from self.commit_plan(txn_id)
            if not messages:
                yield Delay(poll_interval)

    def retire_plan(self) -> Generator:
        """Graceful retirement: commit every *complete* transaction still
        pending, then hand each *incomplete* transaction's WAL messages
        straight back to the queue (``ChangeMessageVisibility 0``) so a
        surviving daemon can assemble it without waiting out this
        daemon's visibility timeout.  Effect-plan shaped, like
        :meth:`commit_plan`."""
        for txn_id in [
            txn.txn_id for txn in self._pending.values() if txn.complete()
        ]:
            yield from self.commit_plan(txn_id)
        handbacks: List[Request] = [
            self.account.sqs.change_visibility_request(
                self.queue_url, receipt, visibility_timeout=0.0
            )
            for txn in self._pending.values()
            for receipt in txn.receipts
        ]
        if handbacks:
            yield Batch(handbacks, self.connections)
        self._pending.clear()
        self.retired = True

    def _ingest(self, message: Message) -> None:
        parsed = parse_message(message.body)
        self._m_messages.inc()
        self._tracer.mark_if_traced(
            parsed.txn_id, DAEMON_DEQUEUE, self.account.now
        )
        txn = self._pending.setdefault(
            parsed.txn_id, _PendingTransaction(txn_id=parsed.txn_id)
        )
        txn.total = parsed.total
        # Duplicate deliveries overwrite the same seq slot harmlessly.
        txn.packets[parsed.seq] = parsed
        txn.receipts.append(message.receipt_handle)
        latest = self._logged_at.get(parsed.txn_id)
        if latest is None or message.sent_at > latest:
            self._logged_at[parsed.txn_id] = message.sent_at

    def _commit_ready(self) -> None:
        ready = [txn for txn in self._pending.values() if txn.complete()]
        for txn in ready:
            self.commit(txn.txn_id)

    # -- committing ------------------------------------------------------------------

    def commit(self, txn_id: str) -> None:
        """Commit one fully assembled transaction (phased driver)."""
        run_plan_phased(
            self.account, self.commit_plan(txn_id), advance_clock=self.charge_time
        )

    def commit_plan(self, txn_id: str) -> Generator:
        """The commit of one fully assembled transaction, as an effect
        plan — the single copy of the commit logic, driven phased by
        :meth:`commit` and concurrently by :meth:`process`."""
        txn = self._pending.get(txn_id)
        if txn is None:
            raise TransactionIncompleteError(f"unknown transaction {txn_id}")
        if not txn.complete():
            raise TransactionIncompleteError(
                f"transaction {txn_id} has {len(txn.packets)}/{txn.total} packets"
            )

        records = []
        entries: List[DataManifestEntry] = []
        for seq in sorted(txn.packets):
            packet = txn.packets[seq]
            records.extend(packet.records)
            entries.extend(packet.data_entries)

        # 1 + 2: spill oversized values, then BatchPutAttributes into each
        # bundle's routed shard domain.
        bundles = self._bundles_from_records(records)
        spill_requests, batch_requests, _pairs = build_routed_requests(
            self.router, bundles, self.account, self.bucket
        )
        if spill_requests:
            yield Batch(spill_requests, self.connections)
        if batch_requests:
            yield Batch(batch_requests, self.connections)
            self._tracer.mark_if_traced(txn_id, SDB_PUT, self.account.now)
        self.account.faults.crash_point("p3.mid_commit")

        # 3: COPY temp -> final, stamping the provenance link metadata.
        # Under eventual consistency the temp object may not be visible to
        # the copy yet; retry with backoff until it propagates (§2.3.1:
        # "clients must design appropriate mechanisms to detect
        # inconsistencies").
        for entry in entries:
            metadata = {
                "prov-uuid": entry.uuid,
                "version": str(entry.version),
                "digest": entry.digest,
            }
            copy = self.account.s3.copy_request(
                self.bucket, entry.tmp_key, self.bucket, entry.final_key, metadata
            )
            for attempt in range(32):
                try:
                    yield Batch([copy], self.connections)
                    break
                except NoSuchKeyError:
                    yield Delay(2.0)
            else:  # pragma: no cover - 64 s exceeds any propagation window
                raise NoSuchKeyError(
                    f"temp object {entry.tmp_key} never became visible"
                )

        # 4: delete temporaries and WAL messages.
        deletes: List[Request] = [
            self.account.s3.delete_request(self.bucket, entry.tmp_key)
            for entry in entries
        ]
        deletes.extend(
            self.account.sqs.delete_request(self.queue_url, receipt)
            for receipt in txn.receipts
        )
        if deletes:
            yield Batch(deletes, self.connections)

        del self._pending[txn_id]
        self._committed_count += 1
        record = CommitRecord(
            txn_id=txn_id,
            logged_at=self._logged_at.get(txn_id, 0.0),
            committed_at=self.account.now,
        )
        self.commit_log.append(record)
        self._m_commits.inc()
        self._m_lag.observe(record.lag)
        self._tracer.mark_if_traced(txn_id, COMMIT_DONE, record.committed_at)

    @staticmethod
    def _bundles_from_records(records) -> List[ProvenanceBundle]:
        by_uuid: Dict[str, ProvenanceBundle] = {}
        for record in records:
            bundle = by_uuid.setdefault(
                record.subject.uuid, ProvenanceBundle(uuid=record.subject.uuid)
            )
            bundle.add(record)
        return list(by_uuid.values())

    # -- introspection ------------------------------------------------------------------

    def pending_transactions(self) -> List[str]:
        return sorted(self._pending)

    def committed_count(self) -> int:
        return self._committed_count
