"""The service tier's provenance read cache.

Provenance is append-mostly and query workloads are read-heavy (the
paper's §2.2 use cases — search ranking, debugging — re-run the same
ancestry lookups), so a small LRU in front of the query engines removes
repeated cloud round-trips entirely.  Correctness across writes is kept
the blunt-but-sound way: the gateway bumps the cache *generation* on
every ingest batch, and cached entries are keyed by generation, so any
write invalidates everything at once.  Between writes, repeated queries
are pure hits: zero cloud operations, zero virtual-time cost.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.query.engine import QueryStats


@dataclass
class CacheStats:
    """Hit/miss counters exposed by the service tier."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """A bounded least-recently-used map with hit/miss accounting."""

    _MISS = object()

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        #: Bumped on every write; keys embed it, so stale entries can
        #: never be returned — they just age out of the LRU.
        self._generation = 0

    @property
    def generation(self) -> int:
        return self._generation

    def note_write(self) -> None:
        """Invalidate everything: subsequent lookups key a new generation.

        The old-generation entries are dropped eagerly — ``get``/``put``
        only ever touch the current generation, so after the bump every
        stored entry is unreachable.  Leaving them in place (the old
        behaviour) stranded up to ``capacity`` dead entries that inflated
        the ``cache.size`` gauge, held their answer objects alive, and
        burned ``capacity`` spurious LRU evictions (miscounted in
        ``stats.evictions``) before live entries filled the map again."""
        self._generation += 1
        self.stats.invalidations += 1
        self._entries.clear()

    def bind_metrics(self, registry, **labels) -> None:
        """Expose the hit/miss counters as callback gauges on a
        :class:`~repro.obs.metrics.MetricsRegistry` (labelled per owner,
        so several caches coexist)."""
        stats = self.stats
        registry.gauge_fn("cache.hits", lambda: stats.hits, **labels)
        registry.gauge_fn("cache.misses", lambda: stats.misses, **labels)
        registry.gauge_fn("cache.evictions", lambda: stats.evictions, **labels)
        registry.gauge_fn(
            "cache.invalidations", lambda: stats.invalidations, **labels
        )
        registry.gauge_fn("cache.size", lambda: len(self._entries), **labels)

    def _versioned(self, key: Hashable) -> Tuple[int, Hashable]:
        return (self._generation, key)

    def get(self, key: Hashable) -> Any:
        """Return the cached value or ``None``; counts a hit or a miss."""
        entry = self._entries.get(self._versioned(key), self._MISS)
        if entry is self._MISS:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._entries.move_to_end(self._versioned(key))
        return entry

    def put(self, key: Hashable, value: Any) -> None:
        versioned = self._versioned(key)
        self._entries[versioned] = value
        self._entries.move_to_end(versioned)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)


def _cached_stats() -> QueryStats:
    """Stats for a query answered from the cache: no cloud traffic, no
    virtual time.  A fresh instance per hit — QueryStats is mutable and
    callers may accumulate into it."""
    return QueryStats(elapsed_seconds=0.0, bytes_transferred=0, operations=0)


class CachedQueryEngine:
    """Fronts a query engine (single-domain or sharded) with an LRU.

    The wrapped engine's Q1–Q4 signatures are preserved; cache keys are
    (query, arguments).  A hit returns the cached answer with zero-cost
    :class:`QueryStats`; a miss delegates and stores the result.  The
    cached answer object is shared — callers must not mutate it.
    """

    def __init__(self, engine, cache: Optional[LRUCache] = None):
        self.engine = engine
        self.cache = cache if cache is not None else LRUCache()

    @property
    def stats(self) -> CacheStats:
        return self.cache.stats

    def note_write(self) -> None:
        """Forwarded by the ingest gateway after every flush batch."""
        self.cache.note_write()

    def _through(self, key: Tuple, call) -> Tuple[Any, QueryStats]:
        cached = self.cache.get(key)
        if cached is not None:
            return cached, _cached_stats()
        answer, stats = call()
        self.cache.put(key, answer)
        return answer, stats

    def q1_all_provenance(self, parallel: bool = False):
        return self._through(
            ("q1", parallel), lambda: self.engine.q1_all_provenance(parallel)
        )

    def q2_object_provenance(self, path: str) -> Tuple[Dict[str, List[str]], QueryStats]:
        return self._through(
            ("q2", path), lambda: self.engine.q2_object_provenance(path)
        )

    def q3_direct_outputs(self, program: str, parallel: bool = False):
        return self._through(
            ("q3", program, parallel),
            lambda: self.engine.q3_direct_outputs(program, parallel),
        )

    def q4_all_descendants(self, program: str, parallel: bool = False):
        return self._through(
            ("q4", program, parallel),
            lambda: self.engine.q4_all_descendants(program, parallel),
        )
