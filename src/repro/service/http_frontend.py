"""A thin HTTP front end over the ingest gateway and query engines.

The service tier so far is reachable only as Python objects; this module
makes it reachable the way the paper's deployment is — over the wire.
It is deliberately thin: stdlib :mod:`http.server`, JSON bodies, and a
1:1 mapping onto existing calls (``submit``/``flush_pending`` on the
:class:`~repro.service.gateway.IngestGateway`, Q1–Q4 on its cached
shard-aware query engine, raw ``select`` on SimpleDB).  No logic lives
here — the front end marshals JSON in and out, so everything the
differential matrix pins about the gateway and engines holds verbatim
for HTTP clients.

Endpoints
---------

- ``GET  /healthz`` — liveness, backend name, virtual-clock time.
- ``POST /v1/ingest`` — one flush: ``{"client_id", "path", "uuid",
  "version", "data", "attributes": {attr: [values]}}``; buffered into
  the gateway's batching window.
- ``POST /v1/flush`` — coalesce and issue the pending window.
- ``POST /v1/settle`` — advance the virtual clock (``{"seconds": s}``)
  so eventually-consistent writes become visible to queries.
- ``POST /v1/query`` — ``{"query": "q1"|"q2"|"q3"|"q4", "arg": ...}``.
- ``POST /v1/select`` — ``{"expression": "select * from ..."}``.
- ``GET  /v1/stats`` — gateway/billing counters.

The server runs on a daemon thread (``port=0`` picks a free port); the
simulation itself stays single-threaded because the stdlib
:class:`~http.server.HTTPServer` handles one request at a time.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, HTTPServer
from typing import Dict, List, Optional, Tuple

from repro.cloud.account import CloudAccount
from repro.cloud.blob import Blob
from repro.errors import CloudServiceError
from repro.provenance.graph import NodeRef
from repro.provenance.pass_collector import FlushIntent
from repro.provenance.records import ProvenanceBundle, ProvenanceRecord
from repro.core.protocol_base import DomainRouter, FlushWork
from repro.service.gateway import IngestGateway

#: Attributes whose values are node references (mirrors the ancestry
#: index's xref set) — their values parse into NodeRefs on ingest.
XREF_ATTRIBUTES = ("input",)


def _jsonable(value):
    """Recursively convert engine answers into JSON-encodable data."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=str) if isinstance(value, (set, frozenset)) else value
        return [_jsonable(v) for v in items]
    if isinstance(value, NodeRef):
        return str(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class ProvenanceFrontend:
    """The HTTP ingest/query service over one account's gateway."""

    def __init__(
        self,
        account: Optional[CloudAccount] = None,
        router: Optional[DomainRouter] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.account = account if account is not None else CloudAccount()
        self.gateway = IngestGateway(self.account, router=router)
        self.engine = self.gateway.query_engine()
        self._host = host
        self._port = port
        self._server: Optional[HTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind and serve on a daemon thread; returns ``(host, port)``."""
        if self._server is not None:
            return self.address
        frontend = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, format, *args):  # noqa: A002 - stdlib name
                pass  # silence per-request stderr chatter

            def _reply(self, status: int, payload: Dict) -> None:
                body = json.dumps(payload).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):
                try:
                    handled = frontend._handle_get(self.path)
                except Exception as exc:  # pragma: no cover - defensive
                    self._reply(500, {"error": str(exc)})
                    return
                if handled is None:
                    self._reply(404, {"error": f"no such endpoint {self.path}"})
                else:
                    self._reply(200, handled)

            def do_POST(self):
                length = int(self.headers.get("Content-Length") or 0)
                raw = self.rfile.read(length) if length else b""
                try:
                    body = json.loads(raw.decode("utf-8")) if raw else {}
                except json.JSONDecodeError as exc:
                    self._reply(400, {"error": f"invalid JSON body: {exc}"})
                    return
                try:
                    handled = frontend._handle_post(self.path, body)
                except (KeyError, ValueError, CloudServiceError) as exc:
                    self._reply(400, {"error": f"{type(exc).__name__}: {exc}"})
                    return
                except Exception as exc:  # pragma: no cover - defensive
                    self._reply(500, {"error": str(exc)})
                    return
                if handled is None:
                    self._reply(404, {"error": f"no such endpoint {self.path}"})
                else:
                    self._reply(200, handled)

        self._server = HTTPServer((self._host, self._port), Handler)
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-http", daemon=True
        )
        self._thread.start()
        return self.address

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
            self._thread = None

    @property
    def address(self) -> Tuple[str, int]:
        assert self._server is not None, "frontend is not started"
        return self._server.server_address[:2]

    # -- request handling (runs on the server thread) --------------------------

    def _handle_get(self, path: str) -> Optional[Dict]:
        if path == "/healthz":
            return {
                "status": "ok",
                "backend": self.account.backend,
                "virtual_now": self.account.now,
            }
        if path == "/v1/stats":
            return {
                "gateway": self.gateway.stats.summary(),
                "pending": self.gateway.pending_count(),
                "operations": self.account.billing.operation_count(),
                "cost_usd": self.account.billing.cost(),
                "backend": self.account.backend,
                "virtual_now": self.account.now,
            }
        return None

    def _handle_post(self, path: str, body: Dict) -> Optional[Dict]:
        if path == "/v1/ingest":
            return self._ingest(body)
        if path == "/v1/flush":
            return {"requests": self.gateway.flush_pending()}
        if path == "/v1/settle":
            seconds = float(body.get("seconds", 120.0))
            self.account.settle(seconds)
            return {"virtual_now": self.account.now}
        if path == "/v1/query":
            return self._query(body)
        if path == "/v1/select":
            rows = self.account.simpledb.select(str(body["expression"]))
            return {"rows": _jsonable(rows)}
        return None

    def _ingest(self, body: Dict) -> Dict:
        client_id = str(body["client_id"])
        uuid = str(body["uuid"])
        version = int(body.get("version", 0))
        ref = NodeRef(uuid, version)
        records: List[ProvenanceRecord] = []
        for attribute, values in dict(body.get("attributes", {})).items():
            for value in values:
                if attribute in XREF_ATTRIBUTES:
                    records.append(
                        ProvenanceRecord(ref, attribute, NodeRef.parse(str(value)))
                    )
                else:
                    records.append(ProvenanceRecord(ref, attribute, str(value)))
        work = FlushWork(
            primary=FlushIntent(
                path=str(body["path"]),
                uuid=uuid,
                ref=ref,
                blob=Blob.from_text(str(body.get("data", ""))),
            ),
            bundles=[ProvenanceBundle(uuid=uuid, records=records)],
        )
        self.gateway.submit(client_id, work)
        return {"accepted": True, "pending": self.gateway.pending_count()}

    def _query(self, body: Dict) -> Dict:
        query = str(body["query"])
        arg = body.get("arg")
        if query == "q1":
            index, stats = self.engine.q1_all_provenance()
            answer = {
                str(ref): _jsonable(index.attributes(ref)) for ref in index.refs()
            }
        elif query == "q2":
            answer, stats = self.engine.q2_object_provenance(str(arg))
            answer = _jsonable(answer)
        elif query == "q3":
            refs, stats = self.engine.q3_direct_outputs(str(arg))
            answer = _jsonable(refs)
        elif query == "q4":
            refs, stats = self.engine.q4_all_descendants(str(arg))
            answer = _jsonable(refs)
        else:
            raise ValueError(f"unknown query {query!r} (one of q1-q4)")
        return {
            "query": query,
            "answer": answer,
            "stats": {
                "elapsed_seconds": stats.elapsed_seconds,
                "operations": stats.operations,
            },
        }
