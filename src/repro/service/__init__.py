"""The multi-tenant provenance service tier.

The paper evaluates one PA-S3fs client against one bucket and one
SimpleDB domain; this package is the scaling unit the ROADMAP's
production north star needs — a service that sits between many clients
and the simulated cloud:

- :mod:`repro.service.sharding` — :class:`ShardRouter`: stable-hash
  routing of provenance items across N SimpleDB domains (the per-domain
  ingest ceiling of §5 is the resource being multiplied),
- :mod:`repro.service.gateway` — :class:`IngestGateway`: accepts
  :class:`~repro.core.protocol_base.FlushWork` from many concurrent
  clients and coalesces their ``BatchPutAttributes`` and S3 uploads
  across clients, amortizing round-trips on the virtual clock,
- :mod:`repro.service.cache` — :class:`LRUCache` /
  :class:`CachedQueryEngine`: a generation-invalidated LRU read cache
  with hit/miss counters fronting both query engines,
- :mod:`repro.service.supervisor` — :class:`Supervisor`: the
  SLO-driven autoscaling control plane, sizing the commit-daemon pool
  from observed WAL depth and commit lag and adapting the gateway's
  coalescing window,
- :mod:`repro.service.http_frontend` — :class:`ProvenanceFrontend`: a
  stdlib-``http.server`` JSON front end mapping HTTP requests 1:1 onto
  the gateway's ingest and the cached query engines.

The client-fleet simulator that drives this tier lives in
:mod:`repro.workloads.fleet`; the scaling benchmark in
:mod:`repro.bench.experiments` (``multitenant_scaling``).
"""

from repro.service.bloom import BloomFilter, ShardBloomIndex
from repro.service.cache import CachedQueryEngine, CacheStats, LRUCache
from repro.service.gateway import GatewayStats, IngestGateway
from repro.service.http_frontend import ProvenanceFrontend
from repro.service.sharding import ShardRouter
from repro.service.supervisor import Supervisor, SupervisorConfig

__all__ = [
    "BloomFilter",
    "CacheStats",
    "CachedQueryEngine",
    "GatewayStats",
    "IngestGateway",
    "LRUCache",
    "ProvenanceFrontend",
    "ShardBloomIndex",
    "ShardRouter",
    "Supervisor",
    "SupervisorConfig",
]
