"""Per-shard Bloom filters for attribute-rooted query routing.

PR 5 made itemName-rooted lookups single-shard: a ``uuid_version`` name
hashes to its owning domain, so the engine never visits a shard that
cannot hold it.  Attribute-rooted lookups (Q3/Q4's ``input IN (...)``
chunks, the ``name = 'prog'`` proc lookup) have no such handle — the
matching items may live anywhere — so they fanned out to every shard.

This module extends the routing to the general case: each shard domain
keeps a :class:`BloomFilter` over every item name and attribute-value
pair written to it, maintained at ingest through
``DomainRouter.note_indexed_items`` (called by ``build_routed_requests``,
the one write pipeline shared by the gateway, P2's flush, and the commit
daemon).  At query time the sharded engine asks
:class:`ShardBloomIndex` which domains *might* hold a value and skips
the rest.

Soundness is one-directional, and that is the contract:

- **No false negatives.**  Every routed write inserts before it
  executes, inserts are never removed (deletes leave the filter alone —
  like the SimpleDB secondary indexes, the filter over-approximates
  what any observation time can see), and a domain the index has never
  been told about answers "might match".  A pruned shard therefore
  provably holds no matching item.
- **False positives cost a wasted select chain, never a wrong answer.**
  A filter hit only means the shard is contacted; the select itself
  still verifies every row.

The hashing is deterministic (blake2b, no process-salt ``hash()``), so
a sweep's routing decisions replay bit-for-bit from its seed.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Sequence, Tuple

#: Default filter width in bits (16 KiB of bitmap per shard domain).
#: At the default 4 hashes this keeps the false-positive rate under
#: ~2.5% up to ~15k inserted tokens per shard.
DEFAULT_SIZE_BITS = 1 << 17

#: Default number of hash probes per token.
DEFAULT_HASHES = 4

#: Token tags: item names and attribute-value pairs share one filter
#: but must never collide with each other.
_NAME_TAG = "n\x00"
_VALUE_TAG = "v\x00"
_PAIR_SEP = "\x1f"


class BloomFilter:
    """A plain insert-only Bloom filter over string tokens.

    Double hashing off one blake2b digest: probe ``i`` is
    ``(h1 + i * h2) mod size_bits`` with ``h2`` forced odd, the standard
    Kirsch–Mitzenmacher construction — one digest per token, any number
    of probes, fully deterministic across processes.
    """

    __slots__ = ("size_bits", "hashes", "count", "_bits")

    def __init__(
        self, size_bits: int = DEFAULT_SIZE_BITS, hashes: int = DEFAULT_HASHES
    ):
        if size_bits < 8:
            raise ValueError("size_bits must be >= 8")
        if hashes < 1:
            raise ValueError("hashes must be >= 1")
        self.size_bits = size_bits
        self.hashes = hashes
        #: Tokens inserted (including re-inserts; a load diagnostic).
        self.count = 0
        self._bits = bytearray((size_bits + 7) // 8)

    @staticmethod
    def _digest_pair(token: str) -> Tuple[int, int]:
        digest = hashlib.blake2b(
            token.encode("utf-8"), digest_size=16
        ).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:], "big") | 1
        return h1, h2

    def add(self, token: str) -> None:
        h1, h2 = self._digest_pair(token)
        bits = self._bits
        for probe in range(self.hashes):
            position = (h1 + probe * h2) % self.size_bits
            bits[position >> 3] |= 1 << (position & 7)
        self.count += 1

    def __contains__(self, token: str) -> bool:
        h1, h2 = self._digest_pair(token)
        bits = self._bits
        for probe in range(self.hashes):
            position = (h1 + probe * h2) % self.size_bits
            if not bits[position >> 3] & (1 << (position & 7)):
                return False
        return True

    def fill_ratio(self) -> float:
        """Fraction of bits set — the saturation diagnostic (a filter
        near 1.0 prunes nothing and should be sized up)."""
        set_bits = sum(bin(byte).count("1") for byte in self._bits)
        return set_bits / self.size_bits

    def memory_bytes(self) -> int:
        return len(self._bits)

    def to_bytes(self) -> bytes:
        """The raw bitmap (determinism checks: same inserts, same bytes)."""
        return bytes(self._bits)


class ShardBloomIndex:
    """Per-domain Bloom filters over item names and attribute values.

    One filter per shard domain, created eagerly for every domain the
    router can produce — an untouched domain's empty filter correctly
    answers "cannot match" for everything, so empty shards are pruned
    too.  Domains this index has never heard of answer "might match"
    (no pruning), which keeps lookups conservative when a query engine
    is pointed at a store populated outside the routed write pipeline.
    """

    def __init__(
        self,
        domains: Sequence[str],
        size_bits: int = DEFAULT_SIZE_BITS,
        hashes: int = DEFAULT_HASHES,
    ):
        self._filters: Dict[str, BloomFilter] = {
            domain: BloomFilter(size_bits, hashes) for domain in domains
        }

    def filter_for(self, domain: str) -> BloomFilter:
        """The domain's filter (diagnostics; KeyError for unknown)."""
        return self._filters[domain]

    def note_items(
        self,
        domain: str,
        items: Iterable[Tuple[str, Sequence[Tuple[str, str]]]],
    ) -> None:
        """Record a routed write: every item name and every stored
        attribute-value pair.  Called with the *built* items (post
        spill-pointer substitution), so the filter indexes exactly the
        strings a select would match against."""
        bloom = self._filters.get(domain)
        if bloom is None:
            bloom = self._filters[domain] = BloomFilter()
        for name, pairs in items:
            bloom.add(_NAME_TAG + name)
            for attribute, value in pairs:
                bloom.add(_VALUE_TAG + attribute + _PAIR_SEP + value)

    def might_contain_name(self, domain: str, name: str) -> bool:
        bloom = self._filters.get(domain)
        if bloom is None:
            return True
        return (_NAME_TAG + name) in bloom

    def might_contain_any_name(
        self, domain: str, names: Iterable[str]
    ) -> bool:
        bloom = self._filters.get(domain)
        if bloom is None:
            return True
        return any((_NAME_TAG + name) in bloom for name in names)

    def might_contain_value(
        self, domain: str, attribute: str, value: str
    ) -> bool:
        bloom = self._filters.get(domain)
        if bloom is None:
            return True
        return (_VALUE_TAG + attribute + _PAIR_SEP + value) in bloom

    def might_contain_any_value(
        self, domain: str, attribute: str, values: Iterable[str]
    ) -> bool:
        bloom = self._filters.get(domain)
        if bloom is None:
            return True
        return any(
            (_VALUE_TAG + attribute + _PAIR_SEP + value) in bloom
            for value in values
        )

    def memory_bytes(self) -> int:
        return sum(bloom.memory_bytes() for bloom in self._filters.values())
