"""The multi-tenant ingest gateway.

The paper's deployment is one PA-S3fs client talking to its own bucket
and domain.  At fleet scale that wastes the two resources the simulator
meters: every client pays its own round-trips, and every client's
partial ``BatchPutAttributes`` (≤ 25 items) ships mostly-empty batches.
The gateway sits between many clients and the cloud:

- clients :meth:`submit` their :class:`FlushWork` units; nothing is sent
  yet (the gateway's batching window),
- :meth:`flush_pending` coalesces the window across clients — provenance
  bundles merge by uuid, route to their shard domain, and fill 25-item
  batches *across* clients; data and spill objects ride in the same
  parallel batch — and issues everything through one
  :class:`~repro.cloud.network.ParallelScheduler` batch, so the
  round-trip latency is paid once per window instead of once per client.

Storage scheme is P2's (§4.3.2): data objects in S3 with uuid/version
metadata, one SimpleDB item per object version, >1 KB values spilled to
S3.  Both query engines therefore work unchanged on a gateway-populated
store, and the shard-aware engine works when the gateway routes across
shards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.cloud.account import CloudAccount
from repro.cloud.network import Request
from repro.provenance.records import ProvenanceBundle, merge_bundles
from repro.query.engine import query_engine_for

from repro.core.protocol_base import (
    DATA_BUCKET,
    DomainRouter,
    FlushWork,
    bundles_with_coupling,
    data_key,
    data_object_metadata,
)
from repro.core.sdb_items import build_routed_requests
from repro.service.cache import CachedQueryEngine, LRUCache


@dataclass
class GatewayStats:
    """Cumulative accounting of what the gateway coalesced."""

    flushes: int = 0
    windows: int = 0
    item_pairs: int = 0
    sdb_batches: int = 0
    #: BatchPutAttributes calls the same flushes would have cost with
    #: every client batching alone (the per-client ⌈items/25⌉ sum).
    sdb_batches_unbatched: int = 0
    data_puts: int = 0
    spill_puts: int = 0
    clients: Set[str] = field(default_factory=set)

    @property
    def sdb_batches_saved(self) -> int:
        return self.sdb_batches_unbatched - self.sdb_batches

    def summary(self) -> str:
        return (
            f"{self.flushes} flushes from {len(self.clients)} clients in "
            f"{self.windows} windows: {self.sdb_batches} BatchPut calls "
            f"({self.sdb_batches_saved} saved), {self.data_puts} data PUTs"
        )


class IngestGateway:
    """Coalesces many clients' flushes into shared cloud batches."""

    def __init__(
        self,
        account: CloudAccount,
        router: Optional[DomainRouter] = None,
        bucket: str = DATA_BUCKET,
        connections: int = 150,
        cache: Optional[LRUCache] = None,
    ):
        self.account = account
        self.router = router if router is not None else DomainRouter()
        self.bucket = bucket
        self.connections = connections
        self.cache = cache if cache is not None else LRUCache()
        self.stats = GatewayStats()
        account.s3.create_bucket(bucket)
        for domain in self.router.domains:
            account.simpledb.create_domain(domain)
        self._pending: List[Tuple[str, FlushWork]] = []

    # -- ingest ---------------------------------------------------------------

    def submit(self, client_id: str, work: FlushWork) -> None:
        """Accept one client's flush into the current batching window."""
        self._pending.append((client_id, work))
        self.stats.flushes += 1
        self.stats.clients.add(client_id)

    def pending_count(self) -> int:
        return len(self._pending)

    def flush_pending(self) -> int:
        """Coalesce and issue the window; returns the request count."""
        if not self._pending:
            return 0
        window = self._pending
        self._pending = []
        self.stats.windows += 1

        bundles: List[ProvenanceBundle] = []
        data_requests: List[Request] = []
        for _client_id, work in window:
            enriched = bundles_with_coupling(work)
            bundles.extend(enriched)
            self.stats.sdb_batches_unbatched += self._unbatched_calls(enriched)
            if work.include_data:
                for intent in [work.primary] + list(work.ancestor_data):
                    data_requests.append(
                        self.account.s3.put_request(
                            self.bucket,
                            data_key(intent.path),
                            intent.blob,
                            data_object_metadata(intent),
                        )
                    )

        merged = list(merge_bundles(bundles).values())
        spill_requests, batch_requests, item_pairs = build_routed_requests(
            self.router, merged, self.account, self.bucket
        )

        requests = spill_requests + batch_requests + data_requests
        self._charge_marshalling(len(requests), item_pairs)
        self.account.scheduler.execute_batch(requests, self.connections)

        self.stats.item_pairs += item_pairs
        self.stats.sdb_batches += len(batch_requests)
        self.stats.data_puts += len(data_requests)
        self.stats.spill_puts += len(spill_requests)
        self.cache.note_write()
        return len(requests)

    # -- query side -----------------------------------------------------------

    def query_engine(self, parallel_connections: int = 8) -> CachedQueryEngine:
        """A cached, shard-aware query engine over the gateway's store.
        Shares the gateway's cache, so ingest invalidates reads."""
        engine = query_engine_for(
            "p2",
            self.account,
            router=self.router,
            bucket=self.bucket,
            parallel_connections=parallel_connections,
        )
        return CachedQueryEngine(engine, cache=self.cache)

    # -- internals ------------------------------------------------------------

    def _unbatched_calls(self, bundles: List[ProvenanceBundle]) -> int:
        """BatchPutAttributes calls one flush's (already enriched)
        bundles would cost a lone client: one ⌈items/25⌉ ceiling per
        shard domain it touches."""
        calls = 0
        for _shard, group in self.router.group_by_domain(bundles):
            versions = sum(len(bundle.by_version()) for bundle in group)
            calls += (versions + 24) // 25
        return calls

    def _charge_marshalling(self, request_count: int, item_pairs: int) -> None:
        """Serial gateway-side CPU for preparing the window's requests —
        same accounting the client protocols charge."""
        env = self.account.profile.environment
        cost = (
            request_count * env.prov_cpu_per_request_s
            + item_pairs * env.prov_cpu_per_item_s
        ) * env.cpu_factor
        if cost > 0:
            self.account.clock.advance(cost)
