"""The multi-tenant ingest gateway.

The paper's deployment is one PA-S3fs client talking to its own bucket
and domain.  At fleet scale that wastes the two resources the simulator
meters: every client pays its own round-trips, and every client's
partial ``BatchPutAttributes`` (≤ 25 items) ships mostly-empty batches.
The gateway sits between many clients and the cloud:

- clients :meth:`submit` their :class:`FlushWork` units; nothing is sent
  yet (the gateway's batching window),
- :meth:`flush_pending` coalesces the window across clients — provenance
  bundles merge by uuid, route to their shard domain, and fill 25-item
  batches *across* clients; data and spill objects ride in the same
  parallel batch — and issues everything through one
  :class:`~repro.cloud.network.ParallelScheduler` batch, so the
  round-trip latency is paid once per window instead of once per client.

Storage scheme is P2's (§4.3.2): data objects in S3 with uuid/version
metadata, one SimpleDB item per object version, >1 KB values spilled to
S3.  Both query engines therefore work unchanged on a gateway-populated
store, and the shard-aware engine works when the gateway routes across
shards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional, Set, Tuple

from repro.cloud.account import CloudAccount
from repro.cloud.network import Request
from repro.obs.tracing import CLIENT_EMIT, GATEWAY_COALESCE
from repro.provenance.graph import NodeRef
from repro.provenance.records import ProvenanceBundle, merge_bundles
from repro.query.engine import query_engine_for
from repro.sim.compat import run_plan_phased
from repro.sim.events import Batch, Delay

from repro.core.protocol_base import (
    DATA_BUCKET,
    DomainRouter,
    FlushWork,
    bundles_with_coupling,
    data_key,
    data_object_metadata,
)
from repro.core.sdb_items import build_routed_requests
from repro.service.cache import CachedQueryEngine, LRUCache


@dataclass
class GatewayStats:
    """Cumulative accounting of what the gateway coalesced."""

    flushes: int = 0
    windows: int = 0
    item_pairs: int = 0
    sdb_batches: int = 0
    #: BatchPutAttributes calls the same flushes would have cost with
    #: every client batching alone (the per-client ⌈items/25⌉ sum).
    sdb_batches_unbatched: int = 0
    data_puts: int = 0
    spill_puts: int = 0
    clients: Set[str] = field(default_factory=set)

    @property
    def sdb_batches_saved(self) -> int:
        return self.sdb_batches_unbatched - self.sdb_batches

    def summary(self) -> str:
        return (
            f"{self.flushes} flushes from {len(self.clients)} clients in "
            f"{self.windows} windows: {self.sdb_batches} BatchPut calls "
            f"({self.sdb_batches_saved} saved), {self.data_puts} data PUTs"
        )


class IngestGateway:
    """Coalesces many clients' flushes into shared cloud batches."""

    def __init__(
        self,
        account: CloudAccount,
        router: Optional[DomainRouter] = None,
        bucket: str = DATA_BUCKET,
        connections: int = 150,
        cache: Optional[LRUCache] = None,
    ):
        self.account = account
        self.router = router if router is not None else DomainRouter()
        self.bucket = bucket
        self.connections = connections
        self.cache = cache if cache is not None else LRUCache()
        self.stats = GatewayStats()
        # Telemetry: stats struct and cache feed the registry as callback
        # gauges under this gateway's instance label.
        telemetry = account.telemetry
        self._tracer = telemetry.tracer
        label = f"gateway-{telemetry.instance_id('gateway')}"
        metrics = telemetry.metrics
        stats = self.stats
        metrics.gauge_fn("gateway.flushes", lambda: stats.flushes, gateway=label)
        metrics.gauge_fn("gateway.windows", lambda: stats.windows, gateway=label)
        metrics.gauge_fn(
            "gateway.item_pairs", lambda: stats.item_pairs, gateway=label
        )
        metrics.gauge_fn(
            "gateway.sdb_batches", lambda: stats.sdb_batches, gateway=label
        )
        metrics.gauge_fn(
            "gateway.sdb_batches_saved",
            lambda: stats.sdb_batches_saved,
            gateway=label,
        )
        metrics.gauge_fn("gateway.pending", self.pending_count, gateway=label)
        self.cache.bind_metrics(metrics, cache=label)
        account.s3.create_bucket(bucket)
        for domain in self.router.domains:
            account.simpledb.create_domain(domain)
        self._pending: List[Tuple[str, FlushWork]] = []
        #: True while the kernel process is mid-window (the window has
        #: been claimed from ``_pending`` but its batch has not shipped).
        self._flushing = False
        #: Coalescing window of the kernel process, virtual seconds.
        #: :meth:`process` re-reads it every loop, so a supervisor can
        #: adapt it live (:meth:`set_window`).
        self.window_s = 0.25

    # -- ingest ---------------------------------------------------------------

    def submit(self, client_id: str, work: FlushWork) -> None:
        """Accept one client's flush into the current batching window."""
        self._pending.append((client_id, work))
        self.stats.flushes += 1
        self.stats.clients.add(client_id)
        if self._tracer.enabled:
            # Gateway-path lifecycle trace, keyed by the primary record's
            # uuid (there is no WAL transaction on this path); item names
            # alias onto it so SimpleDB visibility marks land.
            key = work.primary.uuid
            self._tracer.begin(key, client=client_id, path="gateway")
            self._tracer.mark(key, CLIENT_EMIT, self.account.now)
            for bundle in work.bundles:
                self._tracer.alias(bundle.uuid, key)
                for version in bundle.by_version():
                    self._tracer.alias(str(NodeRef(bundle.uuid, version)), key)

    def pending_count(self) -> int:
        return len(self._pending)

    def flush_pending(self) -> int:
        """Coalesce and issue the window (phased driver); returns the
        request count."""
        return run_plan_phased(self.account, self.flush_plan(), advance_clock=True)

    def flush_plan(self) -> Generator:
        """One window flush as an effect plan — the single copy of the
        coalescing logic, driven phased by :meth:`flush_pending` and
        concurrently by :meth:`process`."""
        if not self._pending:
            return 0
        window = self._pending
        self._pending = []
        self.stats.windows += 1

        shipped = False
        try:
            requests, item_pairs, batch_count, data_count, spill_count = (
                self._build_window(window)
            )
            cost = self._marshalling_cost(len(requests), item_pairs)
            if cost > 0:
                yield Delay(cost)
            result = yield Batch(requests, self.connections)
            shipped = True
        finally:
            if not shipped:
                # Killed mid-window: the gateway object is the durable
                # intake log, so hand the claimed flushes back for the
                # next incarnation.  If the kill landed *after* the batch
                # applied but before this generator resumed, the window
                # is re-issued — harmless, because SimpleDB re-puts are
                # set-semantics idempotent and the S3 objects re-upload
                # byte-identical content.
                self._pending = window + self._pending

        if self._tracer.enabled:
            coalesced_at = (
                result.finished_at if result is not None else self.account.now
            )
            for _client_id, work in window:
                self._tracer.mark_if_traced(
                    work.primary.uuid, GATEWAY_COALESCE, coalesced_at
                )
        self.stats.item_pairs += item_pairs
        self.stats.sdb_batches += batch_count
        self.stats.data_puts += data_count
        self.stats.spill_puts += spill_count
        self.cache.note_write()
        return len(requests)

    def process(self, window_s: float = 0.25) -> Generator:
        """The gateway as a kernel process: windows become *time-based*.
        Every ``window_s`` virtual seconds the gateway coalesces whatever
        the client processes submitted since the last flush — cross-client
        batching now depends on arrival times, not on who called
        ``flush_pending``.  Spawn with ``daemon=True``."""
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = window_s
        while True:
            yield Delay(self.window_s)
            if self._pending:
                self._flushing = True
                try:
                    yield from self.flush_plan()
                finally:
                    # A crash mid-window (the kernel closes the generator)
                    # must not leave ``busy`` stuck True forever.
                    self._flushing = False

    def set_window(self, window_s: float) -> None:
        """Adapt the coalescing window live — the supervisor's lever for
        trading latency against batching efficiency."""
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = window_s

    @property
    def busy(self) -> bool:
        """Whether undelivered work remains: submissions waiting for the
        next window, or a window claimed but not yet shipped.  Kernel
        experiments drain by running until this clears."""
        return self._flushing or bool(self._pending)

    # -- query side -----------------------------------------------------------

    def query_engine(self, parallel_connections: int = 8) -> CachedQueryEngine:
        """A cached, shard-aware query engine over the gateway's store.
        Shares the gateway's cache, so ingest invalidates reads."""
        engine = query_engine_for(
            "p2",
            self.account,
            router=self.router,
            bucket=self.bucket,
            parallel_connections=parallel_connections,
        )
        return CachedQueryEngine(engine, cache=self.cache)

    # -- internals ------------------------------------------------------------

    def _build_window(
        self, window: List[Tuple[str, FlushWork]]
    ) -> Tuple[List[Request], int, int, int, int]:
        """Coalesce one window into its requests: provenance bundles merge
        by uuid, route to their shard domain, and fill 25-item batches
        across clients; data and spill objects ride in the same batch.
        Returns (requests, item pairs, batch puts, data puts, spills)."""
        bundles: List[ProvenanceBundle] = []
        data_requests: List[Request] = []
        for _client_id, work in window:
            enriched = bundles_with_coupling(work)
            bundles.extend(enriched)
            self.stats.sdb_batches_unbatched += self._unbatched_calls(enriched)
            if work.include_data:
                for intent in [work.primary] + list(work.ancestor_data):
                    data_requests.append(
                        self.account.s3.put_request(
                            self.bucket,
                            data_key(intent.path),
                            intent.blob,
                            data_object_metadata(intent),
                        )
                    )

        merged = list(merge_bundles(bundles).values())
        spill_requests, batch_requests, item_pairs = build_routed_requests(
            self.router, merged, self.account, self.bucket
        )
        requests = spill_requests + batch_requests + data_requests
        return (
            requests,
            item_pairs,
            len(batch_requests),
            len(data_requests),
            len(spill_requests),
        )

    def _unbatched_calls(self, bundles: List[ProvenanceBundle]) -> int:
        """BatchPutAttributes calls one flush's (already enriched)
        bundles would cost a lone client: one ⌈items/25⌉ ceiling per
        shard domain it touches."""
        calls = 0
        for _shard, group in self.router.group_by_domain(bundles):
            versions = sum(len(bundle.by_version()) for bundle in group)
            calls += (versions + 24) // 25
        return calls

    def _marshalling_cost(self, request_count: int, item_pairs: int) -> float:
        """Serial gateway-side CPU seconds for preparing the window's
        requests — same accounting the client protocols charge."""
        env = self.account.profile.environment
        return (
            request_count * env.prov_cpu_per_request_s
            + item_pairs * env.prov_cpu_per_item_s
        ) * env.cpu_factor
