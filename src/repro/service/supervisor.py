"""The SLO-driven autoscaling supervisor.

``BENCH_chaos_slo.json`` proves a negative: under recurring daemon
crashes *no static* daemon count meets the p99 commit-lag SLO, because
the tail is not capacity — it is the stock 30 s SQS visibility timeout
stranding whatever a killed daemon had received but not deleted.  The
supervisor is the control plane that closes the loop the paper leaves
open (§4.3.3 runs a fixed daemon set):

- **Observe.**  Each control tick polls the WAL queue depth and the
  telemetry registry's ``daemon.commit_lag_s`` histograms (windowed
  mean over the tick, via count/sum watermarks — the registry is the
  only lag source; the supervisor never reads daemon internals).
- **Scale the pool.**  Target size is ``ceil(depth /
  backlog_per_daemon)`` clamped to ``[min_daemons, max_daemons]``;
  growth spawns fresh :class:`~repro.core.commit_daemon.CommitDaemon`
  incarnations.  After ``calm_ticks`` consecutive quiet ticks (empty
  WAL, no pending transactions, low windowed lag) one member retires
  gracefully: its respawn policy is deregistered and
  :meth:`~repro.core.commit_daemon.CommitDaemon.request_stop` lets it
  commit complete transactions and hand incomplete ones straight back
  to the WAL (``ChangeMessageVisibility 0``).
- **Lease tight, respawn with backoff.**  Pool members receive with a
  short visibility timeout (``visibility_timeout_s``, default 12 s):
  the supervisor guarantees a replacement consumer, so a crashed
  member's in-flight messages strand for seconds instead of 30 — the
  lever that fills the static fleet's ``null`` SLO cells.  The members'
  respawn policies use deterministic exponential backoff
  (``base_delay_s * multiplier^n``, capped at ``max_delay_s``) so a
  crash-looping target stops hot-respawning.
- **Drive the gateway.**  When an :class:`IngestGateway` is attached,
  its coalescing window halves while submissions pile up past
  ``window_high_pending`` and doubles back once the backlog clears —
  latency under load, batching efficiency at rest — clamped to
  ``[min_window_s, max_window_s]``.

Every decision is emitted as a structured ``supervisor.*`` event
(``scale_up`` / ``scale_down`` / ``window_adjust`` / ``backoff``) and
the ``supervisor.pool_size`` / ``supervisor.target_window_s`` gauges
feed the scraper, so the control loop is replayable from telemetry
alone.  All inputs are virtual-clock state — runs stay deterministic
per seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.cloud.account import CloudAccount
from repro.core.commit_daemon import CommitDaemon
from repro.sim.events import Delay


@dataclass
class SupervisorConfig:
    """Thresholds of the control loop (see the module docstring)."""

    #: Seconds between control ticks.
    control_interval_s: float = 2.0
    #: Pool size bounds.
    min_daemons: int = 1
    max_daemons: int = 4
    #: WAL messages one daemon is trusted to chew through per tick;
    #: the pool targets ``ceil(depth / backlog_per_daemon)``.
    backlog_per_daemon: int = 4
    #: Consecutive quiet ticks before one member retires.
    calm_ticks: int = 3
    #: Windowed mean commit lag above this marks the tick busy.
    lag_high_s: float = 10.0
    #: Poll interval handed to spawned daemons' ``process()``.
    poll_interval_s: float = 1.0
    #: Visibility timeout pool members receive with (None: SQS default).
    #: Long enough that a healthy commit (including its
    #: eventual-consistency retries) finishes inside one lease, short
    #: enough that a killed member's in-flight messages redeliver in
    #: seconds.
    visibility_timeout_s: Optional[float] = 12.0
    #: Respawn backoff for pool members (None base: flat 1 s delays).
    respawn_base_delay_s: Optional[float] = 1.0
    respawn_multiplier: float = 2.0
    respawn_max_delay_s: Optional[float] = 8.0
    #: Gateway coalescing-window bounds and thresholds.
    min_window_s: float = 0.0625
    max_window_s: float = 1.0
    #: Pending submissions above this halve the window...
    window_high_pending: int = 8
    #: ...and at or below this double it back.
    window_low_pending: int = 2


class Supervisor:
    """Scales a commit-daemon pool and a gateway window from observed
    WAL depth and commit lag.  Spawn :meth:`process` on the kernel with
    ``daemon=True``; call :meth:`start` first to provision the floor."""

    def __init__(
        self,
        account: CloudAccount,
        kernel,
        daemon_factory: Callable[[], CommitDaemon],
        queue_url: str,
        gateway=None,
        config: Optional[SupervisorConfig] = None,
        name_prefix: str = "pool",
    ):
        self.account = account
        self.kernel = kernel
        self.daemon_factory = daemon_factory
        self.queue_url = queue_url
        self.gateway = gateway
        self.config = config if config is not None else SupervisorConfig()
        if self.config.min_daemons < 1:
            raise ValueError("min_daemons must be >= 1")
        if self.config.max_daemons < self.config.min_daemons:
            raise ValueError("max_daemons must be >= min_daemons")
        self.name_prefix = name_prefix
        #: Member name -> its *current* daemon object (respawns replace
        #: the entry; retirement removes it).
        self.pool: Dict[str, CommitDaemon] = {}
        #: Every daemon object this supervisor ever created, in creation
        #: order — the commit-log/daemon-seconds accounting surface.
        self.all_daemons: List[CommitDaemon] = []
        self._next_index = 0
        self._calm = 0
        self._events = account.telemetry.events
        self._hist_marks: Dict[int, Tuple[int, float]] = {}
        label = f"supervisor-{account.telemetry.instance_id('supervisor')}"
        metrics = account.telemetry.metrics
        metrics.gauge_fn("supervisor.pool_size", lambda: len(self.pool),
                         supervisor=label)
        metrics.gauge_fn(
            "supervisor.target_window_s",
            lambda: self.gateway.window_s if self.gateway is not None else 0.0,
            supervisor=label,
        )

    # -- pool membership ------------------------------------------------------

    def _new_daemon(self) -> CommitDaemon:
        daemon = self.daemon_factory()
        if self.config.visibility_timeout_s is not None:
            daemon.set_visibility_timeout(self.config.visibility_timeout_s)
        self.all_daemons.append(daemon)
        return daemon

    def _spawn_member(self, now: float) -> str:
        name = f"{self.name_prefix}-{self._next_index}"
        self._next_index += 1
        daemon = self._new_daemon()
        self.pool[name] = daemon
        self.kernel.spawn(
            daemon.process(poll_interval=self.config.poll_interval_s),
            name=name,
            daemon=True,
        )
        schedule = self.account.faults.schedule

        def respawn_member(name=name):
            # Called by the kernel the moment an incarnation dies; the
            # policy's log already holds this respawn's backoff delay.
            policy = schedule.respawns.get(name)
            if policy is not None and policy.log:
                record = policy.log[-1]
                self._events.emit(
                    "supervisor.backoff",
                    record.died_at,
                    target=name,
                    delay_s=record.delay_s,
                    respawn_index=policy.respawns - 1,
                )
            replacement = self._new_daemon()
            self.pool[name] = replacement
            return replacement.process(
                poll_interval=self.config.poll_interval_s
            )

        schedule.respawn(
            name,
            respawn_member,
            delay_s=(
                self.config.respawn_base_delay_s
                if self.config.respawn_base_delay_s is not None
                else 1.0
            ),
            base_delay_s=self.config.respawn_base_delay_s,
            multiplier=self.config.respawn_multiplier,
            max_delay_s=self.config.respawn_max_delay_s,
        )
        return name

    def _retire_member(self, now: float) -> str:
        # Retire the youngest member: deregister its respawn policy so
        # the name stays down, then let the daemon drain gracefully.
        name = sorted(
            self.pool, key=lambda n: int(n.rsplit("-", 1)[1])
        )[-1]
        daemon = self.pool.pop(name)
        self.account.faults.schedule.respawns.pop(name, None)
        daemon.request_stop()
        return name

    def start(self, initial: Optional[int] = None) -> List[str]:
        """Provision the initial pool (default: ``min_daemons``)."""
        count = self.config.min_daemons if initial is None else initial
        if not self.config.min_daemons <= count <= self.config.max_daemons:
            raise ValueError(
                f"initial pool {count} outside "
                f"[{self.config.min_daemons}, {self.config.max_daemons}]"
            )
        now = self.account.now
        names = [self._spawn_member(now) for _ in range(count)]
        return names

    # -- observation ----------------------------------------------------------

    def _windowed_lag(self) -> Tuple[int, float]:
        """Commits and mean commit lag observed since the previous tick,
        pooled over every ``daemon.commit_lag_s`` histogram (count/sum
        watermarks make the cumulative histograms windowed)."""
        commits = 0
        lag_sum = 0.0
        for hist in self.account.telemetry.metrics.histograms_named(
            "daemon.commit_lag_s"
        ):
            prev_count, prev_sum = self._hist_marks.get(id(hist), (0, 0.0))
            commits += hist.count - prev_count
            lag_sum += hist.sum - prev_sum
            self._hist_marks[id(hist)] = (hist.count, hist.sum)
        mean = lag_sum / commits if commits else 0.0
        return commits, mean

    def _pool_pending(self) -> int:
        return sum(len(d.pending_transactions()) for d in self.pool.values())

    # -- the control loop ------------------------------------------------------

    def control_tick(self, now: float) -> None:
        """One observe-decide-act pass (exposed for unit tests)."""
        config = self.config
        depth = self.account.sqs.pending_count(self.queue_url, now=now)
        _commits, lag_mean = self._windowed_lag()

        target = max(
            config.min_daemons,
            min(
                config.max_daemons,
                math.ceil(depth / config.backlog_per_daemon),
            ),
        )
        if target > len(self.pool):
            added = [
                self._spawn_member(now)
                for _ in range(target - len(self.pool))
            ]
            self._calm = 0
            self._events.emit(
                "supervisor.scale_up",
                now,
                depth=depth,
                target=target,
                pool=len(self.pool),
                added=",".join(added),
            )

        quiet = (
            depth == 0
            and self._pool_pending() == 0
            and lag_mean <= config.lag_high_s
        )
        if quiet and len(self.pool) > config.min_daemons:
            self._calm += 1
            if self._calm >= config.calm_ticks:
                retired = self._retire_member(now)
                self._calm = 0
                self._events.emit(
                    "supervisor.scale_down",
                    now,
                    depth=depth,
                    pool=len(self.pool),
                    retired=retired,
                )
        elif not quiet:
            self._calm = 0

        if self.gateway is not None:
            pending = self.gateway.pending_count()
            window = self.gateway.window_s
            if (
                pending > config.window_high_pending
                and window > config.min_window_s
            ):
                new_window = max(config.min_window_s, window / 2.0)
            elif (
                pending <= config.window_low_pending
                and window < config.max_window_s
            ):
                new_window = min(config.max_window_s, window * 2.0)
            else:
                new_window = window
            if new_window != window:
                self.gateway.set_window(new_window)
                self._events.emit(
                    "supervisor.window_adjust",
                    now,
                    pending=pending,
                    window_s=new_window,
                    previous_s=window,
                )

    def process(self):
        """The supervisor as a kernel process.  Spawn with
        ``daemon=True`` — it ticks forever; the experiment's run horizon
        stops it."""
        while True:
            yield Delay(self.config.control_interval_s)
            self.control_tick(self.account.now)
