"""Shard routing for provenance items.

The paper evaluates one client against one SimpleDB domain and notes the
per-domain limits that bound its sustained ingest (§5, Table 2): the
service's indexing pipeline is a *per-domain* resource, so a multi-tenant
deployment spreads items across N domains and writes to them
independently.  :class:`ShardRouter` implements the routing: a stable
hash of the object uuid picks the domain, so every version of an object
lands in the same shard (Q2's ``itemName() like 'uuid_%'`` lookup stays
local to one domain) and the mapping is identical across processes and
runs — no rendezvous state to persist.

With one shard the router degenerates to the paper's configuration: the
single legacy domain name, byte-identical request streams.
"""

from __future__ import annotations

import zlib
from typing import List, Tuple

from repro.core.protocol_base import PROVENANCE_DOMAIN, DomainRouter
from repro.service.bloom import DEFAULT_HASHES, DEFAULT_SIZE_BITS, ShardBloomIndex


class ShardRouter(DomainRouter):
    """Spreads provenance items over N SimpleDB domains by uuid hash.

    Beside the uuid→domain mapping the router maintains a per-shard
    :class:`~repro.service.bloom.ShardBloomIndex` over every item name
    and attribute-value pair written through the routed pipeline
    (:meth:`note_indexed_items`, called by ``build_routed_requests``).
    The sharded query engine consults it to skip shards that provably
    cannot match an attribute-rooted lookup — sound as long as every
    write to the shard domains goes through the router, which is every
    production write path (gateway, P2 flush, commit daemon)."""

    def __init__(
        self,
        base_domain: str = PROVENANCE_DOMAIN,
        shards: int = 1,
        bloom_size_bits: int = DEFAULT_SIZE_BITS,
        bloom_hashes: int = DEFAULT_HASHES,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        super().__init__(base_domain)
        self.base_domain = base_domain
        self.shards = shards
        if shards == 1:
            # Degenerate case keeps the paper's domain name so a 1-shard
            # deployment is indistinguishable from the unsharded system.
            self._shard_domains: Tuple[str, ...] = (base_domain,)
        else:
            self._shard_domains = tuple(
                f"{base_domain}-{index}" for index in range(shards)
            )
        self.bloom = ShardBloomIndex(
            self._shard_domains, size_bits=bloom_size_bits, hashes=bloom_hashes
        )

    def note_indexed_items(
        self, domain: str, items: List[Tuple[str, List[Tuple[str, str]]]]
    ) -> None:
        self.bloom.note_items(domain, items)

    @property
    def domains(self) -> Tuple[str, ...]:
        return self._shard_domains

    def shard_of(self, uuid: str) -> int:
        """Stable shard index of a uuid (CRC32, not Python's salted
        ``hash`` — the mapping must survive process restarts)."""
        return zlib.crc32(uuid.encode("utf-8")) % self.shards

    def domain_for(self, uuid: str) -> str:
        return self._shard_domains[self.shard_of(uuid)]
