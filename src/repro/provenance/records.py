"""Provenance records.

A *record* is one fact about one node: an attribute value or a dependency
cross-reference.  PASS streams records to its storage backend; the cloud
protocols chunk, batch, and store them.  Record byte sizes (the wire
encoding in :mod:`repro.provenance.serialization`) are what Tables 2 and 3
of the paper count.

A :class:`ProvenanceBundle` is the unit PA-S3fs caches in memory and
flushes on close: all records describing one object, grouped by version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.provenance.graph import NodeRef

#: A record value: free text or a reference to another node.
Value = Union[str, NodeRef]


@dataclass(frozen=True)
class ProvenanceRecord:
    """One provenance fact: ``subject.attribute = value``."""

    subject: NodeRef
    attribute: str
    value: Value

    @property
    def is_xref(self) -> bool:
        """Whether the value references another node (a dependency)."""
        return isinstance(self.value, NodeRef)

    def value_text(self) -> str:
        """The value as stored text (xrefs use the ``uuid_version`` form)."""
        return str(self.value)

    def wire_size(self) -> int:
        """Bytes this record occupies in the wire encoding (one line:
        subject, attribute, kind, value, three pipes, and a newline)."""
        return (
            len(str(self.subject)) + len(self.attribute) + len(self.value_text()) + 5
        )


@dataclass
class ProvenanceBundle:
    """All pending provenance for one object, grouped by version.

    Attributes:
        uuid: the object's uuid.
        records: records in arrival order; every record's subject has the
            bundle's uuid.
    """

    uuid: str
    records: List[ProvenanceRecord] = field(default_factory=list)

    def add(self, record: ProvenanceRecord) -> None:
        if record.subject.uuid != self.uuid:
            raise ValueError(
                f"record subject {record.subject} does not belong to bundle "
                f"{self.uuid}"
            )
        self.records.append(record)

    def by_version(self) -> Dict[int, List[ProvenanceRecord]]:
        """Records grouped by subject version (the paper stores one
        SimpleDB item per version; §4.3.2)."""
        grouped: Dict[int, List[ProvenanceRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.subject.version, []).append(record)
        return grouped

    def versions(self) -> List[int]:
        return sorted(self.by_version())

    def xrefs(self) -> List[NodeRef]:
        """All node references this bundle's records point at (the
        ancestors that multi-object causal ordering must persist first)."""
        return [r.value for r in self.records if isinstance(r.value, NodeRef)]

    def wire_size(self) -> int:
        """Total encoded bytes of the bundle."""
        return sum(record.wire_size() for record in self.records)

    def is_empty(self) -> bool:
        return not self.records

    def __len__(self) -> int:
        return len(self.records)


def merge_bundles(bundles: Iterable[ProvenanceBundle]) -> Dict[str, ProvenanceBundle]:
    """Merge bundles by uuid, preserving record order within each uuid."""
    merged: Dict[str, ProvenanceBundle] = {}
    for bundle in bundles:
        target = merged.setdefault(bundle.uuid, ProvenanceBundle(uuid=bundle.uuid))
        for record in bundle.records:
            target.add(record)
    return merged
