"""Wire encoding of provenance records.

One record per line::

    <subject>|<attribute>|<kind>|<value>

where ``kind`` is ``s`` for string values and ``x`` for node references.
Pipes and backslashes inside values are escaped.  The encoding is stable:
``decode(encode(records)) == records`` for every record, a property the
test suite checks with hypothesis.

P1 stores whole encoded bundles as S3 provenance objects, appending new
lines on each flush; P3 splits the encoded stream into 8 KB SQS messages.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.provenance.graph import NodeRef
from repro.provenance.records import ProvenanceRecord


def _escape(text: str) -> str:
    return (
        text.replace("\\", "\\\\")
        .replace("|", "\\p")
        .replace("\n", "\\n")
        .replace("\r", "\\r")
    )


def _unescape(text: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            if nxt == "\\":
                out.append("\\")
            elif nxt == "p":
                out.append("|")
            elif nxt == "n":
                out.append("\n")
            elif nxt == "r":
                out.append("\r")
            else:
                out.append(nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def encode_record(record: ProvenanceRecord) -> str:
    """Encode one record as a single line (no trailing newline)."""
    kind = "x" if record.is_xref else "s"
    return "|".join(
        (
            _escape(str(record.subject)),
            _escape(record.attribute),
            kind,
            _escape(record.value_text()),
        )
    )


def decode_record(line: str) -> ProvenanceRecord:
    """Inverse of :func:`encode_record`."""
    parts = _split_pipes(line)
    if len(parts) != 4:
        raise ValueError(f"malformed record line: {line!r}")
    subject_text, attribute, kind, value_text = parts
    subject = NodeRef.parse(_unescape(subject_text))
    attribute = _unescape(attribute)
    raw_value = _unescape(value_text)
    if kind == "x":
        return ProvenanceRecord(subject, attribute, NodeRef.parse(raw_value))
    if kind == "s":
        return ProvenanceRecord(subject, attribute, raw_value)
    raise ValueError(f"unknown value kind {kind!r} in line {line!r}")


def _split_pipes(line: str) -> List[str]:
    """Split on unescaped pipes."""
    parts: List[str] = []
    current: List[str] = []
    i = 0
    while i < len(line):
        ch = line[i]
        if ch == "\\" and i + 1 < len(line):
            current.append(ch)
            current.append(line[i + 1])
            i += 2
            continue
        if ch == "|":
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
        i += 1
    parts.append("".join(current))
    return parts


def encode_records(records: Sequence[ProvenanceRecord]) -> str:
    """Encode records, one per line, with a trailing newline."""
    if not records:
        return ""
    return "\n".join(encode_record(r) for r in records) + "\n"


def decode_records(text: str) -> List[ProvenanceRecord]:
    """Decode an encoded block back into records.

    Splits on ``\\n`` only (not ``splitlines``): escaped values may
    contain exotic Unicode line separators that are data, not structure.
    """
    return [decode_record(line) for line in text.split("\n") if line]


def chunk_encoded(
    records: Sequence[ProvenanceRecord], chunk_bytes: int
) -> List[str]:
    """Split records into encoded chunks each at most ``chunk_bytes``.

    Records are never split across chunks; a single record longer than
    ``chunk_bytes`` raises (P3 callers must spill oversized values to S3
    before chunking).
    """
    chunks: List[str] = []
    current: List[str] = []
    current_size = 0
    for record in records:
        line = encode_record(record) + "\n"
        size = len(line.encode("utf-8"))
        if size > chunk_bytes:
            raise ValueError(
                f"record of {size} bytes exceeds chunk limit {chunk_bytes}; "
                "spill the value to S3 first"
            )
        if current and current_size + size > chunk_bytes:
            chunks.append("".join(current))
            current = []
            current_size = 0
        current.append(line)
        current_size += size
    if current:
        chunks.append("".join(current))
    return chunks
