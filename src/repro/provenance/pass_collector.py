"""The PASS collector.

Consumes a :class:`~repro.provenance.syscalls.SyscallTrace` and maintains
the provenance DAG exactly the way the PASS kernel does (§2.1 of the
paper): a ``read`` adds a process→file dependency, a ``write`` adds a
file→process dependency (transitively linking outputs to inputs), and
causality-based versioning keeps the graph acyclic.

For every event the collector returns zero or more *intents* — the things
PA-S3fs must do against the cloud:

- :class:`ReadIntent` — the application read a file (a GET on cache miss),
- :class:`FlushIntent` — a close/flush: upload data + pending provenance,
- :class:`DeleteIntent` — an unlink: delete the data, keep the provenance,
- :class:`ComputeIntent` — pure application time to charge to the clock.

The collector also keeps per-object *pending bundles*: provenance records
generated but not yet flushed to the cloud.  PA-S3fs drains them (with
their ancestor closure, for multi-object causal ordering) at flush time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Union

from repro.cloud.blob import Blob
from repro.errors import TraceError
from repro.provenance.graph import EdgeType, NodeRef, NodeType, ProvenanceGraph
from repro.provenance.records import ProvenanceBundle, ProvenanceRecord
from repro.provenance.syscalls import (
    CloseEvent,
    ComputeEvent,
    Event,
    ExitEvent,
    FlushEvent,
    ReadEvent,
    SpawnEvent,
    SyscallTrace,
    UnlinkEvent,
    WriteEvent,
)


@dataclass(frozen=True)
class ReadIntent:
    """Application read: PA-S3fs serves it from cache or via GET."""

    path: str
    uuid: str
    size: int


@dataclass(frozen=True)
class FlushIntent:
    """Close/flush: upload this object's data and pending provenance."""

    path: str
    uuid: str
    ref: NodeRef
    blob: Blob


@dataclass(frozen=True)
class DeleteIntent:
    """Unlink: remove the data object; provenance must survive."""

    path: str
    uuid: str


@dataclass(frozen=True)
class ComputeIntent:
    """Pure application compute time."""

    seconds: float
    memory_bound: bool


Intent = Union[ReadIntent, FlushIntent, DeleteIntent, ComputeIntent]


class PassCollector:
    """Builds provenance from syscall events and stages it for flushing."""

    def __init__(self) -> None:
        self.graph = ProvenanceGraph()
        from repro.provenance.versioning import VersionManager

        self.versions = VersionManager()
        self._pending: Dict[str, ProvenanceBundle] = {}
        self._path_to_uuid: Dict[str, str] = {}
        self._uuid_to_path: Dict[str, str] = {}
        self._pid_to_uuid: Dict[int, str] = {}
        self._file_sizes: Dict[str, int] = {}
        self._uuid_counter = 0
        self._start_clock = 0.0

    # -- identity ------------------------------------------------------------

    def _new_uuid(self, prefix: str) -> str:
        self._uuid_counter += 1
        return f"{prefix}-{self._uuid_counter:06d}"

    def file_uuid(self, path: str) -> str:
        """Stable uuid for a path (created on first touch)."""
        uuid = self._path_to_uuid.get(path)
        if uuid is None:
            uuid = self._new_uuid("f")
            self._path_to_uuid[path] = uuid
            self._uuid_to_path[uuid] = path
        return uuid

    def process_uuid(self, pid: int) -> str:
        try:
            return self._pid_to_uuid[pid]
        except KeyError:
            raise TraceError(f"event references unspawned pid {pid}") from None

    def path_of(self, uuid: str) -> Optional[str]:
        return self._uuid_to_path.get(uuid)

    def file_size(self, path: str) -> Optional[int]:
        """Last written size of a path, or ``None`` if never written."""
        return self._file_sizes.get(path)

    def is_file_uuid(self, uuid: str) -> bool:
        return uuid in self._uuid_to_path

    # -- pending bundle management ----------------------------------------------

    def _record(self, record: ProvenanceRecord) -> None:
        bundle = self._pending.setdefault(
            record.subject.uuid, ProvenanceBundle(uuid=record.subject.uuid)
        )
        bundle.add(record)

    def pending_bundle(self, uuid: str) -> Optional[ProvenanceBundle]:
        """The not-yet-flushed records for one object, if any."""
        return self._pending.get(uuid)

    def pending_uuids(self) -> List[str]:
        return sorted(self._pending)

    def pop_pending_closure(self, uuid: str) -> List[ProvenanceBundle]:
        """Remove and return the pending bundles of ``uuid`` and every
        pending ancestor it references, ordered ancestors-first.

        This is the unit of work a protocol flush must persist to keep
        multi-object causal ordering: an object's ancestors (and their
        provenance) reach the cloud before (or atomically with) the object
        itself (§3, §4.3).
        """
        ordered: List[ProvenanceBundle] = []
        visiting: Set[str] = set()

        def visit(current: str) -> None:
            if current in visiting:
                return
            visiting.add(current)
            bundle = self._pending.get(current)
            if bundle is None:
                return
            for xref in bundle.xrefs():
                if xref.uuid != current:
                    visit(xref.uuid)
            ordered.append(bundle)

        visit(uuid)
        for bundle in ordered:
            self._pending.pop(bundle.uuid, None)
        return ordered

    # -- node/edge creation -------------------------------------------------------

    def _ensure_file_node(self, path: str) -> NodeRef:
        uuid = self.file_uuid(path)
        ref = self.versions.current(uuid)
        if not self.graph.has_node(ref):
            self.graph.add_node(ref, NodeType.FILE, name=path)
            self._record(ProvenanceRecord(ref, "type", "file"))
            self._record(ProvenanceRecord(ref, "name", path))
        return ref

    def _new_file_version(self, path: str, previous: NodeRef, ref: NodeRef) -> None:
        self.graph.add_node(ref, NodeType.FILE, name=path)
        self.graph.add_edge(ref, previous, EdgeType.VERSION)
        self._record(ProvenanceRecord(ref, "type", "file"))
        self._record(ProvenanceRecord(ref, "name", path))
        self._record(ProvenanceRecord(ref, "version-of", previous))

    def _new_process_version(self, name: str, previous: NodeRef, ref: NodeRef) -> None:
        self.graph.add_node(ref, NodeType.PROC, name=name)
        self.graph.add_edge(ref, previous, EdgeType.VERSION)
        self._record(ProvenanceRecord(ref, "type", "proc"))
        self._record(ProvenanceRecord(ref, "name", name))
        self._record(ProvenanceRecord(ref, "version-of", previous))

    # -- event handlers ---------------------------------------------------------------

    def feed(self, event: Event) -> List[Intent]:
        """Process one event; returns the intents PA-S3fs must act on."""
        if isinstance(event, SpawnEvent):
            return self._on_spawn(event)
        if isinstance(event, ReadEvent):
            return self._on_read(event)
        if isinstance(event, WriteEvent):
            return self._on_write(event)
        if isinstance(event, (CloseEvent, FlushEvent)):
            return self._on_close(event)
        if isinstance(event, UnlinkEvent):
            return self._on_unlink(event)
        if isinstance(event, ComputeEvent):
            return [ComputeIntent(event.seconds, event.memory_bound)]
        if isinstance(event, ExitEvent):
            return []
        raise TraceError(f"unknown event type {type(event).__name__}")

    def feed_trace(self, trace: SyscallTrace) -> List[Intent]:
        """Process a whole trace; returns all intents in order."""
        intents: List[Intent] = []
        for event in trace:
            intents.extend(self.feed(event))
        return intents

    def _on_spawn(self, event: SpawnEvent) -> List[Intent]:
        uuid = self._new_uuid("p")
        self._pid_to_uuid[event.pid] = uuid
        ref = self.versions.current(uuid)
        self.graph.add_node(ref, NodeType.PROC, name=event.name)
        self._record(ProvenanceRecord(ref, "type", "proc"))
        self._record(ProvenanceRecord(ref, "name", event.name))
        self._record(ProvenanceRecord(ref, "pid", str(event.pid)))
        if event.argv:
            self._record(ProvenanceRecord(ref, "argv", " ".join(event.argv)))
        for key, value in event.env:
            self._record(ProvenanceRecord(ref, "env", f"{key}={value}"))
        if event.parent_pid is not None and event.parent_pid in self._pid_to_uuid:
            parent_uuid = self._pid_to_uuid[event.parent_pid]
            parent_ref = self.versions.current(parent_uuid)
            self.graph.add_edge(ref, parent_ref, EdgeType.FORKPARENT)
            self._record(ProvenanceRecord(ref, "forkparent", parent_ref))
        if event.exec_path is not None:
            exec_ref = self._ensure_file_node(event.exec_path)
            self.versions.on_read(uuid, self.file_uuid(event.exec_path))
            self.graph.add_edge(ref, exec_ref, EdgeType.EXEC)
            self._record(ProvenanceRecord(ref, "exec", exec_ref))
        return []

    def _on_read(self, event: ReadEvent) -> List[Intent]:
        proc_uuid = self.process_uuid(event.pid)
        file_ref = self._ensure_file_node(event.path)
        file_uuid = self.file_uuid(event.path)

        # Read-after-write: re-version the process before recording the
        # dependency, so no cycle can form through its earlier outputs.
        taint = self.versions.on_reader_taint(proc_uuid)
        proc_ref = taint.ref
        if taint.new_version:
            assert taint.previous is not None
            self._new_process_version(
                self.graph.node(taint.previous).name, taint.previous, proc_ref
            )

        decision = self.versions.on_read(proc_uuid, file_uuid)
        self.graph.add_edge(proc_ref, decision.ref, EdgeType.INPUT)
        self._record(ProvenanceRecord(proc_ref, "input", decision.ref))
        size = event.size or self._file_sizes.get(event.path, 0)
        return [ReadIntent(event.path, file_uuid, size)]

    def _on_write(self, event: WriteEvent) -> List[Intent]:
        proc_uuid = self.process_uuid(event.pid)
        proc_ref = self.versions.current(proc_uuid)
        if not self.graph.has_node(proc_ref):  # pragma: no cover - defensive
            raise TraceError(f"process node {proc_ref} missing")
        self._ensure_file_node(event.path)
        file_uuid = self.file_uuid(event.path)

        decision = self.versions.on_write(proc_uuid, file_uuid)
        if decision.new_version:
            assert decision.previous is not None
            self._new_file_version(event.path, decision.previous, decision.ref)
        file_ref = decision.ref
        # Avoid duplicate input edges for repeated writes into one version.
        already = any(
            e.dst == proc_ref and e.edge_type is EdgeType.INPUT
            for e in self.graph.out_edges(file_ref)
        )
        if not already:
            self.graph.add_edge(file_ref, proc_ref, EdgeType.INPUT)
            self._record(ProvenanceRecord(file_ref, "input", proc_ref))
        self.versions.mark_process_wrote(proc_uuid)
        self._file_sizes[event.path] = event.size
        return []

    def _on_close(self, event) -> List[Intent]:
        uuid = self._path_to_uuid.get(event.path)
        if uuid is None:
            # Close of a file that was only read: nothing to upload.
            return []
        ref = self.versions.current(uuid)
        size = self._file_sizes.get(event.path, 0)
        blob = Blob.synthetic(size, f"{event.path}@{ref.version}")
        # Durability freezes the version: later writes start version v+1.
        self.versions.freeze(uuid)
        return [FlushIntent(event.path, uuid, ref, blob)]

    def _on_unlink(self, event: UnlinkEvent) -> List[Intent]:
        uuid = self._path_to_uuid.get(event.path)
        if uuid is None:
            return []
        ref = self.versions.current(uuid)
        if self.graph.has_node(ref):
            self._record(ProvenanceRecord(ref, "unlinked", "true"))
        self._file_sizes.pop(event.path, None)
        return [DeleteIntent(event.path, uuid)]

    # -- statistics ------------------------------------------------------------------

    def total_pending_bytes(self) -> int:
        return sum(bundle.wire_size() for bundle in self._pending.values())

    def all_records(self) -> List[ProvenanceRecord]:
        """Every record still pending, ancestors unordered (used by the
        microbenchmark tool, which captures provenance offline and then
        replays the upload per protocol)."""
        records: List[ProvenanceRecord] = []
        for uuid in sorted(self._pending):
            records.extend(self._pending[uuid].records)
        return records
