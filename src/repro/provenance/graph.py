"""The provenance DAG.

Provenance is a directed acyclic graph (§2 of the paper): nodes are
*versions* of objects (files, processes, pipes), and an edge ``A -> B``
records that A depends on — was derived from — B.  Each version of an
object is a distinct node; the graph is acyclic because an object cannot
be its own ancestor.

Acyclicity is enforced on every edge insertion.  The check is cheap in
the common case: nodes carry a creation index, and an edge pointing from
a newer node to an older one can never close a cycle, so the full
reachability search only runs for the rare "forward" edges.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import CycleError, UnknownNodeError


class NodeType(enum.Enum):
    """Kinds of provenance objects PASS tracks."""

    FILE = "file"
    PROC = "proc"
    PIPE = "pipe"


class EdgeType(enum.Enum):
    """Dependency kinds.

    ``INPUT`` — the node was derived from the target (file read by a
    process, file written by a process, ...).
    ``VERSION`` — the node is the next version of the target.
    ``FORKPARENT`` — a process's parent process.
    ``EXEC`` — the executable file a process ran.
    """

    INPUT = "input"
    VERSION = "version"
    FORKPARENT = "forkparent"
    EXEC = "exec"


@dataclass(frozen=True, order=True)
class NodeRef:
    """Identity of one node: the object's uuid plus its version.

    The string form, ``uuid_version``, matches the paper's SimpleDB item
    naming (§4.3.2: object ``foo`` with uuid ``uuid1`` at version 2 is
    stored under item name ``uuid1_2``).
    """

    uuid: str
    version: int

    def __str__(self) -> str:
        return f"{self.uuid}_{self.version}"

    @staticmethod
    def parse(text: str) -> "NodeRef":
        """Inverse of ``str()``: split on the final underscore."""
        uuid, sep, version = text.rpartition("_")
        if not sep or not uuid:
            raise ValueError(f"malformed node reference {text!r}")
        return NodeRef(uuid, int(version))


@dataclass
class ProvenanceNode:
    """One object version with its attributes."""

    ref: NodeRef
    node_type: NodeType
    name: str = ""
    #: Free-form attributes (argv, env, pid, ...); values are strings.
    attributes: Dict[str, List[str]] = field(default_factory=dict)
    #: Monotonic creation index, used for the fast acyclicity check.
    creation_index: int = 0

    def add_attribute(self, key: str, value: str) -> None:
        self.attributes.setdefault(key, []).append(value)


@dataclass(frozen=True)
class Edge:
    """A dependency: ``src`` was derived from ``dst``."""

    src: NodeRef
    dst: NodeRef
    edge_type: EdgeType


class ProvenanceGraph:
    """A provenance DAG with enforced acyclicity.

    The graph is append-only: provenance is never rewritten, matching the
    data-independent-persistence property (§3).
    """

    def __init__(self) -> None:
        self._nodes: Dict[NodeRef, ProvenanceNode] = {}
        self._out: Dict[NodeRef, List[Edge]] = {}
        self._in: Dict[NodeRef, List[Edge]] = {}
        #: Pearce-Kelly topological order: every edge points at a
        #: lower-ordered node.
        self._order: Dict[NodeRef, int] = {}
        self._counter = 0

    # -- construction ------------------------------------------------------

    def add_node(
        self,
        ref: NodeRef,
        node_type: NodeType,
        name: str = "",
        attributes: Optional[Dict[str, List[str]]] = None,
    ) -> ProvenanceNode:
        """Add a node; re-adding an existing ref returns the original."""
        existing = self._nodes.get(ref)
        if existing is not None:
            return existing
        node = ProvenanceNode(
            ref=ref,
            node_type=node_type,
            name=name,
            attributes={k: list(v) for k, v in (attributes or {}).items()},
            creation_index=self._counter,
        )
        self._counter += 1
        self._nodes[ref] = node
        self._out[ref] = []
        self._in[ref] = []
        self._order[ref] = node.creation_index
        return node

    def add_edge(self, src: NodeRef, dst: NodeRef, edge_type: EdgeType) -> Edge:
        """Record that ``src`` depends on ``dst``.

        Raises :class:`CycleError` if the edge would make ``src`` its own
        ancestor, and :class:`UnknownNodeError` for dangling endpoints.

        Acyclicity is maintained with the Pearce-Kelly incremental
        topological-order algorithm: the graph keeps an order in which
        every dependency points at a lower-ordered node; an edge that
        respects the order is accepted in O(1), and only order-violating
        edges trigger a bounded search of the affected region.
        """
        if src not in self._nodes:
            raise UnknownNodeError(f"unknown source node {src}")
        if dst not in self._nodes:
            raise UnknownNodeError(f"unknown target node {dst}")
        if src == dst:
            raise CycleError(f"self-dependency on {src}")
        if self._order[dst] >= self._order[src]:
            self._reorder_for_edge(src, dst)
        edge = Edge(src, dst, edge_type)
        self._out[src].append(edge)
        self._in[dst].append(edge)
        return edge

    def _reorder_for_edge(self, src: NodeRef, dst: NodeRef) -> None:
        """Restore the topological order for a violating edge src -> dst
        (``order[dst] >= order[src]``), or raise :class:`CycleError`."""
        lower, upper = self._order[src], self._order[dst]

        # Forward region: nodes reachable from dst via *dependent* edges
        # (in-edges), confined to order <= upper... we search the nodes
        # that depend on dst transitively with order < lower? Use the
        # classic formulation: delta_f = nodes reachable from dst along
        # dependency (out) edges with order >= lower; finding src there
        # means src is already an ancestor of dst -> cycle.
        delta_f: List[NodeRef] = []
        seen: Set[NodeRef] = {dst}
        stack = [dst]
        while stack:
            current = stack.pop()
            delta_f.append(current)
            for edge in self._out[current]:
                nxt = edge.dst
                if nxt == src:
                    raise CycleError(
                        f"edge {src} -> {dst} would create a cycle"
                    )
                if nxt not in seen and self._order[nxt] >= lower:
                    seen.add(nxt)
                    stack.append(nxt)

        # Backward region: nodes that transitively depend on src with
        # order <= upper.
        delta_b: List[NodeRef] = []
        seen_b: Set[NodeRef] = {src}
        stack = [src]
        while stack:
            current = stack.pop()
            delta_b.append(current)
            for edge in self._in[current]:
                nxt = edge.src
                if nxt not in seen_b and self._order[nxt] <= upper:
                    seen_b.add(nxt)
                    stack.append(nxt)

        # Reassign the affected orders: the forward region (dst and its
        # ancestors in range) must sit below the backward region (src and
        # its dependents in range).
        delta_f.sort(key=lambda n: self._order[n])
        delta_b.sort(key=lambda n: self._order[n])
        pool = sorted(self._order[n] for n in delta_f + delta_b)
        for position, node in enumerate(delta_f + delta_b):
            self._order[node] = pool[position]

    # -- access -------------------------------------------------------------

    def node(self, ref: NodeRef) -> ProvenanceNode:
        try:
            return self._nodes[ref]
        except KeyError:
            raise UnknownNodeError(f"unknown node {ref}") from None

    def has_node(self, ref: NodeRef) -> bool:
        return ref in self._nodes

    def nodes(self) -> Iterator[ProvenanceNode]:
        return iter(self._nodes.values())

    def edges(self) -> Iterator[Edge]:
        for edges in self._out.values():
            yield from edges

    def out_edges(self, ref: NodeRef) -> List[Edge]:
        """Dependencies of ``ref`` (its direct ancestors)."""
        if ref not in self._nodes:
            raise UnknownNodeError(f"unknown node {ref}")
        return list(self._out[ref])

    def in_edges(self, ref: NodeRef) -> List[Edge]:
        """Direct descendants of ``ref``."""
        if ref not in self._nodes:
            raise UnknownNodeError(f"unknown node {ref}")
        return list(self._in[ref])

    def __len__(self) -> int:
        return len(self._nodes)

    def edge_count(self) -> int:
        return sum(len(edges) for edges in self._out.values())

    # -- traversal ------------------------------------------------------------

    def ancestors(self, ref: NodeRef) -> Set[NodeRef]:
        """All transitive dependencies of ``ref`` (excluding itself)."""
        return self._closure(ref, self._out)

    def descendants(self, ref: NodeRef) -> Set[NodeRef]:
        """All transitive dependents of ``ref`` (excluding itself)."""
        return self._closure(ref, self._in)

    def _closure(
        self, ref: NodeRef, adjacency: Dict[NodeRef, List[Edge]]
    ) -> Set[NodeRef]:
        if ref not in self._nodes:
            raise UnknownNodeError(f"unknown node {ref}")
        seen: Set[NodeRef] = set()
        stack = [ref]
        forward = adjacency is self._out
        while stack:
            current = stack.pop()
            for edge in adjacency.get(current, ()):
                nxt = edge.dst if forward else edge.src
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def _reaches(self, start: NodeRef, goal: NodeRef) -> bool:
        """Whether ``goal`` is reachable from ``start`` along out-edges."""
        stack = [start]
        seen = {start}
        while stack:
            current = stack.pop()
            for edge in self._out.get(current, ()):
                if edge.dst == goal:
                    return True
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    stack.append(edge.dst)
        return False

    # -- analytics --------------------------------------------------------------

    def max_depth(self, include_versions: bool = True) -> int:
        """Length of the longest dependency path in the graph (the paper
        characterizes workloads by this: nightly ≈ 1, Blast ≈ 5,
        Challenge ≈ 11).

        With ``include_versions=False``, VERSION edges are skipped: the
        result is the *derivation* depth the paper quotes, independent of
        how many logical versions the freeze/thaw rules created.
        """
        depth: Dict[NodeRef, int] = {}

        order = sorted(self._nodes, key=lambda r: self._order[r])
        # The Pearce-Kelly order is topological (dependencies first), so a
        # single pass suffices; iterate to a fixed point anyway in case of
        # ties (the graph is a DAG; this terminates).
        changed = True
        while changed:
            changed = False
            for ref in order:
                best = 0
                for edge in self._out[ref]:
                    if not include_versions and edge.edge_type is EdgeType.VERSION:
                        continue
                    best = max(best, depth.get(edge.dst, 0) + 1)
                if depth.get(ref, 0) != best:
                    depth[ref] = best
                    changed = True
        return max(depth.values(), default=0)

    def versions_of(self, uuid: str) -> List[NodeRef]:
        """All version nodes of one object, sorted by version."""
        return sorted(
            (ref for ref in self._nodes if ref.uuid == uuid),
            key=lambda r: r.version,
        )

    def roots(self) -> List[NodeRef]:
        """Nodes with no dependencies (primary inputs)."""
        return [ref for ref in self._nodes if not self._out[ref]]
