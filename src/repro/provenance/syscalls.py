"""Simulated system-call traces.

The PASS kernel observes application system calls; our substitute is a
deterministic event trace that workload generators produce and the
collector consumes.  Events carry enough detail for PASS-grade
provenance: process identity and arguments, file paths, byte counts, and
pure compute intervals (which the evaluation charges as application time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union


@dataclass(frozen=True)
class SpawnEvent:
    """A process starts (fork+exec)."""

    pid: int
    name: str
    argv: Tuple[str, ...] = ()
    env: Tuple[Tuple[str, str], ...] = ()
    parent_pid: Optional[int] = None
    exec_path: Optional[str] = None


@dataclass(frozen=True)
class ReadEvent:
    """A process reads from a file."""

    pid: int
    path: str
    size: int = 0


@dataclass(frozen=True)
class WriteEvent:
    """A process writes to a file; ``size`` is the file size after the
    write (S3fs uploads whole objects, so the close-time size is what
    matters)."""

    pid: int
    path: str
    size: int


@dataclass(frozen=True)
class CloseEvent:
    """A process closes a file it had open for writing — the moment
    PA-S3fs pushes data + provenance to the cloud."""

    pid: int
    path: str


@dataclass(frozen=True)
class FlushEvent:
    """An explicit flush (fsync); same cloud behaviour as close, but the
    file stays open."""

    pid: int
    path: str


@dataclass(frozen=True)
class UnlinkEvent:
    """A file is deleted (exercises data-independent persistence)."""

    pid: int
    path: str


@dataclass(frozen=True)
class ExitEvent:
    """A process exits."""

    pid: int


@dataclass(frozen=True)
class ComputeEvent:
    """Pure application compute time.

    ``memory_bound`` marks phases whose runtime balloons under UML's
    512 MB guest (the paper's Blast observation: 650 s native vs 1322 s
    under UML)."""

    pid: int
    seconds: float
    memory_bound: bool = False


Event = Union[
    SpawnEvent,
    ReadEvent,
    WriteEvent,
    CloseEvent,
    FlushEvent,
    UnlinkEvent,
    ExitEvent,
    ComputeEvent,
]


@dataclass
class SyscallTrace:
    """An ordered event stream plus summary statistics."""

    events: List[Event] = field(default_factory=list)

    def append(self, event: Event) -> None:
        self.events.append(event)

    def extend(self, events: Iterable[Event]) -> None:
        self.events.extend(events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    # -- summary statistics -------------------------------------------------

    def total_compute_seconds(self) -> float:
        return sum(e.seconds for e in self.events if isinstance(e, ComputeEvent))

    def total_bytes_written(self) -> int:
        """Bytes of file content at close time, summed over closes/flushes."""
        sizes: dict = {}
        total = 0
        for event in self.events:
            if isinstance(event, WriteEvent):
                sizes[event.path] = event.size
            elif isinstance(event, (CloseEvent, FlushEvent)):
                total += sizes.get(event.path, 0)
        return total

    def file_paths(self) -> List[str]:
        paths = []
        seen = set()
        for event in self.events:
            path = getattr(event, "path", None)
            if path is not None and path not in seen:
                seen.add(path)
                paths.append(path)
        return paths


class TraceBuilder:
    """Fluent helper workload generators use to assemble traces."""

    def __init__(self) -> None:
        self.trace = SyscallTrace()
        self._next_pid = 1000

    def spawn(
        self,
        name: str,
        argv: Sequence[str] = (),
        env: Sequence[Tuple[str, str]] = (),
        parent_pid: Optional[int] = None,
        exec_path: Optional[str] = None,
    ) -> int:
        """Spawn a process; returns its pid."""
        pid = self._next_pid
        self._next_pid += 1
        self.trace.append(
            SpawnEvent(
                pid=pid,
                name=name,
                argv=tuple(argv),
                env=tuple(env),
                parent_pid=parent_pid,
                exec_path=exec_path,
            )
        )
        return pid

    def read(self, pid: int, path: str, size: int = 0) -> "TraceBuilder":
        self.trace.append(ReadEvent(pid, path, size))
        return self

    def write(self, pid: int, path: str, size: int) -> "TraceBuilder":
        self.trace.append(WriteEvent(pid, path, size))
        return self

    def close(self, pid: int, path: str) -> "TraceBuilder":
        self.trace.append(CloseEvent(pid, path))
        return self

    def flush(self, pid: int, path: str) -> "TraceBuilder":
        self.trace.append(FlushEvent(pid, path))
        return self

    def write_close(self, pid: int, path: str, size: int) -> "TraceBuilder":
        """Write then immediately close (the common output pattern)."""
        return self.write(pid, path, size).close(pid, path)

    def unlink(self, pid: int, path: str) -> "TraceBuilder":
        self.trace.append(UnlinkEvent(pid, path))
        return self

    def exit(self, pid: int) -> "TraceBuilder":
        self.trace.append(ExitEvent(pid))
        return self

    def compute(
        self, pid: int, seconds: float, memory_bound: bool = False
    ) -> "TraceBuilder":
        self.trace.append(ComputeEvent(pid, seconds, memory_bound))
        return self
