"""PASS substrate: provenance collection.

The paper uses PASS (Provenance-Aware Storage Systems) — a modified Linux
kernel that observes system calls — as its provenance *collection*
mechanism, and contributes the protocols that *store* the collected
provenance in the cloud.  This subpackage reimplements the collection
side:

- :mod:`repro.provenance.graph` — the provenance DAG (nodes are object
  versions, edges are dependencies; acyclic by construction),
- :mod:`repro.provenance.records` — provenance records and their wire
  sizes (these byte counts drive Tables 2 and 3),
- :mod:`repro.provenance.versioning` — causality-based versioning
  (cycle avoidance), after Muniswamy-Reddy & Holland, FAST '09,
- :mod:`repro.provenance.syscalls` — the simulated system-call trace
  model that stands in for the PASS kernel's interception layer,
- :mod:`repro.provenance.pass_collector` — turns a trace into provenance
  bundles ready for PA-S3fs to flush,
- :mod:`repro.provenance.serialization` — stable text encoding of
  records for cloud storage.
"""

from repro.provenance.graph import EdgeType, NodeRef, NodeType, ProvenanceGraph
from repro.provenance.pass_collector import FlushIntent, PassCollector
from repro.provenance.records import ProvenanceBundle, ProvenanceRecord
from repro.provenance.syscalls import (
    CloseEvent,
    ComputeEvent,
    FlushEvent,
    ReadEvent,
    SpawnEvent,
    SyscallTrace,
    UnlinkEvent,
    WriteEvent,
)
from repro.provenance.versioning import VersionManager

__all__ = [
    "CloseEvent",
    "ComputeEvent",
    "EdgeType",
    "FlushEvent",
    "FlushIntent",
    "NodeRef",
    "NodeType",
    "PassCollector",
    "ProvenanceBundle",
    "ProvenanceGraph",
    "ProvenanceRecord",
    "ReadEvent",
    "SpawnEvent",
    "SyscallTrace",
    "UnlinkEvent",
    "VersionManager",
    "WriteEvent",
]
