"""Causality-based versioning.

PASS carefully creates logical versions of objects so the provenance graph
stays acyclic even when multiple processes update the same files (§4.2 of
the paper, after Muniswamy-Reddy & Holland, *Causality-Based Versioning*,
FAST '09).

The rules implemented here are the classic freeze/thaw scheme:

- every object starts at version 0,
- a *read* freezes the reader-visible version: once anyone has observed a
  version, later writes must not mutate it in place,
- a *write* to a frozen version creates version ``v+1`` (with a VERSION
  edge to ``v``); writes by the same writer to an unfrozen version
  coalesce (no version explosion on sequential appends),
- a write by a *different* process than the current version's writer also
  creates a new version (distinct provenance: the two writes have
  different ancestries),
- a process that reads anything after having written must itself be
  re-versioned before the read is recorded — otherwise ``write(P→F);
  read(F→P)`` would put a cycle between P and F.

The manager only decides version numbers; the collector turns the
decisions into nodes and edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.provenance.graph import NodeRef


@dataclass
class _ObjectState:
    """Versioning state of one object."""

    version: int = 0
    frozen: bool = False
    #: uuid of the process that wrote the current version (None = untouched).
    writer: Optional[str] = None
    #: Whether the current version has received any write.
    written: bool = False


@dataclass
class VersionDecision:
    """Outcome of a read/write: the version to use, and whether a new
    version node (plus its VERSION edge) must be created."""

    ref: NodeRef
    new_version: bool
    previous: Optional[NodeRef] = None


class VersionManager:
    """Tracks current versions and applies the freeze/thaw rules."""

    def __init__(self) -> None:
        self._objects: Dict[str, _ObjectState] = {}

    def _state(self, uuid: str) -> _ObjectState:
        return self._objects.setdefault(uuid, _ObjectState())

    def current(self, uuid: str) -> NodeRef:
        """Current version ref of an object (version 0 if untouched)."""
        return NodeRef(uuid, self._state(uuid).version)

    def exists(self, uuid: str) -> bool:
        return uuid in self._objects

    def on_read(self, reader_uuid: str, target_uuid: str) -> VersionDecision:
        """A process (``reader_uuid``) reads ``target_uuid``.

        Freezes the target's current version and returns it; never creates
        a new target version.
        """
        state = self._state(target_uuid)
        state.frozen = True
        self._state(reader_uuid)  # materialize the reader
        return VersionDecision(NodeRef(target_uuid, state.version), new_version=False)

    def on_write(self, writer_uuid: str, target_uuid: str) -> VersionDecision:
        """A process (``writer_uuid``) writes ``target_uuid``.

        Returns the version the write lands in, creating a new version
        when the current one is frozen or owned by a different writer.
        """
        state = self._state(target_uuid)
        # A frozen version must never mutate — even a never-written one:
        # a reader that observed the (pre-existing) version 0 must not see
        # it replaced in place, or reader and writer would form a cycle.
        needs_new = state.frozen or (state.written and state.writer != writer_uuid)
        previous = NodeRef(target_uuid, state.version) if needs_new else None
        if needs_new:
            state.version += 1
            state.frozen = False
        state.written = True
        state.writer = writer_uuid
        return VersionDecision(
            NodeRef(target_uuid, state.version),
            new_version=needs_new,
            previous=previous,
        )

    def on_reader_taint(self, process_uuid: str) -> VersionDecision:
        """A process reads after having written: re-version the process so
        the read dependency lands on a fresh process node and no cycle can
        form through the process's earlier outputs."""
        state = self._state(process_uuid)
        if not state.written:
            return VersionDecision(
                NodeRef(process_uuid, state.version), new_version=False
            )
        previous = NodeRef(process_uuid, state.version)
        state.version += 1
        state.written = False
        state.frozen = False
        state.writer = None
        return VersionDecision(
            NodeRef(process_uuid, state.version), new_version=True, previous=previous
        )

    def freeze(self, uuid: str) -> None:
        """Freeze an object's current version because it was made durable
        (flushed/closed): a persisted version must not mutate in place, so
        the next write will create a new version.  PASS freezes on
        durability events as well as on reads."""
        state = self._state(uuid)
        if state.written:
            state.frozen = True

    def mark_process_wrote(self, process_uuid: str) -> None:
        """Record that a process produced output in its current version."""
        state = self._state(process_uuid)
        state.written = True
        state.writer = process_uuid

    def process_has_written(self, process_uuid: str) -> bool:
        return self._state(process_uuid).written

    def version_count(self, uuid: str) -> int:
        """Number of versions created so far (current version + 1)."""
        if uuid not in self._objects:
            return 0
        return self._objects[uuid].version + 1
