"""Benchmark harness.

One function per paper table/figure lives in
:mod:`repro.bench.experiments`; :mod:`repro.bench.harness` provides
repeat-and-aggregate plumbing and :mod:`repro.bench.reporting` renders
the paper-shaped text tables.  The ``benchmarks/`` directory wires these
into pytest-benchmark.
"""

from repro.bench.harness import Aggregate, aggregate, repeat_with_seeds
from repro.bench.reporting import render_series, render_table, write_bench_json

__all__ = [
    "Aggregate",
    "aggregate",
    "render_series",
    "render_table",
    "repeat_with_seeds",
    "write_bench_json",
]
