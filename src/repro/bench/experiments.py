"""One function per paper table/figure (§5).

Each function runs the experiment against the simulated cloud and returns
structured results; ``render()`` helpers produce the paper-shaped text.
The ``benchmarks/`` pytest files call these and print the renderings, so
``pytest benchmarks/ --benchmark-only`` regenerates every number.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cloud.account import CloudAccount
from repro.cloud.blob import Blob
from repro.cloud.profiles import (
    DEC09,
    EC2_ENV,
    LOCAL_ENV,
    SEP09,
    UML_ENV,
    PeriodProfile,
    SimulationProfile,
)
from repro.core import (
    PAS3fs,
    PlainS3fs,
    ProtocolP1,
    ProtocolP2,
    ProtocolP3,
    UploadMode,
)
from repro.core.detection import S3ProvenanceReader, SimpleDBProvenanceReader
from repro.core.pas3fs import RunResult, stage_inputs
from repro.core.properties import (
    PropertyMatrix,
    check_causal_ordering,
    check_data_coupling,
    check_efficient_query,
    check_persistence,
)
from repro.errors import ClientCrashError
from repro.provenance.graph import NodeRef
from repro.provenance.serialization import chunk_encoded, encode_records
from repro.provenance.syscalls import TraceBuilder
from repro.query.engine import (
    QueryStats,
    S3QueryEngine,
    ShardedSimpleDBQueryEngine,
    SimpleDBQueryEngine,
)
from repro.service.sharding import ShardRouter
from repro.workloads import (
    make_blast_workload,
    make_challenge_workload,
    make_linux_compile_records,
    make_nightly_workload,
    run_microbenchmark,
)
from repro.workloads.base import MOUNT, Workload
from repro.workloads.microbench import MicrobenchResult

from repro.bench.reporting import render_series, render_table

PROTOCOLS = {"p1": ProtocolP1, "p2": ProtocolP2, "p3": ProtocolP3}
CONFIGURATIONS = ("s3fs", "p1", "p2", "p3")


def _workload_by_name(name: str, scale: float = 1.0) -> Workload:
    """Build a named workload; ``scale`` < 1 shrinks it for quick runs."""
    if name == "blast":
        return make_blast_workload(
            jobs=max(2, int(28 * scale)),
            queries_per_job=max(20, int(600 * scale)),
        )
    if name == "nightly":
        return make_nightly_workload(nights=max(2, int(30 * scale)))
    if name == "challenge":
        return make_challenge_workload(sessions=max(2, int(25 * scale)))
    raise ValueError(f"unknown workload {name!r}")


def _run_workload(
    workload: Workload,
    configuration: str,
    profile: SimulationProfile,
    seed: int = 0,
    finalize: bool = True,
) -> Tuple[RunResult, CloudAccount]:
    """Run one workload under one configuration; returns the result and
    the account (for cost/property inspection)."""
    account = CloudAccount(profile=profile, seed=seed)
    if workload.staged_inputs:
        stage_inputs(account, "pass-data", workload.staged_inputs)
    if configuration == "s3fs":
        result = PlainS3fs(account).run(workload.trace)
        return result, account
    protocol = PROTOCOLS[configuration](account)
    fs = PAS3fs(account, protocol)
    result = fs.run(workload.trace)
    if finalize:
        fs.finalize()
    return result, account


# ==========================================================================
# Table 1 — properties comparison under crash injection
# ==========================================================================

def _property_trace() -> Workload:
    """A small two-stage pipeline whose second output's flush is the
    crash target.  The transform stage reads/writes in a loop so its
    provenance exceeds one 8 KB WAL message — P3's mid-log crash point
    must land inside a multi-packet transaction to be meaningful."""
    builder = TraceBuilder()
    gen = builder.spawn("generate", argv=["generate"], exec_path="/bin/generate")
    builder.read(gen, "/local/seed.dat", 1024)
    builder.write_close(gen, f"{MOUNT}exp/stage1.out", 200 * 1024)
    builder.exit(gen)
    xform = builder.spawn(
        "transform",
        argv=["transform", "--mode", "full", "--passes", "64"],
        env=(("TRANSFORM_OPTS", "x" * 512), ("WORKDIR", "/scratch/t")),
        exec_path="/bin/transform",
    )
    for cycle in range(64):
        builder.read(xform, f"{MOUNT}exp/stage1.out", 200 * 1024)
        builder.write(xform, f"{MOUNT}exp/stage2.out", (cycle + 1) * 1024)
    builder.close(xform, f"{MOUNT}exp/stage2.out")
    builder.exit(xform)
    return Workload(name="property-pipeline", trace=builder.trace)


@dataclass
class Table1Result:
    matrix: PropertyMatrix

    def render(self) -> str:
        return self.matrix.render()


def table1_properties(seed: int = 0) -> Table1Result:
    """Reproduce Table 1: crash each protocol mid-flush (between its
    provenance write and its data write, or mid-WAL for P3), let any
    recovery mechanism run, and check which properties survive.

    Expected outcome (the paper's Table 1): data-coupling fails for P1
    and P2 (the two writes are not atomic; the crash strands new
    provenance describing data that never arrives) and holds for P3 (the
    incomplete transaction is simply never committed); causal ordering
    and efficient query follow the paper's check marks.
    """
    matrix = PropertyMatrix()
    crash_points = {
        "p1": "p1.after_prov_put",
        "p2": "p2.after_prov_put",
        "p3": "p3.mid_log",
    }
    for name, protocol_cls in PROTOCOLS.items():
        workload = _property_trace()
        account = CloudAccount(seed=seed)
        protocol = protocol_cls(account, mode=UploadMode.CAUSAL)
        fs = PAS3fs(account, protocol)
        # Crash on the *second* file's flush so the first one (and the
        # full ancestor chain) is already persistent.
        account.faults.arm_crash(crash_points[name], skip=1)
        try:
            fs.run(workload.trace)
        except ClientCrashError:
            pass
        # The client is dead; whatever recovery exists runs elsewhere:
        # P3's commit daemon can run on another machine (§4.3.3).
        protocol.finalize()
        account.settle(120.0)

        if name == "p1":
            reader = S3ProvenanceReader(account, protocol.bucket)
        else:
            reader = SimpleDBProvenanceReader(
                account, protocol.domain, protocol.bucket
            )
        paths = [f"{MOUNT}exp/stage1.out", f"{MOUNT}exp/stage2.out"]
        expected = {path: fs.collector.file_uuid(path) for path in paths}
        coupling = check_data_coupling(
            account, protocol.bucket, reader, paths, expected_uuids=expected
        )
        ordering = check_causal_ordering(reader)
        efficient = check_efficient_query(protocol)
        matrix.set(name, "provenance-data-coupling", coupling.holds)
        matrix.set(name, "multi-object-causal-ordering", ordering.holds)
        matrix.set(name, "efficient-query", efficient.holds)
    return Table1Result(matrix=matrix)


# ==========================================================================
# Table 2 — time to upload 50 MB of provenance to each service
# ==========================================================================

@dataclass
class Table2Result:
    seconds: Dict[str, float]
    operations: Dict[str, int]
    paper: Dict[str, float] = field(
        default_factory=lambda: {"s3": 324.7, "simpledb": 537.1, "sqs": 36.2}
    )

    def render(self) -> str:
        rows = [
            (
                service,
                f"{self.seconds[service]:.1f}",
                f"{self.paper[service]:.1f}",
                self.operations[service],
            )
            for service in ("s3", "simpledb", "sqs")
        ]
        return render_table(
            ("Service", "Time (s)", "Paper (s)", "Requests"),
            rows,
            title="Table 2: upload 50 MB of Linux-compile provenance",
        )


def table2_service_throughput(
    target_bytes: int = 50 * 1024 * 1024,
    connections_s3: int = 150,
    connections_sdb: int = 40,
    connections_sqs: int = 150,
    seed: int = 42,
) -> Table2Result:
    """Reproduce Table 2: push the same provenance stream to S3 (one
    object per node), SimpleDB (one item per node-version, 25-item
    batches), and SQS (8 KB chunks), each at its best connection count."""
    records = make_linux_compile_records(target_bytes=target_bytes, seed=seed)

    by_uuid: Dict[str, list] = defaultdict(list)
    for record in records:
        by_uuid[record.subject.uuid].append(record)

    seconds: Dict[str, float] = {}
    operations: Dict[str, int] = {}

    account = CloudAccount(seed=seed)
    account.s3.create_bucket("bench")
    requests = [
        account.s3.put_request(
            "bench", f"prov/{uuid}", Blob.from_text(encode_records(records_))
        )
        for uuid, records_ in by_uuid.items()
    ]
    seconds["s3"] = account.scheduler.execute_batch(requests, connections_s3).makespan
    operations["s3"] = len(requests)

    account = CloudAccount(seed=seed)
    account.simpledb.create_domain("bench")
    items: Dict[str, list] = defaultdict(list)
    for record in records:
        items[str(record.subject)].append((record.attribute, record.value_text()))
    item_list = list(items.items())
    requests = [
        account.simpledb.batch_put_request("bench", item_list[i : i + 25])
        for i in range(0, len(item_list), 25)
    ]
    seconds["simpledb"] = account.scheduler.execute_batch(
        requests, connections_sdb
    ).makespan
    operations["simpledb"] = len(requests)

    account = CloudAccount(seed=seed)
    url = account.sqs.create_queue("bench")
    requests = [
        account.sqs.send_request(url, chunk) for chunk in chunk_encoded(records, 8192)
    ]
    seconds["sqs"] = account.scheduler.execute_batch(
        requests, connections_sqs
    ).makespan
    operations["sqs"] = len(requests)

    return Table2Result(seconds=seconds, operations=operations)


# ==========================================================================
# Figure 3 + Table 3 — the microbenchmark
# ==========================================================================

@dataclass
class Fig3Result:
    #: environment name -> configuration -> result
    results: Dict[str, Dict[str, MicrobenchResult]]
    #: environment name -> final metrics snapshot of the P3 upload run
    #: (billing gauges and service counters for the headline protocol).
    telemetry: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def render(self) -> str:
        parts = []
        for env_name, per_config in self.results.items():
            base = per_config["s3fs"]
            rows = []
            for config in CONFIGURATIONS:
                result = per_config[config]
                overhead = (
                    f"+{100 * result.overhead_vs(base):.1f}%"
                    if config != "s3fs"
                    else "-"
                )
                rows.append(
                    (
                        config,
                        f"{result.elapsed_seconds:.1f}",
                        overhead,
                        result.operations,
                        f"{result.mb_transmitted:.2f}",
                    )
                )
            parts.append(
                render_table(
                    ("Config", "Time (s)", "Overhead", "Ops", "MB sent"),
                    rows,
                    title=f"Figure 3 ({env_name}): Blast upload microbenchmark",
                )
            )
            parts.append(
                render_series(
                    f"Figure 3 bars ({env_name})",
                    list(per_config),
                    [r.elapsed_seconds for r in per_config.values()],
                )
            )
        return "\n\n".join(parts)


def fig3_microbenchmark(
    scale: float = 1.0,
    environments: Sequence[str] = ("ec2", "uml"),
    seed: int = 0,
    backend: str = "sim",
) -> Fig3Result:
    """Reproduce Figure 3: the Blast upload-only replay on EC2 and UML.

    Paper shape: P3 has the lowest overhead (~33 %), P1 dominates P2,
    P2 is the most expensive (~79 %); UML preserves the pattern.

    ``backend`` selects the storage backend (:mod:`repro.backends`);
    the differential matrix pins ``"sim"`` and ``"local"`` identical.
    """
    workload = _workload_by_name("blast", scale)
    envs = {"ec2": EC2_ENV, "uml": UML_ENV, "local": LOCAL_ENV}
    results: Dict[str, Dict[str, MicrobenchResult]] = {}
    telemetry: Dict[str, Dict[str, object]] = {}
    for env_name in environments:
        profile = SimulationProfile().with_environment(envs[env_name])
        per_config: Dict[str, MicrobenchResult] = {}
        for config in CONFIGURATIONS:
            account = CloudAccount(profile=profile, seed=seed, backend=backend)
            per_config[config] = run_microbenchmark(
                workload, config, profile=profile, seed=seed, account=account
            )
            if config == "p3":
                telemetry[env_name] = account.telemetry.metrics.snapshot()
            account.close()
        results[env_name] = per_config
    return Fig3Result(results=results, telemetry=telemetry)


@dataclass
class Table3Result:
    results: Dict[str, MicrobenchResult]
    paper_mb: Dict[str, float] = field(
        default_factory=lambda: {
            "s3fs": 713.09, "p1": 715.31, "p2": 716.11, "p3": 716.32,
        }
    )
    paper_ops: Dict[str, int] = field(
        default_factory=lambda: {"s3fs": 617, "p1": 2287, "p2": 1235, "p3": 1337}
    )

    def render(self) -> str:
        base = self.results["s3fs"]
        rows = []
        for config in CONFIGURATIONS:
            result = self.results[config]
            mb_overhead = (
                f"{100 * (result.bytes_transmitted / base.bytes_transmitted - 1):.2f}%"
                if config != "s3fs"
                else "-"
            )
            ops_overhead = (
                f"{100 * (result.operations / base.operations - 1):.1f}%"
                if config != "s3fs"
                else "-"
            )
            rows.append(
                (
                    config,
                    f"{result.mb_transmitted:.2f}",
                    mb_overhead,
                    result.operations,
                    ops_overhead,
                    f"{self.paper_mb[config]:.2f}",
                    self.paper_ops[config],
                )
            )
        return render_table(
            (
                "Config", "MB sent", "MB ovh", "Ops", "Ops ovh",
                "Paper MB", "Paper ops",
            ),
            rows,
            title="Table 3: data-transfer and operation overheads (microbenchmark)",
        )


def table3_overheads(scale: float = 1.0, seed: int = 0) -> Table3Result:
    """Reproduce Table 3: bytes and operations per protocol for the
    microbenchmark (commit daemon excluded, as in the paper)."""
    workload = _workload_by_name("blast", scale)
    results = {
        config: run_microbenchmark(workload, config, seed=seed)
        for config in CONFIGURATIONS
    }
    return Table3Result(results=results)


# ==========================================================================
# Figure 4 — full workload elapsed times
# ==========================================================================

@dataclass
class Fig4Cell:
    result: RunResult
    overhead: float


@dataclass
class Fig4Result:
    #: (period, environment, workload) -> configuration -> cell
    cells: Dict[Tuple[str, str, str], Dict[str, Fig4Cell]]

    def render(self) -> str:
        rows = []
        for (period, env_name, workload), per_config in sorted(self.cells.items()):
            row = [period, env_name, workload]
            for config in CONFIGURATIONS:
                cell = per_config[config]
                if config == "s3fs":
                    row.append(f"{cell.result.elapsed_seconds:.0f}s")
                else:
                    row.append(
                        f"{cell.result.elapsed_seconds:.0f}s (+{100 * cell.overhead:.1f}%)"
                    )
            rows.append(row)
        return render_table(
            ("Period", "Env", "Workload", "s3fs", "p1", "p2", "p3"),
            rows,
            title="Figure 4: workload elapsed times",
        )

    def overhead_summary(self) -> Tuple[int, int]:
        """(cells with overhead < 10 %, total protocol cells) — the
        paper's headline is 29 of 36."""
        below = 0
        total = 0
        for per_config in self.cells.values():
            for config, cell in per_config.items():
                if config == "s3fs":
                    continue
                total += 1
                if cell.overhead < 0.10:
                    below += 1
        return below, total


def fig4_workloads(
    scale: float = 1.0,
    workloads: Sequence[str] = ("blast", "nightly", "challenge"),
    environments: Sequence[str] = ("uml", "local"),
    periods: Sequence[str] = ("sep09", "dec09"),
    seed: int = 0,
) -> Fig4Result:
    """Reproduce Figure 4: {period} x {EC2(UML), local} x {workloads} x
    {s3fs, P1, P2, P3} elapsed times.

    Paper shape: overheads mostly under 10 %; nightly and challenge run
    slower from the local machine while Blast runs *faster* locally (UML's
    512 MB guest thrashes); Dec 09 is 4-44.5 % faster than Sep 09.
    """
    env_map = {"ec2": EC2_ENV, "uml": UML_ENV, "local": LOCAL_ENV}
    period_map = {"sep09": SEP09, "dec09": DEC09}
    cells: Dict[Tuple[str, str, str], Dict[str, Fig4Cell]] = {}
    for period_name in periods:
        for workload_name in workloads:
            workload = _workload_by_name(workload_name, scale)
            for env_name in environments:
                profile = SimulationProfile(
                    environment=env_map[env_name], period=period_map[period_name]
                )
                per_config: Dict[str, Fig4Cell] = {}
                base: Optional[RunResult] = None
                for config in CONFIGURATIONS:
                    result, _account = _run_workload(
                        workload, config, profile, seed=seed
                    )
                    if config == "s3fs":
                        base = result
                        per_config[config] = Fig4Cell(result, 0.0)
                    else:
                        assert base is not None
                        overhead = (
                            result.elapsed_seconds / base.elapsed_seconds - 1.0
                        )
                        per_config[config] = Fig4Cell(result, overhead)
                cells[(period_name, env_name, workload_name)] = per_config
    return Fig4Result(cells=cells)


# ==========================================================================
# Table 4 — cost per benchmark
# ==========================================================================

@dataclass
class Table4Result:
    #: workload -> configuration -> USD
    costs: Dict[str, Dict[str, float]]
    paper: Dict[str, Dict[str, float]] = field(
        default_factory=lambda: {
            "nightly": {"s3fs": 1.05, "p1": 1.05, "p2": 1.05, "p3": 1.06},
            "blast": {"s3fs": 0.37, "p1": 0.39, "p2": 0.38, "p3": 0.40},
            "challenge": {"s3fs": 0.27, "p1": 0.29, "p2": 0.29, "p3": 0.30},
        }
    )

    def render(self) -> str:
        rows = []
        for config in CONFIGURATIONS:
            row = [config]
            for workload in ("nightly", "blast", "challenge"):
                row.append(f"${self.costs[workload][config]:.2f}")
                row.append(f"(${self.paper[workload][config]:.2f})")
            rows.append(row)
        return render_table(
            (
                "Config", "Nightly", "paper", "Blast", "paper",
                "Challenge", "paper",
            ),
            rows,
            title="Table 4: cost per benchmark, USD (commit daemon included)",
        )


def table4_cost(scale: float = 1.0, seed: int = 0) -> Table4Result:
    """Reproduce Table 4: the USD bill for each workload x configuration,
    including P3's commit daemon, a month of storage for the uploaded
    data, and the EC2 instance-hours of the run."""
    profile = SimulationProfile(environment=UML_ENV)
    costs: Dict[str, Dict[str, float]] = {}
    for workload_name in ("nightly", "blast", "challenge"):
        workload = _workload_by_name(workload_name, scale)
        stored_gb = workload.trace.total_bytes_written() / (1024.0 ** 3)
        per_config: Dict[str, float] = {}
        for config in CONFIGURATIONS:
            result, account = _run_workload(workload, config, profile, seed=seed)
            per_config[config] = account.billing.cost(
                stored_gb_month=stored_gb,
                instance_hours=account.instance_hours(),
            )
        costs[workload_name] = per_config
    return Table4Result(costs=costs)


# ==========================================================================
# Table 5 — query performance
# ==========================================================================

@dataclass
class Table5Row:
    query: str
    backend: str
    sequential_s: float
    parallel_s: Optional[float]
    mb: float
    operations: int


@dataclass
class Table5Result:
    rows: List[Table5Row]

    def render(self) -> str:
        table_rows = []
        for row in self.rows:
            table_rows.append(
                (
                    row.query,
                    row.backend,
                    f"{row.sequential_s:.2f}",
                    f"{row.parallel_s:.2f}" if row.parallel_s is not None else "-",
                    f"{row.mb:.2f}",
                    row.operations,
                )
            )
        return render_table(
            ("Query", "Backend", "Seq (s)", "Par (s)", "MB", "Ops"),
            table_rows,
            title="Table 5: query performance on the Blast provenance",
        )


def table5_queries(scale: float = 1.0, seed: int = 0) -> Table5Result:
    """Reproduce Table 5: Q1-Q4 over the Blast provenance, on the S3
    backend (P1) and the SimpleDB backend (P2/P3), sequentially and in
    parallel.

    Paper shape: Q1/Q3/Q4 require a full scan on S3 but selective
    retrieval on SimpleDB (an order of magnitude faster); Q2 is
    comparable on both (a HEAD dominates); parallelism helps S3 scans
    but cannot help SimpleDB's next-token chain.
    """
    workload = _workload_by_name("blast", scale)
    target = f"{MOUNT}blast/job-000/raw.hits"
    rows: List[Table5Row] = []

    for backend_name, config in (("s3", "p1"), ("simpledb", "p2")):
        account = CloudAccount(seed=seed)
        run_microbenchmark(workload, config, account=account)
        account.settle(120.0)
        if backend_name == "s3":
            engine = S3QueryEngine(account)
        else:
            engine = SimpleDBQueryEngine(account)

        _, q1_seq = engine.q1_all_provenance(parallel=False)
        q1_par: Optional[QueryStats] = None
        if backend_name == "s3":
            _, q1_par = engine.q1_all_provenance(parallel=True)
        _, q2 = engine.q2_object_provenance(target)
        _, q3_seq = engine.q3_direct_outputs("blastall", parallel=False)
        _, q3_par = engine.q3_direct_outputs("blastall", parallel=True)
        _, q4_seq = engine.q4_all_descendants("blastall", parallel=False)
        _, q4_par = engine.q4_all_descendants("blastall", parallel=True)

        rows.extend(
            [
                Table5Row(
                    "Q1", backend_name, q1_seq.elapsed_seconds,
                    q1_par.elapsed_seconds if q1_par else None,
                    q1_seq.mb_transferred, q1_seq.operations,
                ),
                Table5Row(
                    "Q2", backend_name, q2.elapsed_seconds, None,
                    q2.mb_transferred, q2.operations,
                ),
                Table5Row(
                    "Q3", backend_name, q3_seq.elapsed_seconds,
                    q3_par.elapsed_seconds, q3_seq.mb_transferred,
                    q3_seq.operations,
                ),
                Table5Row(
                    "Q4", backend_name, q4_seq.elapsed_seconds,
                    q4_par.elapsed_seconds, q4_seq.mb_transferred,
                    q4_seq.operations,
                ),
            ]
        )
    return Table5Result(rows=rows)


# ==========================================================================
# Ablations beyond the paper
# ==========================================================================

@dataclass
class ConnectionSweepResult:
    #: service -> [(connections, seconds)]
    series: Dict[str, List[Tuple[int, float]]]

    def render(self) -> str:
        parts = []
        for service, points in self.series.items():
            parts.append(
                render_table(
                    ("Connections", "Time (s)"),
                    [(c, f"{s:.1f}") for c, s in points],
                    title=f"Connection sweep: {service}",
                )
            )
        return "\n\n".join(parts)


def ablation_connection_sweep(
    target_bytes: int = 8 * 1024 * 1024,
    connection_counts: Sequence[int] = (1, 5, 10, 20, 40, 80, 150),
    seed: int = 7,
) -> ConnectionSweepResult:
    """§5.1's prose finding as an experiment: S3 and SQS keep scaling to
    150 connections; SimpleDB stops improving around 40."""
    records = make_linux_compile_records(target_bytes=target_bytes, seed=seed)
    by_uuid: Dict[str, list] = defaultdict(list)
    for record in records:
        by_uuid[record.subject.uuid].append(record)
    items: Dict[str, list] = defaultdict(list)
    for record in records:
        items[str(record.subject)].append((record.attribute, record.value_text()))
    item_list = list(items.items())
    chunks = chunk_encoded(records, 8192)

    series: Dict[str, List[Tuple[int, float]]] = {"s3": [], "simpledb": [], "sqs": []}
    for connections in connection_counts:
        account = CloudAccount(seed=seed)
        account.s3.create_bucket("bench")
        requests = [
            account.s3.put_request(
                "bench", f"prov/{u}", Blob.from_text(encode_records(rs))
            )
            for u, rs in by_uuid.items()
        ]
        series["s3"].append(
            (connections, account.scheduler.execute_batch(requests, connections).makespan)
        )

        account = CloudAccount(seed=seed)
        account.simpledb.create_domain("bench")
        requests = [
            account.simpledb.batch_put_request("bench", item_list[i : i + 25])
            for i in range(0, len(item_list), 25)
        ]
        series["simpledb"].append(
            (connections, account.scheduler.execute_batch(requests, connections).makespan)
        )

        account = CloudAccount(seed=seed)
        url = account.sqs.create_queue("bench")
        requests = [account.sqs.send_request(url, chunk) for chunk in chunks]
        series["sqs"].append(
            (connections, account.scheduler.execute_batch(requests, connections).makespan)
        )
    return ConnectionSweepResult(series=series)


# ==========================================================================
# Multi-tenant service tier — shard scaling and the query cache
# ==========================================================================

@dataclass
class MultiTenantPoint:
    """One shard count's measurements with the fleet held fixed."""

    shards: int
    elapsed_seconds: float
    throughput: float
    operations: int
    bytes_transmitted: int
    cost_usd: float
    sdb_batches: int
    sdb_batches_saved: int


@dataclass
class MultiTenantResult:
    points: List[MultiTenantPoint]
    #: Q2/Q3/Q4 answers identical across every shard count.
    queries_match: bool
    #: Cache behaviour on a repeated-Q2 workload at the highest shard
    #: count: (cold ops, warm ops, hits, misses).
    cache_cold_ops: int = 0
    cache_warm_ops: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Final metrics snapshot of the last swept shard count's run
    #: (gateway, cache, and billing gauges after the cache exercise).
    telemetry: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        table = render_table(
            (
                "Shards", "Time (s)", "Flushes/s", "Ops", "MB sent",
                "BatchPuts", "saved",
            ),
            [
                (
                    p.shards,
                    f"{p.elapsed_seconds:.1f}",
                    f"{p.throughput:.2f}",
                    p.operations,
                    f"{p.bytes_transmitted / (1024.0 * 1024.0):.2f}",
                    p.sdb_batches,
                    p.sdb_batches_saved,
                )
                for p in self.points
            ],
            title="Multi-tenant scaling: fixed fleet, growing shard count",
        )
        cache_line = (
            f"query cache: cold Q2 = {self.cache_cold_ops} ops, warm Q2 = "
            f"{self.cache_warm_ops} ops ({self.cache_hits} hits / "
            f"{self.cache_misses} misses); shard-aware answers match: "
            f"{self.queries_match}"
        )
        return table + "\n" + cache_line

    def as_json(self) -> Dict[str, object]:
        """Machine-readable form for ``write_bench_json``."""
        return {
            "points": [
                {
                    "shards": p.shards,
                    "elapsed_seconds": p.elapsed_seconds,
                    "throughput_flushes_per_s": p.throughput,
                    "operations": p.operations,
                    "bytes_transmitted": p.bytes_transmitted,
                    "cost_usd": p.cost_usd,
                    "sdb_batches": p.sdb_batches,
                    "sdb_batches_saved": p.sdb_batches_saved,
                }
                for p in self.points
            ],
            "queries_match": self.queries_match,
            "cache": {
                "cold_ops": self.cache_cold_ops,
                "warm_ops": self.cache_warm_ops,
                "hits": self.cache_hits,
                "misses": self.cache_misses,
            },
        }


def multitenant_scaling(
    shard_counts: Sequence[int] = (1, 2, 4),
    clients: int = 24,
    files_per_client: int = 4,
    extra_attributes: int = 48,
    seed: int = 0,
) -> MultiTenantResult:
    """The service tier's scaling experiment: one fixed client fleet
    driven through the ingest gateway at growing shard counts.

    Expected shape: total commit throughput improves monotonically from
    1 to 4 shards — SimpleDB's indexing pipeline is per-domain, so
    spreading items over domains multiplies sustained ingest (the §5
    domain-limit observation, turned into a design) — while Q2–Q4
    answers through the shard-aware query path stay byte-identical to
    the single-domain path, and a repeated Q2 hits the service cache
    with zero cloud operations.
    """
    from repro.query.engine import ShardedSimpleDBQueryEngine
    from repro.service import IngestGateway, ShardRouter
    from repro.workloads.fleet import FLEET_PROGRAM, make_fleet, run_fleet

    target_path = f"{MOUNT}fleet/c0000/f000.dat"
    points: List[MultiTenantPoint] = []
    answers: List[Tuple] = []
    cache_numbers = (0, 0, 0, 0)

    for shards in shard_counts:
        account = CloudAccount(seed=seed)
        router = ShardRouter(shards=shards)
        gateway = IngestGateway(account, router)
        fleet = make_fleet(
            clients=clients,
            files_per_client=files_per_client,
            extra_attributes=extra_attributes,
            seed=seed,
        )
        run = run_fleet(account, gateway, fleet, seed=seed)
        account.settle(120.0)
        points.append(
            MultiTenantPoint(
                shards=shards,
                elapsed_seconds=run.elapsed_seconds,
                throughput=run.flushes_per_second,
                operations=run.operations,
                bytes_transmitted=run.bytes_transmitted,
                cost_usd=run.cost_usd,
                sdb_batches=gateway.stats.sdb_batches,
                sdb_batches_saved=gateway.stats.sdb_batches_saved,
            )
        )

        engine = ShardedSimpleDBQueryEngine(account, router)
        q2, _ = engine.q2_object_provenance(target_path)
        q3, _ = engine.q3_direct_outputs(FLEET_PROGRAM)
        q4, _ = engine.q4_all_descendants(FLEET_PROGRAM)
        answers.append((q2, q3, q4))

        if shards == max(shard_counts):
            cached = gateway.query_engine()
            ops_before = account.billing.operation_count()
            cached.q2_object_provenance(target_path)
            cold_ops = account.billing.operation_count() - ops_before
            ops_before = account.billing.operation_count()
            cached.q2_object_provenance(target_path)
            warm_ops = account.billing.operation_count() - ops_before
            cache_numbers = (
                cold_ops, warm_ops, cached.stats.hits, cached.stats.misses
            )

    # repr-compare: the answers must match byte for byte, including the
    # ordering inside multi-valued attributes, not just set-wise.
    queries_match = all(repr(answer) == repr(answers[0]) for answer in answers[1:])
    return MultiTenantResult(
        points=points,
        queries_match=queries_match,
        cache_cold_ops=cache_numbers[0],
        cache_warm_ops=cache_numbers[1],
        cache_hits=cache_numbers[2],
        cache_misses=cache_numbers[3],
        telemetry=account.telemetry.metrics.snapshot(),
    )


# ==========================================================================
# Commit lag over virtual time — the kernel's scenario family
# ==========================================================================

@dataclass
class CommitLagSample:
    """One monitor tick: the WAL backlog and commit progress at time t."""

    t: float
    queue_depth: int
    committed: int


@dataclass
class CommitLagResult:
    """What the kernel observed: fleet clients logging transactions into a
    shared WAL queue while in-loop commit daemons race to drain it."""

    clients: int
    daemons: int
    flushes: int
    committed: int
    elapsed_seconds: float
    samples: List[CommitLagSample]
    #: (txn_id, logged_at, committed_at) for every committed transaction,
    #: ordered by commit completion.
    commit_timeline: List[Tuple[str, float, float]]
    crashed_processes: List[str] = field(default_factory=list)
    #: Final metrics snapshot (daemon counters, queue-depth gauge,
    #: billing) — the kernel-driven scraper also sampled these into the
    #: registry's time series during the run.
    telemetry: Dict[str, object] = field(default_factory=dict)

    @property
    def lags(self) -> List[float]:
        return [committed - logged for _, logged, committed in self.commit_timeline]

    @property
    def max_queue_depth(self) -> int:
        return max((s.queue_depth for s in self.samples), default=0)

    @property
    def mean_lag(self) -> float:
        lags = self.lags
        return sum(lags) / len(lags) if lags else 0.0

    @property
    def max_lag(self) -> float:
        return max(self.lags, default=0.0)

    def render(self) -> str:
        table = render_table(
            ("t (s)", "WAL depth", "committed"),
            [(f"{s.t:.1f}", s.queue_depth, s.committed) for s in self.samples],
            title=(
                f"Commit lag: {self.clients} clients, {self.daemons} "
                f"daemon(s) interleaved on the kernel"
            ),
        )
        series = render_series(
            "WAL queue depth over virtual time",
            [f"t={s.t:.0f}" for s in self.samples],
            [float(s.queue_depth) for s in self.samples],
            unit=" msgs",
        )
        summary = (
            f"{self.committed}/{self.flushes} transactions committed in "
            f"{self.elapsed_seconds:.1f}s; lag mean {self.mean_lag:.1f}s, "
            f"max {self.max_lag:.1f}s; peak backlog {self.max_queue_depth} "
            f"messages"
        )
        if self.crashed_processes:
            summary += f"; crashed: {', '.join(self.crashed_processes)}"
        return "\n\n".join([table, series, summary])

    def as_json(self) -> Dict[str, object]:
        """Machine-readable form for ``write_bench_json`` — stable across
        runs of the same seed (the determinism contract)."""
        return {
            "clients": self.clients,
            "daemons": self.daemons,
            "flushes": self.flushes,
            "committed": self.committed,
            "elapsed_seconds": self.elapsed_seconds,
            "samples": [
                {"t": s.t, "queue_depth": s.queue_depth, "committed": s.committed}
                for s in self.samples
            ],
            "commit_timeline": [
                {"txn": txn, "logged_at": logged, "committed_at": committed}
                for txn, logged, committed in self.commit_timeline
            ],
            "lag_mean_s": self.mean_lag,
            "lag_max_s": self.max_lag,
            "max_queue_depth": self.max_queue_depth,
            "crashed_processes": list(self.crashed_processes),
        }


def commit_lag_experiment(
    clients: int = 4,
    files_per_client: int = 5,
    daemons: int = 1,
    seed: int = 0,
    think_s: float = 2.0,
    poll_interval: float = 1.0,
    sample_interval: float = 2.0,
    extra_attributes: int = 24,
    file_bytes: int = 32 * 1024,
    crash_at: Optional[Sequence[Tuple[str, float]]] = None,
    drain_horizon_s: float = 900.0,
) -> CommitLagResult:
    """The kernel's headline experiment: concurrent fleet clients log P3
    transactions into one shared WAL queue while ``daemons`` commit
    daemons poll it in-loop; a monitor samples WAL queue depth and commit
    progress over virtual time.

    Under the phased driver this shape was unobservable — the daemon only
    ever ran after the clients finished, so backlog was an artifact of
    drain order.  Here the backlog curve is real: it grows while clients
    outpace the daemons and decays as the daemons catch up, and every
    committed transaction's lag (log completion to commit completion) is
    measured on the virtual clock.

    ``crash_at`` arms timed crashes — e.g. ``[("c0001", 12.0)]`` kills
    client 1 at t=12s mid-run, ``[("daemon-0", 30.0)]`` kills a daemon so
    a surviving one takes over its redelivered messages.  Deterministic:
    the same arguments and seed replay bit for bit.
    """
    import random as _random

    from repro.core.commit_daemon import CommitDaemon
    from repro.sim import Delay, SimKernel
    from repro.workloads.fleet import make_fleet

    account = CloudAccount(seed=seed)
    protocol = ProtocolP3(account, client_id="fleet-shared")
    fleet = make_fleet(
        clients=clients,
        files_per_client=files_per_client,
        file_bytes=file_bytes,
        extra_attributes=extra_attributes,
        seed=seed,
    )
    for target, at in crash_at or []:
        account.faults.arm_timed_crash(target, at)

    kernel = SimKernel(account)

    def client_proc(client, rng):
        for work in client.works:
            yield from protocol.flush_plan(work)
            yield Delay(think_s * rng.uniform(0.5, 1.5))

    master = _random.Random(seed)
    for client in fleet:
        rng = _random.Random(master.randrange(1 << 30))
        kernel.spawn(client_proc(client, rng), name=client.client_id)

    daemon_objs: List[CommitDaemon] = []
    for index in range(daemons):
        daemon = CommitDaemon(
            account=account,
            queue_url=protocol.queue_url,
            bucket=protocol.bucket,
            domain=protocol.domain,
            router=protocol.router,
        )
        daemon_objs.append(daemon)
        kernel.spawn(
            daemon.process(poll_interval=poll_interval),
            name=f"daemon-{index}",
            daemon=True,
        )

    samples: List[CommitLagSample] = []

    def sample(now: float) -> None:
        samples.append(
            CommitLagSample(
                t=round(now, 6),
                queue_depth=account.sqs.pending_count(protocol.queue_url),
                committed=sum(d.committed_count() for d in daemon_objs),
            )
        )

    kernel.every(sample_interval, sample, name="monitor")
    kernel.scrape_every(sample_interval)

    kernel.run()  # clients to completion (or their timed crashes)
    # Let the daemons drain the backlog; the horizon bounds runs where a
    # mid-log crash left an incomplete transaction that can never commit.
    horizon = account.now + drain_horizon_s
    while (
        account.sqs.pending_count(protocol.queue_url) > 0
        and account.now < horizon
    ):
        kernel.run(until=min(account.now + 5 * poll_interval, horizon))
    # One more beat so daemons finish commit bookkeeping cut mid-step and
    # the monitor records the settled state.
    kernel.run(until=account.now + max(poll_interval, sample_interval))

    timeline = sorted(
        (
            (record.txn_id, record.logged_at, record.committed_at)
            for daemon in daemon_objs
            for record in daemon.commit_log
        ),
        key=lambda row: (row[2], row[0]),
    )
    # Elapsed is when the work actually ended — the last commit or the
    # last client activity — not the drain loop's quantized horizon.
    client_end = max(
        (p.domain.finished_at
         for p in kernel.processes
         if not p.daemon and p.domain.finished_at >= 0),
        default=0.0,
    )
    drain_end = max((committed for _, _, committed in timeline), default=0.0)
    return CommitLagResult(
        clients=clients,
        daemons=daemons,
        flushes=sum(len(client.works) for client in fleet),
        committed=sum(d.committed_count() for d in daemon_objs),
        elapsed_seconds=max(client_end, drain_end),
        samples=samples,
        commit_timeline=timeline,
        crashed_processes=sorted(
            p.name for p in kernel.processes if p.state.value == "crashed"
        ),
        telemetry=account.telemetry.metrics.snapshot(),
    )


# ==========================================================================
# Select scaling — the indexed query engine vs the scan fallback
# ==========================================================================

@dataclass
class SelectScalingCell:
    """One (domain size, query) measurement, indexed vs scan fallback."""

    query: str
    expression: str
    rows: int
    #: Best-of-``repeats`` real wall-clock seconds for one full select
    #: chain (``time.perf_counter``, not virtual time — the simulator's
    #: own Python cost is exactly what the index removes).
    indexed_wall_s: float
    scan_wall_s: float
    #: Simulated request count for one chain (identical in both modes).
    requests: int
    bytes_out: int
    #: Rows, row order, and billed request/byte counts byte-identical
    #: between the indexed path and the ``use_indexes=False`` scan.
    identical: bool
    #: True when the planner actually served this query from the indexes
    #: (false for the deliberate fallback control).
    used_index: bool

    @property
    def speedup(self) -> float:
        if self.indexed_wall_s <= 0:
            return float("inf")
        return self.scan_wall_s / self.indexed_wall_s


@dataclass
class SelectScalingPoint:
    items: int
    cells: List[SelectScalingCell]
    #: ``sdb.index.memory_bytes`` of the built domain (the array-backed
    #: store the account runs on).
    index_memory_bytes: int = 0
    #: The same items replayed into the legacy dict-of-sets substrate —
    #: the memory baseline the array store is charted against.
    legacy_index_memory_bytes: int = 0

    def cell(self, query: str) -> SelectScalingCell:
        for cell in self.cells:
            if cell.query == query:
                return cell
        raise KeyError(query)

    @property
    def memory_bytes_per_item(self) -> float:
        return self.index_memory_bytes / self.items if self.items else 0.0

    @property
    def legacy_memory_bytes_per_item(self) -> float:
        return (
            self.legacy_index_memory_bytes / self.items if self.items else 0.0
        )


@dataclass
class SelectScalingResult:
    points: List[SelectScalingPoint]
    repeats: int
    title: str = "Select scaling: indexed engine vs full-scan fallback"
    #: Final metrics snapshot of the largest domain's account (select
    #: planner counters and billing gauges).
    telemetry: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        rows = []
        for point in self.points:
            for cell in point.cells:
                rows.append(
                    (
                        point.items,
                        cell.query,
                        cell.rows,
                        f"{1e3 * cell.indexed_wall_s:.2f}",
                        f"{1e3 * cell.scan_wall_s:.2f}",
                        f"{cell.speedup:.1f}x",
                        cell.requests,
                        "yes" if cell.used_index else "scan",
                        "yes" if cell.identical else "NO",
                    )
                )
        table = render_table(
            (
                "Items", "Query", "Rows", "Idx (ms)", "Scan (ms)",
                "Speedup", "Reqs", "Indexed", "Identical",
            ),
            rows,
            title=self.title,
        )
        memory_rows = [
            (
                point.items,
                point.index_memory_bytes,
                f"{point.memory_bytes_per_item:.1f}",
                point.legacy_index_memory_bytes,
                f"{point.legacy_memory_bytes_per_item:.1f}",
            )
            for point in self.points
            if point.index_memory_bytes
        ]
        if not memory_rows:
            return table
        return table + "\n" + render_table(
            (
                "Items", "Array (B)", "Array B/item",
                "Legacy (B)", "Legacy B/item",
            ),
            memory_rows,
            title="Index memory: array-backed store vs legacy dict-of-sets",
        )

    def as_json(self) -> Dict[str, object]:
        return {
            "repeats": self.repeats,
            "points": [
                {
                    "items": point.items,
                    "index_memory_bytes": point.index_memory_bytes,
                    "memory_bytes_per_item": point.memory_bytes_per_item,
                    "legacy_index_memory_bytes": (
                        point.legacy_index_memory_bytes
                    ),
                    "legacy_memory_bytes_per_item": (
                        point.legacy_memory_bytes_per_item
                    ),
                    "cells": [
                        {
                            "query": cell.query,
                            "expression": cell.expression,
                            "rows": cell.rows,
                            "indexed_wall_s": cell.indexed_wall_s,
                            "scan_wall_s": cell.scan_wall_s,
                            "speedup": cell.speedup,
                            "requests": cell.requests,
                            "bytes_out": cell.bytes_out,
                            "identical": cell.identical,
                            "used_index": cell.used_index,
                        }
                        for cell in point.cells
                    ],
                }
                for point in self.points
            ],
        }


def _select_scaling_items(count: int) -> List[Tuple[str, List[Tuple[str, str]]]]:
    """A deterministic provenance-shaped domain: ``count`` node-version
    items named ``u<object>_<version>`` (4 versions per object), with
    ``name`` values bucketed so equality selects stay ~100 rows at every
    domain size — the selective lookups Q2/Q3 issue."""
    groups = max(1, count // 100)
    items: List[Tuple[str, List[Tuple[str, str]]]] = []
    for i in range(count):
        name = f"u{i // 4:07d}_{i % 4}"
        parent = f"u{max(0, i - 4) // 4:07d}_{(i % 4)}"
        pairs = [
            ("type", "proc" if i % 25 == 0 else "file"),
            ("name", f"prog-{i % groups:05d}"),
            ("input", parent),
        ]
        items.append((name, pairs))
    return items


def _select_scaling_queries(domain: str) -> List[Tuple[str, str]]:
    return [
        ("equality", f"select * from {domain} where name = 'prog-00000'"),
        ("prefix", f"select * from {domain} where itemName() like 'u0000012_%'"),
        (
            "in",
            "select * from {} where input in ({})".format(
                domain, ", ".join(f"'u{i:07d}_{i % 4}'" for i in range(8))
            ),
        ),
        (
            "conjunction",
            f"select * from {domain} "
            "where name = 'prog-00000' and type = 'proc'",
        ),
        # Deliberate planner fallback: != is unindexable, so both modes
        # scan — the control that shows parity, not speedup.
        ("negation-scan", f"select * from {domain} where type != 'file'"),
    ]


def _sweep_select_modes(
    domain_sizes: Sequence[int],
    repeats: int,
    seed: int,
    item_builder: Callable[[int], List[Tuple[str, List[Tuple[str, str]]]]],
    query_builder: Callable[[str], List[Tuple[str, str]]],
    title: str = "Select scaling: indexed engine vs full-scan fallback",
) -> SelectScalingResult:
    """Shared sweep harness for the indexed-vs-scan perf experiments:
    build a domain of each size, run each query in both modes, time the
    chains in real wall-clock, and check byte-identity of rows and
    billing."""
    import time

    points: List[SelectScalingPoint] = []
    for count in domain_sizes:
        account = CloudAccount(seed=seed)
        sdb = account.simpledb
        sdb.create_domain("bench")
        items = item_builder(count)
        requests = [
            sdb.batch_put_request("bench", items[i : i + 25])
            for i in range(0, len(items), 25)
        ]
        account.scheduler.execute_batch(requests, 40)
        account.settle(120.0)

        # Memory series: the live (array-backed) index footprint, and
        # the same pairs replayed into a bare legacy dict-of-sets state
        # as the baseline.  The replay interns pairs exactly as
        # ``_merge_item`` does, so both substrates share string objects
        # and the gap charted is structural, not interning luck.
        from repro.cloud.simpledb import _LegacyDomainState
        import sys as _sys

        index_memory = sdb.index_memory_bytes()
        legacy_state = _LegacyDomainState()
        for name, pairs in items:
            legacy_state.add_name(name)
            legacy_state.note_pairs(
                name,
                [(_sys.intern(a), _sys.intern(v)) for a, v in pairs],
            )
        legacy_memory = legacy_state.memory_bytes()
        del legacy_state

        cells: List[SelectScalingCell] = []
        for query_name, expression in query_builder("bench"):
            per_mode: Dict[bool, Tuple[list, float, int, int]] = {}
            indexed_chains_before = sdb.select_stats.indexed
            for use_indexes in (True, False):
                sdb.use_indexes = use_indexes
                best = float("inf")
                rows: list = []
                ops_before = account.billing.snapshot()["simpledb"].get(
                    "Select", 0
                )
                bytes_before = (
                    account.billing.bytes_received()
                    + account.billing.bytes_transmitted()
                )
                first = True
                for _ in range(repeats):
                    # Real host time on purpose: the index removes the
                    # simulator's own Python cost.  wallclock-ok
                    t0 = time.perf_counter()  # wallclock-ok
                    rows = sdb.select(expression)
                    best = min(best, time.perf_counter() - t0)  # wallclock-ok
                    if first:
                        first = False
                        ops = (
                            account.billing.snapshot()["simpledb"]["Select"]
                            - ops_before
                        )
                        moved = (
                            account.billing.bytes_received()
                            + account.billing.bytes_transmitted()
                            - bytes_before
                        )
                if use_indexes:
                    used_index = (
                        sdb.select_stats.indexed - indexed_chains_before
                        == repeats
                    )
                per_mode[use_indexes] = (rows, best, ops, moved)
            sdb.use_indexes = True

            indexed_rows, indexed_wall, indexed_ops, indexed_bytes = per_mode[True]
            scan_rows, scan_wall, scan_ops, scan_bytes = per_mode[False]
            identical = (
                repr(indexed_rows) == repr(scan_rows)
                and indexed_ops == scan_ops
                and indexed_bytes == scan_bytes
            )
            cells.append(
                SelectScalingCell(
                    query=query_name,
                    expression=expression,
                    rows=len(indexed_rows),
                    indexed_wall_s=indexed_wall,
                    scan_wall_s=scan_wall,
                    requests=indexed_ops,
                    bytes_out=indexed_bytes,
                    identical=identical,
                    used_index=used_index,
                )
            )
        points.append(
            SelectScalingPoint(
                items=count,
                cells=cells,
                index_memory_bytes=index_memory,
                legacy_index_memory_bytes=legacy_memory,
            )
        )
    return SelectScalingResult(
        points=points,
        repeats=repeats,
        title=title,
        telemetry=account.telemetry.metrics.snapshot(),
    )


def select_scaling(
    domain_sizes: Sequence[int] = (1_000, 10_000, 100_000),
    repeats: int = 3,
    seed: int = 0,
) -> SelectScalingResult:
    """The indexed select engine's perf experiment: the same queries
    against growing domains, timed in *real* wall-clock, with the planner
    on (``use_indexes=True``) and off (scan fallback).

    Expected shape: equality/prefix/IN selects cost O(matches) indexed
    and O(domain) scanned, so the speedup grows linearly with domain
    size (≥5x is the acceptance floor at 100k items); the ``!=`` control
    falls back to scan in both modes and stays at parity.  Rows, row
    order, simulated request counts, and billed bytes must be identical
    between the two modes at every size.
    """
    return _sweep_select_modes(
        domain_sizes, repeats, seed, _select_scaling_items,
        _select_scaling_queries,
    )


def _range_query_items(count: int) -> List[Tuple[str, List[Tuple[str, str]]]]:
    """Version- and time-shaped provenance items: ``u<obj>_<ver>`` (4
    versions per object) carrying a zero-padded ``version`` attribute
    and an ``mtime`` that grows with creation order — the shapes the
    paper's queries bound by (ancestry walks bounded by version,
    nightly-backup freshness by time).  Zero-padding is load-bearing:
    range predicates compare lexicographically."""
    groups = max(1, count // 100)
    items: List[Tuple[str, List[Tuple[str, str]]]] = []
    for i in range(count):
        name = f"u{i // 4:07d}_{i % 4}"
        pairs = [
            ("type", "proc" if i % 25 == 0 else "file"),
            # Group whole objects (not raw items) so every name bucket
            # holds all four versions — the version-slice conjunction
            # must match at every domain size.
            ("name", f"prog-{(i // 4) % groups:05d}"),
            ("version", f"{i % 4:04d}"),
            ("mtime", f"{1_000_000 + i:09d}"),
        ]
        items.append((name, pairs))
    return items


def _range_query_queries(domain: str) -> List[Tuple[str, str]]:
    """Fixed-selectivity range queries (~50-100 rows at every domain
    size, so indexed cost stays O(matches) while scan cost grows with
    the domain)."""
    return [
        (
            "time-window",
            f"select * from {domain} "
            "where mtime >= '001000100' and mtime < '001000200'",
        ),
        (
            "time-between",
            f"select * from {domain} "
            "where mtime between '001000300' and '001000399'",
        ),
        (
            "version-slice",
            f"select * from {domain} "
            "where name = 'prog-00000' and version >= '0002'",
        ),
        (
            "itemname-range",
            f"select * from {domain} "
            "where itemName() between 'u0000010_' and 'u0000034_z'",
        ),
        # Deliberate planner fallback: the != side of the OR is
        # unindexable, so both modes scan — the parity control.
        (
            "range-scan-control",
            f"select * from {domain} "
            "where mtime < '001000200' or type != 'file'",
        ),
    ]


def range_query(
    domain_sizes: Sequence[int] = (1_000, 10_000, 60_000),
    repeats: int = 3,
    seed: int = 0,
) -> SelectScalingResult:
    """Range-predicate perf experiment: version-range and time-window
    queries over growing stores, indexed vs the scan fallback.

    Expected shape: the windows match a fixed number of rows at every
    domain size, so the indexed wall-clock stays flat (O(matches) via
    the sorted-value ranges) while the scan grows linearly — sublinear
    growth, ≥5x speedup from 10k items up.  The OR-with-``!=`` control
    scans in both modes and stays at parity.  Rows, row order, request
    counts, and billed bytes identical between modes at every size.
    """
    return _sweep_select_modes(
        domain_sizes,
        repeats,
        seed,
        _range_query_items,
        _range_query_queries,
        title="Range queries: sorted-value indexes vs full-scan fallback",
    )


# ==========================================================================
# Cost planner + Bloom shard routing — the planner_fanout experiment
# ==========================================================================

@dataclass
class PlannerFanoutCell:
    """One query's routing cost, Bloom-routed vs full fan-out."""

    query: str
    rows: int
    #: Attribute-rooted chunk x domain select chains actually issued.
    naive_selects: int
    bloom_selects: int
    #: chunk x domain chains the Bloom filters proved unnecessary.
    bloom_skipped: int
    #: Billed ``Select`` operations (all select chains incl. pages).
    naive_ops: int
    bloom_ops: int
    naive_wall_s: float
    bloom_wall_s: float
    #: Rows and billed bytes byte-identical between the two routings.
    identical: bool


@dataclass
class PlannerModeCell:
    """One planner mode's cost for the same Q4 on the same store."""

    planner: str  # "cost" | "fixed" | "scan"
    rows: int
    ops: int
    bytes_moved: int
    wall_s: float


@dataclass
class PlannerFanoutPoint:
    shards: int
    #: Children per first-generation file — the selectivity knob: deeper
    #: fan-in means wider IN chunks and a larger final (empty) frontier.
    children: int
    items: int
    cells: List[PlannerFanoutCell]
    planner_modes: List[PlannerModeCell]
    #: Rows, Select ops, and billed bytes identical across the three
    #: planner modes (the byte-identity acceptance criterion).
    billing_identical: bool

    def cell(self, query: str) -> PlannerFanoutCell:
        for cell in self.cells:
            if cell.query == query:
                return cell
        raise KeyError(query)


@dataclass
class PlannerFanoutResult:
    points: List[PlannerFanoutPoint]
    repeats: int
    title: str = (
        "Planner fan-out: Bloom shard pruning + cost planner vs baselines"
    )
    telemetry: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        rows = []
        for point in self.points:
            for cell in point.cells:
                rows.append(
                    (
                        point.shards,
                        point.children,
                        cell.query,
                        cell.rows,
                        cell.naive_selects,
                        cell.bloom_selects,
                        cell.bloom_skipped,
                        f"{1e3 * cell.naive_wall_s:.2f}",
                        f"{1e3 * cell.bloom_wall_s:.2f}",
                        "yes" if cell.identical else "NO",
                    )
                )
        fanout = render_table(
            (
                "Shards", "Children", "Query", "Rows", "Naive sel",
                "Bloom sel", "Skipped", "Naive (ms)", "Bloom (ms)",
                "Identical",
            ),
            rows,
            title=self.title,
        )
        mode_rows = []
        for point in self.points:
            for mode in point.planner_modes:
                mode_rows.append(
                    (
                        point.shards,
                        point.children,
                        mode.planner,
                        mode.rows,
                        mode.ops,
                        mode.bytes_moved,
                        f"{1e3 * mode.wall_s:.2f}",
                        "yes" if point.billing_identical else "NO",
                    )
                )
        modes = render_table(
            (
                "Shards", "Children", "Planner", "Rows", "Select ops",
                "Bytes", "Wall (ms)", "Billing identical",
            ),
            mode_rows,
            title="Q4 by planner mode (cost vs fixed-bailout vs scan)",
        )
        return fanout + "\n\n" + modes

    def as_json(self) -> Dict[str, object]:
        return {
            "repeats": self.repeats,
            "points": [
                {
                    "shards": point.shards,
                    "children": point.children,
                    "items": point.items,
                    "cells": [
                        {
                            "query": cell.query,
                            "rows": cell.rows,
                            "naive_selects": cell.naive_selects,
                            "bloom_selects": cell.bloom_selects,
                            "bloom_skipped": cell.bloom_skipped,
                            "naive_ops": cell.naive_ops,
                            "bloom_ops": cell.bloom_ops,
                            "naive_wall_s": cell.naive_wall_s,
                            "bloom_wall_s": cell.bloom_wall_s,
                            "identical": cell.identical,
                        }
                        for cell in point.cells
                    ],
                    "planner_modes": [
                        {
                            "planner": mode.planner,
                            "rows": mode.rows,
                            "ops": mode.ops,
                            "bytes": mode.bytes_moved,
                            "wall_s": mode.wall_s,
                        }
                        for mode in point.planner_modes
                    ],
                    "billing_identical": point.billing_identical,
                }
                for point in self.points
            ],
        }


def _planner_fanout_items(
    programs: int, files: int, children: int
) -> List[Tuple[str, List[Tuple[str, str]]]]:
    """Provenance trees shaped like the paper's Q3/Q4 workloads: each
    program's proc item outputs ``files`` first-generation files, each
    of which derives ``children`` second-generation files.  The
    second-generation leaves are derived from nothing further, so Q4's
    last frontier probes values no shard ever ingested — the case Bloom
    routing collapses to zero selects."""
    items: List[Tuple[str, List[Tuple[str, str]]]] = []
    for p in range(programs):
        proc = f"proc{p:03d}_0"
        items.append(
            (proc, [("type", "proc"), ("name", f"prog-{p:03d}")])
        )
        for i in range(files):
            gen1 = f"g1-{p:03d}-{i:02d}_0"
            items.append((gen1, [("type", "file"), ("input", proc)]))
            for j in range(children):
                gen2 = f"g2-{p:03d}-{i:02d}-{j:02d}_0"
                items.append((gen2, [("type", "file"), ("input", gen1)]))
    return items


def _load_routed_domain(account, router, items) -> None:
    """Populate the shard domains the way the routed write pipeline
    does: group items by the owning shard (uuid hash) and feed the
    router's Bloom index alongside each batch put."""
    grouped: Dict[str, List[Tuple[str, List[Tuple[str, str]]]]] = {}
    for name, pairs in items:
        uuid = name.rpartition("_")[0] or name
        grouped.setdefault(router.domain_for(uuid), []).append((name, pairs))
    for domain in router.domains:
        account.simpledb.create_domain(domain)
    requests = []
    for domain, group in grouped.items():
        router.note_indexed_items(domain, group)
        requests.extend(
            account.simpledb.batch_put_request(domain, group[i : i + 25])
            for i in range(0, len(group), 25)
        )
    account.scheduler.execute_batch(requests, 40)
    account.settle(120.0)


def _timed_best(fn: Callable[[], object], repeats: int):
    """Best-of-``repeats`` real wall clock for one query (host time on
    purpose: the routing and planning remove the simulator's own Python
    cost, which is the quantity under test)."""
    import time

    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()  # wallclock-ok
        out = fn()
        best = min(best, time.perf_counter() - t0)  # wallclock-ok
    return out, best


def planner_fanout(
    shard_counts: Sequence[int] = (1, 2, 4),
    children_counts: Sequence[int] = (2, 6),
    programs: int = 18,
    files: int = 6,
    repeats: int = 3,
    seed: int = 0,
) -> PlannerFanoutResult:
    """The cost-planner + Bloom-routing experiment: attribute-rooted
    Q3/Q4 over provenance trees spread across N shards.

    Two baselines against the production configuration:

    - **Routing axis** — the same queries through a Bloom-routed engine
      and a full-fan-out engine.  Rows and billed bytes must be
      byte-identical; the Bloom engine must issue strictly fewer
      attribute-rooted select chains wherever a probed frontier is
      provably absent from some shard (Q4's leaf frontier always is).
    - **Planner axis** — the same Q4 under the cost planner, the legacy
      fixed-bailout planner, and the index-off scan.  Rows, ``Select``
      operations, and billed bytes must be identical across all three:
      planning moves Python cost, never answers or billing.
    """
    points: List[PlannerFanoutPoint] = []
    account = None
    for shards in shard_counts:
        for children in children_counts:
            account = CloudAccount(seed=seed)
            sdb = account.simpledb
            router = ShardRouter(shards=shards)
            items = _planner_fanout_items(programs, files, children)
            _load_routed_domain(account, router, items)

            bloom_engine = ShardedSimpleDBQueryEngine(account, router)
            naive_engine = ShardedSimpleDBQueryEngine(
                account, router, bloom_routing=False
            )
            target = "prog-000"
            queries = {
                "q3": lambda engine: engine.q3_direct_outputs(target)[0],
                "q4": lambda engine: engine.q4_all_descendants(target)[0],
            }
            cells: List[PlannerFanoutCell] = []
            for query_name, run in queries.items():
                per_engine = {}
                for mode, engine in (
                    ("naive", naive_engine), ("bloom", bloom_engine)
                ):
                    fanned_before = engine.fanout.fanned_out_selects
                    skipped_before = engine.fanout.bloom_skipped_selects
                    ops_before = account.billing.snapshot()["simpledb"].get(
                        "Select", 0
                    )
                    bytes_before = (
                        account.billing.bytes_received()
                        + account.billing.bytes_transmitted()
                    )
                    answer = run(engine)
                    per_engine[mode] = {
                        "rows": answer,
                        "selects": (
                            engine.fanout.fanned_out_selects - fanned_before
                        ),
                        "skipped": (
                            engine.fanout.bloom_skipped_selects
                            - skipped_before
                        ),
                        "ops": account.billing.snapshot()["simpledb"]["Select"]
                        - ops_before,
                        "bytes": account.billing.bytes_received()
                        + account.billing.bytes_transmitted()
                        - bytes_before,
                    }
                    _, wall = _timed_best(lambda: run(engine), repeats)
                    per_engine[mode]["wall"] = wall
                naive, bloom = per_engine["naive"], per_engine["bloom"]
                cells.append(
                    PlannerFanoutCell(
                        query=query_name,
                        rows=len(bloom["rows"]),
                        naive_selects=naive["selects"],
                        bloom_selects=bloom["selects"],
                        bloom_skipped=bloom["skipped"],
                        naive_ops=naive["ops"],
                        bloom_ops=bloom["ops"],
                        naive_wall_s=naive["wall"],
                        bloom_wall_s=bloom["wall"],
                        identical=(
                            repr(naive["rows"]) == repr(bloom["rows"])
                            and naive["bytes"] == bloom["bytes"]
                        ),
                    )
                )

            modes: List[PlannerModeCell] = []
            fingerprints = []
            for planner in ("cost", "fixed", "scan"):
                if planner == "scan":
                    sdb.use_indexes = False
                else:
                    sdb.use_indexes = True
                    sdb.planner = planner
                ops_before = account.billing.snapshot()["simpledb"].get(
                    "Select", 0
                )
                bytes_before = (
                    account.billing.bytes_received()
                    + account.billing.bytes_transmitted()
                )
                answer = bloom_engine.q4_all_descendants(target)[0]
                ops = (
                    account.billing.snapshot()["simpledb"]["Select"]
                    - ops_before
                )
                moved = (
                    account.billing.bytes_received()
                    + account.billing.bytes_transmitted()
                    - bytes_before
                )
                _, wall = _timed_best(
                    lambda: bloom_engine.q4_all_descendants(target)[0],
                    repeats,
                )
                fingerprints.append((repr(answer), ops, moved))
                modes.append(
                    PlannerModeCell(
                        planner=planner,
                        rows=len(answer),
                        ops=ops,
                        bytes_moved=moved,
                        wall_s=wall,
                    )
                )
            sdb.use_indexes = True
            sdb.planner = "cost"

            points.append(
                PlannerFanoutPoint(
                    shards=shards,
                    children=children,
                    items=len(items),
                    cells=cells,
                    planner_modes=modes,
                    billing_identical=(
                        fingerprints[0] == fingerprints[1] == fingerprints[2]
                    ),
                )
            )
    return PlannerFanoutResult(
        points=points,
        repeats=repeats,
        telemetry=(
            account.telemetry.metrics.snapshot() if account is not None else {}
        ),
    )


# ==========================================================================
# Chaos schedules and SLO sizing — the fault-schedule scenario family
# ==========================================================================

def _percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = math.ceil(fraction * len(ordered))
    return ordered[min(len(ordered), max(1, rank)) - 1]


@dataclass
class ChaosSLOPoint:
    """One (fleet size, daemon count, schedule) chaos run's measurements."""

    clients: int
    daemons: int
    schedule: str
    flushes: int
    committed: int
    elapsed_seconds: float
    #: Last client finish to last commit — how long the WAL backlog
    #: outlived the writers.
    drain_seconds: float
    lag_mean_s: float
    lag_p99_s: float
    lag_max_s: float
    #: Recurring-crash kills and schedule-driven respawns that happened.
    crashes_fired: int
    respawns: int
    #: Query-side readers' read-your-writes observations.
    reader_samples: int
    reader_stale_peak: int
    reader_final_stale: int
    #: p99 commit lag re-derived from record-lifecycle traces
    #: (``wal.logged`` -> ``commit.done`` spans) instead of the daemons'
    #: commit-log bookkeeping — the two derivations are independent.
    lag_p99_trace_s: float = 0.0
    #: Per-transaction trace-derived lags match the commit-log lags
    #: exactly (same txn set, same float values).
    trace_lags_match: bool = True


@dataclass
class ChaosRunOutcome:
    """A chaos run's point plus the settled store's query fingerprint
    (used by the recovery-invariant comparison)."""

    point: ChaosSLOPoint
    #: repr() of the settled Q1 rows and Q2/Q3/Q4 answers.
    answers: Tuple[str, str, str, str]
    #: (operations, bytes) billed by running Q1-Q4 against the settled
    #: store — identical stores bill identically.
    query_billing: Tuple[int, int]
    #: Final metrics-registry snapshot for the run (after the Q1-Q4
    #: fingerprint queries billed).
    telemetry: Dict[str, object] = field(default_factory=dict)
    #: Canonical digest of the settled store (domains + buckets + queue
    #: depth); identical across backends that ran the same workload.
    store_fingerprint: str = ""


@dataclass
class ChaosSLOResult:
    """The chaos sweep: daemon count x fleet size x fault schedule."""

    points: List[ChaosSLOPoint]
    slo_p99_s: float
    #: (clients, schedule) -> min daemons holding p99 lag <= slo_p99_s
    #: among the swept counts (None: no swept count was enough).
    daemons_for_slo: Dict[Tuple[int, str], Optional[int]]
    #: Crashed-and-respawned runs end byte-identical to the uncrashed
    #: run at the same (clients, daemons): Q1-Q4 answers and their
    #: billing — the chaos recovery invariant.
    recovery_identical: bool
    #: ``c<clients>-d<daemons>-<schedule>`` -> that run's final metrics
    #: snapshot (the BENCH ``telemetry`` section carries these).
    telemetry: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def render(self) -> str:
        table = render_table(
            (
                "Clients", "Daemons", "Schedule", "Committed", "Drain (s)",
                "Lag mean", "Lag p99", "p99 (trace)", "Lag max", "Crashes",
                "Respawns", "Stale peak",
            ),
            [
                (
                    p.clients,
                    p.daemons,
                    p.schedule,
                    f"{p.committed}/{p.flushes}",
                    f"{p.drain_seconds:.1f}",
                    f"{p.lag_mean_s:.1f}s",
                    f"{p.lag_p99_s:.1f}s",
                    f"{p.lag_p99_trace_s:.1f}s"
                    + ("" if p.trace_lags_match else "!"),
                    f"{p.lag_max_s:.1f}s",
                    p.crashes_fired,
                    p.respawns,
                    p.reader_stale_peak,
                )
                for p in self.points
            ],
            title="Chaos sweep: daemons x fleet x fault schedule",
        )
        slo_rows = [
            (clients, schedule, "-" if daemons is None else daemons)
            for (clients, schedule), daemons in sorted(
                self.daemons_for_slo.items()
            )
        ]
        slo_table = render_table(
            ("Clients", "Schedule", f"Daemons for p99 <= {self.slo_p99_s:.0f}s"),
            slo_rows,
            title="SLO sizing: daemons needed to hold the p99 commit lag",
        )
        invariant = (
            "chaos recovery invariant (crashed+respawned == uncrashed): "
            f"{self.recovery_identical}"
        )
        return "\n\n".join([table, slo_table, invariant])

    def as_json(self) -> Dict[str, object]:
        return {
            "slo_p99_s": self.slo_p99_s,
            "recovery_identical": self.recovery_identical,
            "points": [
                {
                    "clients": p.clients,
                    "daemons": p.daemons,
                    "schedule": p.schedule,
                    "flushes": p.flushes,
                    "committed": p.committed,
                    "elapsed_seconds": p.elapsed_seconds,
                    "drain_seconds": p.drain_seconds,
                    "lag_mean_s": p.lag_mean_s,
                    "lag_p99_s": p.lag_p99_s,
                    "lag_max_s": p.lag_max_s,
                    "crashes_fired": p.crashes_fired,
                    "respawns": p.respawns,
                    "reader_samples": p.reader_samples,
                    "reader_stale_peak": p.reader_stale_peak,
                    "reader_final_stale": p.reader_final_stale,
                    "lag_p99_trace_s": p.lag_p99_trace_s,
                    "trace_lags_match": p.trace_lags_match,
                }
                for p in self.points
            ],
            "daemons_for_slo": [
                {
                    "clients": clients,
                    "schedule": schedule,
                    "daemons": daemons,
                }
                for (clients, schedule), daemons in sorted(
                    self.daemons_for_slo.items()
                )
            ],
        }


#: The named fault schedules the chaos sweep understands.
CHAOS_SCHEDULES = ("steady", "crashes", "degraded")


def chaos_fleet_run(
    clients: int = 4,
    files_per_client: int = 3,
    daemons: int = 1,
    schedule: str = "steady",
    seed: int = 0,
    think_s: float = 2.0,
    poll_interval: float = 1.0,
    extra_attributes: int = 8,
    file_bytes: int = 16 * 1024,
    readers: int = 1,
    reader_interval_s: float = 6.0,
    crash_every_s: float = 20.0,
    crash_start_at: float = 10.0,
    respawn_delay_s: float = 2.0,
    degrade_t1: float = 8.0,
    degrade_t2: float = 40.0,
    degrade_add_latency_s: float = 0.25,
    degrade_duplicate_rate: float = 0.25,
    drain_horizon_s: float = 1800.0,
    backend: str = "sim",
) -> ChaosRunOutcome:
    """One chaos run: a P3 fleet on the kernel under a named fault
    schedule, with concurrent Q1/Q3 readers, drained to quiescence and
    fingerprinted.

    Schedules:

    - ``steady`` — no faults (the baseline the invariant compares to).
    - ``crashes`` — the commit daemon ``daemon-0`` is killed every
      ``crash_every_s`` seconds and respawned ``respawn_delay_s`` later
      as a *fresh* :class:`~repro.core.commit_daemon.CommitDaemon`
      resuming from the SQS queue mid-run; SQS redelivers whatever the
      dead incarnation had received but not deleted.
    - ``degraded`` — a network-degradation window over
      [``degrade_t1``, ``degrade_t2``): every request pays
      ``degrade_add_latency_s`` extra and SQS delivers duplicates at
      ``degrade_duplicate_rate`` until the window closes and the
      baseline is restored.

    Deterministic per (arguments, seed); the recovery invariant is that
    the ``crashes`` run's settled store answers Q1-Q4 byte-identically
    to the ``steady`` run's.
    """
    import random as _random

    from repro.core.commit_daemon import CommitDaemon
    from repro.sim import SimKernel
    from repro.workloads.fleet import (
        FLEET_PROGRAM,
        FleetWatch,
        ReaderSample,
        make_fleet,
        protocol_client_process,
        reader_process,
    )

    if schedule not in CHAOS_SCHEDULES:
        raise ValueError(
            f"unknown chaos schedule {schedule!r} (one of {CHAOS_SCHEDULES})"
        )

    account = CloudAccount(seed=seed, backend=backend)
    protocol = ProtocolP3(account, client_id="fleet-shared")
    fleet = make_fleet(
        clients=clients,
        files_per_client=files_per_client,
        file_bytes=file_bytes,
        extra_attributes=extra_attributes,
        seed=seed,
    )
    kernel = SimKernel(account)
    kernel.scrape_every(5.0)
    watch = FleetWatch()

    daemon_objs: List = []

    def fresh_daemon_process():
        daemon = CommitDaemon(
            account=account,
            queue_url=protocol.queue_url,
            bucket=protocol.bucket,
            domain=protocol.domain,
            router=protocol.router,
        )
        daemon_objs.append(daemon)
        return daemon.process(poll_interval=poll_interval)

    for index in range(daemons):
        kernel.spawn(
            fresh_daemon_process(), name=f"daemon-{index}", daemon=True
        )

    recurring = None
    if schedule == "crashes":
        recurring = account.faults.schedule.crash_every(
            "daemon-0", every_s=crash_every_s, start_at=crash_start_at
        )
        account.faults.schedule.respawn(
            "daemon-0", fresh_daemon_process, delay_s=respawn_delay_s
        )
    elif schedule == "degraded":
        account.faults.schedule.degrade(
            degrade_t1,
            degrade_t2,
            add_latency_s=degrade_add_latency_s,
            duplicate_delivery_rate=degrade_duplicate_rate,
        )

    master = _random.Random(seed)
    for client in fleet:
        rng = _random.Random(master.randrange(1 << 30))
        kernel.spawn(
            protocol_client_process(protocol, client, think_s, rng, watch),
            name=client.client_id,
        )

    samples: List[ReaderSample] = []
    reader_rng = _random.Random(master.randrange(1 << 30))
    for index in range(readers):
        kernel.spawn(
            reader_process(
                account,
                protocol.router.domains,
                FLEET_PROGRAM,
                watch,
                samples,
                interval_s=reader_interval_s,
                queries=("q1", "q3"),
                rng=_random.Random(reader_rng.randrange(1 << 30)),
                label=f"reader-{index}",
            ),
            name=f"reader-{index}",
            daemon=True,
        )

    kernel.run()  # clients to completion
    clients_done_at = account.now
    horizon = account.now + drain_horizon_s
    while (
        account.sqs.pending_count(protocol.queue_url) > 0
        and account.now < horizon
    ):
        kernel.run(until=min(account.now + 5 * poll_interval, horizon))
    # One more beat so daemons finish commit bookkeeping cut mid-step
    # (the drain loop exits the moment the queue empties, which can be
    # mid-activation — before commit_log is stamped).
    kernel.run(until=account.now + 2 * poll_interval)
    # Let eventual consistency settle, then give the readers one final
    # beat over the settled store (their last samples should see
    # everything the fleet flushed).
    account.settle(120.0)
    kernel.run(until=account.now + 2 * reader_interval_s)

    lags = [
        record.committed_at - record.logged_at
        for daemon in daemon_objs
        for record in daemon.commit_log
    ]
    # Re-derive the same lags from record-lifecycle traces.  Both sides
    # keep the *first* commit per transaction (SQS duplicate delivery can
    # commit a txn twice; the trace's ``commit.done`` records the earliest
    # time), so the comparison is per-txn minimum against per-txn span.
    legacy_by_txn: Dict[str, float] = {}
    for daemon in daemon_objs:
        for record in daemon.commit_log:
            lag = record.committed_at - record.logged_at
            previous = legacy_by_txn.get(record.txn_id)
            if previous is None or lag < previous:
                legacy_by_txn[record.txn_id] = lag
    trace_by_txn = dict(account.telemetry.tracer.commit_lags())
    trace_lags_match = legacy_by_txn == trace_by_txn
    committed = sum(d.committed_count() for d in daemon_objs)
    last_commit = max(
        (record.committed_at for d in daemon_objs for record in d.commit_log),
        default=clients_done_at,
    )
    q1_samples = [s for s in samples if s.query == "q1"]
    point = ChaosSLOPoint(
        clients=clients,
        daemons=daemons,
        schedule=schedule,
        flushes=sum(len(client.works) for client in fleet),
        committed=committed,
        elapsed_seconds=max(clients_done_at, last_commit),
        drain_seconds=max(0.0, last_commit - clients_done_at),
        lag_mean_s=sum(lags) / len(lags) if lags else 0.0,
        lag_p99_s=_percentile(lags, 0.99),
        lag_max_s=max(lags, default=0.0),
        crashes_fired=len(recurring.fired_at) if recurring else 0,
        respawns=sum(
            policy.respawns
            for policy in account.faults.schedule.respawns.values()
        ),
        reader_samples=len(samples),
        reader_stale_peak=max((s.stale for s in q1_samples), default=0),
        reader_final_stale=q1_samples[-1].stale if q1_samples else 0,
        lag_p99_trace_s=_percentile(list(trace_by_txn.values()), 0.99),
        trace_lags_match=trace_lags_match,
    )

    # Fingerprint the settled store: raw Q1 rows plus the engine's
    # Q2/Q3/Q4, with the operations/bytes those queries billed.
    engine = SimpleDBQueryEngine(
        account, domain=protocol.domain, bucket=protocol.bucket
    )
    target_path = f"{MOUNT}fleet/c0000/f000.dat"
    q1_rows = account.simpledb.select(f"select * from {protocol.domain}")
    ops_before = account.billing.operation_count()
    bytes_before = (
        account.billing.bytes_received() + account.billing.bytes_transmitted()
    )
    q2, _ = engine.q2_object_provenance(target_path)
    q3, _ = engine.q3_direct_outputs(FLEET_PROGRAM)
    q4, _ = engine.q4_all_descendants(FLEET_PROGRAM)
    query_billing = (
        account.billing.operation_count() - ops_before,
        account.billing.bytes_received()
        + account.billing.bytes_transmitted()
        - bytes_before,
    )
    from repro.backends.parity import store_fingerprint

    fingerprint = store_fingerprint(account, queue_urls=[protocol.queue_url])
    outcome = ChaosRunOutcome(
        point=point,
        answers=(repr(q1_rows), repr(q2), repr(q3), repr(q4)),
        query_billing=query_billing,
        telemetry=account.telemetry.metrics.snapshot(),
        store_fingerprint=fingerprint,
    )
    account.close()
    return outcome


def chaos_slo_experiment(
    fleet_sizes: Sequence[int] = (2, 4),
    daemon_counts: Sequence[int] = (1, 2),
    schedules: Sequence[str] = CHAOS_SCHEDULES,
    slo_p99_s: float = 30.0,
    seed: int = 0,
    **run_kwargs,
) -> ChaosSLOResult:
    """The chaos sweep: daemon count x fleet size x fault schedule.

    Two headline outputs beyond the raw points:

    - **SLO sizing** — for each (fleet size, schedule), the minimum
      swept daemon count holding the p99 commit lag at or under
      ``slo_p99_s`` (the "how many daemons do I need" table; the drain
      knee is where one daemon stops being enough).
    - **The chaos recovery invariant** — for every (fleet size, daemon
      count), the ``crashes`` run (scheduled daemon kills + fresh-daemon
      respawns) must end with Q1-Q4 answers and query billing
      byte-identical to the ``steady`` run: the WAL, not any daemon's
      memory, is the authority.
    """
    points: List[ChaosSLOPoint] = []
    outcomes: Dict[Tuple[int, int, str], ChaosRunOutcome] = {}
    telemetry: Dict[str, Dict[str, object]] = {}
    for clients in fleet_sizes:
        for daemons in daemon_counts:
            for schedule in schedules:
                outcome = chaos_fleet_run(
                    clients=clients,
                    daemons=daemons,
                    schedule=schedule,
                    seed=seed,
                    **run_kwargs,
                )
                outcomes[(clients, daemons, schedule)] = outcome
                points.append(outcome.point)
                telemetry[f"c{clients}-d{daemons}-{schedule}"] = (
                    outcome.telemetry
                )

    daemons_for_slo: Dict[Tuple[int, str], Optional[int]] = {}
    for clients in fleet_sizes:
        for schedule in schedules:
            enough = [
                daemons
                for daemons in sorted(daemon_counts)
                if outcomes[(clients, daemons, schedule)].point.lag_p99_s
                <= slo_p99_s
            ]
            daemons_for_slo[(clients, schedule)] = (
                enough[0] if enough else None
            )

    recovery_identical = True
    if "steady" in schedules and "crashes" in schedules:
        for clients in fleet_sizes:
            for daemons in daemon_counts:
                steady = outcomes[(clients, daemons, "steady")]
                crashed = outcomes[(clients, daemons, "crashes")]
                if (
                    steady.answers != crashed.answers
                    or steady.query_billing != crashed.query_billing
                ):
                    recovery_identical = False

    return ChaosSLOResult(
        points=points,
        slo_p99_s=slo_p99_s,
        daemons_for_slo=daemons_for_slo,
        recovery_identical=recovery_identical,
        telemetry=telemetry,
    )


#: The fleet-sizing modes the autoscale sweep compares.  ``static-N``
#: pins N commit daemons for the whole run (the BENCH_chaos_slo
#: configuration); ``auto`` runs the supervisor control plane.
AUTOSCALE_MODES = ("static-1", "static-2", "auto")

#: Schedules the autoscale sweep runs (the chaos ``degraded`` axis is
#: covered by BENCH_chaos_slo; the autoscaler targets the crash tail).
AUTOSCALE_SCHEDULES = ("steady", "crashes")


@dataclass
class AutoscalePoint:
    """One (fleet size, mode, schedule) autoscale run's measurements."""

    clients: int
    mode: str
    schedule: str
    flushes: int
    committed: int
    elapsed_seconds: float
    drain_seconds: float
    lag_mean_s: float
    lag_p99_s: float
    lag_max_s: float
    #: Read-staleness SLO axis: p99 of the Q1 readers'
    #: :attr:`~repro.workloads.fleet.ReaderSample.stale` observations.
    stale_p99: float
    crashes_fired: int
    respawns: int
    #: Provisioned daemon time: Σ over every ``pool-*`` incarnation of
    #: (finish − first activation) — the fleet-cost axis the autoscaler
    #: must beat by scaling down when load subsides.
    daemon_seconds: float
    pool_peak: int
    pool_end: int
    scale_ups: int = 0
    scale_downs: int = 0
    window_adjusts: int = 0


@dataclass
class AutoscaleRunOutcome:
    """An autoscale run's point plus the settled store's fingerprint."""

    point: AutoscalePoint
    answers: Tuple[str, str, str, str]
    query_billing: Tuple[int, int]
    telemetry: Dict[str, object] = field(default_factory=dict)


@dataclass
class AutoscaleSLOResult:
    """The autoscale sweep: fleet size x mode x fault schedule.

    The headline extends BENCH_chaos_slo's negative result: where *no*
    static daemon count met the p99 commit-lag SLO under recurring
    crashes, the supervisor does — and still spends fewer provisioned
    daemon-seconds than the largest static fleet, because it scales
    back down once the WAL backlog clears.
    """

    points: List[AutoscalePoint]
    slo_p99_s: float
    #: (clients, schedule, mode) -> that cell's p99 lag met the SLO.
    slo_met: Dict[Tuple[int, str, str], bool]
    #: (clients, schedule) cells where every static mode misses the SLO
    #: but ``auto`` meets it — the filled ``null`` cells.
    filled_cells: List[Tuple[int, str]]
    #: (clients, schedule) -> auto used fewer daemon-seconds than the
    #: largest static fleet in that cell.
    auto_cheaper: Dict[Tuple[int, str], bool]
    #: Every crashes run ends byte-identical (Q1-Q4 answers + query
    #: billing) to the same-mode steady run.
    recovery_identical: bool
    telemetry: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def render(self) -> str:
        table = render_table(
            (
                "Clients", "Mode", "Schedule", "Committed", "Lag p99",
                "SLO", "Stale p99", "Daemon-s", "Pool peak/end",
                "Scale up/down", "Crashes", "Respawns",
            ),
            [
                (
                    p.clients,
                    p.mode,
                    p.schedule,
                    f"{p.committed}/{p.flushes}",
                    f"{p.lag_p99_s:.1f}s",
                    "ok"
                    if self.slo_met[(p.clients, p.schedule, p.mode)]
                    else "MISS",
                    f"{p.stale_p99:.0f}",
                    f"{p.daemon_seconds:.0f}",
                    f"{p.pool_peak}/{p.pool_end}",
                    f"{p.scale_ups}/{p.scale_downs}",
                    p.crashes_fired,
                    p.respawns,
                )
                for p in self.points
            ],
            title="Autoscale sweep: fleet x mode x fault schedule",
        )
        filled = ", ".join(
            f"(clients={c}, {s})" for c, s in self.filled_cells
        ) or "none"
        lines = [
            table,
            f"p99 commit-lag SLO: {self.slo_p99_s:.0f}s",
            f"null cells filled by the autoscaler: {filled}",
            "auto cheaper than largest static fleet: "
            + ", ".join(
                f"(clients={c}, {s}): {ok}"
                for (c, s), ok in sorted(self.auto_cheaper.items())
            ),
            "chaos recovery invariant (crashes == steady, per mode): "
            f"{self.recovery_identical}",
        ]
        return "\n\n".join(lines)

    def as_json(self) -> Dict[str, object]:
        return {
            "slo_p99_s": self.slo_p99_s,
            "recovery_identical": self.recovery_identical,
            "points": [
                {
                    "clients": p.clients,
                    "mode": p.mode,
                    "schedule": p.schedule,
                    "flushes": p.flushes,
                    "committed": p.committed,
                    "elapsed_seconds": p.elapsed_seconds,
                    "drain_seconds": p.drain_seconds,
                    "lag_mean_s": p.lag_mean_s,
                    "lag_p99_s": p.lag_p99_s,
                    "lag_max_s": p.lag_max_s,
                    "stale_p99": p.stale_p99,
                    "crashes_fired": p.crashes_fired,
                    "respawns": p.respawns,
                    "daemon_seconds": p.daemon_seconds,
                    "pool_peak": p.pool_peak,
                    "pool_end": p.pool_end,
                    "scale_ups": p.scale_ups,
                    "scale_downs": p.scale_downs,
                    "window_adjusts": p.window_adjusts,
                    "slo_met": self.slo_met[
                        (p.clients, p.schedule, p.mode)
                    ],
                }
                for p in self.points
            ],
            "filled_cells": [
                {"clients": c, "schedule": s} for c, s in self.filled_cells
            ],
            "auto_cheaper": [
                {"clients": c, "schedule": s, "cheaper": ok}
                for (c, s), ok in sorted(self.auto_cheaper.items())
            ],
        }


def autoscale_fleet_run(
    clients: int = 4,
    files_per_client: int = 3,
    mode: str = "auto",
    schedule: str = "crashes",
    seed: int = 0,
    think_s: float = 2.0,
    poll_interval: float = 1.0,
    extra_attributes: int = 8,
    file_bytes: int = 16 * 1024,
    readers: int = 1,
    reader_interval_s: float = 6.0,
    crash_every_s: float = 20.0,
    crash_start_at: float = 10.0,
    respawn_delay_s: float = 2.0,
    drain_horizon_s: float = 1800.0,
    supervisor_config=None,
) -> AutoscaleRunOutcome:
    """One autoscale run: the chaos fleet of :func:`chaos_fleet_run`,
    with the commit-daemon pool sized either statically (``static-N``)
    or by the :class:`~repro.service.supervisor.Supervisor` control
    plane (``auto``).

    Both modes name their daemons ``pool-0..``, and the ``crashes``
    schedule kills ``pool-0`` on the same cadence — the only difference
    is the control plane.  The static pool reproduces BENCH_chaos_slo's
    configuration: stock 30 s visibility timeout and a flat respawn
    delay.  The supervised pool receives with a tight visibility lease,
    respawns with exponential backoff, and grows/shrinks with the WAL —
    which is exactly what removes the stranded-message tail that makes
    every static count miss the p99 SLO under crashes.
    """
    import random as _random

    from repro.core.commit_daemon import CommitDaemon
    from repro.service.supervisor import Supervisor, SupervisorConfig
    from repro.sim import SimKernel
    from repro.workloads.fleet import (
        FLEET_PROGRAM,
        FleetWatch,
        ReaderSample,
        make_fleet,
        protocol_client_process,
        reader_process,
    )

    if schedule not in AUTOSCALE_SCHEDULES:
        raise ValueError(
            f"unknown autoscale schedule {schedule!r} "
            f"(one of {AUTOSCALE_SCHEDULES})"
        )
    if mode != "auto" and not mode.startswith("static-"):
        raise ValueError(f"unknown autoscale mode {mode!r}")

    account = CloudAccount(seed=seed)
    protocol = ProtocolP3(account, client_id="fleet-shared")
    fleet = make_fleet(
        clients=clients,
        files_per_client=files_per_client,
        file_bytes=file_bytes,
        extra_attributes=extra_attributes,
        seed=seed,
    )
    kernel = SimKernel(account)
    kernel.scrape_every(5.0)
    watch = FleetWatch()

    daemon_objs: List = []
    supervisor: Optional[Supervisor] = None

    def fresh_daemon() -> CommitDaemon:
        daemon = CommitDaemon(
            account=account,
            queue_url=protocol.queue_url,
            bucket=protocol.bucket,
            domain=protocol.domain,
            router=protocol.router,
        )
        daemon_objs.append(daemon)
        return daemon

    if mode == "auto":
        config = (
            supervisor_config
            if supervisor_config is not None
            else SupervisorConfig(poll_interval_s=poll_interval)
        )
        supervisor = Supervisor(
            account,
            kernel,
            fresh_daemon,
            protocol.queue_url,
            config=config,
        )
        supervisor.start()
        kernel.spawn(supervisor.process(), name="supervisor", daemon=True)
    else:
        static_count = int(mode.split("-", 1)[1])
        if static_count < 1:
            raise ValueError(f"static mode needs >= 1 daemon (got {mode})")
        for index in range(static_count):
            kernel.spawn(
                fresh_daemon().process(poll_interval=poll_interval),
                name=f"pool-{index}",
                daemon=True,
            )
        account.faults.schedule.respawn(
            "pool-0",
            lambda: fresh_daemon().process(poll_interval=poll_interval),
            delay_s=respawn_delay_s,
        )

    recurring = None
    if schedule == "crashes":
        recurring = account.faults.schedule.crash_every(
            "pool-0", every_s=crash_every_s, start_at=crash_start_at
        )

    master = _random.Random(seed)
    for client in fleet:
        rng = _random.Random(master.randrange(1 << 30))
        kernel.spawn(
            protocol_client_process(protocol, client, think_s, rng, watch),
            name=client.client_id,
        )

    samples: List[ReaderSample] = []
    reader_rng = _random.Random(master.randrange(1 << 30))
    for index in range(readers):
        kernel.spawn(
            reader_process(
                account,
                protocol.router.domains,
                FLEET_PROGRAM,
                watch,
                samples,
                interval_s=reader_interval_s,
                queries=("q1", "q3"),
                rng=_random.Random(reader_rng.randrange(1 << 30)),
                label=f"reader-{index}",
            ),
            name=f"reader-{index}",
            daemon=True,
        )

    kernel.run()  # clients to completion
    clients_done_at = account.now
    horizon = account.now + drain_horizon_s
    while (
        account.sqs.pending_count(protocol.queue_url) > 0
        and account.now < horizon
    ):
        kernel.run(until=min(account.now + 5 * poll_interval, horizon))
    kernel.run(until=account.now + 2 * poll_interval)
    # Daemon-seconds are measured at drain end, before the settle below
    # inflates every surviving member's provisioned time equally.
    daemon_seconds = 0.0
    pool_incarnations = 0
    for process in kernel.processes:
        if not process.name.startswith("pool-"):
            continue
        domain = process.domain
        if domain.started_at < 0:
            continue
        pool_incarnations += 1
        finished = (
            domain.finished_at if domain.finished_at >= 0 else account.now
        )
        daemon_seconds += finished - domain.started_at
    account.settle(120.0)
    kernel.run(until=account.now + 2 * reader_interval_s)

    lags = [
        record.committed_at - record.logged_at
        for daemon in daemon_objs
        for record in daemon.commit_log
    ]
    committed = sum(d.committed_count() for d in daemon_objs)
    last_commit = max(
        (record.committed_at for d in daemon_objs for record in d.commit_log),
        default=clients_done_at,
    )
    q1_samples = [s for s in samples if s.query == "q1"]
    events = account.telemetry.events
    if mode == "auto":
        pool_end = len(supervisor.pool)
        pool_peak = max(
            [len(supervisor.pool)]
            + [
                int(event["pool"])
                for event in events.of_kind("supervisor.scale_up")
            ]
        )
    else:
        pool_end = pool_peak = int(mode.split("-", 1)[1])
    point = AutoscalePoint(
        clients=clients,
        mode=mode,
        schedule=schedule,
        flushes=sum(len(client.works) for client in fleet),
        committed=committed,
        elapsed_seconds=max(clients_done_at, last_commit),
        drain_seconds=max(0.0, last_commit - clients_done_at),
        lag_mean_s=sum(lags) / len(lags) if lags else 0.0,
        lag_p99_s=_percentile(lags, 0.99),
        lag_max_s=max(lags, default=0.0),
        stale_p99=_percentile([float(s.stale) for s in q1_samples], 0.99),
        crashes_fired=len(recurring.fired_at) if recurring else 0,
        respawns=sum(
            policy.respawns
            for policy in account.faults.schedule.respawns.values()
        ),
        daemon_seconds=daemon_seconds,
        pool_peak=pool_peak,
        pool_end=pool_end,
        scale_ups=len(events.of_kind("supervisor.scale_up")),
        scale_downs=len(events.of_kind("supervisor.scale_down")),
        window_adjusts=len(events.of_kind("supervisor.window_adjust")),
    )

    engine = SimpleDBQueryEngine(
        account, domain=protocol.domain, bucket=protocol.bucket
    )
    target_path = f"{MOUNT}fleet/c0000/f000.dat"
    q1_rows = account.simpledb.select(f"select * from {protocol.domain}")
    ops_before = account.billing.operation_count()
    bytes_before = (
        account.billing.bytes_received() + account.billing.bytes_transmitted()
    )
    q2, _ = engine.q2_object_provenance(target_path)
    q3, _ = engine.q3_direct_outputs(FLEET_PROGRAM)
    q4, _ = engine.q4_all_descendants(FLEET_PROGRAM)
    query_billing = (
        account.billing.operation_count() - ops_before,
        account.billing.bytes_received()
        + account.billing.bytes_transmitted()
        - bytes_before,
    )
    return AutoscaleRunOutcome(
        point=point,
        answers=(repr(q1_rows), repr(q2), repr(q3), repr(q4)),
        query_billing=query_billing,
        telemetry=account.telemetry.metrics.snapshot(),
    )


def autoscale_slo_experiment(
    fleet_sizes: Sequence[int] = (2, 4),
    modes: Sequence[str] = AUTOSCALE_MODES,
    schedules: Sequence[str] = AUTOSCALE_SCHEDULES,
    slo_p99_s: float = 30.0,
    seed: int = 0,
    **run_kwargs,
) -> AutoscaleSLOResult:
    """The autoscale sweep: fleet size x sizing mode x fault schedule.

    Headlines beyond the raw points:

    - **Filled null cells** — (fleet, schedule) cells where every
      static mode misses the p99 commit-lag SLO but the supervisor
      meets it (BENCH_chaos_slo's ``daemons: null`` rows, closed).
    - **Scale-down economy** — in each cell the supervisor uses fewer
      provisioned daemon-seconds than the largest static fleet.
    - **The chaos recovery invariant** — every ``crashes`` run ends
      with Q1-Q4 answers and query billing byte-identical to the
      same-mode ``steady`` run.
    """
    points: List[AutoscalePoint] = []
    outcomes: Dict[Tuple[int, str, str], AutoscaleRunOutcome] = {}
    telemetry: Dict[str, Dict[str, object]] = {}
    for clients in fleet_sizes:
        for mode in modes:
            for schedule in schedules:
                outcome = autoscale_fleet_run(
                    clients=clients,
                    mode=mode,
                    schedule=schedule,
                    seed=seed,
                    **run_kwargs,
                )
                outcomes[(clients, mode, schedule)] = outcome
                points.append(outcome.point)
                telemetry[f"c{clients}-{mode}-{schedule}"] = (
                    outcome.telemetry
                )

    slo_met = {
        (p.clients, p.schedule, p.mode): p.lag_p99_s <= slo_p99_s
        for p in points
    }
    static_modes = [m for m in modes if m.startswith("static-")]
    filled_cells: List[Tuple[int, str]] = []
    auto_cheaper: Dict[Tuple[int, str], bool] = {}
    if "auto" in modes and static_modes:
        for clients in fleet_sizes:
            for schedule in schedules:
                statics_fail = all(
                    not slo_met[(clients, schedule, m)] for m in static_modes
                )
                if statics_fail and slo_met[(clients, schedule, "auto")]:
                    filled_cells.append((clients, schedule))
                max_static = max(
                    outcomes[(clients, m, schedule)].point.daemon_seconds
                    for m in static_modes
                )
                auto_cheaper[(clients, schedule)] = (
                    outcomes[(clients, "auto", schedule)].point.daemon_seconds
                    < max_static
                )

    recovery_identical = True
    if "steady" in schedules and "crashes" in schedules:
        for clients in fleet_sizes:
            for mode in modes:
                steady = outcomes[(clients, mode, "steady")]
                crashed = outcomes[(clients, mode, "crashes")]
                if (
                    steady.answers != crashed.answers
                    or steady.query_billing != crashed.query_billing
                ):
                    recovery_identical = False

    return AutoscaleSLOResult(
        points=points,
        slo_p99_s=slo_p99_s,
        slo_met=slo_met,
        filled_cells=filled_cells,
        auto_cheaper=auto_cheaper,
        recovery_identical=recovery_identical,
        telemetry=telemetry,
    )


@dataclass
class ChunkSweepResult:
    #: (chunk_bytes, elapsed seconds, message count)
    points: List[Tuple[int, float, int]]

    def render(self) -> str:
        return render_table(
            ("Chunk bytes", "Time (s)", "Messages"),
            [(c, f"{s:.1f}", n) for c, s, n in self.points],
            title="P3 WAL chunk-size ablation (8 KB is the SQS limit)",
        )


def ablation_chunk_size(
    target_bytes: int = 8 * 1024 * 1024,
    chunk_sizes: Sequence[int] = (1024, 2048, 4096, 8192),
    connections: int = 150,
    seed: int = 7,
) -> ChunkSweepResult:
    """Design-choice check for §4.3.3: bigger WAL chunks mean fewer SQS
    round trips; the 8 KB service limit is the best the client can do."""
    records = make_linux_compile_records(target_bytes=target_bytes, seed=seed)
    points: List[Tuple[int, float, int]] = []
    for chunk_bytes in chunk_sizes:
        account = CloudAccount(seed=seed)
        url = account.sqs.create_queue("bench")
        chunks = chunk_encoded(records, chunk_bytes)
        requests = [account.sqs.send_request(url, chunk) for chunk in chunks]
        makespan = account.scheduler.execute_batch(requests, connections).makespan
        points.append((chunk_bytes, makespan, len(chunks)))
    return ChunkSweepResult(points=points)


@dataclass
class BackendParityPoint:
    """One configuration's sim-vs-local comparison."""

    configuration: str
    #: The simulator's predicted elapsed virtual time (identical on
    #: both backends by construction — asserted below).
    predicted_virtual_s: float
    #: Host wall-clock seconds the replay took on each backend.
    sim_wall_s: float
    local_wall_s: float
    operations: int
    bytes_transmitted: int
    cost_usd: float
    #: Whether the two backends' MicrobenchResults were equal.
    results_match: bool
    #: Whether the two settled stores fingerprinted identically.
    fingerprints_match: bool
    store_fingerprint: str


@dataclass
class BackendParityResult:
    """The backend-parity experiment: predictions vs sqlite reality."""

    points: List[BackendParityPoint]
    backend_root: str = ""

    @property
    def all_match(self) -> bool:
        return all(p.results_match and p.fingerprints_match for p in self.points)

    def render(self) -> str:
        rows = [
            (
                p.configuration,
                f"{p.predicted_virtual_s:.1f}",
                f"{p.sim_wall_s:.3f}",
                f"{p.local_wall_s:.3f}",
                p.operations,
                "yes" if p.results_match and p.fingerprints_match else "NO",
            )
            for p in self.points
        ]
        return render_table(
            (
                "Config",
                "Predicted (virtual s)",
                "Sim wall (s)",
                "Local wall (s)",
                "Ops",
                "Parity",
            ),
            rows,
            title="Backend parity: simulated predictions vs sqlite reality",
        )

    def as_json(self) -> Dict[str, Dict[str, object]]:
        return {
            p.configuration: {
                "predicted_virtual_s": p.predicted_virtual_s,
                "sim_wall_s": p.sim_wall_s,
                "local_wall_s": p.local_wall_s,
                "operations": p.operations,
                "bytes_transmitted": p.bytes_transmitted,
                "cost_usd": p.cost_usd,
                "results_match": p.results_match,
                "fingerprints_match": p.fingerprints_match,
                "store_fingerprint": p.store_fingerprint,
            }
            for p in self.points
        }


def backend_parity(
    scale: float = 0.1,
    seed: int = 0,
    configurations: Sequence[str] = CONFIGURATIONS,
) -> BackendParityResult:
    """The Blast replay per configuration on both backends, comparing
    the simulator's cost/latency *predictions* (virtual seconds,
    operation counts, dollars — identical on both backends by
    construction) against the *measured* host wall clock of real sqlite
    and filesystem storage.

    The virtual-time results must be byte-identical; the wall-clock
    columns are the honest physical difference between the in-memory
    and on-disk substrates.  Wall-clock numbers are measurement of the
    harness itself and never feed back into any simulated quantity.
    """
    import time

    from repro.backends.parity import store_fingerprint

    workload = _workload_by_name("blast", scale)
    profile = SimulationProfile()
    points: List[BackendParityPoint] = []
    last_root = ""
    for config in configurations:
        outcomes = {}
        for backend in ("sim", "local"):
            account = CloudAccount(profile=profile, seed=seed, backend=backend)
            t0 = time.perf_counter()  # wallclock-ok
            result = run_microbenchmark(
                workload, config, profile=profile, seed=seed, account=account
            )
            wall = time.perf_counter() - t0  # wallclock-ok
            account.settle(120.0)
            outcomes[backend] = (result, store_fingerprint(account), wall)
            if backend == "local":
                last_root = account.backend_root or ""
            account.close()
        (sim_res, sim_fp, sim_wall) = outcomes["sim"]
        (loc_res, loc_fp, loc_wall) = outcomes["local"]
        points.append(
            BackendParityPoint(
                configuration=config,
                predicted_virtual_s=sim_res.elapsed_seconds,
                sim_wall_s=sim_wall,
                local_wall_s=loc_wall,
                operations=sim_res.operations,
                bytes_transmitted=sim_res.bytes_transmitted,
                cost_usd=sim_res.cost_usd,
                results_match=sim_res == loc_res,
                fingerprints_match=sim_fp == loc_fp,
                store_fingerprint=sim_fp,
            )
        )
    return BackendParityResult(points=points, backend_root=last_root)
