"""Repeat-and-aggregate plumbing.

The simulator is deterministic for a fixed seed; the paper ran every
workload at least five times and reported means with error bars.  We
reproduce that by re-running experiments under different seeds (which
perturbs eventual-consistency propagation delays and SQS ordering) and
aggregating.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, TypeVar

T = TypeVar("T")


@dataclass
class Aggregate:
    """Mean and spread of a repeated measurement."""

    mean: float
    stddev: float
    samples: List[float]

    @property
    def error_bar(self) -> float:
        """95 % confidence half-width (normal approximation).

        Single-sample runs (and hand-built aggregates with a non-finite
        stddev) have no measurable spread: the half-width is exactly 0.0,
        never NaN or a division artifact.
        """
        if len(self.samples) < 2 or not math.isfinite(self.stddev):
            return 0.0
        return 1.96 * self.stddev / math.sqrt(len(self.samples))

    def __str__(self) -> str:
        return f"{self.mean:.1f} ± {self.error_bar:.1f}"

    def as_dict(self) -> dict:
        """JSON-ready form (feeds the ``BENCH_*.json`` reports)."""
        return {
            "mean": self.mean,
            "stddev": self.stddev,
            "error_bar": self.error_bar,
            "samples": list(self.samples),
        }


def aggregate(samples: Sequence[float]) -> Aggregate:
    """Aggregate raw samples.  A single sample aggregates to its own
    value with stddev 0.0 (not NaN — there is no spread to estimate)."""
    if not samples:
        raise ValueError("cannot aggregate zero samples")
    mean = sum(samples) / len(samples)
    if len(samples) < 2:
        return Aggregate(mean=mean, stddev=0.0, samples=list(samples))
    variance = sum((s - mean) ** 2 for s in samples) / (len(samples) - 1)
    return Aggregate(mean=mean, stddev=math.sqrt(variance), samples=list(samples))


def repeat_with_seeds(
    run: Callable[[int], float], repeats: int = 3, base_seed: int = 0
) -> Aggregate:
    """Run ``run(seed)`` for ``repeats`` distinct seeds and aggregate."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    return aggregate([run(base_seed + i * 101) for i in range(repeats)])
