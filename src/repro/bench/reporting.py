"""Rendering of benchmark results.

Two output forms:

- plain-text tables and ASCII bar series, shaped like the paper's tables
  and figures (for humans reading the pytest output),
- machine-readable ``BENCH_<experiment>.json`` files (for tracking the
  performance trajectory across PRs: each benchmark dumps its headline
  numbers — means, stddevs, operation and byte counts — into a stable
  JSON schema that CI can diff).
"""

from __future__ import annotations

import json
import os
from typing import List, Mapping, Optional, Sequence

#: Environment variable overriding where BENCH_*.json files land.
BENCH_DIR_ENV = "REPRO_BENCH_DIR"

#: Default output directory for machine-readable results (repo-relative).
DEFAULT_BENCH_DIR = "bench-results"

#: Version of the ``telemetry`` section embedded in BENCH_*.json files.
#: Bump when the metric key format or snapshot shape changes.
TELEMETRY_SCHEMA_VERSION = 1


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    title: str,
    labels: Sequence[str],
    values: Sequence[float],
    unit: str = "s",
    width: int = 50,
) -> str:
    """Render one bar-chart series as ASCII bars (a figure stand-in)."""
    peak = max(values) if values else 1.0
    lines = [title]
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(width * value / peak)) if peak > 0 else ""
        lines.append(f"  {label:12s} {value:10.1f}{unit} {bar}")
    return "\n".join(lines)


def telemetry_section(metrics_snapshot: Mapping[str, object]) -> dict:
    """Wrap a final registry snapshot in the versioned BENCH schema."""
    return {
        "schema_version": TELEMETRY_SCHEMA_VERSION,
        "metrics": dict(metrics_snapshot),
    }


def write_bench_json(
    experiment: str,
    results: Mapping[str, object],
    directory: str = "",
    telemetry: Optional[Mapping[str, object]] = None,
) -> str:
    """Write one experiment's machine-readable results.

    The file lands at ``<dir>/BENCH_<experiment>.json`` where ``<dir>``
    is, in priority order: the ``directory`` argument, the
    ``REPRO_BENCH_DIR`` environment variable, or ``bench-results/`` under
    the current working directory.  ``results`` must be JSON-serializable
    (``Aggregate.as_dict()`` helps); non-serializable leaves fall back to
    ``str``.  ``telemetry`` is a final metrics-registry snapshot
    (``account.telemetry.metrics.snapshot()``); when given, the payload
    carries it under a versioned ``telemetry`` section so CI and the
    future autoscaler read machine-readable per-run state instead of
    hand-quoted numbers.  Returns the written path.
    """
    out_dir = directory or os.environ.get(BENCH_DIR_ENV, "") or DEFAULT_BENCH_DIR
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{experiment}.json")
    payload = {"experiment": experiment, "results": results}
    if telemetry is not None:
        payload["telemetry"] = telemetry_section(telemetry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return path
