"""Plain-text rendering of paper-shaped tables and bar-chart series."""

from __future__ import annotations

from typing import List, Sequence


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    title: str,
    labels: Sequence[str],
    values: Sequence[float],
    unit: str = "s",
    width: int = 50,
) -> str:
    """Render one bar-chart series as ASCII bars (a figure stand-in)."""
    peak = max(values) if values else 1.0
    lines = [title]
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(width * value / peak)) if peak > 0 else ""
        lines.append(f"  {label:12s} {value:10.1f}{unit} {bar}")
    return "\n".join(lines)
