"""Timeline export: kernel runs as Chrome trace-event JSON.

The exporter renders a telemetry hub's event log, record traces, and
scraped metric series into the Chrome trace-event format (the JSON
flavour that ``chrome://tracing`` and https://ui.perfetto.dev load
directly):

* each (process name, incarnation) becomes a named thread lane, so a
  respawned daemon shows up as a *new* lane next to its dead ancestor;
* ``proc.slice`` events become ``X`` (complete) slices — one per
  charged kernel resume, spanning the virtual time the step consumed;
* fault injections (``fault.crash`` / ``fault.respawn`` /
  ``fault.degrade.*``) and process lifecycle edges become ``i``
  (instant) markers;
* control-plane decisions (``supervisor.scale_up`` / ``scale_down`` /
  ``window_adjust`` / ``backoff``) get their own ``supervisor`` lane of
  instant markers, so autoscaling actions line up against the pool
  lanes they created;
* record-lifecycle traces become nestable async spans (``b``/``n``/
  ``e``) so a transaction's client-emit → visibility arc reads as one
  horizontal bar with stage ticks;
* scalar metric series from the scraper become ``C`` (counter) tracks.

Virtual seconds map to trace microseconds (``ts = t * 1e6``).  All
output is sorted-key JSON built in deterministic order, so two runs of
the same seed export byte-identical timelines.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from repro.obs.events import EventLog

PID = 1
FAULT_TID = 0
_US = 1_000_000  # virtual seconds -> trace microseconds


def _us(t: float) -> float:
    return round(t * _US, 3)


def _thread_lanes(events: EventLog) -> Dict[Tuple[str, int], int]:
    """Assign a tid per (process name, incarnation), in spawn order."""
    lanes: Dict[Tuple[str, int], int] = {}
    for event in events.of_kind("proc.spawn", "proc.slice"):
        key = (event["name"], event.get("incarnation", 0))
        if key not in lanes:
            lanes[key] = len(lanes) + 1  # tid 0 is the fault lane
    return lanes


def chrome_trace_events(telemetry) -> List[Dict[str, Any]]:
    """Build the ``traceEvents`` list from a telemetry hub."""
    out: List[Dict[str, Any]] = []
    lanes = _thread_lanes(telemetry.events)
    supervisor_events = telemetry.events.of_kind("supervisor.")
    supervisor_tid = len(lanes) + 1 if supervisor_events else None

    out.append(
        {
            "ph": "M",
            "pid": PID,
            "tid": FAULT_TID,
            "name": "thread_name",
            "args": {"name": "faults"},
        }
    )
    for (name, incarnation), tid in lanes.items():
        label = name if incarnation == 0 else f"{name}#{incarnation}"
        out.append(
            {
                "ph": "M",
                "pid": PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": label},
            }
        )
    if supervisor_tid is not None:
        out.append(
            {
                "ph": "M",
                "pid": PID,
                "tid": supervisor_tid,
                "name": "thread_name",
                "args": {"name": "supervisor"},
            }
        )

    for event in telemetry.events:
        if event.kind == "proc.slice":
            tid = lanes[(event["name"], event.get("incarnation", 0))]
            start = event["start"]
            out.append(
                {
                    "ph": "X",
                    "pid": PID,
                    "tid": tid,
                    "name": event["name"],
                    "cat": "proc",
                    "ts": _us(start),
                    "dur": _us(event.t - start),
                }
            )
        elif event.kind in ("proc.done", "proc.crash"):
            tid = lanes.get((event["name"], event.get("incarnation", 0)), FAULT_TID)
            out.append(
                {
                    "ph": "i",
                    "pid": PID,
                    "tid": tid,
                    "name": event.kind,
                    "cat": "proc",
                    "s": "t",
                    "ts": _us(event.t),
                    "args": dict(event.fields),
                }
            )
        elif event.kind.startswith("fault."):
            out.append(
                {
                    "ph": "i",
                    "pid": PID,
                    "tid": FAULT_TID,
                    "name": event.kind,
                    "cat": "fault",
                    "s": "p",  # process-scoped: draws a full-height line
                    "ts": _us(event.t),
                    "args": dict(event.fields),
                }
            )
        elif event.kind.startswith("supervisor."):
            out.append(
                {
                    "ph": "i",
                    "pid": PID,
                    "tid": supervisor_tid,
                    "name": event.kind,
                    "cat": "supervisor",
                    "s": "t",
                    "ts": _us(event.t),
                    "args": dict(event.fields),
                }
            )

    # Record-lifecycle traces as nestable async spans.
    for trace in telemetry.tracer.traces():
        marks = sorted(trace.marks, key=lambda mark: (mark[1], mark[0]))
        if len(marks) < 2:
            continue
        first_t = marks[0][1]
        last_t = marks[-1][1]
        common = {"pid": PID, "cat": "record", "id": trace.key}
        out.append(
            {"ph": "b", "name": trace.key, "ts": _us(first_t), **common}
        )
        for stage, t in marks:
            out.append(
                {
                    "ph": "n",
                    "name": stage,
                    "ts": _us(t),
                    **common,
                }
            )
        out.append({"ph": "e", "name": trace.key, "ts": _us(last_t), **common})

    # Scraped scalar series as counter tracks.
    for key in sorted(telemetry.metrics.series):
        samples = telemetry.metrics.series[key]
        for t, value in samples:
            if not isinstance(value, (int, float)):
                continue  # histogram summaries render poorly as counters
            out.append(
                {
                    "ph": "C",
                    "pid": PID,
                    "name": key,
                    "ts": _us(t),
                    "args": {"value": value},
                }
            )
    return out


def chrome_trace(telemetry) -> Dict[str, Any]:
    return {
        "displayTimeUnit": "ms",
        "traceEvents": chrome_trace_events(telemetry),
        "otherData": {"clock": "virtual", "unit": "1us = 1 virtual microsecond"},
    }


def chrome_trace_json(telemetry) -> str:
    """Byte-stable JSON text of the full timeline."""
    return json.dumps(chrome_trace(telemetry), sort_keys=True, indent=1)


def write_chrome_trace(telemetry, path: str) -> str:
    """Write a Perfetto-loadable timeline; returns ``path``."""
    with open(path, "w") as handle:
        handle.write(chrome_trace_json(telemetry))
        handle.write("\n")
    return path
