"""Unified telemetry for the simulated PASS cloud.

One hub — :class:`Telemetry` — bundles the three observability
surfaces, all driven purely by the virtual clock:

* :class:`~repro.obs.metrics.MetricsRegistry` — labelled counters,
  gauges, and streaming histograms, sampled into deterministic time
  series by a kernel scraper process;
* :class:`~repro.obs.tracing.Tracer` — record-lifecycle traces that
  follow each provenance batch from client emit to first read, so
  commit lag and staleness are span queries, not bespoke bookkeeping;
* :class:`~repro.obs.events.EventLog` — structured kernel events
  (process wakeups, crashes, respawns, degradation windows) feeding
  the JSONL log and the Chrome-trace timeline exporter
  (:mod:`repro.obs.timeline`).

A hub constructed with ``enabled=False`` swaps in no-op instruments
behind the same API, so instrumented code never branches — and the
test suite pins that telemetry on vs off leaves answers and billing
byte-identical (observing must not perturb the simulation).
"""

from __future__ import annotations

from typing import Dict

from repro.obs.events import Event, EventLog
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, metric_key
from repro.obs.tracing import (
    CLIENT_EMIT,
    COMMIT_DONE,
    DAEMON_DEQUEUE,
    GATEWAY_COALESCE,
    READ_FIRST,
    SDB_PUT,
    SDB_VISIBLE,
    STAGES,
    WAL_LOGGED,
    RecordTrace,
    Tracer,
)
from repro.obs.timeline import (
    chrome_trace,
    chrome_trace_events,
    chrome_trace_json,
    write_chrome_trace,
)

__all__ = [
    "Telemetry",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "metric_key",
    "Tracer",
    "RecordTrace",
    "Event",
    "EventLog",
    "chrome_trace",
    "chrome_trace_events",
    "chrome_trace_json",
    "write_chrome_trace",
    "STAGES",
    "CLIENT_EMIT",
    "GATEWAY_COALESCE",
    "WAL_LOGGED",
    "DAEMON_DEQUEUE",
    "SDB_PUT",
    "COMMIT_DONE",
    "SDB_VISIBLE",
    "READ_FIRST",
]


class Telemetry:
    """The per-account observability hub.

    Construct once per :class:`~repro.cloud.account.CloudAccount` (the
    account does this for you) and share everywhere.  Never a module
    singleton: instance numbering lives on the hub so two accounts in
    one process — or two runs of one experiment — can't bleed state
    into each other, which would break same-seed determinism.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.metrics = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(enabled=enabled)
        self.events = EventLog(enabled=enabled)
        self._instance_counts: Dict[str, int] = {}

    def instance_id(self, kind: str) -> int:
        """Dense per-kind instance numbers (``commit-daemon`` 0, 1, …)
        for metric labels; deterministic because construction order is."""
        n = self._instance_counts.get(kind, 0)
        self._instance_counts[kind] = n + 1
        return n

    def scrape(self, now: float) -> None:
        """Sample every metric into its time series at virtual ``now``."""
        self.metrics.scrape(now)

    @staticmethod
    def coerce(value) -> "Telemetry":
        """Accept a hub, ``True``/``False``, or ``None`` (→ enabled)."""
        if isinstance(value, Telemetry):
            return value
        if value is None:
            return Telemetry(enabled=True)
        return Telemetry(enabled=bool(value))
