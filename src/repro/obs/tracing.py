"""Record-lifecycle tracing for provenance batches.

Each P3 flush opens a :class:`RecordTrace` keyed by its transaction id;
item names (``uuid_version``) and record uuids are *aliases* onto the
same trace, so any tier that only knows an item name — SimpleDB marking
visibility, a reader observing a uuid — lands its mark on the right
transaction without threading a context object through every call.

The canonical stage names trace a batch end-to-end::

    client.emit       client hands records to the WAL / gateway
    gateway.coalesce  ingest gateway folds the record into a window
    wal.logged        every SQS log message accepted (max sent_at)
    daemon.dequeue    commit daemon first receives a message of the txn
    sdb.put           daemon's SimpleDB batch-put finished
    commit.done       commit record written (committed_at)
    sdb.visible       last item of the txn visible to eventual reads
    read.first        a reader first observes a uuid of the txn

Commit lag and read-your-writes staleness then *fall out* as span
queries (``wal.logged → commit.done`` and ``wal.logged → read.first``)
instead of bespoke bookkeeping — and the test suite pins that the span
answers equal the legacy ``CommitRecord`` numbers exactly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

CLIENT_EMIT = "client.emit"
GATEWAY_COALESCE = "gateway.coalesce"
WAL_LOGGED = "wal.logged"
DAEMON_DEQUEUE = "daemon.dequeue"
SDB_PUT = "sdb.put"
COMMIT_DONE = "commit.done"
SDB_VISIBLE = "sdb.visible"
READ_FIRST = "read.first"

#: Canonical lifecycle order, used by exporters to sort span marks.
STAGES = (
    CLIENT_EMIT,
    GATEWAY_COALESCE,
    WAL_LOGGED,
    DAEMON_DEQUEUE,
    SDB_PUT,
    COMMIT_DONE,
    SDB_VISIBLE,
    READ_FIRST,
)


class RecordTrace:
    """The lifecycle of one provenance batch (one WAL transaction)."""

    def __init__(self, key: str, attrs: Dict[str, Any]):
        self.key = key
        self.attrs = dict(attrs)
        #: Every mark, in arrival order: (stage, t).
        self.marks: List[Tuple[str, float]] = []
        #: First time each stage was reached.
        self.first: Dict[str, float] = {}
        #: Last time each stage was reached (``sdb.visible`` differs per
        #: item, so "the txn is visible" is the *max* over its items).
        self.last: Dict[str, float] = {}

    def mark(self, stage: str, t: float) -> None:
        self.marks.append((stage, t))
        if stage not in self.first or t < self.first[stage]:
            self.first[stage] = t
        if stage not in self.last or t > self.last[stage]:
            self.last[stage] = t

    def span(self, start: str, end: str) -> Optional[float]:
        """Seconds from first ``start`` mark to first ``end`` mark, or
        ``None`` when either stage never happened."""
        if start not in self.first or end not in self.first:
            return None
        return self.first[end] - self.first[start]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "attrs": dict(sorted(self.attrs.items())),
            "first": dict(sorted(self.first.items())),
            "last": dict(sorted(self.last.items())),
            "marks": [[stage, t] for stage, t in self.marks],
        }


class Tracer:
    """Registry of record traces with alias resolution.

    ``mark`` creates the trace if needed; ``mark_if_traced`` is the
    hot-path variant used by shared services (SimpleDB, readers): a
    single dict probe when the key was never registered, so bulk
    workloads that don't trace pay nothing.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._traces: Dict[str, RecordTrace] = {}
        self._aliases: Dict[str, str] = {}

    def begin(self, key: str, **attrs: Any) -> Optional[RecordTrace]:
        if not self.enabled:
            return None
        if key not in self._traces:
            self._traces[key] = RecordTrace(key, attrs)
        else:
            self._traces[key].attrs.update(attrs)
        return self._traces[key]

    def alias(self, alias: str, key: str) -> None:
        """Route future marks on ``alias`` to the trace at ``key``."""
        if not self.enabled:
            return
        self._aliases[alias] = key

    def resolve(self, key: str) -> Optional[RecordTrace]:
        canonical = self._aliases.get(key, key)
        return self._traces.get(canonical)

    def mark(self, key: str, stage: str, t: float) -> None:
        if not self.enabled:
            return
        trace = self.resolve(key)
        if trace is None:
            trace = self.begin(key)
        trace.mark(stage, t)

    def mark_if_traced(self, key: str, stage: str, t: float) -> bool:
        """Mark only when ``key`` already maps to a trace; never creates
        one.  Returns whether a mark landed."""
        if not self.enabled:
            return False
        trace = self.resolve(key)
        if trace is None:
            return False
        trace.mark(stage, t)
        return True

    def mark_first(self, key: str, stage: str, t: float) -> bool:
        """Like :meth:`mark_if_traced`, but only the *first* occurrence
        of ``stage`` lands — for repeated observations (a reader re-seeing
        the same uuid every poll) where only the first one is the event."""
        if not self.enabled:
            return False
        trace = self.resolve(key)
        if trace is None or stage in trace.first:
            return False
        trace.mark(stage, t)
        return True

    def traces(self) -> List[RecordTrace]:
        return list(self._traces.values())

    def get(self, key: str) -> Optional[RecordTrace]:
        return self.resolve(key)

    # -- lifecycle queries ------------------------------------------------

    def spans(self, start: str, end: str) -> List[Tuple[str, float]]:
        """(key, seconds) for every trace that reached both stages."""
        out = []
        for trace in self._traces.values():
            span = trace.span(start, end)
            if span is not None:
                out.append((trace.key, span))
        return out

    def commit_lags(self) -> List[Tuple[str, float]]:
        """Per-transaction commit lag, derived purely from trace marks."""
        return self.spans(WAL_LOGGED, COMMIT_DONE)

    def staleness(self) -> List[Tuple[str, float]]:
        """Read-your-writes staleness: log acceptance → first read."""
        return self.spans(WAL_LOGGED, READ_FIRST)

    def as_dict(self) -> Dict[str, Any]:
        return {key: self._traces[key].as_dict() for key in sorted(self._traces)}
