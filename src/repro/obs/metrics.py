"""Virtual-clock metrics: counters, gauges, and streaming histograms.

Every metric lives in a :class:`MetricsRegistry` keyed by ``(name,
labels)``.  Labels scope a metric to a daemon, a shard domain, a
gateway, or a protocol, so five instances of the same component can
share one metric name without clobbering each other.  Nothing in here
reads a clock — time enters only through :meth:`MetricsRegistry.scrape`,
which the simulation kernel drives as an ordinary (zero-virtual-cost)
process, so the resulting time series are a pure function of the seed.

Histograms keep their observations sorted (``bisect.insort``) and
answer nearest-rank percentiles, matching the convention used by the
benchmark suite's ``_percentile`` helper.

When a registry is constructed with ``enabled=False`` every factory
returns a shared null instrument whose mutators are no-ops, so call
sites never need an ``if telemetry:`` guard — instrumentation is
unconditional and free to switch off.
"""

from __future__ import annotations

import json
import math
from bisect import insort
from typing import Any, Callable, Dict, List, Optional, Tuple

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def metric_key(name: str, labels: Dict[str, Any]) -> str:
    """Render ``name{a=1,b=x}`` (labels sorted), or just ``name``."""
    items = _label_key(labels)
    if not items:
        return name
    inner = ",".join(f"{k}={v}" for k, v in items)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    def __init__(self, name: str, labels: Dict[str, Any]):
        self.name = name
        self.labels = dict(labels)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value, set by its owner."""

    def __init__(self, name: str, labels: Dict[str, Any]):
        self.name = name
        self.labels = dict(labels)
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A streaming distribution with nearest-rank percentiles."""

    def __init__(self, name: str, labels: Dict[str, Any]):
        self.name = name
        self.labels = dict(labels)
        self._values: List[float] = []
        self.sum = 0.0

    def observe(self, value: float) -> None:
        insort(self._values, value)
        self.sum += value

    @property
    def count(self) -> int:
        return len(self._values)

    def percentile(self, p: float) -> Optional[float]:
        """Nearest-rank percentile; ``None`` while empty."""
        if not self._values:
            return None
        # Nearest-rank: ceil(p/100 * n), clamped to [1, n].
        rank = min(len(self._values), max(1, math.ceil(p / 100.0 * len(self._values))))
        return self._values[rank - 1]

    @property
    def p50(self) -> Optional[float]:
        return self.percentile(50)

    @property
    def p95(self) -> Optional[float]:
        return self.percentile(95)

    @property
    def p99(self) -> Optional[float]:
        return self.percentile(99)

    def summary(self) -> Dict[str, Any]:
        if not self._values:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self._values[0],
            "max": self._values[-1],
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


class _NullCounter(Counter):
    def __init__(self):
        super().__init__("null", {})

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    def __init__(self):
        super().__init__("null", {})

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    def __init__(self):
        super().__init__("null", {})

    def observe(self, value: float) -> None:
        pass


class MetricsRegistry:
    """Get-or-create registry of labelled instruments plus scraped series.

    ``gauge_fn`` registers a *callback* gauge: the callable is invoked at
    snapshot/scrape time, which lets existing stats structs
    (``CacheStats``, ``SelectEngineStats``, queue depths, billing) feed
    the registry without being rewritten.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[Tuple[str, LabelItems], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelItems], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelItems], Histogram] = {}
        self._gauge_fns: Dict[Tuple[str, LabelItems], Callable[[], float]] = {}
        #: metric key -> list of (scrape time, value) samples.
        self.series: Dict[str, List[Tuple[float, Any]]] = {}
        self._null_counter = _NullCounter()
        self._null_gauge = _NullGauge()
        self._null_histogram = _NullHistogram()

    def counter(self, name: str, **labels: Any) -> Counter:
        if not self.enabled:
            return self._null_counter
        key = (name, _label_key(labels))
        if key not in self._counters:
            self._counters[key] = Counter(name, labels)
        return self._counters[key]

    def gauge(self, name: str, **labels: Any) -> Gauge:
        if not self.enabled:
            return self._null_gauge
        key = (name, _label_key(labels))
        if key not in self._gauges:
            self._gauges[key] = Gauge(name, labels)
        return self._gauges[key]

    def histogram(self, name: str, **labels: Any) -> Histogram:
        if not self.enabled:
            return self._null_histogram
        key = (name, _label_key(labels))
        if key not in self._histograms:
            self._histograms[key] = Histogram(name, labels)
        return self._histograms[key]

    def histograms_named(self, name: str) -> List[Histogram]:
        """Every histogram registered under ``name``, across all label
        sets — how a supervisor polls the commit-lag distribution over a
        whole daemon pool without knowing each member's label."""
        if not self.enabled:
            return []
        return [
            histogram
            for (hist_name, _items), histogram in sorted(
                self._histograms.items()
            )
            if hist_name == name
        ]

    def gauge_fn(self, name: str, fn: Callable[[], float], **labels: Any) -> None:
        """Register a callback sampled at snapshot/scrape time.
        Re-registering the same (name, labels) replaces the callback."""
        if not self.enabled:
            return
        self._gauge_fns[(name, _label_key(labels))] = fn

    def snapshot(self) -> Dict[str, Any]:
        """All instruments, rendered to plain JSON-able values, keyed by
        ``name{labels}`` and sorted for byte-stable dumps."""
        if not self.enabled:
            return {}
        out: Dict[str, Any] = {}
        for (name, items), counter in self._counters.items():
            out[metric_key(name, dict(items))] = counter.value
        for (name, items), gauge in self._gauges.items():
            out[metric_key(name, dict(items))] = gauge.value
        for (name, items), fn in self._gauge_fns.items():
            out[metric_key(name, dict(items))] = fn()
        for (name, items), histogram in self._histograms.items():
            out[metric_key(name, dict(items))] = histogram.summary()
        return dict(sorted(out.items()))

    def scrape(self, now: float) -> None:
        """Append one sample per metric to the time series at ``now``."""
        if not self.enabled:
            return
        for key, value in self.snapshot().items():
            self.series.setdefault(key, []).append((now, value))

    def dump(self) -> str:
        """Deterministic JSON dump of the final snapshot (sorted keys)."""
        return json.dumps(self.snapshot(), sort_keys=True, indent=2, default=str)

    def series_dump(self) -> str:
        """Deterministic JSON dump of the scraped time series."""
        return json.dumps(self.series, sort_keys=True, indent=2, default=str)
