"""A structured event log on the virtual clock.

The simulation kernel (and anything else holding the telemetry hub)
appends :class:`Event` records — process lifecycle, fault injections,
degradation windows — each stamped with virtual time and a per-log
sequence number so ties at the same instant keep a total order.  The
log renders to JSONL for offline inspection and feeds the Chrome-trace
timeline exporter.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class Event:
    """One structured occurrence at virtual time ``t``."""

    t: float
    seq: int
    kind: str
    fields: Tuple[Tuple[str, Any], ...]

    def __getitem__(self, key: str) -> Any:
        for k, v in self.fields:
            if k == key:
                return v
        raise KeyError(key)

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.fields:
            if k == key:
                return v
        return default

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"t": self.t, "seq": self.seq, "kind": self.kind}
        out.update(dict(self.fields))
        return out


class EventLog:
    """Append-only, virtually-timestamped, deterministic event stream."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: List[Event] = []
        self._seq = 0

    def emit(self, kind: str, t: float, **fields: Any) -> Optional[Event]:
        if not self.enabled:
            return None
        event = Event(t=t, seq=self._seq, kind=kind, fields=tuple(fields.items()))
        self._seq += 1
        self.events.append(event)
        return event

    def of_kind(self, *kinds: str) -> List[Event]:
        """Events whose kind matches exactly, or by ``prefix.`` if a kind
        ends with a dot (``of_kind("fault.")`` → every fault event)."""
        out = []
        for event in self.events:
            for kind in kinds:
                if event.kind == kind or (kind.endswith(".") and event.kind.startswith(kind)):
                    out.append(event)
                    break
        return out

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def to_jsonl(self) -> str:
        """One sorted-key JSON object per line — byte-stable per seed."""
        return "\n".join(
            json.dumps(event.as_dict(), sort_keys=True, default=str)
            for event in self.events
        )

    def write_jsonl(self, path: str) -> str:
        text = self.to_jsonl()
        with open(path, "w") as handle:
            handle.write(text)
            if text:
                handle.write("\n")
        return path
