"""Setuptools shim.

The execution environment lacks the ``wheel`` package, so PEP 660
editable installs (``pip install -e .`` via pyproject.toml alone) fail
with ``invalid command 'bdist_wheel'``.  This shim lets the legacy
``setup.py develop`` path work: ``pip install -e . --no-use-pep517
--no-build-isolation``.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
