"""Tests for the simulated SQS service."""

import pytest

from repro.cloud.sqs import MESSAGE_LIMIT_BYTES, RETENTION_SECONDS
from repro.errors import InvalidRequestError, LimitExceededError, NoSuchQueueError


@pytest.fixture
def queue(strict_account):
    return strict_account.sqs.create_queue("q")


class TestSendReceive:
    def test_roundtrip(self, strict_account, queue):
        sqs = strict_account.sqs
        sqs.send_message(queue, "hello")
        messages = sqs.receive_messages(queue)
        assert [m.body for m in messages] == ["hello"]

    def test_message_limit(self, strict_account, queue):
        with pytest.raises(LimitExceededError):
            strict_account.sqs.send_message(queue, "x" * (MESSAGE_LIMIT_BYTES + 1))

    def test_exactly_at_limit_ok(self, strict_account, queue):
        strict_account.sqs.send_message(queue, "x" * MESSAGE_LIMIT_BYTES)

    def test_empty_body_rejected(self, strict_account, queue):
        with pytest.raises(InvalidRequestError):
            strict_account.sqs.send_message(queue, "")

    def test_missing_queue(self, strict_account):
        with pytest.raises(NoSuchQueueError):
            strict_account.sqs.send_message("sqs://queues/nope", "x")

    def test_receive_empty_queue(self, strict_account, queue):
        assert strict_account.sqs.receive_messages(queue) == []

    def test_receive_batch_limit(self, strict_account, queue):
        sqs = strict_account.sqs
        for index in range(15):
            sqs.send_message(queue, f"m{index}")
        batch = sqs.receive_messages(queue, max_messages=10)
        assert len(batch) == 10
        with pytest.raises(InvalidRequestError):
            sqs.receive_messages(queue, max_messages=11)


class TestVisibilityTimeout:
    def test_received_message_hidden_until_timeout(self, strict_account, queue):
        sqs = strict_account.sqs
        sqs.send_message(queue, "m")
        first = sqs.receive_messages(queue, visibility_timeout=30.0)
        assert len(first) == 1
        # Immediately after, the message is invisible.
        assert sqs.receive_messages(queue) == []
        # After the timeout it reappears (at-least-once delivery).
        strict_account.clock.advance(40.0)
        again = sqs.receive_messages(queue)
        assert [m.body for m in again] == ["m"]
        assert again[0].message_id == first[0].message_id
        assert again[0].receipt_handle != first[0].receipt_handle

    def test_delete_by_receipt(self, strict_account, queue):
        sqs = strict_account.sqs
        sqs.send_message(queue, "m")
        message = sqs.receive_messages(queue)[0]
        sqs.delete_message(queue, message.receipt_handle)
        strict_account.clock.advance(100.0)
        assert sqs.receive_messages(queue) == []
        assert sqs.pending_count(queue) == 0

    def test_delete_with_stale_receipt_is_noop(self, strict_account, queue):
        sqs = strict_account.sqs
        sqs.send_message(queue, "m")
        sqs.receive_messages(queue)
        sqs.delete_message(queue, "bogus#r1")
        strict_account.clock.advance(100.0)
        assert len(sqs.receive_messages(queue)) == 1


class TestChangeVisibility:
    def test_timeout_zero_hands_the_message_straight_back(
        self, strict_account, queue
    ):
        sqs = strict_account.sqs
        sqs.send_message(queue, "m")
        first = sqs.receive_messages(queue, visibility_timeout=30.0)[0]
        assert sqs.receive_messages(queue) == []
        # No clock advance: the handback alone re-exposes the message.
        sqs.change_visibility(queue, first.receipt_handle, 0.0)
        again = sqs.receive_messages(queue)
        assert [m.body for m in again] == ["m"]
        assert again[0].message_id == first.message_id

    def test_extends_the_lease_from_now(self, strict_account, queue):
        sqs = strict_account.sqs
        sqs.send_message(queue, "m")
        message = sqs.receive_messages(queue, visibility_timeout=10.0)[0]
        sqs.change_visibility(queue, message.receipt_handle, 100.0)
        # The original 10 s lease would have lapsed by now; the reset
        # window (from the change, not the receive) still holds.
        strict_account.clock.advance(50.0)
        assert sqs.receive_messages(queue) == []
        strict_account.clock.advance(60.0)
        assert len(sqs.receive_messages(queue)) == 1

    def test_receipt_handle_survives_the_change(self, strict_account, queue):
        sqs = strict_account.sqs
        sqs.send_message(queue, "m")
        message = sqs.receive_messages(queue)[0]
        sqs.change_visibility(queue, message.receipt_handle, 60.0)
        # The retiring daemon's other path: the handle still deletes.
        sqs.delete_message(queue, message.receipt_handle)
        strict_account.clock.advance(100.0)
        assert sqs.pending_count(queue) == 0

    def test_stale_receipt_is_noop(self, strict_account, queue):
        sqs = strict_account.sqs
        sqs.send_message(queue, "m")
        sqs.receive_messages(queue, visibility_timeout=30.0)
        sqs.change_visibility(queue, "bogus#r1", 0.0)
        assert sqs.receive_messages(queue) == []

    def test_negative_timeout_rejected(self, strict_account, queue):
        with pytest.raises(InvalidRequestError):
            strict_account.sqs.change_visibility_request(queue, "r", -1.0)

    def test_change_is_billed(self, strict_account, queue):
        sqs = strict_account.sqs
        sqs.send_message(queue, "m")
        message = sqs.receive_messages(queue)[0]
        ops_before = strict_account.billing.operation_count()
        sqs.change_visibility(queue, message.receipt_handle, 0.0)
        assert strict_account.billing.operation_count() == ops_before + 1

    def test_expired_lease_handback_does_not_clobber_next_consumer(
        self, strict_account, queue
    ):
        """Regression: consumer A's lease lapses, consumer B re-receives
        the message, then A's retiring ChangeVisibility(0) arrives with
        the stale handle.  B's live lease must survive."""
        sqs = strict_account.sqs
        sqs.send_message(queue, "m")
        a = sqs.receive_messages(queue, visibility_timeout=10.0)[0]
        strict_account.clock.advance(20.0)  # A's lease expires
        b = sqs.receive_messages(queue, visibility_timeout=300.0)[0]
        assert b.receipt_handle != a.receipt_handle
        sqs.change_visibility(queue, a.receipt_handle, 0.0)  # late handback
        # B still holds the message: nothing is available.
        assert sqs.receive_messages(queue) == []
        # B's handle still deletes it.
        sqs.delete_message(queue, b.receipt_handle)
        assert sqs.pending_count(queue) == 0

    def test_expired_lease_change_cannot_rehide_the_message(
        self, strict_account, queue
    ):
        """Regression: once the lease has lapsed the message belongs to
        the queue again; a late ChangeVisibility(60) with the old handle
        must not hide it from the next consumer (but still bills)."""
        sqs = strict_account.sqs
        sqs.send_message(queue, "m")
        stale = sqs.receive_messages(queue, visibility_timeout=10.0)[0]
        strict_account.clock.advance(20.0)  # lease expires, nobody re-received
        ops_before = strict_account.billing.operation_count()
        sqs.change_visibility(queue, stale.receipt_handle, 60.0)
        assert strict_account.billing.operation_count() == ops_before + 1
        # No clock advance: the message must be immediately receivable.
        assert [m.body for m in sqs.receive_messages(queue)] == ["m"]

    def test_timeout_zero_on_expired_lease_is_noop(self, strict_account, queue):
        """The ISSUE's exact edge: ChangeMessageVisibility(timeout=0) on
        an already-expired lease changes nothing — the message is
        available before and after, under the queue's own ownership."""
        sqs = strict_account.sqs
        sqs.send_message(queue, "m")
        stale = sqs.receive_messages(queue, visibility_timeout=5.0)[0]
        strict_account.clock.advance(10.0)
        before = sqs.pending_count(queue)
        sqs.change_visibility(queue, stale.receipt_handle, 0.0)
        assert sqs.pending_count(queue) == before
        redelivered = sqs.receive_messages(queue)
        assert [m.message_id for m in redelivered] == [stale.message_id]
        assert redelivered[0].receipt_handle != stale.receipt_handle


class TestRetention:
    def test_messages_expire_after_four_days(self, strict_account, queue):
        sqs = strict_account.sqs
        sqs.send_message(queue, "old")
        strict_account.clock.advance(RETENTION_SECONDS + 1)
        assert sqs.receive_messages(queue) == []
        assert sqs.pending_count(queue, now=strict_account.now) == 0

    def test_messages_survive_before_retention(self, strict_account, queue):
        sqs = strict_account.sqs
        sqs.send_message(queue, "young")
        strict_account.clock.advance(RETENTION_SECONDS / 2)
        assert len(sqs.receive_messages(queue)) == 1


class TestDuplicateDelivery:
    def test_duplicates_can_be_injected(self, strict_account, queue):
        sqs = strict_account.sqs
        sqs.duplicate_delivery_rate = 1.0
        sqs.send_message(queue, "m")
        messages = sqs.receive_messages(queue)
        assert len(messages) == 2
        assert messages[0].message_id == messages[1].message_id

    def test_all_messages_eventually_delivered(self, strict_account, queue):
        """A consume-and-delete loop drains every message exactly the way
        the commit daemon does."""
        sqs = strict_account.sqs
        sent = {f"m{i}" for i in range(37)}
        for body in sorted(sent):
            sqs.send_message(queue, body)
        received = set()
        for _ in range(40):
            messages = sqs.receive_messages(queue, visibility_timeout=5.0)
            for message in messages:
                received.add(message.body)
                sqs.delete_message(queue, message.receipt_handle)
            if not messages:
                break
        assert received == sent
