"""Service-tier chaos: the recovery story extended from the daemon tier
to the whole service tier.

The daemon-tier chaos tests pin what survives a *commit daemon* death;
these pin the other moving parts of the multi-tenant deployment —  the
ingest gateway killed mid-coalescing-window, one shard's indexing
pipeline collapsing while the others stay healthy, and query-side
readers crashing and respawning — all under the same yardstick: the
settled store, Q1-Q4 answers, and their billing end byte-identical to
the fault-free run, deterministically per seed.
"""

import random

import pytest

from repro.cloud.account import CloudAccount
from repro.core import ProtocolP3
from repro.core.commit_daemon import CommitDaemon
from repro.service import IngestGateway, ShardRouter
from repro.sim import ProcessState, SimKernel
from repro.workloads.base import MOUNT
from repro.workloads.fleet import (
    FLEET_PROGRAM,
    FleetWatch,
    make_fleet,
    protocol_client_process,
    reader_process,
    run_fleet_kernel,
)


def _service_snapshot(account, router, bucket) -> str:
    """Byte-comparable settled service state: every item in every shard
    domain plus every S3 object's digest and metadata (no timestamps)."""
    domains = {
        domain: {
            name: account.simpledb.peek_item(domain, name)
            for name in account.simpledb.peek_item_names(domain)
        }
        for domain in router.domains
    }
    objects = {
        key: (
            account.s3.peek_latest(bucket, key).blob.digest,
            tuple(sorted(account.s3.peek_latest(bucket, key).metadata.items())),
        )
        for key in account.s3.peek_keys(bucket)
    }
    return repr((domains, objects))


def _query_fingerprint(account, gateway, router):
    """repr of Q1 rows per shard plus the engine's Q2/Q3/Q4, and the
    operations/bytes those queries billed."""
    q1_rows = [
        account.simpledb.select(f"select * from {domain}")
        for domain in router.domains
    ]
    engine = gateway.query_engine()
    target = f"{MOUNT}fleet/c0000/f000.dat"
    ops_before = account.billing.operation_count()
    bytes_before = (
        account.billing.bytes_received() + account.billing.bytes_transmitted()
    )
    q2, _ = engine.q2_object_provenance(target)
    q3, _ = engine.q3_direct_outputs(FLEET_PROGRAM)
    q4, _ = engine.q4_all_descendants(FLEET_PROGRAM)
    billing = (
        account.billing.operation_count() - ops_before,
        account.billing.bytes_received()
        + account.billing.bytes_transmitted()
        - bytes_before,
    )
    return repr((q1_rows, q2, q3, q4)), billing


def _gateway_fleet_run(seed=5, schedule=None):
    """A sharded gateway fleet on the kernel; ``schedule(account, router,
    gateway)`` arms chaos before the run starts."""
    account = CloudAccount(seed=seed)
    router = ShardRouter(shards=3)
    gateway = IngestGateway(account, router=router)
    fleet = make_fleet(
        clients=6, files_per_client=3, file_bytes=8 * 1024,
        extra_attributes=8, seed=seed,
    )
    if schedule is not None:
        schedule(account, router, gateway)
    result = run_fleet_kernel(
        account, gateway, fleet, seed=seed, think_s=0.5, window_s=0.25
    )
    account.settle(120.0)
    return account, router, gateway, result


class TestGatewayKillRespawn:
    def test_kill_mid_window_drops_and_duplicates_nothing(self):
        clean_account, clean_router, clean_gateway, clean_result = (
            _gateway_fleet_run()
        )
        clean_snapshot = _service_snapshot(
            clean_account, clean_router, clean_gateway.bucket
        )
        clean_queries = _query_fingerprint(
            clean_account, clean_gateway, clean_router
        )

        def arm(account, router, gateway):
            account.faults.schedule.crash_every(
                "gateway", every_s=2.0, start_at=1.0, times=2
            )
            # The respawn resumes the *same* gateway object — it is the
            # durable intake log; only the process incarnation died.
            account.faults.schedule.respawn(
                "gateway",
                lambda: gateway.process(gateway.window_s),
                delay_s=0.5,
            )

        account, router, gateway, result = _gateway_fleet_run(schedule=arm)

        # The chaos genuinely happened: two kills, two respawns.
        recurring = account.faults.schedule.recurring[0]
        assert recurring.fired_at == [1.0, 3.0]
        assert account.faults.schedule.respawns["gateway"].respawns == 2
        crashes = account.telemetry.events.of_kind("fault.crash")
        assert [event["target"] for event in crashes] == ["gateway"] * 2

        # Every submitted flush shipped exactly once: no batch lost with
        # a killed window, none double-applied by a re-issued one.
        assert result.flushes == clean_result.flushes == 18
        assert gateway.stats.flushes == 18
        assert not gateway.busy
        assert _service_snapshot(
            account, router, gateway.bucket
        ) == clean_snapshot
        assert _query_fingerprint(account, gateway, router) == clean_queries

    def test_flush_plan_hands_claimed_window_back_on_kill(self):
        account = CloudAccount(seed=2)
        gateway = IngestGateway(account)
        fleet = make_fleet(clients=2, files_per_client=1, seed=2)
        for client in fleet:
            gateway.submit(client.client_id, client.works[0])
        assert gateway.pending_count() == 2

        # Start a window flush, then kill it before the batch ships (the
        # kernel closes the generator exactly like this on a crash).
        plan = gateway.flush_plan()
        next(plan)
        plan.close()

        # The claimed window is back in the intake log, nothing shipped.
        assert gateway.pending_count() == 2
        assert gateway.stats.sdb_batches == 0
        flushed = gateway.flush_pending()
        assert flushed > 0
        assert gateway.pending_count() == 0


class TestSingleShardDegradation:
    def test_one_degraded_shard_slows_the_run_but_not_the_answers(self):
        clean_account, clean_router, clean_gateway, clean_result = (
            _gateway_fleet_run()
        )
        clean_snapshot = _service_snapshot(
            clean_account, clean_router, clean_gateway.bucket
        )
        clean_queries = _query_fingerprint(
            clean_account, clean_gateway, clean_router
        )
        degraded_domain = clean_router.domains[1]

        def arm(account, router, gateway):
            account.faults.schedule.degrade(
                0.5, 4.0, domain=degraded_domain, item_scale=500.0
            )

        account, router, gateway, result = _gateway_fleet_run(schedule=arm)

        # The window genuinely degraded one shard's indexing pipeline...
        window = account.faults.schedule.windows[0]
        assert window.applied and window.restored
        opened = account.telemetry.events.of_kind("fault.degrade.open")
        assert opened[0]["domain"] == degraded_domain
        assert opened[0]["item_scale"] == 500.0
        assert result.elapsed_seconds > clean_result.elapsed_seconds
        # ...and restored its baseline throughput exactly at t2.
        assert (
            account.scheduler.pipeline_item_scale(
                f"simpledb:{degraded_domain}"
            )
            == 1.0
        )

        # Slower, never different: the settled store and every query
        # answer (and its billing) match the healthy run byte for byte.
        assert _service_snapshot(
            account, router, gateway.bucket
        ) == clean_snapshot
        assert _query_fingerprint(account, gateway, router) == clean_queries

    def test_degrade_validation(self):
        schedule = CloudAccount(seed=0).faults.schedule
        with pytest.raises(ValueError):
            schedule.degrade(0.0, 5.0, item_scale=0.5, domain="d")
        with pytest.raises(ValueError):
            schedule.degrade(0.0, 5.0, item_scale=2.0)  # no target domain


class TestReaderChaos:
    @staticmethod
    def _run(seed=3):
        account = CloudAccount(seed=seed)
        protocol = ProtocolP3(account, client_id="fleet-shared")
        fleet = make_fleet(
            clients=2, files_per_client=3, file_bytes=8 * 1024,
            extra_attributes=4, seed=seed,
        )
        kernel = SimKernel(account)
        daemon = CommitDaemon(
            account=account,
            queue_url=protocol.queue_url,
            bucket=protocol.bucket,
            domain=protocol.domain,
            router=protocol.router,
        )
        kernel.spawn(daemon.process(poll_interval=1.0), name="d", daemon=True)
        watch = FleetWatch()
        master = random.Random(seed)
        for client in fleet:
            kernel.spawn(
                protocol_client_process(
                    protocol, client, 2.0,
                    random.Random(master.randrange(1 << 30)), watch,
                ),
                name=client.client_id,
            )
        samples = []

        def reader_factory():
            # A fresh incarnation restarts its query rotation from the
            # same seeded RNG — crash recovery, deterministically.
            return reader_process(
                account, protocol.router.domains, FLEET_PROGRAM, watch,
                samples, interval_s=3.0, queries=("q1",),
                rng=random.Random(1234), label="reader",
            )

        kernel.spawn(reader_factory(), name="reader", daemon=True)
        account.faults.schedule.crash_every(
            "reader", every_s=7.0, start_at=7.0, times=1
        )
        account.faults.schedule.respawn("reader", reader_factory, delay_s=1.0)

        kernel.run()
        guard = 0
        while (
            account.sqs.pending_count(protocol.queue_url) > 0 and guard < 100
        ):
            kernel.run(until=account.now + 5.0)
            guard += 1
        account.settle(120.0)
        kernel.run(until=account.now + 6.0)
        return account, kernel, samples, watch

    def test_reader_crash_respawn_keeps_sampling_deterministically(self):
        account, kernel, samples, watch = self._run()

        # The kill landed and the respawn answered it.
        assert account.faults.schedule.recurring[0].fired_at == [7.0]
        incarnations = kernel.processes_named("reader")
        assert len(incarnations) == 2
        assert incarnations[0].state is ProcessState.CRASHED
        assert incarnations[-1].alive

        # The replacement kept observing: samples exist from after the
        # crash, and the final settled view converged on everything the
        # fleet flushed.
        assert any(sample.t > 8.0 for sample in samples)
        q1 = [s for s in samples if s.query == "q1"]
        assert q1[-1].stale == 0
        assert q1[-1].visible == len(watch.flushed) == 6

        # Same seed, same chaos, same samples — byte for byte.
        _, _, replay, _ = self._run()
        key = lambda s: (s.t, s.query, s.rows, s.flushed, s.visible)
        assert [key(s) for s in replay] == [key(s) for s in samples]
