"""Unified telemetry: the metrics registry, record-lifecycle tracing,
the structured event log, and the Chrome-trace timeline exporter.

Two contracts anchor everything here:

- **Determinism** — telemetry is driven purely by the virtual clock, so
  the same seed exports byte-identical metrics dumps, trace dumps, event
  logs, and timelines.
- **Zero observational cost** — running the same workload with
  telemetry disabled leaves Q1-Q4 answers and billing byte-identical:
  observing must not perturb the simulation.

The tracing tests also pin the tentpole's redundancy argument: commit
lag derived from ``wal.logged -> commit.done`` spans equals the commit
daemons' own ``CommitRecord`` bookkeeping exactly, float for float.
"""

import json
import random

from repro.cloud.account import CloudAccount
from repro.core import ProtocolP3
from repro.core.commit_daemon import CommitDaemon
from repro.obs import (
    CLIENT_EMIT,
    COMMIT_DONE,
    DAEMON_DEQUEUE,
    READ_FIRST,
    SDB_PUT,
    SDB_VISIBLE,
    WAL_LOGGED,
    EventLog,
    MetricsRegistry,
    Telemetry,
    Tracer,
    chrome_trace,
    chrome_trace_json,
    metric_key,
    write_chrome_trace,
)
from repro.query.engine import SimpleDBQueryEngine
from repro.sim import Delay, SimKernel
from repro.workloads.base import MOUNT
from repro.workloads.fleet import (
    FLEET_PROGRAM,
    FleetWatch,
    make_fleet,
    protocol_client_process,
    reader_process,
)


def _sleeper():
    while True:
        yield Delay(1.0)


def _fleet_run(telemetry=True, seed=0, clients=2, daemons=1, schedule="steady"):
    """A miniature chaos-style kernel run: P3 clients logging into the
    shared WAL, in-loop commit daemons, one Q1 reader, drained to
    quiescence.  Returns everything the assertions need."""
    account = CloudAccount(seed=seed, telemetry=telemetry)
    protocol = ProtocolP3(account, client_id="fleet-shared")
    fleet = make_fleet(
        clients=clients,
        files_per_client=2,
        file_bytes=16 * 1024,
        extra_attributes=8,
        seed=seed,
    )
    kernel = SimKernel(account)
    kernel.scrape_every(5.0)
    watch = FleetWatch()

    daemon_objs = []

    def fresh_daemon_process():
        daemon = CommitDaemon(
            account=account,
            queue_url=protocol.queue_url,
            bucket=protocol.bucket,
            domain=protocol.domain,
            router=protocol.router,
        )
        daemon_objs.append(daemon)
        return daemon.process(poll_interval=1.0)

    for index in range(daemons):
        kernel.spawn(
            fresh_daemon_process(), name=f"daemon-{index}", daemon=True
        )
    if schedule == "crashes":
        account.faults.schedule.crash_every(
            "daemon-0", every_s=15.0, start_at=8.0
        )
        account.faults.schedule.respawn(
            "daemon-0", fresh_daemon_process, delay_s=2.0
        )

    master = random.Random(seed)
    for client in fleet:
        rng = random.Random(master.randrange(1 << 30))
        kernel.spawn(
            protocol_client_process(protocol, client, 2.0, rng, watch),
            name=client.client_id,
        )
    samples = []
    kernel.spawn(
        reader_process(
            account,
            protocol.router.domains,
            FLEET_PROGRAM,
            watch,
            samples,
            interval_s=6.0,
            queries=("q1",),
            rng=random.Random(master.randrange(1 << 30)),
            label="reader-0",
        ),
        name="reader-0",
        daemon=True,
    )

    kernel.run()
    horizon = account.now + 600.0
    while (
        account.sqs.pending_count(protocol.queue_url) > 0
        and account.now < horizon
    ):
        kernel.run(until=account.now + 5.0)
    kernel.run(until=account.now + 2.0)
    account.settle(120.0)
    kernel.run(until=account.now + 12.0)
    return account, protocol, daemon_objs, kernel, samples


def _fingerprint(account, protocol):
    """(Q1-Q4 answer reprs, query billing) over the settled store."""
    engine = SimpleDBQueryEngine(
        account, domain=protocol.domain, bucket=protocol.bucket
    )
    target_path = f"{MOUNT}fleet/c0000/f000.dat"
    q1 = account.simpledb.select(f"select * from {protocol.domain}")
    ops_before = account.billing.operation_count()
    bytes_before = (
        account.billing.bytes_received() + account.billing.bytes_transmitted()
    )
    q2, _ = engine.q2_object_provenance(target_path)
    q3, _ = engine.q3_direct_outputs(FLEET_PROGRAM)
    q4, _ = engine.q4_all_descendants(FLEET_PROGRAM)
    billed = (
        account.billing.operation_count() - ops_before,
        account.billing.bytes_received()
        + account.billing.bytes_transmitted()
        - bytes_before,
    )
    return (repr(q1), repr(q2), repr(q3), repr(q4)), billed


class TestMetricsRegistry:
    def test_metric_key_sorts_labels(self):
        assert metric_key("x", {}) == "x"
        assert metric_key("x", {"b": 2, "a": "y"}) == "x{a=y,b=2}"

    def test_instruments_are_get_or_create_per_labels(self):
        registry = MetricsRegistry()
        c1 = registry.counter("daemon.commits", daemon="d0")
        c2 = registry.counter("daemon.commits", daemon="d0")
        c3 = registry.counter("daemon.commits", daemon="d1")
        assert c1 is c2 and c1 is not c3
        c1.inc()
        c1.inc(2)
        c3.inc()
        registry.gauge("queue.depth", queue="log").set(7)
        snap = registry.snapshot()
        assert snap["daemon.commits{daemon=d0}"] == 3
        assert snap["daemon.commits{daemon=d1}"] == 1
        assert snap["queue.depth{queue=log}"] == 7
        assert list(snap) == sorted(snap)

    def test_histogram_nearest_rank_percentiles(self):
        registry = MetricsRegistry()
        h = registry.histogram("lag")
        assert h.percentile(99) is None
        for value in range(100, 0, -1):
            h.observe(float(value))
        assert h.count == 100
        assert h.p50 == 50.0
        assert h.p95 == 95.0
        assert h.p99 == 99.0
        summary = h.summary()
        assert summary["min"] == 1.0 and summary["max"] == 100.0
        assert summary["sum"] == float(sum(range(1, 101)))

    def test_gauge_fn_replaces_on_reregistration(self):
        registry = MetricsRegistry()
        registry.gauge_fn("pending", lambda: 1)
        registry.gauge_fn("pending", lambda: 2)
        assert registry.snapshot() == {"pending": 2}

    def test_scrape_builds_time_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops")
        registry.scrape(0.0)
        counter.inc(5)
        registry.scrape(1.5)
        assert registry.series["ops"] == [(0.0, 0), (1.5, 5)]
        json.loads(registry.series_dump())

    def test_disabled_registry_is_inert_but_api_compatible(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("a").inc()
        registry.gauge("b").set(3)
        registry.histogram("c").observe(1.0)
        registry.gauge_fn("d", lambda: 9)
        registry.scrape(1.0)
        assert registry.snapshot() == {}
        assert registry.series == {}
        assert registry.dump() == "{}"


class TestTracer:
    def test_marks_aliases_and_spans(self):
        tracer = Tracer()
        tracer.begin("txn-1", protocol="p3")
        tracer.alias("uuid-a", "txn-1")
        tracer.alias("uuid-a_3", "txn-1")
        tracer.mark("txn-1", WAL_LOGGED, 2.0)
        tracer.mark("uuid-a", COMMIT_DONE, 5.5)
        trace = tracer.get("uuid-a_3")
        assert trace is tracer.get("txn-1")
        assert trace.span(WAL_LOGGED, COMMIT_DONE) == 3.5
        assert tracer.commit_lags() == [("txn-1", 3.5)]

    def test_mark_if_traced_never_creates_traces(self):
        tracer = Tracer()
        assert not tracer.mark_if_traced("unknown", SDB_VISIBLE, 1.0)
        assert tracer.traces() == []
        tracer.begin("txn-1")
        assert tracer.mark_if_traced("txn-1", SDB_VISIBLE, 1.0)

    def test_mark_first_lands_only_once(self):
        tracer = Tracer()
        tracer.begin("txn-1")
        assert tracer.mark_first("txn-1", READ_FIRST, 4.0)
        assert not tracer.mark_first("txn-1", READ_FIRST, 9.0)
        assert tracer.get("txn-1").first[READ_FIRST] == 4.0

    def test_first_and_last_track_min_and_max(self):
        tracer = Tracer()
        tracer.begin("txn-1")
        tracer.mark("txn-1", SDB_VISIBLE, 7.0)
        tracer.mark("txn-1", SDB_VISIBLE, 3.0)
        tracer.mark("txn-1", SDB_VISIBLE, 5.0)
        trace = tracer.get("txn-1")
        assert trace.first[SDB_VISIBLE] == 3.0
        assert trace.last[SDB_VISIBLE] == 7.0

    def test_disabled_tracer_is_inert(self):
        tracer = Tracer(enabled=False)
        assert tracer.begin("txn-1") is None
        tracer.mark("txn-1", WAL_LOGGED, 1.0)
        assert tracer.traces() == []
        assert tracer.as_dict() == {}


class TestEventLog:
    def test_sequence_numbers_give_a_total_order(self):
        log = EventLog()
        log.emit("a", 1.0, x=1)
        log.emit("b", 1.0)
        assert [e.seq for e in log] == [0, 1]
        assert log.events[0]["x"] == 1
        assert log.events[0].get("missing", 7) == 7

    def test_of_kind_exact_and_prefix(self):
        log = EventLog()
        log.emit("fault.crash", 1.0)
        log.emit("fault.respawn", 2.0)
        log.emit("proc.done", 3.0)
        assert len(log.of_kind("fault.crash")) == 1
        assert len(log.of_kind("fault.")) == 2
        assert len(log.of_kind("proc.done", "fault.")) == 3

    def test_jsonl_round_trips(self, tmp_path):
        log = EventLog()
        log.emit("fault.crash", 1.5, target="daemon-0", incarnation=0)
        path = log.write_jsonl(str(tmp_path / "events.jsonl"))
        lines = open(path).read().splitlines()
        assert [json.loads(line)["kind"] for line in lines] == ["fault.crash"]

    def test_disabled_log_records_nothing(self):
        log = EventLog(enabled=False)
        assert log.emit("x", 1.0) is None
        assert len(log) == 0 and log.to_jsonl() == ""


class TestKernelFaultEvents:
    def test_crash_and_respawn_events_carry_target_incarnation_time(self):
        account, _, _, kernel, _ = _fleet_run(schedule="crashes", seed=0)
        crashes = account.telemetry.events.of_kind("fault.crash")
        respawns = account.telemetry.events.of_kind("fault.respawn")
        assert crashes and respawns
        for event in crashes:
            assert event["target"] == "daemon-0"
            assert isinstance(event["incarnation"], int)
            assert event.t >= 8.0
        # Each respawn brings up the next incarnation of the same name.
        assert [e["incarnation"] for e in respawns] == list(
            range(1, len(respawns) + 1)
        )
        for event in respawns:
            assert event["target"] == "daemon-0"
            assert event.t > event["died_at"]
        # The kernel exposes the same stream directly.
        assert kernel.fault_events == account.telemetry.events.of_kind("fault.")

    def test_degradation_window_emits_open_and_close(self):
        account = CloudAccount(seed=0)
        account.faults.schedule.degrade(5.0, 9.0, add_latency_s=0.5)
        kernel = SimKernel(account)
        kernel.spawn(_sleeper(), name="svc", daemon=True)
        kernel.run(until=20.0)
        opened = account.telemetry.events.of_kind("fault.degrade.open")
        closed = account.telemetry.events.of_kind("fault.degrade.close")
        assert len(opened) == len(closed) == 1
        assert opened[0].t == 5.0 and closed[0].t == 9.0
        assert opened[0]["add_latency_s"] == 0.5

    def test_spawn_and_done_lifecycle_events(self):
        account = CloudAccount(seed=0)
        kernel = SimKernel(account)

        def finite():
            yield Delay(1.0)

        kernel.spawn(finite(), name="one-shot")
        kernel.run()
        spawns = account.telemetry.events.of_kind("proc.spawn")
        dones = account.telemetry.events.of_kind("proc.done")
        assert [e["name"] for e in spawns] == ["one-shot"]
        assert [e["name"] for e in dones] == ["one-shot"]


class TestLifecycleTracing:
    def test_trace_spans_equal_commit_record_lags_exactly(self):
        account, _, daemon_objs, _, _ = _fleet_run(seed=0)
        tracer = account.telemetry.tracer
        records = [r for d in daemon_objs for r in d.commit_log]
        assert records
        for record in records:
            trace = tracer.get(record.txn_id)
            assert trace is not None
            # Independent derivations of the same instants: the client
            # marked wal.logged from its send-batch finish times; the
            # daemon stamped logged_at from the messages' sent_at.
            assert trace.first[WAL_LOGGED] == record.logged_at
            assert trace.first[COMMIT_DONE] == record.committed_at
        assert dict(tracer.commit_lags()) == {
            r.txn_id: r.lag for r in records
        }

    def test_stages_happen_in_lifecycle_order(self):
        account, _, daemon_objs, _, _ = _fleet_run(seed=0)
        tracer = account.telemetry.tracer
        for daemon in daemon_objs:
            for record in daemon.commit_log:
                trace = tracer.get(record.txn_id)
                first = trace.first
                chain = [
                    CLIENT_EMIT, WAL_LOGGED, DAEMON_DEQUEUE, SDB_PUT,
                    COMMIT_DONE,
                ]
                times = [first[stage] for stage in chain]
                assert times == sorted(times), record.txn_id
                # Visibility overlaps commit completion (each item turns
                # visible at its own put + propagation delay, possibly
                # before the commit record is stamped), but no item can
                # be visible before the daemon started the commit.
                assert first[SDB_VISIBLE] >= first[DAEMON_DEQUEUE]
                assert trace.last[SDB_VISIBLE] >= first[SDB_VISIBLE]

    def test_reader_marks_first_observation_and_staleness_falls_out(self):
        account, _, _, _, samples = _fleet_run(seed=0)
        staleness = account.telemetry.tracer.staleness()
        assert staleness
        assert all(lag >= 0.0 for _, lag in staleness)
        assert any(s.query == "q1" for s in samples)


class TestZeroCostAndDeterminism:
    def test_same_seed_exports_are_byte_identical(self):
        first = _fleet_run(schedule="crashes", seed=0)[0]
        second = _fleet_run(schedule="crashes", seed=0)[0]
        assert first.telemetry.metrics.dump() == second.telemetry.metrics.dump()
        assert (
            first.telemetry.metrics.series_dump()
            == second.telemetry.metrics.series_dump()
        )
        assert (
            first.telemetry.tracer.as_dict()
            == second.telemetry.tracer.as_dict()
        )
        assert (
            first.telemetry.events.to_jsonl()
            == second.telemetry.events.to_jsonl()
        )
        assert chrome_trace_json(first.telemetry) == chrome_trace_json(
            second.telemetry
        )

    def test_telemetry_off_leaves_answers_and_billing_byte_identical(self):
        on_account, on_protocol, _, _, _ = _fleet_run(telemetry=True, seed=0)
        off_account, off_protocol, _, _, _ = _fleet_run(telemetry=False, seed=0)
        assert not off_account.telemetry.enabled
        assert off_account.telemetry.metrics.snapshot() == {}
        assert off_account.telemetry.tracer.traces() == []
        assert len(off_account.telemetry.events) == 0

        on_answers, on_billed = _fingerprint(on_account, on_protocol)
        off_answers, off_billed = _fingerprint(off_account, off_protocol)
        assert on_answers == off_answers
        assert on_billed == off_billed
        assert (
            on_account.billing.operation_count()
            == off_account.billing.operation_count()
        )
        assert on_account.billing.cost() == off_account.billing.cost()

    def test_seed_changes_the_telemetry(self):
        a = _fleet_run(seed=0)[0]
        b = _fleet_run(seed=1)[0]
        assert a.telemetry.metrics.dump() != b.telemetry.metrics.dump()


class TestTimelineExport:
    def test_chrome_trace_shape_for_a_crash_respawn_run(self):
        account, _, _, _, _ = _fleet_run(schedule="crashes", seed=0)
        doc = chrome_trace(account.telemetry)
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"M", "X", "i", "b", "n", "e", "C"} <= phases

        # Respawned incarnations get their own named lanes.
        lane_names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "daemon-0" in lane_names
        assert "daemon-0#1" in lane_names
        assert "faults" in lane_names

        # Fault instants land on the dedicated tid-0 lane.
        fault_instants = [
            e for e in events if e["ph"] == "i" and e["cat"] == "fault"
        ]
        assert fault_instants
        assert all(e["tid"] == 0 for e in fault_instants)

        # Record spans carry the lifecycle stage ticks.
        stage_ticks = {e["name"] for e in events if e["ph"] == "n"}
        assert WAL_LOGGED in stage_ticks and COMMIT_DONE in stage_ticks

        # The scraper's counter tracks made it in; every timed event
        # carries a non-negative virtual-microsecond timestamp.
        counters = [e for e in events if e["ph"] == "C"]
        assert counters
        for e in events:
            if "ts" in e:
                assert e["ts"] >= 0

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        account, _, _, _, _ = _fleet_run(seed=0)
        path = write_chrome_trace(
            account.telemetry, str(tmp_path / "trace.json")
        )
        doc = json.load(open(path))
        assert doc["traceEvents"]
        assert doc["otherData"]["clock"] == "virtual"


class TestTelemetryHub:
    def test_instance_ids_are_per_hub_and_dense(self):
        hub = Telemetry()
        assert [hub.instance_id("daemon") for _ in range(3)] == [0, 1, 2]
        assert hub.instance_id("gateway") == 0
        fresh = Telemetry()
        assert fresh.instance_id("daemon") == 0

    def test_coerce_accepts_hub_bool_and_none(self):
        hub = Telemetry(enabled=False)
        assert Telemetry.coerce(hub) is hub
        assert Telemetry.coerce(None).enabled
        assert Telemetry.coerce(True).enabled
        assert not Telemetry.coerce(False).enabled
