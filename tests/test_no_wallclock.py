"""Lint: the simulator never reads the host clock.

Every number the suite reports must be a pure function of the seed, so
``src/repro/`` code may only see time through the account's
:class:`~repro.cloud.clock.VirtualClock`.  This test greps the tree for
host-clock reads (``time.time``, ``time.monotonic``,
``time.perf_counter``, ``datetime.now``, …) and fails on any hit.

The one sanctioned exception is real wall-clock *measurement of the
simulator itself* (the select-scaling benchmarks time how fast the
Python select path runs on the host — that is the quantity under test).
Such lines carry a ``wallclock-ok`` marker comment and are skipped; the
test also pins the exemption count so new markers are a conscious
review decision, not drift.
"""

import pathlib
import re

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: Host-clock reads (and sleeps) that would break virtual-time purity.
FORBIDDEN = re.compile(
    r"time\.time\(|time\.monotonic\(|time\.perf_counter\(|"
    r"time\.process_time\(|time\.sleep\(|"
    r"datetime\.now\(|datetime\.utcnow\(|datetime\.today\("
)

MARKER = "wallclock-ok"


def _source_lines():
    for path in sorted(SRC.rglob("*.py")):
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), 1
        ):
            yield path, lineno, line


def test_no_wallclock_reads_in_simulator_source():
    violations = [
        f"{path.relative_to(SRC.parent.parent)}:{lineno}: {line.strip()}"
        for path, lineno, line in _source_lines()
        if MARKER not in line and FORBIDDEN.search(line)
    ]
    assert not violations, (
        "host-clock use in src/repro/ (mark deliberate measurement "
        "lines with 'wallclock-ok'):\n" + "\n".join(violations)
    )


def test_wallclock_exemptions_are_pinned():
    exempt = [
        (str(path.relative_to(SRC.parent.parent)), lineno)
        for path, lineno, line in _source_lines()
        if MARKER in line and FORBIDDEN.search(line)
    ]
    # Only the bench harnesses may time the host: select-scaling and
    # planner-fanout measure the simulator's own Python cost, and
    # backend-parity measures the real storage substrate — in each case
    # the wall clock is the quantity under test (two marked lines each).
    assert {path for path, _ in exempt} <= {
        "src/repro/bench/experiments.py"
    }, exempt
    assert len(exempt) == 6, exempt
