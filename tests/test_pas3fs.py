"""Tests for PA-S3fs and the plain S3fs baseline (integration)."""

import pytest

from repro.cloud.account import CloudAccount
from repro.cloud.consistency import ConsistencyModel
from repro.cloud.profiles import SimulationProfile, UML_ENV
from repro.core import PAS3fs, PlainS3fs, ProtocolP1, ProtocolP2, ProtocolP3
from repro.core.pas3fs import stage_inputs
from repro.core.protocol_base import data_key
from repro.provenance.syscalls import TraceBuilder

MOUNT = "/mnt/s3/"


def _pipeline_trace():
    builder = TraceBuilder()
    pid = builder.spawn("gen", argv=["gen"], exec_path="/bin/gen")
    builder.read(pid, "/local/in.dat", 1000)
    builder.compute(pid, 2.0)
    builder.write_close(pid, f"{MOUNT}out/a", 50_000)
    pid2 = builder.spawn("xform", parent_pid=pid, exec_path="/bin/xform")
    builder.read(pid2, f"{MOUNT}out/a", 50_000)
    builder.write_close(pid2, f"{MOUNT}out/b", 20_000)
    builder.unlink(pid2, f"{MOUNT}out/a")
    return builder.trace


class TestPlainS3fs:
    def test_uploads_only_mount_files(self):
        account = CloudAccount(consistency=ConsistencyModel.STRICT)
        result = PlainS3fs(account).run(_pipeline_trace())
        keys = account.s3.peek_keys("pass-data")
        assert data_key(f"{MOUNT}out/b") in keys
        assert all("local" not in key for key in keys)
        assert result.operations > 0

    def test_compute_time_charged(self):
        account = CloudAccount(consistency=ConsistencyModel.STRICT)
        result = PlainS3fs(account).run(_pipeline_trace())
        assert result.compute_seconds == pytest.approx(2.0)
        assert result.elapsed_seconds > 2.0

    def test_uml_penalty_scales_compute(self):
        profile = SimulationProfile().with_environment(UML_ENV)
        account = CloudAccount(
            profile=profile, consistency=ConsistencyModel.STRICT
        )
        result = PlainS3fs(account).run(_pipeline_trace())
        assert result.compute_seconds == pytest.approx(2.0 * UML_ENV.cpu_factor)

    def test_cache_prevents_reget(self):
        account = CloudAccount(consistency=ConsistencyModel.STRICT)
        builder = TraceBuilder()
        pid = builder.spawn("reader")
        stage_inputs(account, "pass-data", {f"{MOUNT}in/x": 1000})
        builder.read(pid, f"{MOUNT}in/x", 1000)
        builder.read(pid, f"{MOUNT}in/x", 1000)
        PlainS3fs(account).run(builder.trace)
        assert account.billing.snapshot()["s3"]["GET"] == 1

    def test_unlink_deletes(self):
        account = CloudAccount(consistency=ConsistencyModel.STRICT)
        PlainS3fs(account).run(_pipeline_trace())
        assert account.s3.peek_latest("pass-data", data_key(f"{MOUNT}out/a")) is None


class TestPAS3fs:
    @pytest.mark.parametrize("protocol_cls", [ProtocolP1, ProtocolP2, ProtocolP3])
    def test_end_to_end_stores_data_and_provenance(self, protocol_cls):
        account = CloudAccount(consistency=ConsistencyModel.STRICT)
        protocol = protocol_cls(account)
        fs = PAS3fs(account, protocol)
        result = fs.run(_pipeline_trace())
        fs.finalize()
        account.settle(300.0)
        blob, metadata = protocol.read_data(f"{MOUNT}out/b")
        assert blob.size == 20_000
        assert "prov-uuid" in metadata
        assert result.elapsed_seconds > 0

    def test_provenance_survives_unlink(self):
        account = CloudAccount(consistency=ConsistencyModel.STRICT)
        protocol = ProtocolP1(account)
        fs = PAS3fs(account, protocol)
        fs.run(_pipeline_trace())
        uuid_a = fs.collector.file_uuid(f"{MOUNT}out/a")
        from repro.core.protocol_base import provenance_object_key

        assert account.s3.peek_latest("pass-data", data_key(f"{MOUNT}out/a")) is None
        assert (
            account.s3.peek_latest("pass-data", provenance_object_key(uuid_a))
            is not None
        )
        assert fs.deleted_paths == [f"{MOUNT}out/a"]

    def test_local_files_contribute_provenance_not_data(self):
        account = CloudAccount(consistency=ConsistencyModel.STRICT)
        protocol = ProtocolP2(account)
        fs = PAS3fs(account, protocol)
        fs.run(_pipeline_trace())
        # No data object for the local input...
        assert account.s3.peek_latest("pass-data", data_key("/local/in.dat")) is None
        # ...but its provenance item exists (ancestor closure).
        uuid = fs.collector.file_uuid("/local/in.dat")
        assert account.simpledb.peek_item(protocol.domain, f"{uuid}_0")

    def test_protocol_costs_more_than_baseline(self):
        baseline_account = CloudAccount(consistency=ConsistencyModel.STRICT)
        baseline = PlainS3fs(baseline_account).run(_pipeline_trace())
        protocol_account = CloudAccount(consistency=ConsistencyModel.STRICT)
        fs = PAS3fs(protocol_account, ProtocolP1(protocol_account))
        result = fs.run(_pipeline_trace())
        assert result.operations > baseline.operations
        assert result.elapsed_seconds >= baseline.elapsed_seconds
