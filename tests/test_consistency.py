"""Tests for the eventual-consistency engine."""

import pytest
from hypothesis import given, strategies as st

from repro.cloud.consistency import (
    ConsistencyEngine,
    ConsistencyModel,
    PropagationSampler,
    VersionedRegister,
)


class TestPropagationSampler:
    def test_zero_mean_is_immediate(self):
        sampler = PropagationSampler(0.0, seed=1)
        assert sampler.sample() == 0.0

    def test_samples_capped_at_four_means(self):
        sampler = PropagationSampler(2.0, seed=1)
        for _ in range(500):
            assert 0.0 <= sampler.sample() <= 8.0

    def test_deterministic_given_seed(self):
        a = [PropagationSampler(3.0, seed=9).sample() for _ in range(5)]
        b = [PropagationSampler(3.0, seed=9).sample() for _ in range(5)]
        assert a == b

    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            PropagationSampler(-1.0)


class TestVersionedRegister:
    def test_read_before_any_write(self):
        register = VersionedRegister()
        assert register.read(10.0, ConsistencyModel.EVENTUAL) is None
        assert not register.ever_written()

    def test_strict_read_sees_commit_immediately(self):
        register = VersionedRegister()
        register.write("v1", committed_at=1.0, visible_at=5.0)
        version = register.read(1.0, ConsistencyModel.STRICT)
        assert version is not None and version.value == "v1"

    def test_eventual_read_waits_for_visibility(self):
        register = VersionedRegister()
        register.write("v1", committed_at=1.0, visible_at=5.0)
        assert register.read(2.0, ConsistencyModel.EVENTUAL) is None
        version = register.read(5.0, ConsistencyModel.EVENTUAL)
        assert version is not None and version.value == "v1"

    def test_stale_read_returns_previous_version(self):
        register = VersionedRegister()
        register.write("old", committed_at=1.0, visible_at=1.0)
        register.write("new", committed_at=10.0, visible_at=20.0)
        version = register.read(15.0, ConsistencyModel.EVENTUAL)
        assert version is not None and version.value == "old"

    def test_last_writer_wins(self):
        register = VersionedRegister()
        register.write("a", committed_at=1.0, visible_at=1.0)
        register.write("b", committed_at=2.0, visible_at=2.0)
        version = register.read(3.0, ConsistencyModel.EVENTUAL)
        assert version is not None and version.value == "b"

    def test_visible_delete_hides_value(self):
        register = VersionedRegister()
        register.write("a", committed_at=1.0, visible_at=1.0)
        register.delete(committed_at=2.0, visible_at=2.0)
        version = register.read(3.0, ConsistencyModel.EVENTUAL)
        assert version is not None and version.deleted

    def test_pending_delete_still_shows_value(self):
        register = VersionedRegister()
        register.write("a", committed_at=1.0, visible_at=1.0)
        register.delete(committed_at=2.0, visible_at=50.0)
        version = register.read(3.0, ConsistencyModel.EVENTUAL)
        assert version is not None and not version.deleted

    def test_read_latest_committed_ignores_visibility(self):
        register = VersionedRegister()
        register.write("a", committed_at=1.0, visible_at=100.0)
        version = register.read_latest_committed(2.0)
        assert version is not None and version.value == "a"

    def test_out_of_order_insert_keeps_history_sorted(self):
        register = VersionedRegister()
        register.write("late", committed_at=10.0, visible_at=10.0)
        register.write("early", committed_at=1.0, visible_at=1.0)
        history = register.history()
        assert [v.value for v in history] == ["early", "late"]

    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 50)),
            min_size=1,
            max_size=20,
        )
    )
    def test_reads_never_travel_backwards(self, writes):
        """Later reads observe a commit time >= earlier reads (monotonic
        staleness for a single client watching one key)."""
        register = VersionedRegister()
        for index, (commit, delay) in enumerate(sorted(writes)):
            register.write(f"v{index}", commit, commit + delay)
        last_commit = -1.0
        for t in range(0, 200, 10):
            version = register.read(float(t), ConsistencyModel.EVENTUAL)
            if version is not None:
                assert version.committed_at >= last_commit
                last_commit = version.committed_at


class TestConsistencyEngine:
    def test_strict_visibility_is_immediate(self):
        engine = ConsistencyEngine(ConsistencyModel.STRICT)
        assert engine.visibility_for(42.0) == 42.0

    def test_eventual_visibility_is_delayed(self):
        engine = ConsistencyEngine(
            ConsistencyModel.EVENTUAL, PropagationSampler(5.0, seed=3)
        )
        samples = [engine.visibility_for(10.0) for _ in range(50)]
        assert all(s >= 10.0 for s in samples)
        assert any(s > 10.0 for s in samples)
