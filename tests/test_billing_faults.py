"""Tests for the billing meter, price book, and fault injection."""

import pytest

from repro.cloud.billing import GB, BillingMeter, PriceBook
from repro.cloud.faults import FaultPlan
from repro.errors import ClientCrashError


class TestBillingMeter:
    def test_s3_request_pricing(self):
        meter = BillingMeter()
        for _ in range(1000):
            meter.record("s3", "PUT")
        assert meter.cost() == pytest.approx(0.01)

    def test_s3_get_cheaper_than_put(self):
        puts = BillingMeter()
        gets = BillingMeter()
        for _ in range(10000):
            puts.record("s3", "PUT")
            gets.record("s3", "GET")
        assert gets.cost() < puts.cost()

    def test_transfer_pricing(self):
        meter = BillingMeter()
        meter.record("s3", "PUT", bytes_in=int(GB))
        assert meter.cost() == pytest.approx(0.10 + 0.01 / 1000.0)

    def test_storage_and_instance_components(self):
        meter = BillingMeter()
        cost = meter.cost(stored_gb_month=2.0, instance_hours=3.0)
        assert cost == pytest.approx(2.0 * 0.15 + 3.0 * 0.17)

    def test_sqs_pricing(self):
        meter = BillingMeter()
        for _ in range(10000):
            meter.record("sqs", "SendMessage", bytes_in=100)
        expected = 0.01 + 10000 * 100 / GB * 0.10
        assert meter.cost() == pytest.approx(expected)

    def test_simpledb_box_usage(self):
        meter = BillingMeter()
        meter.record("simpledb", "BatchPutAttributes", items=100)
        prices = PriceBook()
        expected = (
            prices.sdb_box_usage_hours_per_request
            + 100 * prices.sdb_box_usage_hours_per_item
        ) * prices.sdb_machine_hour
        assert meter.cost() == pytest.approx(expected)

    def test_counters(self):
        meter = BillingMeter()
        meter.record("s3", "PUT", bytes_in=10)
        meter.record("s3", "GET", bytes_out=20)
        meter.record("sqs", "SendMessage", bytes_in=5)
        assert meter.operation_count() == 3
        assert meter.operation_count("s3") == 2
        assert meter.bytes_transmitted() == 15
        assert meter.bytes_received() == 20

    def test_snapshot_and_diff(self):
        meter = BillingMeter()
        meter.record("s3", "PUT")
        before = meter.snapshot()
        meter.record("s3", "PUT")
        meter.record("sqs", "SendMessage")
        assert meter.diff_operations(before) == 2

    def test_reset(self):
        meter = BillingMeter()
        meter.record("s3", "PUT", bytes_in=10)
        meter.reset()
        assert meter.operation_count() == 0
        assert meter.cost() == 0.0


class TestFaultPlan:
    def test_unarmed_point_is_silent(self):
        plan = FaultPlan()
        plan.crash_point("p1.after_prov_put")
        assert plan.hits["p1.after_prov_put"] == 1

    def test_armed_point_crashes(self):
        plan = FaultPlan()
        plan.arm_crash("x")
        with pytest.raises(ClientCrashError) as excinfo:
            plan.crash_point("x")
        assert excinfo.value.crash_point == "x"

    def test_crash_fires_once(self):
        plan = FaultPlan()
        plan.arm_crash("x")
        with pytest.raises(ClientCrashError):
            plan.crash_point("x")
        # A recovered client passing the same point again survives.
        plan.crash_point("x")
        assert plan.fired("x")

    def test_skip_counts_hits(self):
        plan = FaultPlan()
        plan.arm_crash("x", skip=2)
        plan.crash_point("x")
        plan.crash_point("x")
        with pytest.raises(ClientCrashError):
            plan.crash_point("x")

    def test_disarm(self):
        plan = FaultPlan()
        plan.arm_crash("x")
        plan.disarm("x")
        plan.crash_point("x")

    def test_disarm_all(self):
        plan = FaultPlan()
        plan.arm_crash("x")
        plan.arm_crash("y")
        plan.disarm_all()
        plan.crash_point("x")
        plan.crash_point("y")
