"""Chaos schedules: recurring crashes, respawn policies, degradation
windows, and the query-side readers that watch a store being written.

The paper's recovery claims are about *what survives a death*, whenever
it lands: the WAL queue outlives any daemon (§4.3.3), idempotent
commits make at-least-once delivery safe, and eventual consistency means
acknowledged writes can stay invisible for a while.  These tests pin the
schedule machinery that turns those claims into repeatable scenarios.
"""

import random

import pytest

from repro.cloud.account import CloudAccount
from repro.core import PAS3fs, ProtocolP1, ProtocolP2, ProtocolP3
from repro.core.commit_daemon import CommitDaemon
from repro.errors import DrainExhaustedError
from repro.provenance.syscalls import TraceBuilder
from repro.sim import Delay, ProcessState, SimKernel
from repro.workloads.base import MOUNT
from repro.workloads.fleet import (
    FLEET_PROGRAM,
    FleetWatch,
    make_fleet,
    protocol_client_process,
    reader_process,
)


def _state_snapshot(account, protocol) -> str:
    """repr of the fully propagated provenance/data state (items +
    object digests/metadata) — the byte-identity yardstick."""
    items = {}
    if hasattr(protocol, "domain"):
        items = {
            name: account.simpledb.peek_item(protocol.domain, name)
            for name in account.simpledb.peek_item_names(protocol.domain)
        }
    objects = {
        key: (
            record.blob.digest,
            tuple(sorted(record.metadata.items())),
        )
        for key in account.s3.peek_keys(protocol.bucket)
        for record in [account.s3.peek_latest(protocol.bucket, key)]
    }
    return repr((items, objects))


def _sleeper():
    while True:
        yield Delay(1.0)


class TestRecurringCrashes:
    def test_recurring_schedule_fires_repeatedly_and_respawns(self):
        account = CloudAccount(seed=0)
        crash = account.faults.schedule.crash_every(
            "svc", every_s=5.0, start_at=5.0
        )
        policy = account.faults.schedule.respawn(
            "svc", _sleeper, delay_s=1.0
        )
        kernel = SimKernel(account)
        kernel.spawn(_sleeper(), name="svc", daemon=True)
        kernel.run(until=22.0)

        # The schedule fired on every beat, not once: 5, 10, 15, 20.
        assert crash.fired_at == [5.0, 10.0, 15.0, 20.0]
        # Every kill was answered by a respawn; each incarnation died on
        # the next beat except the last, which is still up.
        incarnations = kernel.processes_named("svc")
        assert len(incarnations) == 5
        assert policy.respawns == 4
        assert [p.state for p in incarnations[:-1]] == (
            [ProcessState.CRASHED] * 4
        )
        assert incarnations[-1].alive

    def test_times_bound_stops_the_schedule(self):
        account = CloudAccount(seed=0)
        crash = account.faults.schedule.crash_every(
            "svc", every_s=5.0, times=2
        )
        account.faults.schedule.respawn("svc", _sleeper, delay_s=1.0)
        kernel = SimKernel(account)
        kernel.spawn(_sleeper(), name="svc", daemon=True)
        kernel.run(until=60.0)
        assert crash.fired_at == [5.0, 10.0]
        assert crash.exhausted()
        assert kernel.processes_named("svc")[-1].alive

    def test_without_respawn_the_target_stays_dead(self):
        account = CloudAccount(seed=0)
        account.faults.schedule.crash_every("svc", every_s=5.0)
        kernel = SimKernel(account)
        kernel.spawn(_sleeper(), name="svc", daemon=True)
        kernel.run(until=30.0)
        incarnations = kernel.processes_named("svc")
        assert len(incarnations) == 1
        assert incarnations[0].state is ProcessState.CRASHED

    def test_schedule_validation(self):
        account = CloudAccount(seed=0)
        with pytest.raises(ValueError):
            account.faults.schedule.crash_every("svc", every_s=0.0)
        with pytest.raises(ValueError):
            account.faults.schedule.crash_every("svc", every_s=5.0, start_at=-1.0)
        with pytest.raises(ValueError):
            account.faults.schedule.respawn("svc", _sleeper, delay_s=-1.0)
        with pytest.raises(ValueError):
            account.faults.schedule.degrade(10.0, 10.0)


class TestDegradationWindows:
    def test_window_degrades_then_restores_baseline(self):
        account = CloudAccount(seed=0)
        baseline_latency = account.scheduler.environment.extra_latency_s
        baseline_rate = account.sqs.duplicate_delivery_rate
        account.faults.schedule.degrade(
            10.0, 20.0, add_latency_s=0.5, duplicate_delivery_rate=0.4
        )
        kernel = SimKernel(account)
        observed = {}

        def probe(now):
            observed[now] = (
                account.scheduler.environment.extra_latency_s,
                account.sqs.duplicate_delivery_rate,
            )

        kernel.every(5.0, probe, name="probe")
        kernel.run(until=30.0)

        assert observed[5.0] == (baseline_latency, baseline_rate)
        # Inside [t1, t2): latency stretched, duplicates armed.
        assert observed[10.0] == (baseline_latency + 0.5, 0.4)
        assert observed[15.0] == (baseline_latency + 0.5, 0.4)
        # At t2 the saved baseline is restored exactly.
        assert observed[20.0] == (baseline_latency, baseline_rate)
        assert observed[25.0] == (baseline_latency, baseline_rate)

    def test_latency_scale_multiplies_a_nonzero_baseline(self):
        from repro.cloud.profiles import LOCAL_ENV, SimulationProfile

        account = CloudAccount(
            profile=SimulationProfile().with_environment(LOCAL_ENV), seed=0
        )
        baseline = account.scheduler.environment.extra_latency_s
        assert baseline > 0
        account.faults.schedule.degrade(5.0, 10.0, latency_scale=3.0)
        kernel = SimKernel(account)
        observed = {}
        kernel.every(
            2.5,
            lambda now: observed.__setitem__(
                now, account.scheduler.environment.extra_latency_s
            ),
            name="probe",
        )
        kernel.run(until=12.5)
        assert observed[5.0] == pytest.approx(3.0 * baseline)
        assert observed[10.0] == pytest.approx(baseline)


class TestRespawnAfterDrainExhaustion:
    def test_fresh_daemon_finishes_after_exhausted_drain(self):
        account = CloudAccount(seed=9)
        protocol = ProtocolP3(account)
        fs = PAS3fs(account, protocol)
        builder = TraceBuilder()
        writer = builder.spawn("writer", argv=["writer"], exec_path="/bin/w")
        for index in range(15):
            builder.write_close(writer, f"{MOUNT}many/f{index:02d}.dat", 4096)
        builder.exit(writer)
        fs.run(builder.trace)
        total = account.sqs.pending_count(protocol.queue_url)
        assert total > 10

        # The first daemon's poll budget runs out mid-backlog and it
        # fails loudly — the operational signal to bring up another.
        with pytest.raises(DrainExhaustedError):
            protocol.commit_daemon.drain(max_polls=1)
        first_committed = protocol.commit_daemon.committed_count()

        # The messages the dead drain received are invisible until the
        # visibility timeout lapses; SQS then redelivers them to anyone.
        account.settle(35.0)

        fresh = CommitDaemon(
            account=account,
            queue_url=protocol.queue_url,
            bucket=protocol.bucket,
            domain=protocol.domain,
            router=protocol.router,
        )
        stats = fresh.drain()
        assert first_committed + stats.transactions_committed == 15
        assert stats.transactions_pending == 0
        assert account.sqs.pending_count(protocol.queue_url) == 0
        assert not account.s3.peek_keys(protocol.bucket, "tmp/")


class TestDuplicateDeliveryIdempotence:
    def _run(self, duplicate_rate: float) -> str:
        account = CloudAccount(seed=11)
        account.sqs.duplicate_delivery_rate = duplicate_rate
        protocol = ProtocolP3(account)
        fs = PAS3fs(account, protocol)
        builder = TraceBuilder()
        writer = builder.spawn("writer", argv=["writer"], exec_path="/bin/w")
        for index in range(4):
            builder.write_close(writer, f"{MOUNT}dup/f{index}.dat", 8192)
        builder.exit(writer)
        fs.run(builder.trace)
        protocol.commit_daemon.drain()
        assert protocol.commit_daemon.committed_count() == 4
        account.settle(120.0)
        return _state_snapshot(account, protocol)

    def test_recommits_under_duplicate_delivery_are_idempotent(self):
        # At-least-once delivery re-hands messages to the daemon; the
        # re-issued writes are set-semantics no-ops, so the settled
        # store is byte-identical to the exactly-once run.
        assert self._run(0.6) == self._run(0.0)


class TestMixedProtocolFleet:
    def test_p1_p2_p3_clients_interleave_on_one_kernel(self):
        account = CloudAccount(seed=2)
        protocols = [
            ProtocolP1(account),
            ProtocolP2(account),
            ProtocolP3(account),
        ]
        fleet = make_fleet(clients=3, files_per_client=2, seed=2)
        kernel = SimKernel(account)
        for client, protocol in zip(fleet, protocols):
            kernel.spawn(
                protocol_client_process(
                    protocol, client, think_s=1.0, rng=random.Random(7)
                ),
                name=client.client_id,
            )
        kernel.run()
        protocols[2].finalize()
        account.settle(120.0)

        done = [kernel.process(c.client_id) for c in fleet]
        assert all(p.state is ProcessState.DONE for p in done)
        # The clients genuinely overlapped in virtual time.
        starts = [p.domain.started_at for p in done]
        ends = [p.domain.finished_at for p in done]
        assert max(starts) < min(ends)

        # Each backend holds its protocol's provenance: P1's uuid-named
        # S3 objects, P2's directly-put items, P3's daemon-committed
        # items — all from one interleaved run.
        assert account.s3.peek_keys(protocols[0].bucket, "prov/c0000")
        assert account.simpledb.peek_item(protocols[1].domain, "c0001-f000_1")
        assert account.simpledb.peek_item(protocols[2].domain, "c0002-f000_1")


class TestConcurrentReaders:
    def test_reader_observes_staleness_then_convergence(self):
        account = CloudAccount(seed=3)
        protocol = ProtocolP3(account, client_id="fleet-shared")
        fleet = make_fleet(
            clients=2, files_per_client=3, file_bytes=8 * 1024,
            extra_attributes=4, seed=3,
        )
        kernel = SimKernel(account)
        daemon = CommitDaemon(
            account=account,
            queue_url=protocol.queue_url,
            bucket=protocol.bucket,
            domain=protocol.domain,
            router=protocol.router,
        )
        kernel.spawn(daemon.process(poll_interval=1.0), name="d", daemon=True)
        watch = FleetWatch()
        master = random.Random(3)
        for client in fleet:
            kernel.spawn(
                protocol_client_process(
                    protocol, client, 2.0,
                    random.Random(master.randrange(1 << 30)), watch,
                ),
                name=client.client_id,
            )
        samples = []
        kernel.spawn(
            reader_process(
                account, protocol.router.domains, FLEET_PROGRAM, watch,
                samples, interval_s=3.0, queries=("q1",),
                rng=random.Random(master.randrange(1 << 30)),
            ),
            name="reader",
            daemon=True,
        )
        kernel.run()
        guard = 0
        while (
            account.sqs.pending_count(protocol.queue_url) > 0 and guard < 100
        ):
            kernel.run(until=account.now + 5.0)
            guard += 1
        account.settle(120.0)
        kernel.run(until=account.now + 6.0)

        q1 = [s for s in samples if s.query == "q1"]
        assert q1
        # Mid-run the reader saw acknowledged-but-invisible writes (WAL
        # backlog + propagation): read-your-writes staleness is real.
        assert max(s.stale for s in q1) > 0
        # After the drain settled, the reader's view converged.
        assert q1[-1].stale == 0
        assert q1[-1].visible == len(watch.flushed) == 6
