"""Tests for the request scheduler: connection pools, NIC serialization,
and the SimpleDB indexer pipeline."""

import pytest

from repro.cloud.clock import VirtualClock
from repro.cloud.network import ParallelScheduler, Request
from repro.cloud.profiles import EC2_ENV, S3_PROFILE, SIMPLEDB_PROFILE


def _noop_request(profile=S3_PROFILE, **kwargs):
    return Request(profile=profile, apply=lambda s, f: (s, f), **kwargs)


@pytest.fixture
def scheduler():
    return ParallelScheduler(VirtualClock(), EC2_ENV)


class TestSequential:
    def test_execute_one_advances_clock_by_latency(self, scheduler):
        result = scheduler.execute_one(_noop_request())
        start, finish = result
        assert start == 0.0
        assert finish == pytest.approx(S3_PROFILE.request_latency_s)

    def test_read_requests_pay_read_latency(self, scheduler):
        _, finish = scheduler.execute_one(_noop_request(read_only=True))
        assert finish == pytest.approx(S3_PROFILE.read_latency_s)

    def test_transfer_time_added(self, scheduler):
        size = 5_600_000  # one second at the EC2 NIC rate
        _, finish = scheduler.execute_one(_noop_request(payload_bytes=size))
        expected = S3_PROFILE.request_latency_s + size / EC2_ENV.nic_bw
        assert finish == pytest.approx(expected, rel=1e-3)


class TestBatch:
    def test_empty_batch(self, scheduler):
        result = scheduler.execute_batch([], 10)
        assert result.results == []
        assert result.makespan == 0.0

    def test_invalid_connections(self, scheduler):
        with pytest.raises(ValueError):
            scheduler.execute_batch([_noop_request()], 0)

    def test_latency_bound_waves(self, scheduler):
        # 40 zero-byte requests over 10 connections = 4 waves.
        requests = [_noop_request() for _ in range(40)]
        result = scheduler.execute_batch(requests, 10)
        assert result.makespan == pytest.approx(4 * S3_PROFILE.request_latency_s)
        assert result.connections_used == 10

    def test_results_in_submission_order(self, scheduler):
        values = []
        requests = [
            Request(profile=S3_PROFILE, apply=lambda s, f, i=i: i)
            for i in range(25)
        ]
        results = scheduler.execute_batch(requests, 7).results
        assert results == list(range(25))

    def test_connection_cap_respected(self, scheduler):
        # SimpleDB caps at 40 useful connections.
        requests = [_noop_request(profile=SIMPLEDB_PROFILE) for _ in range(200)]
        result = scheduler.execute_batch(requests, 150)
        assert result.connections_used == SIMPLEDB_PROFILE.max_useful_connections

    def test_nic_serializes_bytes(self, scheduler):
        # Ten 5.6 MB uploads cannot finish faster than 10 NIC-seconds,
        # no matter how many connections are used.
        requests = [
            _noop_request(payload_bytes=EC2_ENV.nic_bw) for _ in range(10)
        ]
        result = scheduler.execute_batch(requests, 150)
        assert result.makespan >= 10.0

    def test_indexer_serializes_items(self, scheduler):
        # SimpleDB batch puts with many items serialize through the
        # indexing pipeline regardless of connection count.
        requests = [
            _noop_request(profile=SIMPLEDB_PROFILE, items=1000) for _ in range(10)
        ]
        result = scheduler.execute_batch(requests, 40)
        assert result.makespan >= 10 * 1000 * SIMPLEDB_PROFILE.per_item_s

    def test_indexer_state_persists_across_batches(self, scheduler):
        first = scheduler.execute_batch(
            [_noop_request(profile=SIMPLEDB_PROFILE, items=5000)], 10
        )
        # A second batch issued immediately queues behind the pipeline.
        second = scheduler.execute_batch(
            [_noop_request(profile=SIMPLEDB_PROFILE, items=5000)], 10
        )
        assert second.finished_at > first.finished_at

    def test_reset_resources_clears_backlog(self, scheduler):
        scheduler.execute_batch(
            [_noop_request(payload_bytes=50 * EC2_ENV.nic_bw)], 1, advance_clock=False
        )
        scheduler.reset_resources()
        result = scheduler.execute_batch([_noop_request(payload_bytes=1000)], 1)
        assert result.makespan < 1.0

    def test_advance_clock_false_leaves_clock(self, scheduler):
        clock_before = scheduler._clock.now
        scheduler.execute_batch(
            [_noop_request() for _ in range(5)], 2, advance_clock=False
        )
        assert scheduler._clock.now == clock_before

    def test_estimate_matches_execute_for_uniform_batch(self, scheduler):
        requests = [_noop_request() for _ in range(30)]
        estimate = scheduler.estimate_batch(requests, 10)
        actual = scheduler.execute_batch(
            [_noop_request() for _ in range(30)], 10
        ).makespan
        assert estimate == pytest.approx(actual)

    def test_more_connections_never_slower(self, scheduler):
        def makespan(connections):
            sched = ParallelScheduler(VirtualClock(), EC2_ENV)
            return sched.execute_batch(
                [_noop_request() for _ in range(60)], connections
            ).makespan

        times = [makespan(c) for c in (1, 2, 5, 10, 20)]
        assert times == sorted(times, reverse=True)
