"""Direct unit tests for P3's asynchronous halves: the commit daemon
(idempotent re-commit after a mid-commit crash) and the cleaner daemon
(garbage collection of incomplete transactions)."""

import pytest

from repro.cloud.account import CloudAccount
from repro.core import PAS3fs, ProtocolP3, UploadMode
from repro.core.commit_daemon import CommitDaemon
from repro.core.cleaner_daemon import DEFAULT_MAX_AGE_SECONDS
from repro.errors import ClientCrashError, TransactionIncompleteError
from repro.provenance.syscalls import TraceBuilder
from repro.workloads.base import MOUNT


def _single_file_trace(size=64 * 1024):
    builder = TraceBuilder()
    writer = builder.spawn("writer", argv=["writer"], exec_path="/bin/writer")
    builder.read(writer, "/local/input.dat", 1024)
    builder.write_close(writer, f"{MOUNT}out/result.dat", size)
    builder.exit(writer)
    return builder.trace


def _wide_provenance_trace(cycles=64):
    """Provenance large enough to span several 8 KB WAL messages, so a
    mid-log crash leaves a genuinely incomplete transaction."""
    builder = TraceBuilder()
    xform = builder.spawn(
        "transform",
        argv=["transform", "--passes", str(cycles)],
        env=(("TRANSFORM_OPTS", "x" * 512),),
        exec_path="/bin/transform",
    )
    for cycle in range(cycles):
        builder.read(xform, f"{MOUNT}wide/input.dat", 16 * 1024)
        builder.write(xform, f"{MOUNT}wide/output.dat", (cycle + 1) * 1024)
    builder.close(xform, f"{MOUNT}wide/output.dat")
    builder.exit(xform)
    return builder.trace


class TestCommitDaemonRecovery:
    def test_recommit_after_mid_commit_crash_is_idempotent(self):
        account = CloudAccount(seed=9)
        protocol = ProtocolP3(account)
        fs = PAS3fs(account, protocol)
        fs.run(_single_file_trace())

        # The first daemon machine dies between the SimpleDB writes and
        # the temp->final COPY.
        account.faults.arm_crash("p3.mid_commit")
        with pytest.raises(ClientCrashError):
            protocol.commit_daemon.drain()
        assert not account.s3.list_keys(protocol.bucket, "files/mnt/s3/out/")

        # Any other machine can run a fresh daemon against the same
        # queue and finish the job (§4.3.3) once the WAL messages'
        # visibility timeout lapses.
        account.faults.disarm_all()
        account.settle(60.0)
        second = CommitDaemon(
            account=account,
            queue_url=protocol.queue_url,
            bucket=protocol.bucket,
            domain=protocol.domain,
        )
        stats = second.drain()
        assert stats.transactions_committed == 1
        assert stats.transactions_pending == 0
        account.settle(60.0)  # let the COPY/DELETEs become list-visible

        # Data reached its final key; temporaries and WAL are gone.
        assert account.s3.list_keys(protocol.bucket, "files/mnt/s3/out/")
        assert not account.s3.list_keys(protocol.bucket, "tmp/")
        assert account.sqs.pending_count(protocol.queue_url, now=account.now) == 0

        # Idempotency: the crashed commit already issued the same
        # BatchPutAttributes; re-issuing them must not duplicate values.
        for name in account.simpledb.peek_item_names(protocol.domain):
            attributes = account.simpledb.peek_item(protocol.domain, name)
            for attribute, values in attributes.items():
                assert len(values) == len(set(values)), (name, attribute)

    def test_commit_refuses_incomplete_transaction(self):
        account = CloudAccount(seed=9)
        protocol = ProtocolP3(account)
        daemon = protocol.commit_daemon
        with pytest.raises(TransactionIncompleteError):
            daemon.commit("txn-never-logged")


class TestCleanerDaemonGC:
    def _crash_mid_log(self):
        account = CloudAccount(seed=13)
        # CAUSAL mode sends WAL packets one by one, so the mid-log crash
        # point can fire between them.
        protocol = ProtocolP3(account, mode=UploadMode.CAUSAL)
        fs = PAS3fs(account, protocol)
        account.faults.arm_crash("p3.mid_log")
        with pytest.raises(ClientCrashError):
            fs.run(_wide_provenance_trace())
        account.faults.disarm_all()
        return account, protocol

    def test_incomplete_transaction_is_never_committed(self):
        account, protocol = self._crash_mid_log()
        stats = protocol.commit_daemon.drain()
        assert stats.transactions_committed == 0
        assert stats.transactions_pending == 1
        # The orphaned temporaries are still sitting under tmp/.
        assert account.s3.list_keys(protocol.bucket, "tmp/")

    def test_cleaner_collects_orphaned_temporaries(self):
        account, protocol = self._crash_mid_log()
        # Too young to collect: a cleaning pass right away removes nothing.
        assert protocol.run_cleaner() == 0
        # Four days later the temporaries are stale and SQS has dropped
        # the incomplete transaction's messages (its retention window).
        account.clock.advance(DEFAULT_MAX_AGE_SECONDS + 120.0)
        removed = protocol.run_cleaner()
        assert removed > 0
        account.settle(60.0)  # let the DELETEs become list-visible
        assert not account.s3.list_keys(protocol.bucket, "tmp/")
        assert account.sqs.pending_count(protocol.queue_url, now=account.now) == 0
        # A fresh daemon finds nothing left to commit.
        fresh = CommitDaemon(
            account=account,
            queue_url=protocol.queue_url,
            bucket=protocol.bucket,
            domain=protocol.domain,
        )
        stats = fresh.drain()
        assert stats.transactions_committed == 0
        assert stats.transactions_pending == 0
        # The never-committed data must not exist at its final key.
        assert not account.s3.list_keys(protocol.bucket, "files/mnt/s3/wide/")
