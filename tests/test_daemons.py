"""Direct unit tests for P3's asynchronous halves: the commit daemon
(idempotent re-commit after a mid-commit crash) and the cleaner daemon
(garbage collection of incomplete transactions)."""

import pytest

from repro.cloud.account import CloudAccount
from repro.core import PAS3fs, ProtocolP3, UploadMode
from repro.core.commit_daemon import CommitDaemon
from repro.core.cleaner_daemon import DEFAULT_MAX_AGE_SECONDS
from repro.errors import ClientCrashError, TransactionIncompleteError
from repro.provenance.syscalls import TraceBuilder
from repro.workloads.base import MOUNT


def _single_file_trace(size=64 * 1024):
    builder = TraceBuilder()
    writer = builder.spawn("writer", argv=["writer"], exec_path="/bin/writer")
    builder.read(writer, "/local/input.dat", 1024)
    builder.write_close(writer, f"{MOUNT}out/result.dat", size)
    builder.exit(writer)
    return builder.trace


def _wide_provenance_trace(cycles=64):
    """Provenance large enough to span several 8 KB WAL messages, so a
    mid-log crash leaves a genuinely incomplete transaction."""
    builder = TraceBuilder()
    xform = builder.spawn(
        "transform",
        argv=["transform", "--passes", str(cycles)],
        env=(("TRANSFORM_OPTS", "x" * 512),),
        exec_path="/bin/transform",
    )
    for cycle in range(cycles):
        builder.read(xform, f"{MOUNT}wide/input.dat", 16 * 1024)
        builder.write(xform, f"{MOUNT}wide/output.dat", (cycle + 1) * 1024)
    builder.close(xform, f"{MOUNT}wide/output.dat")
    builder.exit(xform)
    return builder.trace


class TestCommitDaemonRecovery:
    def test_recommit_after_mid_commit_crash_is_idempotent(self):
        account = CloudAccount(seed=9)
        protocol = ProtocolP3(account)
        fs = PAS3fs(account, protocol)
        fs.run(_single_file_trace())

        # The first daemon machine dies between the SimpleDB writes and
        # the temp->final COPY.
        account.faults.arm_crash("p3.mid_commit")
        with pytest.raises(ClientCrashError):
            protocol.commit_daemon.drain()
        assert not account.s3.list_keys(protocol.bucket, "files/mnt/s3/out/")

        # Any other machine can run a fresh daemon against the same
        # queue and finish the job (§4.3.3) once the WAL messages'
        # visibility timeout lapses.
        account.faults.disarm_all()
        account.settle(60.0)
        second = CommitDaemon(
            account=account,
            queue_url=protocol.queue_url,
            bucket=protocol.bucket,
            domain=protocol.domain,
        )
        stats = second.drain()
        assert stats.transactions_committed == 1
        assert stats.transactions_pending == 0
        account.settle(60.0)  # let the COPY/DELETEs become list-visible

        # Data reached its final key; temporaries and WAL are gone.
        assert account.s3.list_keys(protocol.bucket, "files/mnt/s3/out/")
        assert not account.s3.list_keys(protocol.bucket, "tmp/")
        assert account.sqs.pending_count(protocol.queue_url, now=account.now) == 0

        # Idempotency: the crashed commit already issued the same
        # BatchPutAttributes; re-issuing them must not duplicate values.
        for name in account.simpledb.peek_item_names(protocol.domain):
            attributes = account.simpledb.peek_item(protocol.domain, name)
            for attribute, values in attributes.items():
                assert len(values) == len(set(values)), (name, attribute)

    def test_commit_refuses_incomplete_transaction(self):
        account = CloudAccount(seed=9)
        protocol = ProtocolP3(account)
        daemon = protocol.commit_daemon
        with pytest.raises(TransactionIncompleteError):
            daemon.commit("txn-never-logged")


class TestCleanerDaemonGC:
    def _crash_mid_log(self):
        account = CloudAccount(seed=13)
        # CAUSAL mode sends WAL packets one by one, so the mid-log crash
        # point can fire between them.
        protocol = ProtocolP3(account, mode=UploadMode.CAUSAL)
        fs = PAS3fs(account, protocol)
        account.faults.arm_crash("p3.mid_log")
        with pytest.raises(ClientCrashError):
            fs.run(_wide_provenance_trace())
        account.faults.disarm_all()
        return account, protocol

    def test_incomplete_transaction_is_never_committed(self):
        account, protocol = self._crash_mid_log()
        stats = protocol.commit_daemon.drain()
        assert stats.transactions_committed == 0
        assert stats.transactions_pending == 1
        # The orphaned temporaries are still sitting under tmp/.
        assert account.s3.list_keys(protocol.bucket, "tmp/")

    def test_cleaner_collects_orphaned_temporaries(self):
        account, protocol = self._crash_mid_log()
        # Too young to collect: a cleaning pass right away removes nothing.
        assert protocol.run_cleaner() == 0
        # Four days later the temporaries are stale and SQS has dropped
        # the incomplete transaction's messages (its retention window).
        account.clock.advance(DEFAULT_MAX_AGE_SECONDS + 120.0)
        removed = protocol.run_cleaner()
        assert removed > 0
        account.settle(60.0)  # let the DELETEs become list-visible
        assert not account.s3.list_keys(protocol.bucket, "tmp/")
        assert account.sqs.pending_count(protocol.queue_url, now=account.now) == 0
        # A fresh daemon finds nothing left to commit.
        fresh = CommitDaemon(
            account=account,
            queue_url=protocol.queue_url,
            bucket=protocol.bucket,
            domain=protocol.domain,
        )
        stats = fresh.drain()
        assert stats.transactions_committed == 0
        assert stats.transactions_pending == 0
        # The never-committed data must not exist at its final key.
        assert not account.s3.list_keys(protocol.bucket, "files/mnt/s3/wide/")


def _state_snapshot(account, protocol):
    """Byte-comparable committed state: every SimpleDB item in every shard
    domain, every surviving S3 object (digest + metadata), and the WAL
    backlog.  Timestamps are deliberately excluded — recovery changes
    *when* state lands, never *what* lands."""
    domains = {
        domain: {
            name: account.simpledb.peek_item(domain, name)
            for name in account.simpledb.peek_item_names(domain)
        }
        for domain in protocol.router.domains
    }
    objects = {
        key: (
            account.s3.peek_latest(protocol.bucket, key).blob.digest,
            tuple(
                sorted(account.s3.peek_latest(protocol.bucket, key).metadata.items())
            ),
        )
        for key in account.s3.peek_keys(protocol.bucket)
    }
    return repr((domains, objects))


class TestKernelTakeover:
    """§4.3.3's takeover claim, run for real on the simulation kernel:
    daemon A crashes mid-commit, daemon B — polling the same queue as a
    concurrent process — finishes the transaction after the WAL messages'
    visibility timeout redelivers them."""

    @staticmethod
    def _logged_account(seed=21):
        account = CloudAccount(seed=seed)
        protocol = ProtocolP3(account)
        fs = PAS3fs(account, protocol)
        fs.run(_single_file_trace())
        return account, protocol

    @staticmethod
    def _run_daemons(account, protocol, crash_first):
        from repro.sim import SimKernel

        kernel = SimKernel(account)
        if crash_first:
            account.faults.arm_crash("p3.mid_commit")
        daemons = []
        for index in range(2):
            daemon = CommitDaemon(
                account=account,
                queue_url=protocol.queue_url,
                bucket=protocol.bucket,
                domain=protocol.domain,
                router=protocol.router,
            )
            daemons.append(daemon)
            kernel.spawn(
                daemon.process(poll_interval=1.0),
                name=f"daemon-{index}",
                daemon=True,
            )
        guard = 0
        while account.sqs.pending_count(protocol.queue_url) > 0 and guard < 200:
            kernel.run(until=account.now + 5.0)
            guard += 1
        kernel.run(until=account.now + 5.0)  # settle bookkeeping
        states = [kernel.process(f"daemon-{i}").state for i in range(2)]
        return daemons, states

    def test_daemon_b_finishes_daemon_a_transaction_byte_identically(self):
        # Reference: the same client run, no crash, both daemons healthy.
        ref_account, ref_protocol = self._logged_account()
        self._run_daemons(ref_account, ref_protocol, crash_first=False)
        reference = _state_snapshot(ref_account, ref_protocol)

        # Crash run: daemon A dies mid-commit, daemon B takes over.
        account, protocol = self._logged_account()
        daemons, states = self._run_daemons(account, protocol, crash_first=True)

        from repro.sim import ProcessState

        assert states[0] is ProcessState.CRASHED
        assert states[1] is not ProcessState.CRASHED
        # B finished A's transaction: one commit, owned by daemon B.
        assert daemons[0].committed_count() == 0
        assert daemons[1].committed_count() == 1
        assert account.faults.fired("p3.mid_commit")

        # The committed state is byte-identical to the uncrashed run —
        # "any other machine can finish the job", with nothing duplicated
        # and nothing missing.
        assert _state_snapshot(account, protocol) == reference
        assert account.sqs.pending_count(protocol.queue_url) == 0
        assert not account.s3.peek_keys(protocol.bucket, "tmp/")


class TestDrainGuard:
    """Satellite: drain() must fail loudly when its poll budget runs out
    with the queue still yielding, instead of silently returning."""

    def test_exhausted_drain_raises(self):
        from repro.errors import DrainExhaustedError

        account = CloudAccount(seed=9)
        protocol = ProtocolP3(account)
        fs = PAS3fs(account, protocol)
        # More WAL messages than one receive can return (≤ 10): a single
        # poll leaves a genuine backlog.
        builder = TraceBuilder()
        writer = builder.spawn("writer", argv=["writer"], exec_path="/bin/w")
        for index in range(15):
            builder.write_close(writer, f"{MOUNT}many/f{index:02d}.dat", 4096)
        builder.exit(writer)
        fs.run(builder.trace)
        assert account.sqs.pending_count(protocol.queue_url) > 10
        with pytest.raises(DrainExhaustedError):
            protocol.commit_daemon.drain(max_polls=1)

    def test_successful_drain_still_returns_stats(self):
        account = CloudAccount(seed=9)
        protocol = ProtocolP3(account)
        fs = PAS3fs(account, protocol)
        fs.run(_single_file_trace())
        stats = protocol.commit_daemon.drain()
        assert stats.transactions_committed == 1


class TestCommitLagBookkeeping:
    def test_commit_log_records_positive_lag_under_kernel(self):
        from repro.sim import SimKernel

        account, protocol = TestKernelTakeover._logged_account(seed=4)
        kernel = SimKernel(account)
        daemon = CommitDaemon(
            account=account,
            queue_url=protocol.queue_url,
            bucket=protocol.bucket,
            domain=protocol.domain,
            router=protocol.router,
        )
        kernel.spawn(daemon.process(poll_interval=1.0), name="d", daemon=True)
        guard = 0
        while account.sqs.pending_count(protocol.queue_url) > 0 and guard < 50:
            kernel.run(until=account.now + 5.0)
            guard += 1
        kernel.run(until=account.now + 5.0)
        assert len(daemon.commit_log) == 1
        record = daemon.commit_log[0]
        assert record.committed_at > record.logged_at
        assert record.lag == record.committed_at - record.logged_at


class TestCleanerProcess:
    def test_cleaner_runs_periodically_on_the_kernel(self):
        from repro.sim import Delay, SimKernel

        account = CloudAccount(seed=13)
        protocol = ProtocolP3(account, mode=UploadMode.CAUSAL)
        fs = PAS3fs(account, protocol)
        account.faults.arm_crash("p3.mid_log")
        with pytest.raises(ClientCrashError):
            fs.run(_wide_provenance_trace())
        account.faults.disarm_all()
        assert account.s3.list_keys(protocol.bucket, "tmp/")

        kernel = SimKernel(account)
        interval = DEFAULT_MAX_AGE_SECONDS / 2
        kernel.spawn(
            protocol.cleaner_daemon.process(interval=interval),
            name="cleaner",
            daemon=True,
        )
        # Three cleaner passes fit in the horizon; only the one after the
        # four-day threshold collects the orphans.
        kernel.run(until=DEFAULT_MAX_AGE_SECONDS * 1.6)
        assert protocol.cleaner_daemon.removed_total > 0
        account.settle(60.0)
        assert not account.s3.list_keys(protocol.bucket, "tmp/")
