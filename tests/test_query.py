"""Tests for the query engines, ancestry index, and search ranking."""

import pytest

from repro.cloud.account import CloudAccount
from repro.cloud.consistency import ConsistencyModel
from repro.core import PAS3fs, ProtocolP1, ProtocolP2
from repro.provenance.graph import NodeRef
from repro.provenance.records import ProvenanceRecord
from repro.provenance.syscalls import TraceBuilder
from repro.query import (
    ProvenanceIndex,
    S3QueryEngine,
    SimpleDBQueryEngine,
    provenance_ranked_search,
    query_engine_for,
)

MOUNT = "/mnt/s3/"


def _pipeline_account(protocol_cls):
    account = CloudAccount(consistency=ConsistencyModel.STRICT, seed=4)
    protocol = protocol_cls(account)
    fs = PAS3fs(account, protocol)
    builder = TraceBuilder()
    blast = builder.spawn("blastall", argv=["blastall"], exec_path="/bin/blastall")
    builder.read(blast, "/local/db", 100)
    builder.write_close(blast, f"{MOUNT}hits", 5000)
    sort = builder.spawn("sort", exec_path="/bin/sort")
    builder.read(sort, f"{MOUNT}hits", 5000)
    builder.write_close(sort, f"{MOUNT}sorted", 5000)
    fs.run(builder.trace)
    fs.finalize()
    account.settle(300.0)
    return account, fs


class TestProvenanceIndex:
    def _index(self):
        index = ProvenanceIndex()
        a, p, b = NodeRef("a", 0), NodeRef("p", 0), NodeRef("b", 0)
        index.add(p, "type", "proc")
        index.add(p, "name", "tool")
        index.add(a, "type", "file")
        index.add(a, "input", str(p))
        index.add(b, "type", "file")
        index.add(b, "input", str(a))
        return index, a, p, b

    def test_find(self):
        index, a, p, b = self._index()
        assert index.find("name", "tool") == [p]
        assert index.find("type", "file") == [a, b]

    def test_closures(self):
        index, a, p, b = self._index()
        assert index.ancestors(b) == {a, p}
        assert index.descendants(p) == {a, b}
        assert index.direct_dependents(p) == {a}
        assert index.ancestors_direct(b) == {a}

    def test_non_xref_values_do_not_create_edges(self):
        index = ProvenanceIndex()
        index.add(NodeRef("x", 0), "name", "a_1")  # looks like a ref
        assert index.ancestors(NodeRef("x", 0)) == set()

    def test_versions_of(self):
        index = ProvenanceIndex()
        index.add(NodeRef("u", 2), "type", "file")
        index.add(NodeRef("u", 0), "type", "file")
        assert index.versions_of("u") == [NodeRef("u", 0), NodeRef("u", 2)]


@pytest.mark.parametrize(
    "protocol_cls,engine_cls",
    [(ProtocolP1, S3QueryEngine), (ProtocolP2, SimpleDBQueryEngine)],
)
class TestQueriesBothBackends:
    def test_q1_returns_all_nodes(self, protocol_cls, engine_cls):
        account, fs = _pipeline_account(protocol_cls)
        engine = engine_cls(account)
        index, stats = engine.q1_all_provenance()
        # Both processes and both mount files (plus the local input and
        # process re-versions) are present.
        names = {
            n for ref in index.refs() for n in index.attributes(ref).get("name", [])
        }
        assert {f"{MOUNT}hits", f"{MOUNT}sorted", "blastall", "sort"} <= names
        assert stats.operations > 0

    def test_q2_returns_object_provenance(self, protocol_cls, engine_cls):
        account, fs = _pipeline_account(protocol_cls)
        engine = engine_cls(account)
        attributes, stats = engine.q2_object_provenance(f"{MOUNT}hits")
        assert "sha1" in attributes
        assert f"{MOUNT}hits" in attributes.get("name", [])
        assert stats.operations >= 2  # HEAD + at least one lookup

    def test_q3_finds_direct_outputs(self, protocol_cls, engine_cls):
        account, fs = _pipeline_account(protocol_cls)
        engine = engine_cls(account)
        outputs, _ = engine.q3_direct_outputs("blastall")
        uuids = {ref.uuid for ref in outputs}
        assert fs.collector.file_uuid(f"{MOUNT}hits") in uuids
        assert fs.collector.file_uuid(f"{MOUNT}sorted") not in uuids

    def test_q4_finds_transitive_descendants(self, protocol_cls, engine_cls):
        account, fs = _pipeline_account(protocol_cls)
        engine = engine_cls(account)
        descendants, _ = engine.q4_all_descendants("blastall")
        uuids = {ref.uuid for ref in descendants}
        assert fs.collector.file_uuid(f"{MOUNT}hits") in uuids
        assert fs.collector.file_uuid(f"{MOUNT}sorted") in uuids

    def test_parallel_matches_sequential(self, protocol_cls, engine_cls):
        account, fs = _pipeline_account(protocol_cls)
        engine = engine_cls(account)
        seq, _ = engine.q4_all_descendants("blastall", parallel=False)
        par, _ = engine.q4_all_descendants("blastall", parallel=True)
        assert seq == par


class TestQueryEngineFactory:
    def test_routing(self):
        account = CloudAccount()
        assert isinstance(query_engine_for("p1", account), S3QueryEngine)
        assert isinstance(query_engine_for("p2", account), SimpleDBQueryEngine)
        assert isinstance(query_engine_for("p3", account), SimpleDBQueryEngine)
        with pytest.raises(ValueError):
            query_engine_for("s3fs", account)


class TestSearchRanking:
    def _index(self):
        index = ProvenanceIndex()
        note = NodeRef("note", 0)
        proc = NodeRef("proc", 0)
        fig = NodeRef("fig", 0)
        junk = NodeRef("junk", 0)
        index.add(note, "type", "file")
        index.add(proc, "type", "proc")
        index.add(proc, "input", str(note))
        index.add(fig, "type", "file")
        index.add(fig, "input", str(proc))
        index.add(junk, "type", "file")
        return index, note, fig, junk

    def test_derived_files_surface(self):
        index, note, fig, junk = self._index()
        ranked = provenance_ranked_search(index, {note: 1.0}, iterations=3)
        refs = [ref for ref, _ in ranked]
        assert note in refs
        assert fig in refs
        assert refs.index(note) < refs.index(fig)

    def test_unconnected_files_get_no_weight(self):
        index, note, fig, junk = self._index()
        ranked = dict(provenance_ranked_search(index, {note: 1.0}, iterations=3))
        assert junk not in ranked or ranked[junk] == 0.0

    def test_zero_iterations_is_content_only(self):
        index, note, fig, junk = self._index()
        ranked = provenance_ranked_search(index, {note: 1.0}, iterations=0)
        assert ranked[0][0] == note
        assert all(weight == 0 for ref, weight in ranked[1:])

    def test_negative_iterations_rejected(self):
        index, note, _, _ = self._index()
        with pytest.raises(ValueError):
            provenance_ranked_search(index, {note: 1.0}, iterations=-1)
