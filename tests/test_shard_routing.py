"""Index-aware shard fan-out: itemName-rooted chunks hit one shard.

The routing contract on the multitenant fixture: a chunked
``itemName() IN (...)`` select's names all hash to a known shard, so
the sharded engine contacts exactly that shard (asserted through the
service's per-domain chain counters, not just the engine's own stats);
attribute-rooted lookups fan out — to every shard without Bloom
routing, and to every shard whose ingest-maintained Bloom filter
admits the probed values with it (a probe for values no shard ever
ingested issues zero selects); and routing never changes answers — the
routed engine returns byte-identical results to a naive
fan-to-every-shard engine, Bloom pruning included.
"""

from typing import Dict, List, Sequence, Tuple

from repro.cloud.account import CloudAccount
from repro.query.engine import ShardedSimpleDBQueryEngine
from repro.service import IngestGateway, ShardRouter
from repro.workloads.fleet import FLEET_PROGRAM, make_fleet, run_fleet

TARGET = "/mnt/s3/fleet/c0000/f000.dat"
TARGET_UUID = "c0000-f000"


def _fixture(shards=3, seed=5):
    account = CloudAccount(seed=seed)
    router = ShardRouter(shards=shards)
    gateway = IngestGateway(account, router)
    fleet = make_fleet(clients=6, files_per_client=3, seed=seed)
    run_fleet(account, gateway, fleet, seed=seed)
    account.settle(120.0)
    return account, router


def _chains_delta(account, before) -> Dict[str, int]:
    after = account.simpledb.select_stats.chains_by_domain
    return {
        domain: count - before.get(domain, 0)
        for domain, count in after.items()
        if count != before.get(domain, 0)
    }


class _NaiveFanoutEngine(ShardedSimpleDBQueryEngine):
    """The pre-routing behaviour: every itemName chunk to every shard."""

    def _domains_for_names(
        self, names: Sequence[str]
    ) -> List[Tuple[str, List[str]]]:
        return [(domain, list(names)) for domain in self._domains()]


def test_itemname_rooted_chunks_hit_exactly_one_shard():
    account, router = _fixture()
    engine = ShardedSimpleDBQueryEngine(account, router)
    before = dict(account.simpledb.select_stats.chains_by_domain)
    answer, _ = engine.q2_version_range(TARGET, 0, 3)
    assert answer  # the target's provenance is really there
    delta = _chains_delta(account, before)
    owning = router.domain_for(TARGET_UUID)
    assert list(delta) == [owning], delta
    assert engine.fanout.single_shard_chunks >= 1
    assert engine.fanout.fanned_out_selects == 0


def test_non_rooted_queries_still_fan_out():
    account, router = _fixture()
    engine = ShardedSimpleDBQueryEngine(account, router, bloom_routing=False)
    before = dict(account.simpledb.select_stats.chains_by_domain)
    q3, _ = engine.q3_direct_outputs(FLEET_PROGRAM)
    assert q3
    delta = _chains_delta(account, before)
    # Without Bloom routing the proc lookup and the reference lookup
    # both visit every shard — the pre-pruning baseline.
    assert sorted(delta) == sorted(router.domains)
    assert engine.fanout.fanned_out_selects >= len(router.domains)
    assert engine.fanout.bloom_skipped_selects == 0


def test_bloom_routing_matches_naive_fanout_answers():
    """The Bloom-routed engine returns byte-identical Q3/Q4 answers to
    the full fan-out engine and never issues *more* selects.  (On fleet
    data every shard genuinely holds ``input`` references, so the
    filters admit every shard — the fan-out only shrinks when a probed
    value is provably absent, which the next test pins.)"""
    account, router = _fixture()
    bloom = ShardedSimpleDBQueryEngine(account, router)
    naive = ShardedSimpleDBQueryEngine(account, router, bloom_routing=False)
    b3, _ = bloom.q3_direct_outputs(FLEET_PROGRAM)
    n3, _ = naive.q3_direct_outputs(FLEET_PROGRAM)
    assert repr(b3) == repr(n3)
    b4, _ = bloom.q4_all_descendants(FLEET_PROGRAM)
    n4, _ = naive.q4_all_descendants(FLEET_PROGRAM)
    assert repr(b4) == repr(n4)
    assert bloom.fanout.fanned_out_selects <= naive.fanout.fanned_out_selects


def test_bloom_routing_prunes_absent_values_to_zero_selects():
    """A lookup for values no shard ever ingested contacts no shard at
    all: the proc lookup for an unknown program is answered entirely
    from the Bloom filters (no select chains started anywhere), and an
    itemName chunk past the object's last version is dropped whole."""
    account, router = _fixture()
    engine = ShardedSimpleDBQueryEngine(account, router)
    before = dict(account.simpledb.select_stats.chains_by_domain)
    q3, _ = engine.q3_direct_outputs("no-such-program")
    assert q3 == []
    assert _chains_delta(account, before) == {}
    assert engine.fanout.bloom_skipped_selects == len(router.domains)

    ranged, _ = engine.q2_version_range(TARGET, 50, 60)
    assert ranged == {}
    assert engine.fanout.bloom_skipped_chunks >= 1
    # ...and the pruned paths cost nothing on the service either.
    assert _chains_delta(account, before) == {}


def test_routed_answers_byte_identical_to_naive_fanout():
    account, router = _fixture()
    routed = ShardedSimpleDBQueryEngine(account, router)
    naive = _NaiveFanoutEngine(account, router)

    routed_answer, _ = routed.q2_version_range(TARGET, 0, 3)
    before = dict(account.simpledb.select_stats.chains_by_domain)
    naive_answer, _ = naive.q2_version_range(TARGET, 0, 3)
    # The naive engine really did contact every shard...
    assert sorted(_chains_delta(account, before)) == sorted(router.domains)
    # ...for the same bytes the routed single-shard lookup returned.
    assert repr(routed_answer) == repr(naive_answer)


def test_version_range_covers_q2_on_single_version_objects():
    """A range spanning every version of the object returns exactly the
    full Q2 answer (merged attributes, same order)."""
    account, router = _fixture()
    engine = ShardedSimpleDBQueryEngine(account, router)
    full, _ = engine.q2_object_provenance(TARGET)
    ranged, _ = engine.q2_version_range(TARGET, 0, 3)
    assert repr(ranged) == repr(full)


def test_single_shard_router_degenerates_cleanly():
    account = CloudAccount(seed=5)
    router = ShardRouter(shards=1)
    gateway = IngestGateway(account, router)
    fleet = make_fleet(clients=3, files_per_client=2, seed=5)
    run_fleet(account, gateway, fleet, seed=5)
    account.settle(120.0)
    engine = ShardedSimpleDBQueryEngine(account, router)
    ranged, _ = engine.q2_version_range(TARGET, 0, 3)
    full, _ = engine.q2_object_provenance(TARGET)
    assert repr(ranged) == repr(full)
    assert engine.fanout.single_shard_chunks >= 1
