"""Tests for the simulated S3 service."""

import pytest

from repro.cloud.blob import Blob
from repro.errors import LimitExceededError, NoSuchBucketError, NoSuchKeyError


class TestBasicOperations:
    def test_put_get_roundtrip(self, strict_account, bucket):
        s3 = strict_account.s3
        s3.put(bucket, "k", Blob.from_text("content"), {"m": "1"})
        blob, metadata = s3.get(bucket, "k")
        assert blob.text() == "content"
        assert metadata == {"m": "1"}

    def test_put_overwrites_data_and_metadata_atomically(
        self, strict_account, bucket
    ):
        s3 = strict_account.s3
        s3.put(bucket, "k", Blob.from_text("v1"), {"version": "1"})
        s3.put(bucket, "k", Blob.from_text("v2"), {"version": "2"})
        blob, metadata = s3.get(bucket, "k")
        assert blob.text() == "v2"
        assert metadata == {"version": "2"}

    def test_get_missing_key(self, strict_account, bucket):
        with pytest.raises(NoSuchKeyError):
            strict_account.s3.get(bucket, "missing")

    def test_missing_bucket(self, strict_account):
        with pytest.raises(NoSuchBucketError):
            strict_account.s3.get("nope", "k")

    def test_head_returns_metadata_and_length(self, strict_account, bucket):
        s3 = strict_account.s3
        s3.put(bucket, "k", Blob.from_text("12345"), {"a": "b"})
        head = s3.head(bucket, "k")
        assert head.metadata == {"a": "b"}
        assert head.content_length == 5

    def test_metadata_limit_enforced(self, strict_account, bucket):
        with pytest.raises(LimitExceededError):
            strict_account.s3.put(
                bucket, "k", Blob.from_text("x"), {"big": "v" * 3000}
            )

    def test_empty_key_rejected(self, strict_account, bucket):
        from repro.errors import InvalidRequestError

        with pytest.raises(InvalidRequestError):
            strict_account.s3.put(bucket, "", Blob.from_text("x"))


class TestCopy:
    def test_copy_carries_source_metadata(self, strict_account, bucket):
        s3 = strict_account.s3
        s3.put(bucket, "src", Blob.from_text("data"), {"m": "1"})
        s3.copy(bucket, "src", bucket, "dst")
        blob, metadata = s3.get(bucket, "dst")
        assert blob.text() == "data"
        assert metadata == {"m": "1"}

    def test_copy_replace_metadata(self, strict_account, bucket):
        s3 = strict_account.s3
        s3.put(bucket, "src", Blob.from_text("data"), {"m": "1"})
        s3.copy(bucket, "src", bucket, "dst", metadata={"version": "7"})
        _, metadata = s3.get(bucket, "dst")
        assert metadata == {"version": "7"}

    def test_copy_missing_source(self, strict_account, bucket):
        with pytest.raises(NoSuchKeyError):
            strict_account.s3.copy(bucket, "ghost", bucket, "dst")

    def test_copy_moves_no_client_bytes(self, strict_account, bucket):
        s3 = strict_account.s3
        s3.put(bucket, "src", Blob.synthetic(10_000_000, "big"))
        before = strict_account.billing.bytes_transmitted()
        s3.copy(bucket, "src", bucket, "dst")
        assert strict_account.billing.bytes_transmitted() == before


class TestDeleteAndList:
    def test_delete_hides_object(self, strict_account, bucket):
        s3 = strict_account.s3
        s3.put(bucket, "k", Blob.from_text("x"))
        s3.delete(bucket, "k")
        with pytest.raises(NoSuchKeyError):
            s3.get(bucket, "k")

    def test_delete_missing_is_silent(self, strict_account, bucket):
        strict_account.s3.delete(bucket, "never-existed")

    def test_list_prefix_and_order(self, strict_account, bucket):
        s3 = strict_account.s3
        for key in ("b/2", "a/1", "b/1", "c"):
            s3.put(bucket, key, Blob.from_text("x"))
        assert s3.list_keys(bucket, "b/") == ["b/1", "b/2"]
        assert s3.list_keys(bucket) == ["a/1", "b/1", "b/2", "c"]

    def test_list_excludes_deleted(self, strict_account, bucket):
        s3 = strict_account.s3
        s3.put(bucket, "a", Blob.from_text("x"))
        s3.put(bucket, "b", Blob.from_text("x"))
        s3.delete(bucket, "a")
        assert s3.list_keys(bucket) == ["b"]

    def test_list_paginates(self, strict_account, bucket):
        from repro.cloud.s3 import LIST_PAGE_SIZE

        s3 = strict_account.s3
        count = LIST_PAGE_SIZE + 5
        for index in range(count):
            s3.put(bucket, f"k{index:05d}", Blob.from_text("x"))
        keys = s3.list_keys(bucket)
        assert len(keys) == count
        assert keys == sorted(keys)


class TestEventualConsistency:
    def test_get_after_put_may_miss_until_settled(self, account):
        account.s3.create_bucket("t")
        account.s3.put("t", "k", Blob.from_text("v"))
        # Eventually the write is visible everywhere.
        account.settle(120.0)
        blob, _ = account.s3.get("t", "k")
        assert blob.text() == "v"

    def test_overwrite_can_return_stale_then_fresh(self, account):
        account.s3.create_bucket("t")
        account.s3.put("t", "k", Blob.from_text("old"))
        account.settle(120.0)
        account.s3.put("t", "k", Blob.from_text("new"))
        observed = set()
        for _ in range(30):
            blob, _ = account.s3.get("t", "k")
            observed.add(blob.text())
            account.clock.advance(1.0)
        assert "new" in observed  # eventually fresh
        account.settle(120.0)
        blob, _ = account.s3.get("t", "k")
        assert blob.text() == "new"

    def test_peek_latest_sees_through_the_window(self, account):
        account.s3.create_bucket("t")
        account.s3.put("t", "k", Blob.from_text("v"), {"m": "1"})
        record = account.s3.peek_latest("t", "k")
        assert record is not None
        assert record.metadata == {"m": "1"}


class TestBilling:
    def test_operations_metered(self, strict_account, bucket):
        s3 = strict_account.s3
        s3.put(bucket, "k", Blob.from_text("xx"))
        s3.get(bucket, "k")
        s3.head(bucket, "k")
        snapshot = strict_account.billing.snapshot()["s3"]
        assert snapshot["PUT"] == 1
        assert snapshot["GET"] == 1
        assert snapshot["HEAD"] == 1

    def test_failed_get_still_billed(self, strict_account, bucket):
        with pytest.raises(NoSuchKeyError):
            strict_account.s3.get(bucket, "missing")
        assert strict_account.billing.snapshot()["s3"]["GET"] == 1
