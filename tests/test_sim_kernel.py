"""Unit tests for the discrete-event simulation kernel: effect
semantics, interleaving, determinism, time domains, daemon liveness,
timed crashes, and error propagation into plans."""

import pytest

from repro.cloud.account import CloudAccount
from repro.errors import ClientCrashError, NoSuchKeyError
from repro.sim import Batch, Delay, ProcessState, SimKernel


def make_account(seed=0):
    return CloudAccount(seed=seed)


class TestDelaySemantics:
    def test_delays_advance_the_clock_to_completion(self):
        account = make_account()
        kernel = SimKernel(account)

        def sleeper():
            yield Delay(5.0)
            yield Delay(2.5)

        process = kernel.spawn(sleeper(), name="sleeper")
        end = kernel.run()
        assert end == pytest.approx(7.5)
        assert process.state is ProcessState.DONE
        assert process.domain.idle_s == pytest.approx(7.5)
        assert process.domain.busy_s == 0.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Delay(-1.0)

    def test_spawn_in_the_past_rejected(self):
        account = make_account()
        account.clock.advance(10.0)
        kernel = SimKernel(account)
        with pytest.raises(ValueError):
            kernel.spawn(iter(()), at=5.0)


class TestBatchSemantics:
    def test_charged_batch_resumes_at_finish_time(self):
        account = make_account()
        account.s3.create_bucket("b")
        kernel = SimKernel(account)
        seen = {}

        def uploader():
            from repro.cloud.blob import Blob

            result = yield Batch(
                [account.s3.put_request("b", "k", Blob.synthetic(1024, "k"))],
                connections=1,
            )
            seen["makespan"] = result.makespan
            seen["now"] = account.now

        kernel.spawn(uploader(), name="uploader")
        kernel.run()
        assert seen["makespan"] > 0
        assert seen["now"] == pytest.approx(seen["makespan"])

    def test_uncharged_batch_is_free_for_the_process(self):
        account = make_account()
        account.s3.create_bucket("b")
        kernel = SimKernel(account)

        def free_rider():
            from repro.cloud.blob import Blob

            yield Batch(
                [account.s3.put_request("b", "k", Blob.synthetic(1024, "k"))],
                connections=1,
                charge=False,
            )

        process = kernel.spawn(free_rider(), name="daemonish")
        end = kernel.run()
        assert end == 0.0  # applied and billed, but no process time
        assert process.domain.busy_s == 0.0
        assert account.billing.operation_count() == 1

    def test_service_errors_are_thrown_into_the_plan(self):
        account = make_account()
        account.s3.create_bucket("b")
        kernel = SimKernel(account)
        outcome = {}

        def prober():
            try:
                yield Batch([account.s3.get_request("b", "missing")], 1)
            except NoSuchKeyError:
                outcome["caught"] = True

        kernel.spawn(prober(), name="prober")
        kernel.run()
        assert outcome.get("caught")


class TestInterleaving:
    def test_processes_interleave_in_virtual_time(self):
        account = make_account()
        kernel = SimKernel(account)
        order = []

        def ticker(name, period, count):
            for _ in range(count):
                yield Delay(period)
                order.append((name, account.now))

        kernel.spawn(ticker("a", 2.0, 3), name="a")
        kernel.spawn(ticker("b", 3.0, 2), name="b")
        kernel.run()
        # Ties at t=6 break by scheduling order: b queued its t=6 wake at
        # t=3, before a queued its own at t=4.
        assert order == [
            ("a", 2.0), ("b", 3.0), ("a", 4.0), ("b", 6.0), ("a", 6.0),
        ]

    def test_same_time_activations_run_in_spawn_order(self):
        account = make_account()
        kernel = SimKernel(account)
        order = []

        def one_shot(name):
            order.append(name)
            return
            yield  # pragma: no cover - makes this a generator

        kernel.spawn(one_shot("first"), name="first")
        kernel.spawn(one_shot("second"), name="second")
        kernel.run()
        assert order == ["first", "second"]

    def test_determinism_same_seed_same_trace(self):
        def run_once():
            account = make_account(seed=7)
            account.s3.create_bucket("b")
            kernel = SimKernel(account)
            trace = []

            def writer(index):
                from repro.cloud.blob import Blob

                for step in range(3):
                    yield Batch(
                        [
                            account.s3.put_request(
                                "b", f"w{index}-{step}",
                                Blob.synthetic(8192, f"{index}-{step}"),
                            )
                        ],
                        connections=2,
                    )
                    trace.append((index, step, round(account.now, 9)))
                    yield Delay(0.5 * (index + 1))

            for index in range(3):
                kernel.spawn(writer(index), name=f"w{index}")
            end = kernel.run()
            return end, trace, account.billing.operation_count()

        assert run_once() == run_once()


class TestDaemonLiveness:
    def test_daemons_do_not_keep_the_simulation_alive(self):
        account = make_account()
        kernel = SimKernel(account)
        ticks = []

        def forever():
            while True:
                yield Delay(1.0)
                ticks.append(account.now)

        def client():
            yield Delay(3.5)

        kernel.spawn(forever(), name="daemon", daemon=True)
        kernel.spawn(client(), name="client")
        end = kernel.run()
        assert end == pytest.approx(3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_run_until_advances_daemons_without_clients(self):
        account = make_account()
        kernel = SimKernel(account)
        ticks = []

        def forever():
            while True:
                yield Delay(2.0)
                ticks.append(account.now)

        kernel.spawn(forever(), name="daemon", daemon=True)
        end = kernel.run(until=7.0)
        assert end == pytest.approx(7.0)
        assert ticks == [2.0, 4.0, 6.0]

    def test_every_samples_on_the_interval(self):
        account = make_account()
        kernel = SimKernel(account)
        samples = []
        kernel.every(1.0, samples.append)

        def client():
            yield Delay(2.5)

        kernel.spawn(client(), name="client")
        kernel.run()
        assert samples == [0.0, 1.0, 2.0]


class TestCrashes:
    def test_crash_point_error_marks_process_crashed(self):
        account = make_account()
        account.faults.arm_crash("test.point")
        kernel = SimKernel(account)

        def doomed():
            yield Delay(1.0)
            account.faults.crash_point("test.point")
            yield Delay(1.0)  # pragma: no cover - never reached

        process = kernel.spawn(doomed(), name="doomed")
        kernel.run()
        assert process.state is ProcessState.CRASHED
        assert process.crash is not None

    def test_timed_crash_kills_target_at_armed_time(self):
        account = make_account()
        account.faults.arm_timed_crash("victim", at=4.0)
        kernel = SimKernel(account)
        progress = []

        def victim():
            while True:
                yield Delay(1.5)
                progress.append(account.now)

        def bystander():
            yield Delay(10.0)

        process = kernel.spawn(victim(), name="victim", daemon=True)
        kernel.spawn(bystander(), name="bystander")
        kernel.run()
        assert process.state is ProcessState.CRASHED
        # Activations at 1.5 and 3.0 happened; the 4.5 one never did —
        # the crash fired at its armed time, mid-sleep.
        assert progress == [1.5, 3.0]
        assert account.faults.timed_crashes_for("victim")[0].fired

    def test_timed_crash_does_not_touch_other_processes(self):
        account = make_account()
        account.faults.arm_timed_crash("victim", at=2.0)
        kernel = SimKernel(account)

        def victim():
            yield Delay(5.0)

        def survivor():
            yield Delay(5.0)

        crashed = kernel.spawn(victim(), name="victim")
        alive = kernel.spawn(survivor(), name="survivor")
        kernel.run()
        assert crashed.state is ProcessState.CRASHED
        assert alive.state is ProcessState.DONE


class TestTimeDomains:
    def test_busy_and_idle_accrue_to_the_owning_process(self):
        account = make_account()
        account.s3.create_bucket("b")
        kernel = SimKernel(account)

        def worker():
            from repro.cloud.blob import Blob

            yield Delay(2.0)
            yield Batch(
                [account.s3.put_request("b", "k", Blob.synthetic(65536, "k"))],
                connections=1,
            )

        process = kernel.spawn(worker(), name="worker")
        kernel.run()
        assert process.domain.idle_s == pytest.approx(2.0)
        assert process.domain.busy_s > 0
        assert process.domain.elapsed == pytest.approx(
            process.domain.idle_s + process.domain.busy_s
        )

    def test_process_lookup_by_name(self):
        account = make_account()
        kernel = SimKernel(account)
        kernel.spawn(iter(()), name="x")
        assert kernel.process("x").name == "x"
        with pytest.raises(KeyError):
            kernel.process("missing")


class TestReviewRegressions:
    """Fixes from the pre-merge review, pinned."""

    def test_timed_crash_armed_after_spawn_still_fires(self):
        account = make_account()
        kernel = SimKernel(account)

        def forever():
            while True:
                yield Delay(1.0)

        process = kernel.spawn(forever(), name="late-victim", daemon=True)
        kernel.run(until=5.0)
        assert process.state is ProcessState.WAITING
        account.faults.arm_timed_crash("late-victim", at=8.0)
        kernel.run(until=12.0)
        assert process.state is ProcessState.CRASHED
        assert account.faults.timed_crashes_for("late-victim")[0].fired

    def test_gateway_crash_mid_run_does_not_hang_fleet_drain(self):
        from repro.service import IngestGateway, ShardRouter
        from repro.workloads.fleet import make_fleet, run_fleet_kernel

        account = make_account()
        gateway = IngestGateway(account, ShardRouter(shards=1))
        fleet = make_fleet(clients=3, files_per_client=2, seed=0)
        account.faults.arm_timed_crash("gateway", at=0.3)
        result = run_fleet_kernel(
            account, gateway, fleet, seed=0, think_s=0.5, window_s=0.25
        )
        # The run terminates (the old code spun forever on gateway.busy)
        # and whatever shipped before the crash is accounted for.
        assert result.flushes == 6
        assert not gateway._flushing

    def test_drain_that_empties_on_final_poll_is_not_exhaustion(self):
        from repro.core import PAS3fs, ProtocolP3
        from repro.provenance.syscalls import TraceBuilder
        from repro.workloads.base import MOUNT

        account = make_account(seed=9)
        from repro.core import ProtocolP3 as P3

        protocol = P3(account)
        fs = PAS3fs(account, protocol)
        builder = TraceBuilder()
        writer = builder.spawn("w", argv=["w"], exec_path="/bin/w")
        builder.write_close(writer, f"{MOUNT}out/a.dat", 4096)
        builder.exit(writer)
        fs.run(builder.trace)
        # Three polls: one that receives+commits everything, then one
        # empty — budget exhausted without double-empty confirmation,
        # but the queue is empty, so this is success, not exhaustion.
        stats = protocol.commit_daemon.drain(max_polls=2)
        assert stats.transactions_committed == 1
        assert account.sqs.pending_count(protocol.queue_url) == 0
