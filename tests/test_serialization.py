"""Tests for the record wire encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.provenance.graph import NodeRef
from repro.provenance.records import ProvenanceBundle, ProvenanceRecord
from repro.provenance.serialization import (
    chunk_encoded,
    decode_record,
    decode_records,
    encode_record,
    encode_records,
)

REF = NodeRef("f-000001", 3)


class TestEncodeDecode:
    def test_string_record_roundtrip(self):
        record = ProvenanceRecord(REF, "name", "/out/file.txt")
        assert decode_record(encode_record(record)) == record

    def test_xref_record_roundtrip(self):
        record = ProvenanceRecord(REF, "input", NodeRef("p-000002", 1))
        decoded = decode_record(encode_record(record))
        assert decoded == record
        assert decoded.is_xref

    def test_pipes_and_newlines_escaped(self):
        record = ProvenanceRecord(REF, "argv", "a|b\nc\\d|")
        assert decode_record(encode_record(record)) == record

    def test_multi_record_roundtrip(self):
        records = [
            ProvenanceRecord(REF, "type", "file"),
            ProvenanceRecord(REF, "input", NodeRef("x", 0)),
            ProvenanceRecord(NodeRef("p", 9), "env", "PATH=/bin"),
        ]
        assert decode_records(encode_records(records)) == records

    def test_empty(self):
        assert encode_records([]) == ""
        assert decode_records("") == []

    def test_malformed_line(self):
        with pytest.raises(ValueError):
            decode_record("only|three|fields")
        with pytest.raises(ValueError):
            decode_record("a_1|attr|?|value")

    def test_wire_size_matches_encoding(self):
        # For escape-free records, wire_size is exactly the encoded line
        # plus its newline.
        record = ProvenanceRecord(REF, "name", "/some/path")
        assert record.wire_size() == len(encode_record(record)) + 1

    identifier = st.from_regex(r"[a-zA-Z][a-zA-Z0-9\-]{0,10}", fullmatch=True)
    text_value = st.text(max_size=80)

    @given(
        identifier,
        st.integers(min_value=0, max_value=999),
        identifier,
        text_value,
    )
    def test_roundtrip_property(self, uuid, version, attribute, value):
        record = ProvenanceRecord(NodeRef(uuid, version), attribute, value)
        assert decode_record(encode_record(record)) == record

    @given(st.lists(st.tuples(identifier, text_value), max_size=20))
    def test_block_roundtrip_property(self, pairs):
        records = [
            ProvenanceRecord(REF, attribute or "a", value)
            for attribute, value in pairs
        ]
        assert decode_records(encode_records(records)) == records


class TestChunking:
    def _records(self, count):
        return [
            ProvenanceRecord(NodeRef(f"n{i:04d}", 0), "name", f"/path/{i:04d}")
            for i in range(count)
        ]

    def test_chunks_respect_limit(self):
        chunks = chunk_encoded(self._records(100), 256)
        assert all(len(chunk.encode()) <= 256 for chunk in chunks)

    def test_chunks_lose_nothing(self):
        records = self._records(100)
        chunks = chunk_encoded(records, 256)
        reassembled = []
        for chunk in chunks:
            reassembled.extend(decode_records(chunk))
        assert reassembled == records

    def test_records_never_split(self):
        for chunk in chunk_encoded(self._records(50), 100):
            for line in chunk.splitlines():
                decode_record(line)  # every line is a complete record

    def test_oversized_record_rejected(self):
        record = ProvenanceRecord(REF, "argv", "x" * 1000)
        with pytest.raises(ValueError):
            chunk_encoded([record], 128)

    def test_empty_input(self):
        assert chunk_encoded([], 8192) == []

    @given(st.integers(min_value=64, max_value=8192))
    def test_chunk_size_sweep(self, limit):
        records = self._records(30)
        chunks = chunk_encoded(records, limit)
        assert all(len(chunk.encode()) <= limit for chunk in chunks)
        reassembled = [r for chunk in chunks for r in decode_records(chunk)]
        assert reassembled == records


class TestBundle:
    def test_bundle_rejects_foreign_records(self):
        bundle = ProvenanceBundle(uuid="a")
        with pytest.raises(ValueError):
            bundle.add(ProvenanceRecord(NodeRef("b", 0), "type", "file"))

    def test_by_version_grouping(self):
        bundle = ProvenanceBundle(uuid="a")
        bundle.add(ProvenanceRecord(NodeRef("a", 0), "type", "file"))
        bundle.add(ProvenanceRecord(NodeRef("a", 1), "version-of", NodeRef("a", 0)))
        bundle.add(ProvenanceRecord(NodeRef("a", 1), "input", NodeRef("p", 0)))
        grouped = bundle.by_version()
        assert set(grouped) == {0, 1}
        assert len(grouped[1]) == 2
        assert bundle.versions() == [0, 1]

    def test_xrefs(self):
        bundle = ProvenanceBundle(uuid="a")
        bundle.add(ProvenanceRecord(NodeRef("a", 0), "input", NodeRef("p", 2)))
        bundle.add(ProvenanceRecord(NodeRef("a", 0), "name", "/x"))
        assert bundle.xrefs() == [NodeRef("p", 2)]
