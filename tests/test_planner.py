"""Unit tests for the cost-based select planner and its substrate.

Four layers, bottom up: the write-time selectivity statistics the cost
model reads (incremental, delete-aware); the planner decisions
themselves — where the cost model diverges from the legacy fixed
quarter-domain bailout without changing a single row, cheapest-first
``AND`` ordering with verify-only skips, and the ``explain()`` plan
dump; the per-shard Bloom filters (no false negatives ever, false
positives harmless even when forced); and the riders — attribute
interning, the index-memory gauge, and the per-engine ``IN`` chunk
tunable.
"""

import random
import sys

import pytest

from repro.cloud.account import CloudAccount
from repro.cloud.consistency import ConsistencyModel
from repro.errors import InvalidRequestError
from repro.query.engine import ShardedSimpleDBQueryEngine, SimpleDBQueryEngine
from repro.service import IngestGateway, ShardRouter
from repro.service.bloom import BloomFilter, ShardBloomIndex
from repro.workloads.fleet import FLEET_PROGRAM, make_fleet, run_fleet


def _account(seed=11):
    return CloudAccount(consistency=ConsistencyModel.STRICT, seed=seed)


def _seed_small(sdb):
    """Six items; ``tag`` has value 'a' on four of them, 'b' on two."""
    sdb.create_domain("d")
    items = []
    for i in range(6):
        pairs = [("type", "file"), ("tag", "a" if i < 4 else "b")]
        items.append((f"it{i:02d}_0", pairs))
    sdb.batch_put("d", items)
    return items


def _seed_wide(sdb, count=2000):
    """A domain wide enough for the planners to disagree: ``v`` is
    unique per item (mean set size 1.0), ``u = 'rare'`` marks three."""
    sdb.create_domain("w")
    rare = {1: "0001", 500: "0500", 1500: "1500"}
    items = []
    for i in range(count):
        pairs = [("v", f"{i:04d}"), ("type", "file")]
        if i in rare:
            pairs.append(("u", "rare"))
        items.append((f"w{i:05d}_0", pairs))
    for start in range(0, len(items), 25):
        sdb.batch_put("w", items[start : start + 25])


class TestSelectivityStats:
    def test_write_time_counts(self):
        sdb = _account().simpledb
        _seed_small(sdb)
        tag = sdb.selectivity("d", "tag")
        assert tag.distinct_values == 2
        assert tag.postings == 6
        assert tag.mean_set_size == 3.0
        # log2 buckets: the 4-item set lands in bucket 3, the 2-item
        # set in bucket 2.
        assert tag.set_size_histogram == {3: 1, 2: 1}
        assert sdb.selectivity("d", "type").distinct_values == 1
        assert sdb.selectivity("d", "nope").postings == 0
        assert sdb.selectivity("ghost-domain", "tag").mean_set_size == 0.0

    def test_duplicate_puts_do_not_inflate(self):
        account = _account()
        sdb = account.simpledb
        items = _seed_small(sdb)
        sdb.batch_put("d", items)  # same pairs again
        assert sdb.selectivity("d", "tag").postings == 6

    def test_delete_propagation_decrements(self):
        account = _account()
        sdb = account.simpledb
        _seed_small(sdb)
        sdb.delete_attributes("d", "it00_0", [("tag", "a")])
        account.settle(120.0)
        sdb.select("select * from d where tag = 'a'")  # triggers pruning
        tag = sdb.selectivity("d", "tag")
        assert tag.postings == 5
        assert tag.distinct_values == 2
        # 'a' shrank from a 4-set (bucket 3) to a 3-set (bucket 2).
        assert tag.set_size_histogram == {2: 2}
        assert sdb.select_stats.unindexed_pruned >= 1


class TestCostPlanner:
    def test_cost_indexes_where_fixed_planner_bails(self):
        """The estimated-cost decision replacing the quarter-domain
        bailout: a range spanning 600 of 2000 distinct values is past
        the fixed planner's limit (500) but well under the cost
        threshold (1000) — cost indexes it, fixed scans it, rows and
        billing stay byte-identical."""
        account = _account()
        sdb = account.simpledb
        _seed_wide(sdb)
        expression = "select * from w where v between '0000' and '0599'"

        sdb.planner = "cost"
        before = (sdb.select_stats.indexed, sdb.select_stats.scanned)
        cost_rows = sdb.select(expression)
        assert sdb.select_stats.indexed == before[0] + 1

        sdb.planner = "fixed"
        before = (sdb.select_stats.indexed, sdb.select_stats.scanned)
        fixed_rows = sdb.select(expression)
        assert sdb.select_stats.scanned == before[1] + 1

        assert repr(cost_rows) == repr(fixed_rows)
        assert len(cost_rows) == 600
        sdb.planner = "cost"

    def test_cost_bails_out_on_scan_sized_estimates(self):
        """A range spanning 1500 of 2000 values prices at or above the
        scan threshold: the cost planner scans and says so."""
        account = _account()
        sdb = account.simpledb
        _seed_wide(sdb)
        expression = "select * from w where v between '0000' and '1499'"
        bailouts = sdb.select_stats.cost_bailouts
        before = sdb.select_stats.scanned
        rows = sdb.select(expression)
        assert len(rows) == 1500
        assert sdb.select_stats.scanned == before + 1
        assert sdb.select_stats.cost_bailouts == bailouts + 1
        plan = sdb.explain(expression)
        assert plan["decision"] == "scan"
        assert plan["cost_bailout"] is True
        assert plan["estimated_candidates"] >= plan["scan_threshold"]

    def test_and_walks_cheapest_side_first_and_skips_wide_sides(self):
        """Under AND the 3-item ``u = 'rare'`` side seeds the candidate
        set; the 600-value range side costs more to intersect than the
        rows it would remove, so it is left to verification — counted,
        and visible in the plan as a verify-only node."""
        account = _account()
        sdb = account.simpledb
        _seed_wide(sdb)
        expression = (
            "select * from w where u = 'rare'"
            " and v between '0000' and '0599'"
        )
        skipped = sdb.select_stats.and_sides_skipped
        rows = sdb.select(expression)
        # Verification enforced the skipped side: of the three 'rare'
        # items only v=0001 and v=0500 are in range.
        assert sorted(name for name, _ in rows) == ["w00001_0", "w00500_0"]
        assert sdb.select_stats.and_sides_skipped == skipped + 1

        plan = sdb.explain(expression)
        assert plan["decision"] == "index"
        assert plan["and_sides_skipped"] == 1
        actions = {node["node"]: node["action"] for node in plan["nodes"]}
        assert any(
            action == "verify-only"
            for node, action in actions.items()
            if node.startswith("v between")
        )
        assert any(
            action == "index"
            for node, action in actions.items()
            if node.startswith("u =")
        )

    def test_explain_shapes(self):
        account = _account()
        sdb = account.simpledb
        _seed_small(sdb)
        plan = sdb.explain("select * from d where tag = 'a'")
        assert plan["planner"] == "cost"
        assert plan["decision"] == "index"
        assert plan["domain_items"] == 6
        assert plan["estimated_candidates"] == 4
        assert plan["candidates"] == 4
        assert plan["cost_bailout"] is False

        assert sdb.explain("select * from d")["decision"] == (
            "unconditional-scan"
        )

        sdb.planner = "fixed"
        fixed = sdb.explain("select * from d where tag = 'a'")
        assert fixed["planner"] == "fixed"
        assert fixed["decision"] == "index"
        assert fixed["candidates"] == 4

        sdb.use_indexes = False
        assert sdb.explain("select * from d where tag = 'a'") == {
            "domain": "d",
            "planner": "scan",
            "domain_items": 6,
            "scan_threshold": 64,
            "decision": "scan",
        }
        sdb.use_indexes = True
        sdb.planner = "cost"

    def test_unknown_planner_is_rejected(self):
        sdb = _account().simpledb
        _seed_small(sdb)
        sdb.planner = "bogus"
        with pytest.raises(InvalidRequestError):
            sdb.select("select * from d where tag = 'a'")

    def test_explain_moves_no_stats_and_bills_nothing(self):
        account = _account()
        sdb = account.simpledb
        _seed_small(sdb)
        stats_before = repr(sdb.select_stats)
        billed = account.billing.snapshot()["simpledb"].get("Select", 0)
        sdb.explain("select * from d where tag = 'a'")
        assert repr(sdb.select_stats) == stats_before
        assert (
            account.billing.snapshot()["simpledb"].get("Select", 0) == billed
        )


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(size_bits=2048, hashes=4)
        tokens = [f"tok-{i}" for i in range(400)]
        for token in tokens:
            bloom.add(token)
        assert all(token in bloom for token in tokens)
        assert bloom.count == 400

    def test_deterministic_across_instances(self):
        a, b = BloomFilter(size_bits=1024), BloomFilter(size_bits=1024)
        for token in ("x", "y", "z"):
            a.add(token)
            b.add(token)
        assert a.to_bytes() == b.to_bytes()
        b.add("w")
        assert a.to_bytes() != b.to_bytes()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BloomFilter(size_bits=4)
        with pytest.raises(ValueError):
            BloomFilter(hashes=0)

    def test_shard_index_separates_domains_and_token_kinds(self):
        index = ShardBloomIndex(["s0", "s1"])
        index.note_items("s0", [("x_0", [("type", "file")])])
        assert index.might_contain_name("s0", "x_0")
        assert not index.might_contain_name("s1", "x_0")
        assert index.might_contain_value("s0", "type", "file")
        assert not index.might_contain_value("s1", "type", "file")
        # A name token never answers for a value probe (tag separation).
        assert not index.might_contain_value("s0", "x_0", "")
        # Unknown domains stay conservative: might match.
        assert index.might_contain_name("elsewhere", "x_0")
        assert index.might_contain_any_value("elsewhere", "a", ["v"])
        assert index.memory_bytes() > 0

    def test_forced_false_positives_never_change_answers(self):
        """Tiny saturated filters (8 bits for a whole fleet) answer
        "might match" for nearly everything — the engine must still
        return byte-identical rows to full fan-out, because every
        contacted shard re-verifies through the select itself."""
        account = CloudAccount(seed=5)
        router = ShardRouter(shards=3, bloom_size_bits=8, bloom_hashes=1)
        gateway = IngestGateway(account, router)
        run_fleet(
            account,
            gateway,
            make_fleet(clients=4, files_per_client=2, seed=5),
            seed=5,
        )
        account.settle(120.0)
        assert router.bloom.filter_for(router.domains[0]).fill_ratio() > 0.5
        tiny = ShardedSimpleDBQueryEngine(account, router)
        naive = ShardedSimpleDBQueryEngine(account, router, bloom_routing=False)
        t4, _ = tiny.q4_all_descendants(FLEET_PROGRAM)
        n4, _ = naive.q4_all_descendants(FLEET_PROGRAM)
        assert repr(t4) == repr(n4)
        t3, _ = tiny.q3_direct_outputs("no-such-program")
        assert t3 == []


class TestRiders:
    def test_attribute_names_and_values_are_interned(self):
        sdb = _account().simpledb
        sdb.create_domain("d")
        # Runtime-constructed strings (not source literals, so not
        # auto-interned by the compiler).
        attribute = "".join(random.Random(3).choices("abcdef", k=12))
        value = "-".join(["val", "0042"])
        sdb.put_attributes("d", "x_0", [(attribute, value)])
        state = sdb._domains["d"]
        stored_attr = next(a for a in state.by_attr if a == attribute)
        assert stored_attr is sys.intern(attribute)
        stored_value = next(
            v for v in state.by_attr[stored_attr] if v == value
        )
        assert stored_value is sys.intern(value)

    def test_index_memory_gauge_reports(self):
        account = _account()
        sdb = account.simpledb
        _seed_small(sdb)
        assert sdb.index_memory_bytes() > 0
        snapshot = account.telemetry.metrics.snapshot()
        values = [
            value
            for key, value in snapshot.items()
            if key.startswith("sdb.index.memory_bytes")
        ]
        assert values and values[0] > 0

    def test_in_chunk_is_tunable_per_engine(self):
        account = CloudAccount(seed=5)
        router = ShardRouter(shards=2)
        gateway = IngestGateway(account, router)
        run_fleet(
            account,
            gateway,
            make_fleet(clients=5, files_per_client=3, seed=5),
            seed=5,
        )
        account.settle(120.0)
        small = ShardedSimpleDBQueryEngine(account, router, in_chunk=2)
        wide = ShardedSimpleDBQueryEngine(account, router)
        assert wide.in_chunk == 20
        s4, _ = small.q4_all_descendants(FLEET_PROGRAM)
        w4, _ = wide.q4_all_descendants(FLEET_PROGRAM)
        assert repr(s4) == repr(w4)
        assert len(s4) > 2
        # Smaller chunks, more selects — same bytes of answer.
        issued_small = (
            small.fanout.fanned_out_selects
            + small.fanout.single_shard_chunks
        )
        issued_wide = (
            wide.fanout.fanned_out_selects + wide.fanout.single_shard_chunks
        )
        assert issued_small > issued_wide

    def test_in_chunk_validation(self):
        account = _account()
        with pytest.raises(ValueError):
            SimpleDBQueryEngine(account, in_chunk=0)
