"""Tests for the provenance DAG."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CycleError, UnknownNodeError
from repro.provenance.graph import EdgeType, NodeRef, NodeType, ProvenanceGraph


def _graph_with(*refs):
    graph = ProvenanceGraph()
    for ref in refs:
        graph.add_node(ref, NodeType.FILE, name=ref.uuid)
    return graph


A = NodeRef("a", 0)
B = NodeRef("b", 0)
C = NodeRef("c", 0)


class TestNodeRef:
    def test_str_matches_paper_item_naming(self):
        assert str(NodeRef("uuid1", 2)) == "uuid1_2"

    def test_parse_roundtrip(self):
        ref = NodeRef("f-000123", 7)
        assert NodeRef.parse(str(ref)) == ref

    def test_parse_uuid_with_underscores(self):
        assert NodeRef.parse("a_b_3") == NodeRef("a_b", 3)

    def test_parse_malformed(self):
        for bad in ("nounderscore", "_5", "x_notanint"):
            with pytest.raises(ValueError):
                NodeRef.parse(bad)

    @given(
        st.from_regex(r"[a-z][a-z0-9\-]{0,12}", fullmatch=True),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_parse_inverts_str(self, uuid, version):
        ref = NodeRef(uuid, version)
        assert NodeRef.parse(str(ref)) == ref


class TestGraphConstruction:
    def test_add_node_idempotent(self):
        graph = ProvenanceGraph()
        first = graph.add_node(A, NodeType.FILE, name="a")
        second = graph.add_node(A, NodeType.PROC, name="other")
        assert first is second
        assert graph.node(A).node_type is NodeType.FILE

    def test_add_edge(self):
        graph = _graph_with(A, B)
        graph.add_edge(A, B, EdgeType.INPUT)
        assert [e.dst for e in graph.out_edges(A)] == [B]
        assert [e.src for e in graph.in_edges(B)] == [A]

    def test_edge_to_unknown_node(self):
        graph = _graph_with(A)
        with pytest.raises(UnknownNodeError):
            graph.add_edge(A, B, EdgeType.INPUT)
        with pytest.raises(UnknownNodeError):
            graph.add_edge(B, A, EdgeType.INPUT)

    def test_self_edge_rejected(self):
        graph = _graph_with(A)
        with pytest.raises(CycleError):
            graph.add_edge(A, A, EdgeType.INPUT)

    def test_two_cycle_rejected(self):
        graph = _graph_with(A, B)
        graph.add_edge(A, B, EdgeType.INPUT)
        with pytest.raises(CycleError):
            graph.add_edge(B, A, EdgeType.INPUT)

    def test_long_cycle_rejected(self):
        graph = _graph_with(A, B, C)
        graph.add_edge(A, B, EdgeType.INPUT)
        graph.add_edge(B, C, EdgeType.INPUT)
        with pytest.raises(CycleError):
            graph.add_edge(C, A, EdgeType.INPUT)

    def test_diamond_allowed(self):
        d = NodeRef("d", 0)
        graph = _graph_with(A, B, C, d)
        graph.add_edge(A, B, EdgeType.INPUT)
        graph.add_edge(A, C, EdgeType.INPUT)
        graph.add_edge(B, d, EdgeType.INPUT)
        graph.add_edge(C, d, EdgeType.INPUT)
        assert graph.ancestors(A) == {B, C, d}


class TestTraversal:
    def _chain(self, length):
        refs = [NodeRef(f"n{i}", 0) for i in range(length)]
        graph = _graph_with(*refs)
        for src, dst in zip(refs, refs[1:]):
            graph.add_edge(src, dst, EdgeType.INPUT)
        return graph, refs

    def test_ancestors_descendants(self):
        graph, refs = self._chain(5)
        assert graph.ancestors(refs[0]) == set(refs[1:])
        assert graph.descendants(refs[-1]) == set(refs[:-1])
        assert graph.ancestors(refs[-1]) == set()

    def test_max_depth(self):
        graph, _ = self._chain(5)
        assert graph.max_depth() == 4

    def test_max_depth_empty(self):
        assert ProvenanceGraph().max_depth() == 0

    def test_roots(self):
        graph, refs = self._chain(3)
        assert graph.roots() == [refs[-1]]

    def test_versions_of(self):
        graph = _graph_with(NodeRef("x", 2), NodeRef("x", 0), NodeRef("y", 1))
        assert graph.versions_of("x") == [NodeRef("x", 0), NodeRef("x", 2)]

    def test_counts(self):
        graph, _ = self._chain(4)
        assert len(graph) == 4
        assert graph.edge_count() == 3


class TestAcyclicityProperty:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=15),
                st.integers(min_value=0, max_value=15),
            ),
            max_size=60,
        )
    )
    def test_graph_never_admits_a_cycle(self, edges):
        """Whatever edge sequence is attempted, accepted edges never form
        a cycle: every node's ancestor set excludes itself."""
        graph = ProvenanceGraph()
        refs = [NodeRef(f"n{i}", 0) for i in range(16)]
        for ref in refs:
            graph.add_node(ref, NodeType.FILE)
        for src_index, dst_index in edges:
            try:
                graph.add_edge(refs[src_index], refs[dst_index], EdgeType.INPUT)
            except CycleError:
                continue
        for ref in refs:
            assert ref not in graph.ancestors(ref)
