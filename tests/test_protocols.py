"""Tests for the three storage protocols (P1, P2, P3)."""

import pytest

from repro.cloud.account import CloudAccount
from repro.cloud.blob import Blob
from repro.cloud.consistency import ConsistencyModel
from repro.core import (
    PAS3fs,
    ProtocolP1,
    ProtocolP2,
    ProtocolP3,
    UploadMode,
)
from repro.core.protocol_base import FlushWork, data_key, provenance_object_key
from repro.core.sdb_items import build_item_plan
from repro.errors import ClientCrashError
from repro.provenance.graph import NodeRef
from repro.provenance.pass_collector import DeleteIntent, FlushIntent
from repro.provenance.records import ProvenanceBundle, ProvenanceRecord
from repro.provenance.serialization import decode_records

MOUNT = "/mnt/s3/"


def _simple_work(path=f"{MOUNT}out/a.dat", uuid="f-1", version=0, size=1000):
    ref = NodeRef(uuid, version)
    intent = FlushIntent(
        path=path, uuid=uuid, ref=ref, blob=Blob.synthetic(size, f"{path}@{version}")
    )
    bundle = ProvenanceBundle(uuid=uuid)
    bundle.add(ProvenanceRecord(ref, "type", "file"))
    bundle.add(ProvenanceRecord(ref, "name", path))
    return FlushWork(primary=intent, bundles=[bundle])


def _strict(protocol_cls, **kwargs):
    account = CloudAccount(consistency=ConsistencyModel.STRICT, seed=3)
    return account, protocol_cls(account, **kwargs)


class TestP1:
    def test_flush_writes_data_and_provenance_objects(self):
        account, protocol = _strict(ProtocolP1)
        work = _simple_work()
        protocol.flush(work)
        blob, metadata = account.s3.get(protocol.bucket, data_key(work.primary.path))
        assert blob.size == 1000
        assert metadata["prov-uuid"] == "f-1"
        assert metadata["version"] == "0"
        prov_blob, _ = account.s3.get(protocol.bucket, provenance_object_key("f-1"))
        records = decode_records(prov_blob.text())
        attributes = {r.attribute for r in records}
        # The paper's extra record naming the primary object, plus the
        # coupling hash.
        assert {"type", "name", "object", "sha1"} <= attributes

    def test_second_flush_appends(self):
        account, protocol = _strict(ProtocolP1)
        protocol.flush(_simple_work(version=0))
        work2 = _simple_work(version=1)
        protocol.flush(work2)
        prov_blob, _ = account.s3.get(protocol.bucket, provenance_object_key("f-1"))
        records = decode_records(prov_blob.text())
        versions = {r.subject.version for r in records}
        assert versions == {0, 1}
        # The append cost a GET in addition to the PUTs.
        assert account.billing.snapshot()["s3"]["GET"] >= 1

    def test_bookkeeping(self):
        _, protocol = _strict(ProtocolP1)
        work = _simple_work()
        assert not protocol.provenance_stored(work.primary.ref)
        protocol.flush(work)
        assert protocol.provenance_stored(work.primary.ref)
        assert protocol.data_stored_version("f-1") == 0

    def test_delete_preserves_provenance(self):
        account, protocol = _strict(ProtocolP1)
        work = _simple_work()
        protocol.flush(work)
        protocol.delete(DeleteIntent(path=work.primary.path, uuid="f-1"))
        assert account.s3.peek_latest(protocol.bucket, data_key(work.primary.path)) is None
        assert account.s3.peek_latest(
            protocol.bucket, provenance_object_key("f-1")
        ) is not None

    def test_causal_mode_orders_provenance_before_data(self):
        account, protocol = _strict(ProtocolP1, mode=UploadMode.CAUSAL)
        account.faults.arm_crash("p1.after_prov_put")
        with pytest.raises(ClientCrashError):
            protocol.flush(_simple_work())
        # Provenance is persistent; the data never made it.
        assert account.s3.peek_latest(
            protocol.bucket, provenance_object_key("f-1")
        ) is not None
        assert account.s3.peek_latest(
            protocol.bucket, data_key(f"{MOUNT}out/a.dat")
        ) is None

    def test_provenance_only_flush(self):
        account, protocol = _strict(ProtocolP1)
        work = _simple_work()
        work.include_data = False
        protocol.flush(work)
        assert account.s3.peek_latest(
            protocol.bucket, data_key(work.primary.path)
        ) is None
        assert protocol.data_stored_version("f-1") is None


class TestP2:
    def test_flush_writes_simpledb_items(self):
        account, protocol = _strict(ProtocolP2)
        protocol.flush(_simple_work())
        item = account.simpledb.get_attributes(protocol.domain, "f-1_0")
        assert item["type"] == ["file"]
        assert "sha1" in item

    def test_one_item_per_version(self):
        account, protocol = _strict(ProtocolP2)
        ref0, ref1 = NodeRef("f-9", 0), NodeRef("f-9", 1)
        bundle = ProvenanceBundle(uuid="f-9")
        bundle.add(ProvenanceRecord(ref0, "type", "file"))
        bundle.add(ProvenanceRecord(ref1, "version-of", ref0))
        intent = FlushIntent(
            path=f"{MOUNT}x", uuid="f-9", ref=ref1, blob=Blob.synthetic(10, "x@1")
        )
        protocol.flush(FlushWork(primary=intent, bundles=[bundle]))
        assert account.simpledb.peek_item(protocol.domain, "f-9_0")
        assert account.simpledb.peek_item(protocol.domain, "f-9_1")

    def test_large_value_spills_to_s3(self):
        account, protocol = _strict(ProtocolP2)
        ref = NodeRef("p-1", 0)
        bundle = ProvenanceBundle(uuid="p-1")
        big = "E" * 2000  # over SimpleDB's 1 KB limit
        bundle.add(ProvenanceRecord(ref, "env", big))
        intent = FlushIntent(
            path=f"{MOUNT}y", uuid="p-1", ref=ref, blob=Blob.synthetic(10, "y@0")
        )
        protocol.flush(FlushWork(primary=intent, bundles=[bundle]))
        item = account.simpledb.get_attributes(protocol.domain, "p-1_0")
        pointer = item["env"][0]
        assert pointer.startswith("s3-spill:")
        spill_blob, _ = account.s3.get(protocol.bucket, pointer.split(":", 1)[1])
        assert spill_blob.text() == big

    def test_item_overflow_spills_records(self):
        account, protocol = _strict(ProtocolP2)
        ref = NodeRef("f-2", 0)
        bundle = ProvenanceBundle(uuid="f-2")
        for index in range(300):  # over the 256-pair item limit
            bundle.add(ProvenanceRecord(ref, "input", NodeRef(f"p-{index}", 0)))
        intent = FlushIntent(
            path=f"{MOUNT}z", uuid="f-2", ref=ref, blob=Blob.synthetic(10, "z@0")
        )
        protocol.flush(FlushWork(primary=intent, bundles=[bundle]))
        item = account.simpledb.get_attributes(protocol.domain, "f-2_0")
        assert "overflow" in item
        from repro.core.detection import SimpleDBProvenanceReader

        reader = SimpleDBProvenanceReader(account, protocol.domain, protocol.bucket)
        attributes = reader.peek_attributes(ref)
        assert len(attributes["input"]) >= 300

    def test_item_plan_batches_of_25(self):
        account, protocol = _strict(ProtocolP2)
        bundles = []
        for index in range(60):
            ref = NodeRef(f"n-{index}", 0)
            bundle = ProvenanceBundle(uuid=f"n-{index}")
            bundle.add(ProvenanceRecord(ref, "type", "file"))
            bundles.append(bundle)
        plan = build_item_plan(bundles, account.s3, protocol.bucket)
        batches = plan.batches()
        assert [len(b) for b in batches] == [25, 25, 10]


class TestP3:
    def test_flush_then_commit_produces_final_state(self):
        account, protocol = _strict(ProtocolP3)
        work = _simple_work()
        protocol.flush(work)
        # Before the daemon runs: only the temporary object exists.
        assert account.s3.peek_latest(protocol.bucket, data_key(work.primary.path)) is None
        assert account.sqs.pending_count(protocol.queue_url) >= 1
        stats = protocol.commit_daemon.drain()
        assert stats.transactions_committed == 1
        # Daemon writes commit at future timestamps (its time is not
        # charged to the client); move past them before reading.
        account.settle(300.0)
        blob, metadata = account.s3.get(protocol.bucket, data_key(work.primary.path))
        assert blob.size == 1000
        assert metadata["prov-uuid"] == "f-1"
        item = account.simpledb.get_attributes(protocol.domain, "f-1_0")
        assert item["type"] == ["file"]
        # Temporaries and WAL messages are gone.
        assert account.s3.peek_keys(protocol.bucket, "tmp/") == []
        assert account.sqs.pending_count(protocol.queue_url) == 0

    def test_incomplete_transaction_never_commits(self):
        account, protocol = _strict(ProtocolP3, mode=UploadMode.CAUSAL)
        # Build a work item big enough for multiple WAL messages.
        ref = NodeRef("f-big", 0)
        bundle = ProvenanceBundle(uuid="f-big")
        for index in range(400):
            bundle.add(
                ProvenanceRecord(ref, "env", f"VAR{index}=" + "v" * 100)
            )
        intent = FlushIntent(
            path=f"{MOUNT}big", uuid="f-big", ref=ref, blob=Blob.synthetic(10, "b@0")
        )
        account.faults.arm_crash("p3.mid_log")
        with pytest.raises(ClientCrashError):
            protocol.flush(FlushWork(primary=intent, bundles=[bundle]))
        stats = protocol.commit_daemon.drain()
        assert stats.transactions_committed == 0
        assert stats.transactions_pending == 1
        # Neither the data nor the provenance became visible.
        assert account.s3.peek_latest(protocol.bucket, data_key(f"{MOUNT}big")) is None
        assert account.simpledb.peek_item(protocol.domain, "f-big_0") == {}

    def test_daemon_crash_recovery_on_another_machine(self):
        from repro.core.commit_daemon import CommitDaemon

        account, protocol = _strict(ProtocolP3)
        work = _simple_work()
        protocol.flush(work)
        account.faults.arm_crash("p3.mid_commit")
        with pytest.raises(ClientCrashError):
            protocol.commit_daemon.drain()
        account.faults.disarm_all()
        # Another machine starts a fresh daemon against the same queue.
        account.clock.advance(60.0)  # visibility timeout lapses
        recovery = CommitDaemon(
            account=account,
            queue_url=protocol.queue_url,
            bucket=protocol.bucket,
            domain=protocol.domain,
        )
        stats = recovery.drain()
        assert stats.transactions_committed == 1
        account.settle(300.0)
        blob, _ = account.s3.get(protocol.bucket, data_key(work.primary.path))
        assert blob.size == 1000

    def test_commit_is_idempotent_under_duplicate_delivery(self):
        account, protocol = _strict(ProtocolP3)
        account.sqs.duplicate_delivery_rate = 0.5
        for index in range(5):
            protocol.flush(_simple_work(path=f"{MOUNT}f{index}", uuid=f"u{index}"))
        protocol.commit_daemon.drain()
        account.settle(300.0)
        for index in range(5):
            blob, _ = account.s3.get(protocol.bucket, data_key(f"{MOUNT}f{index}"))
            assert blob.size == 1000

    def test_cleaner_collects_stale_temporaries(self):
        account, protocol = _strict(ProtocolP3, mode=UploadMode.CAUSAL)
        ref = NodeRef("f-orphan", 0)
        bundle = ProvenanceBundle(uuid="f-orphan")
        for index in range(400):
            bundle.add(ProvenanceRecord(ref, "env", f"V{index}=" + "x" * 100))
        intent = FlushIntent(
            path=f"{MOUNT}orphan", uuid="f-orphan", ref=ref,
            blob=Blob.synthetic(10, "o@0"),
        )
        account.faults.arm_crash("p3.mid_log")
        with pytest.raises(ClientCrashError):
            protocol.flush(FlushWork(primary=intent, bundles=[bundle]))
        assert len(account.s3.peek_keys(protocol.bucket, "tmp/")) == 1
        # Too fresh to collect.
        assert protocol.run_cleaner() == 0
        account.clock.advance(5 * 24 * 3600.0)
        assert protocol.run_cleaner() == 1
        assert account.s3.peek_keys(protocol.bucket, "tmp/") == []

    def test_cleaner_spares_recent_temporaries(self):
        account, protocol = _strict(ProtocolP3)
        protocol.flush(_simple_work())
        assert protocol.run_cleaner() == 0
        assert len(account.s3.peek_keys(protocol.bucket, "tmp/")) == 1
