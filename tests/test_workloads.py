"""Tests for the workload generators and the microbenchmark tool."""

import pytest

from repro.provenance.pass_collector import PassCollector
from repro.workloads import (
    make_blast_workload,
    make_challenge_workload,
    make_linux_compile_records,
    make_nightly_workload,
    run_microbenchmark,
)
from repro.workloads.base import MOUNT
from repro.workloads.linux_compile import records_total_bytes
from repro.workloads.microbench import capture_flush_works

MB = 1024 * 1024


class TestNightly:
    def test_shape(self):
        workload = make_nightly_workload(nights=5, tarball_bytes=10 * MB)
        collector = PassCollector()
        collector.feed_trace(workload.trace)
        # Nearly flat provenance: the paper's defining characteristic.
        assert collector.graph.max_depth(include_versions=False) <= 6
        # One tarball + checksum + log per night.
        mount_paths = [
            p for p in workload.trace.file_paths() if p.startswith(MOUNT)
        ]
        assert len(mount_paths) == 15

    def test_bytes_scale_with_nights(self):
        small = make_nightly_workload(nights=2, tarball_bytes=10 * MB)
        large = make_nightly_workload(nights=4, tarball_bytes=10 * MB)
        assert (
            large.trace.total_bytes_written() > small.trace.total_bytes_written()
        )

    def test_deterministic(self):
        a = make_nightly_workload(nights=3)
        b = make_nightly_workload(nights=3)
        assert a.trace.events == b.trace.events


class TestBlast:
    def test_shape(self):
        workload = make_blast_workload(jobs=2, queries_per_job=30)
        collector = PassCollector()
        collector.feed_trace(workload.trace)
        # Depth ~5 pipeline (deeper than nightly, shallower than
        # challenge) once version chains are factored out.
        depth = collector.graph.max_depth(include_versions=False)
        assert 4 <= depth <= 12
        # The query loop generates many process versions (P2's burden).
        proc_versions = sum(
            1 for node in collector.graph.nodes() if node.ref.uuid.startswith("p-")
        )
        assert proc_versions > 50

    def test_compute_is_mostly_memory_bound(self):
        workload = make_blast_workload(jobs=2, queries_per_job=30)
        from repro.provenance.syscalls import ComputeEvent

        memory_bound = sum(
            e.seconds
            for e in workload.trace.events
            if isinstance(e, ComputeEvent) and e.memory_bound
        )
        total = workload.trace.total_compute_seconds()
        assert memory_bound > 0.7 * total

    def test_staged_inputs_declared(self):
        workload = make_blast_workload(jobs=1, queries_per_job=10)
        assert any(p.startswith(MOUNT) for p in workload.staged_inputs)


class TestChallenge:
    def test_depth_matches_paper(self):
        workload = make_challenge_workload(sessions=2)
        collector = PassCollector()
        collector.feed_trace(workload.trace)
        # The paper: maximum path length of eleven.
        depth = collector.graph.max_depth(include_versions=False)
        assert 9 <= depth <= 13

    def test_outputs_per_session(self):
        workload = make_challenge_workload(sessions=3)
        mount_paths = [
            p for p in workload.trace.file_paths() if p.startswith(MOUNT)
        ]
        # 4 warps + 8 resliced + 2 atlas + 3 slices + 3 gifs = 20/session.
        assert len(mount_paths) == 60


class TestLinuxCompile:
    def test_volume_target(self):
        records = make_linux_compile_records(target_bytes=2 * MB)
        total = records_total_bytes(records)
        assert 2 * MB <= total < 2 * MB + 64 * 1024

    def test_deterministic(self):
        a = make_linux_compile_records(target_bytes=MB, seed=5)
        b = make_linux_compile_records(target_bytes=MB, seed=5)
        assert a == b

    def test_values_fit_simpledb(self):
        from repro.cloud.simpledb import ATTRIBUTE_LIMIT_BYTES

        records = make_linux_compile_records(target_bytes=MB)
        assert all(
            len(r.value_text().encode()) <= ATTRIBUTE_LIMIT_BYTES for r in records
        )

    def test_realistic_mix(self):
        records = make_linux_compile_records(target_bytes=MB)
        attributes = {r.attribute for r in records}
        assert {"argv", "env", "input", "type", "name", "sha1"} <= attributes


class TestMicrobench:
    def test_capture_marks_only_final_flush_with_data(self):
        workload = make_blast_workload(jobs=1, queries_per_job=20, chunk_count=2)
        works = capture_flush_works(workload)
        by_uuid = {}
        for work in works:
            if work.include_data:
                assert work.primary.uuid not in by_uuid
                by_uuid[work.primary.uuid] = work
        # raw.hits is flushed at chunk boundaries and closed once: several
        # flushes, one data upload.
        raw_flushes = [
            w for w in works if w.primary.path.endswith("raw.hits")
        ]
        assert len(raw_flushes) >= 2
        assert sum(1 for w in raw_flushes if w.include_data) == 1

    def test_unknown_configuration_rejected(self):
        workload = make_nightly_workload(nights=2)
        with pytest.raises(ValueError):
            run_microbenchmark(workload, "p9")

    def test_protocol_never_transmits_less_than_baseline(self):
        workload = make_blast_workload(jobs=1, queries_per_job=20)
        base = run_microbenchmark(workload, "s3fs")
        p1 = run_microbenchmark(workload, "p1")
        assert p1.bytes_transmitted >= base.bytes_transmitted
        assert p1.operations > base.operations
