"""Range predicates: `<`/`<=`/`>`/`>=`/`between` off the sorted indexes.

The acceptance battery for the ordered-comparison grammar: every new
operator, against attributes and ``itemName()``, alone and under
AND/OR, must return rows, row order, and billed request/byte counts
byte-identical between the indexed planner and the ``use_indexes=False``
scan fallback — under strict consistency, mid-propagation, and across
snapshot-token page chains (mirroring ``test_select_equivalence.py``).

Comparisons are lexicographic on the raw strings, like the real
service: numeric attributes must be zero-padded by callers (the items
here use ``v:03d`` / ``mtime:06d``), and the battery pins the unpadded
footgun explicitly (``'10' < '2'``).
"""

import pytest

import repro.cloud.simpledb as sdb_module
from repro.cloud.simpledb import parse_select
from repro.errors import QuerysyntaxError


def _populate(sdb, domain):
    """A provenance-shaped domain: 12 versions across 3 objects, with
    zero-padded version and mtime attributes."""
    sdb.create_domain(domain)
    items = []
    for i in range(12):
        name = f"u{i // 4}_{i % 4}"
        items.append(
            (
                name,
                [
                    ("type", "proc" if i % 4 == 0 else "file"),
                    ("version", f"{i % 4:03d}"),
                    ("mtime", f"{100 + 10 * i:06d}"),
                    ("name", f"obj-{i // 4}"),
                ],
            )
        )
    sdb.batch_put(domain, items[:12])


#: Every ordered-comparison shape the planner must agree with the scan
#: on, including unindexable mixtures that force the fallback.
_EXPRESSIONS = (
    "select * from d where version < '002'",
    "select * from d where version <= '002'",
    "select * from d where version > '001'",
    "select * from d where version >= '003'",
    "select * from d where version between '001' and '002'",
    "select * from d where version between '002' and '001'",  # empty range
    "select * from d where mtime >= '000150' and mtime < '000190'",
    "select * from d where mtime between '000150' and '000180'",
    "select * from d where itemName() < 'u1_0'",
    "select * from d where itemName() >= 'u2_0'",
    "select * from d where itemName() between 'u0_2' and 'u1_1'",
    "select * from d where version >= '002' and type = 'file'",
    "select * from d where version < '001' or version > '002'",
    "select * from d where version between '000' and '001' and name = 'obj-1'",
    # OR with an unindexable side: the whole tree falls back to scan.
    "select * from d where version < '002' or type != 'file'",
    # AND with an unindexable side: narrowed through the range side.
    "select * from d where mtime > '000150' and type != 'proc'",
    # Range over an attribute no item has: empty either way.
    "select * from d where ghost between 'a' and 'z'",
)


def _run_fingerprint(account, sdb, expression):
    ops_before = account.billing.snapshot()["simpledb"].get("Select", 0)
    bytes_before = account.billing.bytes_received()
    rows = sdb.select(expression)
    return (
        repr(rows),
        account.billing.snapshot()["simpledb"]["Select"] - ops_before,
        account.billing.bytes_received() - bytes_before,
    )


def _assert_equivalent(account, sdb, expression):
    sdb.use_indexes = True
    indexed = _run_fingerprint(account, sdb, expression)
    sdb.use_indexes = False
    scanned = _run_fingerprint(account, sdb, expression)
    sdb.use_indexes = True
    assert indexed == scanned, expression


class TestRangeEquivalence:
    def test_every_operator_indexed_matches_scan(self, strict_account):
        sdb = strict_account.simpledb
        _populate(sdb, "d")
        for expression in _EXPRESSIONS:
            _assert_equivalent(strict_account, sdb, expression)

    def test_ranges_agree_mid_propagation(self, account):
        """EC visibility: whatever subset of writes has propagated, the
        planner and the scan see the same subset."""
        sdb = account.simpledb
        _populate(sdb, "d")
        for _ in range(6):
            account.settle(2.0)
            for expression in (
                "select * from d where version >= '002'",
                "select * from d where mtime between '000120' and '000200'",
                "select * from d where itemName() < 'u2_0'",
            ):
                _assert_equivalent(account, sdb, expression)

    def test_range_chain_pages_off_snapshot(self, strict_account, monkeypatch):
        """A range select spanning several pages runs off one snapshot
        token chain, byte-identical to the scan chain."""
        monkeypatch.setattr(sdb_module, "SELECT_PAGE_ITEMS", 3)
        sdb = strict_account.simpledb
        _populate(sdb, "d")
        expression = "select * from d where mtime >= '000110'"
        _assert_equivalent(strict_account, sdb, expression)
        sdb.use_indexes = True
        rows = sdb.select(expression)
        assert len(rows) == 11  # 4 pages in the chain
        assert sdb._select_snapshots == {}

    def test_planner_counts_ranges_as_indexed(self, strict_account):
        sdb = strict_account.simpledb
        _populate(sdb, "d")
        sdb.select("select * from d where version between '001' and '002'")
        assert sdb.select_stats.indexed == 1
        sdb.select("select * from d where version < '002' or type != 'file'")
        assert sdb.select_stats.scanned == 1

    def test_lexicographic_order_not_numeric(self, strict_account):
        """The documented zero-padding caveat: unpadded numerics order
        as strings, so '10' < '2' — identically in both modes."""
        sdb = strict_account.simpledb
        sdb.create_domain("d")
        sdb.batch_put(
            "d",
            [
                ("a", [("n", "2")]),
                ("b", [("n", "10")]),
                ("c", [("n", "030")]),
            ],
        )
        expression = "select * from d where n < '2'"
        _assert_equivalent(strict_account, sdb, expression)
        rows = sdb.select(expression)
        # Lexicographically '030' < '10' < '2'.
        assert [n for n, _ in rows] == ["b", "c"]

    def test_between_bounds_inclusive(self):
        _, condition = parse_select(
            "select * from d where v between 'b' and 'd'"
        )
        assert condition.matches("i", {"v": ["b"]})
        assert condition.matches("i", {"v": ["d"]})
        assert not condition.matches("i", {"v": ["a"]})
        assert not condition.matches("i", {"v": ["e"]})

    def test_between_requires_and(self):
        with pytest.raises(QuerysyntaxError):
            parse_select("select * from d where v between 'a' or 'b'")
        with pytest.raises(QuerysyntaxError):
            parse_select("select * from d where v between 'a'")


class TestDeleteUnindexesRanges:
    """The fix: ``DeleteAttributes`` of a single attribute (or pair)
    removes the sorted-index entries once the delete has propagated —
    not just a whole-item delete — and the deleted value stops matching
    a range immediately in *both* modes (verification hides it even
    before the index is pruned)."""

    def test_deleted_value_stops_matching_range(self, strict_account):
        sdb = strict_account.simpledb
        _populate(sdb, "d")
        expression = "select * from d where version between '001' and '002'"
        before = [n for n, _ in sdb.select(expression)]
        assert "u1_1" in before
        sdb.delete_attributes("d", "u1_1", [("version", "001")])
        _assert_equivalent(strict_account, sdb, expression)
        after = [n for n, _ in sdb.select(expression)]
        assert "u1_1" not in after
        # The rest of the item survives the single-pair delete.
        assert sdb.get_attributes("d", "u1_1")["mtime"] == ["000150"]

    def test_sorted_index_entry_pruned_after_visibility(self, strict_account):
        sdb = strict_account.simpledb
        sdb.create_domain("d")
        sdb.batch_put(
            "d",
            [("i1", [("v", "001")]), ("i2", [("v", "002")])],
        )
        assert sdb.sorted_index_values("d", "v") == ["001", "002"]
        sdb.delete_attributes("d", "i1", ["v"])
        # Strict consistency: the delete is visible at once, so the next
        # select prunes the dangling entry.
        sdb.select("select * from d where v >= '000'")
        assert sdb.sorted_index_values("d", "v") == ["002"]
        assert sdb.select_stats.unindexed_pruned == 1

    def test_whole_item_delete_also_prunes(self, strict_account):
        sdb = strict_account.simpledb
        sdb.create_domain("d")
        sdb.put_attributes("d", "i1", [("v", "001"), ("t", "x")])
        sdb.delete_attributes("d", "i1")
        sdb.select("select * from d where v < 'zzz'")
        assert sdb.sorted_index_values("d", "v") == []
        assert sdb.sorted_index_values("d", "t") == []

    def test_prune_waits_for_propagation(self, account):
        """Under eventual consistency the entry must survive until the
        delete is visible — a stale read can still observe the old value
        and the planner's candidates must stay a superset."""
        sdb = account.simpledb
        sdb.create_domain("d")
        sdb.put_attributes("d", "i1", [("v", "001")])
        account.settle(120.0)
        sdb.delete_attributes("d", "i1", [("v", "001")])
        expression = "select * from d where v between '000' and '002'"
        # Mid-propagation: both modes agree at every step, and the index
        # still holds the entry (the delete may not be visible yet).
        for _ in range(4):
            _assert_equivalent(account, sdb, expression)
            account.settle(2.0)
        account.settle(120.0)
        sdb.select(expression)
        assert sdb.sorted_index_values("d", "v") == []
        assert sdb.select("select * from d where v = '001'") == []

    def test_reput_cancels_pending_unindex(self, account):
        """Delete then re-put of the same pair inside the propagation
        window: the re-put wins and the entry must never be pruned."""
        sdb = account.simpledb
        sdb.create_domain("d")
        sdb.put_attributes("d", "i1", [("v", "001")])
        account.settle(120.0)
        sdb.delete_attributes("d", "i1", [("v", "001")])
        sdb.put_attributes("d", "i1", [("v", "001")])
        account.settle(120.0)
        sdb.select("select * from d where v < 'zzz'")
        assert sdb.sorted_index_values("d", "v") == ["001"]
        rows = sdb.select("select * from d where v between '000' and '002'")
        assert [n for n, _ in rows] == ["i1"]

    def test_deleting_last_attribute_deletes_item(self, strict_account):
        sdb = strict_account.simpledb
        sdb.create_domain("d")
        sdb.put_attributes("d", "i1", [("v", "001")])
        sdb.delete_attributes("d", "i1", ["v"])
        assert sdb.get_attributes("d", "i1") == {}
        assert sdb.select("select * from d") == []
